"""Table 3: BERT-base inference latency (µs/token) across systems/platforms."""

import pytest

from repro.harness import format_table, table3_bert

PAPER = {
    "intel": {"nimble": 307.0, "pytorch": 479.5, "mxnet": 455.8, "tensorflow": 768.7},
    "nvidia": {"nimble": 95.2, "pytorch": 220.4, "mxnet": 152.9, "tensorflow": 125.2},
    "arm": {"nimble": 2862.6, "pytorch": 11851.2, "mxnet": 8628.0, "tensorflow": 2995.4},
}

SYSTEMS = ("nimble", "pytorch", "mxnet", "tensorflow")


@pytest.mark.paper
def test_table3_bert(benchmark):
    results = benchmark.pedantic(
        lambda: table3_bert(num_sentences=4), rounds=1, iterations=1
    )
    rows = []
    for platform in ("intel", "nvidia", "arm"):
        m = results[platform]
        rows.append(
            [platform]
            + [m[s] for s in SYSTEMS]
            + [f"{PAPER[platform][s]:.0f}" for s in SYSTEMS]
        )
    print()
    print(
        format_table(
            "Table 3 — BERT-base µs/token (measured | paper)",
            rows,
            ["platform"] + list(SYSTEMS) + [f"paper:{s}" for s in SYSTEMS],
        )
    )
    for platform in ("intel", "nvidia", "arm"):
        m = results[platform]
        # Nimble is the fastest system on every platform (paper §6.2)...
        others = [m[s] for s in SYSTEMS[1:]]
        assert m["nimble"] <= min(others) * 1.05, (platform, m)
    # ...but only *slightly* faster than TF on ARM (the dense kernels are
    # on par there, as the paper reports).
    arm = results["arm"]
    assert arm["tensorflow"] / arm["nimble"] < 2.0
