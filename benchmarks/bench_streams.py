"""Multi-stream scheduling: modeled speedup, bit-identity, determinism.

Not a paper table — this extends the reproduction with the AOT kernel
dependency graph + static multi-stream schedule. The study
(``harness.stream_study``) compiles BERT once per stream count and runs
two workloads on the virtual clock:

- **single** — one inference: the independent kernels inside each layer
  (q/k/v projections, per-layer parallelism) spread across streams,
  bounded by the attention critical path;
- **pipeline** — a ragged-tail batch run member-wise with the stream
  offset rotated per member (what the serving worker does), overlapping
  successive members' device work on top of the intra-member schedule.

CI runs this file and fails on any assertion:

- the member pipeline is at least **1.3x** faster than single-stream at
  the best stream count, and the single inference at least 1.15x;
- a ``device_streams=1`` build is byte-identical to a default build —
  the scheduler being *off* is exactly the pre-streams compiler;
- outputs are bitwise identical across every stream count (the schedule
  moves modeled device time, never numerics) and every configuration
  replays with bit-equal latency.
"""

import pytest

import repro.nimble as nimble
from repro.harness import format_table, stream_study
from repro.hardware.platforms import nvidia_gpu
from repro.models.bert import BertWeights, build_bert_module
from repro.vm.compiler import CompilerOptions

STREAM_COUNTS = (1, 2, 4)

ROW_METRICS = (
    "single_us",
    "single_speedup",
    "pipeline_us",
    "pipeline_speedup",
    "sync_events",
    "sync_waits",
    "streams_busy",
    "busiest_stream_share",
)


@pytest.mark.paper
def test_stream_scheduling(benchmark):
    results = benchmark.pedantic(
        lambda: stream_study(stream_counts=STREAM_COUNTS),
        rounds=1,
        iterations=1,
    )
    rows = [results[f"streams={n}"] for n in STREAM_COUNTS]
    summary = results["summary"]
    print()
    print(
        format_table(
            "Static multi-stream schedule on BERT (virtual µs)",
            [[m] + [row[m] for row in rows] for m in ROW_METRICS],
            ["metric"] + [f"streams={n}" for n in STREAM_COUNTS],
        )
    )
    print(
        f"best single speedup {summary['best_single_speedup']:.3f}x, "
        f"best pipeline speedup {summary['best_pipeline_speedup']:.3f}x, "
        f"bit_identical={bool(summary['bit_identical'])}, "
        f"deterministic={bool(summary['deterministic'])}"
    )
    # Headline: the static schedule buys real modeled overlap — the
    # ragged-tail member pipeline runs >= 1.3x faster than single-stream,
    # and even one inference gains >= 1.15x from intra-layer parallelism.
    assert summary["best_pipeline_speedup"] >= 1.30
    assert summary["best_single_speedup"] >= 1.15
    # More streams never lose to single-stream on either workload.
    for row in rows[1:]:
        assert row["single_speedup"] > 1.0
        assert row["pipeline_speedup"] > 1.0
        # The schedule actually spread work: every stream ran kernels and
        # no stream monopolized the device.
        assert row["streams_busy"] == row["streams"]
        assert row["busiest_stream_share"] < 0.9
    # The scheduler never changes what is computed, and the whole
    # simulation replays bit-for-bit at every stream count.
    assert summary["bit_identical"] == 1.0
    assert summary["deterministic"] == 1.0


@pytest.mark.paper
def test_single_stream_build_is_prestream_build():
    """``device_streams=1`` must be the identity: the same content hash,
    the exact instruction stream, and the same modeled latency as a build
    that never heard of streams. (Raw ``save()`` bytes are not compared —
    the pickled shape-function section has never been byte-stable across
    builds in one process; ``content_hash`` is the canonical identity.)"""
    import numpy as np

    from repro.models.bert import BertConfig
    from repro.runtime.context import ExecutionContext
    from repro.vm.interpreter import VirtualMachine

    config = BertConfig(hidden=64, num_heads=4, num_layers=2, ffn=128)
    weights = BertWeights.create(config, seed=0)
    mod = build_bert_module(weights)
    platform = nvidia_gpu()
    default_exe, _ = nimble.build(mod, platform)
    one_exe, _ = nimble.build(
        mod, platform, options=CompilerOptions(device_streams=1)
    )
    assert default_exe.device_streams == 1
    assert one_exe.device_streams == 1
    assert one_exe.num_events == 0
    assert default_exe.content_hash() == one_exe.content_hash()
    assert default_exe.functions == one_exe.functions

    x = (np.arange(32 * config.hidden, dtype=np.float32) % 7).reshape(
        32, config.hidden
    ) * 0.01
    results = []
    for exe in (default_exe, one_exe):
        ctx = ExecutionContext(platform, numerics="lite")
        out = VirtualMachine(exe, ctx).run(x)
        results.append((ctx.elapsed_us, out.numpy()))
    assert results[0][0] == results[1][0]
    assert np.array_equal(results[0][1], results[1][1])


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
