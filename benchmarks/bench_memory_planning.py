"""§6.3 memory study: planning's effect on allocations + footprint vs the
fully-static planner on CV models."""

import pytest

from repro.harness import format_table
from repro.harness.experiments import memory_footprint_vs_static, memory_planning_study


@pytest.mark.paper
def test_memory_planning_bert(benchmark):
    r = benchmark.pedantic(lambda: memory_planning_study(), rounds=1, iterations=1)
    print()
    print(
        format_table(
            "§6.3 memory planning — BERT seq-128 on Intel "
            "(paper: -47% allocations, 2.0 ms -> 0.5 ms)",
            [
                ["buffer allocations", r["allocs_unplanned"], r["allocs_planned"],
                 f"-{100 * r['alloc_reduction']:.0f}%"],
                ["alloc latency (ms)", r["alloc_latency_unplanned_ms"],
                 r["alloc_latency_planned_ms"], ""],
            ],
            ["metric", "unplanned", "planned", "delta"],
            floatfmt="{:.2f}",
        )
    )
    assert r["alloc_reduction"] > 0.35
    assert r["alloc_latency_planned_ms"] < r["alloc_latency_unplanned_ms"] * 0.5


@pytest.mark.paper
def test_memory_footprint_cv_models(benchmark):
    r = benchmark.pedantic(lambda: memory_footprint_vs_static(), rounds=1, iterations=1)
    rows = [
        [name, row["static_bytes"] / 1e6, row["nimble_bytes"] / 1e6, row["overhead_pct"]]
        for name, row in r.items()
    ]
    print()
    print(
        format_table(
            "§6.3 footprint — Nimble vs static plan, MB (paper: <= 8% extra)",
            rows,
            ["model", "static MB", "nimble MB", "overhead %"],
            floatfmt="{:.2f}",
        )
    )
    for name, row in r.items():
        assert row["overhead_pct"] < 60.0, (name, row)
