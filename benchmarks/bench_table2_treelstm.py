"""Table 2: Tree-LSTM inference latency (µs/token) on Intel and ARM."""

import pytest

from repro.harness import format_table, table2_tree_lstm

PAPER = {
    "intel": {"nimble": 40.3, "pytorch": 701.6, "tf_fold": 209.9},
    "arm": {"nimble": 86.3, "pytorch": 1717.1, "tf_fold": None},
}


@pytest.mark.paper
def test_table2_tree_lstm(benchmark):
    results = benchmark.pedantic(
        lambda: table2_tree_lstm(num_trees=8), rounds=1, iterations=1
    )
    rows = []
    for platform in ("intel", "arm"):
        m = results[platform]
        p = PAPER[platform]
        rows.append(
            [platform, m["nimble"], m["pytorch"], m["tf_fold"],
             p["nimble"], p["pytorch"], p["tf_fold"]]
        )
    print()
    print(
        format_table(
            "Table 2 — Tree-LSTM µs/token (measured | paper)",
            rows,
            ["platform", "nimble", "pytorch", "tf_fold",
             "paper:nimble", "paper:pytorch", "paper:fold"],
        )
    )
    # Paper's findings: Nimble ~17x over PyTorch on Intel, ~5x over Fold;
    # Fold unavailable on ARM.
    intel = results["intel"]
    assert intel["pytorch"] / intel["nimble"] > 8.0
    assert intel["tf_fold"] / intel["nimble"] > 2.0
    assert results["arm"]["tf_fold"] is None
    assert results["arm"]["pytorch"] / results["arm"]["nimble"] > 8.0
