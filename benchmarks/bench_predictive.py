"""Profile-guided predictive specialization + guarded partial shapes.

Not a paper table — this extends the reproduction past reactive
specialization. The study (``harness.predictive_study``) runs a
long-tailed traffic mix (a few hot row counts, a wide tail, stable
feature width) through the weight-free two-``Any``-dim gram model twice
against one artifact store:

- the **cold** server specializes reactively and covers the tail with a
  synthesized *partial* variant (feature dim bound, row dim left
  ``Any``, entry-guarded per batch member), then snapshots its shape
  profile (``.nmblprof``) into the store;
- the **warm** server pre-arms its historical top-K at virtual time 0,
  so its first specialized hit lands at least **2×** earlier than the
  cold run's (in practice far more: the pre-arm happens before the
  first request even arrives);
- one partial variant serves at least **3 distinct exact shapes**, with
  every guard deopt counted (zero here — routing only sends matching
  members) and outputs bit-identical across cold and warm despite the
  runs' different tier sequences;
- both runs replay deterministically (the profile is frozen at manager
  construction, never re-read mid-run).

CI runs this file and fails on any assertion.
"""

import pytest

from repro.harness import format_table, predictive_study

ROW_METRICS = (
    "specialized_hits",
    "specialized_hit_rate",
    "partial_hits",
    "partial_shapes_covered",
    "guard_deopts",
    "predictive_compiles",
    "predictive_hits",
    "compile_charge_us",
    "restored",
    "first_specialized_hit_us",
)


@pytest.mark.paper
def test_predictive_specialization(benchmark, tmp_path):
    results = benchmark.pedantic(
        lambda: predictive_study(artifact_dir=str(tmp_path / "store")),
        rounds=1,
        iterations=1,
    )
    cold, warm, summary = results["cold"], results["warm"], results["summary"]
    print()
    print(
        format_table(
            "Reactive vs predictive specialization, one store (virtual µs)",
            [[m, cold[m], warm[m]] for m in ROW_METRICS],
            ["metric", "cold", "warm"],
        )
    )
    print(
        f"first-hit speedup {summary['first_hit_speedup']:.2f}x, "
        f"predictive {summary['predictive_compiles']:.0f} pre-arms / "
        f"{summary['predictive_hits']:.0f} hits, "
        f"partial covers {summary['partial_shapes_covered']:.0f} shapes, "
        f"deopts={summary['guard_deopts']:.0f}, "
        f"bit_identical={bool(summary['bit_identical'])}, "
        f"deterministic={bool(summary['deterministic'])}"
    )
    # Headline 1: the restarted (warm) server's first specialized hit
    # lands at least 2x earlier than the cold server's — its hot set was
    # pre-armed from the persisted shape profile at virtual time 0.
    assert warm["predictive_compiles"] > 0
    assert warm["predictive_hits"] > 0
    assert summary["first_hit_speedup"] >= 2.0
    # Headline 2: one guarded partial variant covers a whole family of
    # exact shapes — at least 3 distinct row counts served on the
    # "partial" tier — and no member ever computed a wrong answer: every
    # guard miss would deopt (counted), and outputs stay bitwise
    # identical across the two runs' different tier mixes.
    assert summary["partial_shapes_covered"] >= 3.0
    assert cold["partial_hits"] > 0
    assert summary["bit_identical"] == 1.0
    # The cold baseline is non-degenerate and nothing was predictively
    # armed there (empty store on construction); replays are stable.
    assert cold["predictive_compiles"] == 0.0
    assert cold["specialized_hits"] > 0
    assert summary["deterministic"] == 1.0


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
