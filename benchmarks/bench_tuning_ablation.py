"""§4.5 ablation: the symbolic tuning workflow (tune@64 -> top-k cross-eval
-> best average) vs naive config reuse and a per-shape oracle."""

import pytest

from repro.harness import format_table
from repro.harness.experiments import tuning_ablation


@pytest.mark.paper
def test_tuning_ablation(benchmark):
    r = benchmark.pedantic(lambda: tuning_ablation(), rounds=1, iterations=1)
    print()
    print(
        format_table(
            "§4.5 symbolic tuning ablation — dense 768x768, ARM, shapes 1..256",
            [
                ["naive (shape-64 winner)", r["naive_us"], r["naive_vs_oracle"]],
                ["symbolic workflow", r["symbolic_workflow_us"], r["workflow_vs_oracle"]],
                ["per-shape oracle", r["oracle_us"], 1.0],
            ],
            ["strategy", "total µs", "vs oracle"],
            floatfmt="{:.2f}",
        )
    )
    # The workflow is at least as good as naive reuse and close to oracle.
    assert r["symbolic_workflow_us"] <= r["naive_us"] * 1.0001
    assert r["workflow_vs_oracle"] < 1.25
