"""Tiered specialization: static recompilation of hot shapes.

Not a paper table — this extends the reproduction with the DyCL-style
observation that a dynamic program's hot shapes are static workloads in
disguise. Two measurements (``harness.specialization_study``):

1. the same BERT-class module compiled dynamically vs specialized to the
   hot shape, run on identical input — the static tier must be strictly
   faster end-to-end, with the shape-function/dispatch/allocation
   overhead (Table 4 "others") measurably reduced via ``VMProfile`` and
   outputs bit-identical;
2. the LSTM MRPC serving mix with ``specialize=True`` — hot buckets are
   detected, statically recompiled on the background compile lane, and
   served with >0 specialized hits, all bit-reproducible across replays.
"""

import pytest

from repro.harness import format_table, specialization_study

TIER_METRICS = (
    "dynamic_us",
    "specialized_us",
    "shape_func_us_dynamic",
    "shape_func_us_specialized",
    "allocs_dynamic",
    "allocs_specialized",
)
SERVE_METRICS = (
    "specialized_hits",
    "specialized_hit_rate",
    "num_specialized_executables",
    "p50_us_dynamic",
    "p50_us_specialized",
)


@pytest.mark.paper
def test_specialization_tiers(benchmark):
    results = benchmark.pedantic(specialization_study, rounds=1, iterations=1)
    tiers, serving = results["tiers"], results["serving"]
    print()
    print(
        format_table(
            "Hot shape: dynamic vs specialized executable (virtual µs)",
            [[m, tiers[m]] for m in TIER_METRICS],
            ["metric", "value"],
        )
    )
    print(
        format_table(
            "Serving the LSTM MRPC mix with tiering",
            [[m, serving[m]] for m in SERVE_METRICS],
            ["metric", "value"],
        )
    )
    print(
        f"speedup {tiers['speedup']:.2f}x, bit_identical="
        f"{bool(tiers['bit_identical'])}, "
        f"deterministic={bool(serving['deterministic'])}"
    )
    # Headline: the specialized executable beats the dynamic one on the
    # hot shape with identical outputs, because the shape-function and
    # dispatch overhead is gone.
    assert tiers["bit_identical"] == 1.0
    assert tiers["specialized_us"] < tiers["dynamic_us"]
    assert tiers["shape_func_us_specialized"] == 0.0
    assert tiers["shape_func_us_dynamic"] > 0.0
    assert tiers["dispatch_us_specialized"] < tiers["dispatch_us_dynamic"]
    assert tiers["allocs_specialized"] < tiers["allocs_dynamic"]
    # Serving: the LSTM MRPC mix crosses the hot threshold, compiles
    # static executables, and actually routes requests to them —
    # reproducibly.
    assert serving["specialized_hits"] > 0
    assert serving["num_specialized_executables"] > 0
    assert serving["deterministic"] == 1.0


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
