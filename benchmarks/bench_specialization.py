"""Tiered specialization: static recompilation of hot shapes.

Not a paper table — this extends the reproduction with the DyCL-style
observation that a dynamic program's hot shapes are static workloads in
disguise. Two measurements (``harness.specialization_study``):

1. the same BERT-class module compiled dynamically vs specialized to the
   hot shape, run on identical input — the static tier must be strictly
   faster end-to-end, with the shape-function/dispatch/allocation
   overhead (Table 4 "others") measurably reduced via ``VMProfile`` and
   outputs bit-identical;
2. the LSTM MRPC serving mix with ``specialize=True`` — hot buckets are
   detected, statically recompiled on the compile-worker pool, and served
   with >0 specialized hits, all bit-reproducible across replays.

A third measurement (``harness.compile_pool_study``) sweeps the compile
pool over lanes × cache size on a phased long-tailed shape mix: cache
eviction must keep the specialized hit rate above the no-eviction hard
cap (which starves every late hot shape), a second compile lane must
strictly cut the mean compile-queue wait, and every configuration must
replay bit-identically.

A fourth (``harness.staged_compile_study``) compares monolithic vs
staged specialization on the same long-tailed mix at one compile lane:
with the shape-independent prefix charged once and amortized over the
trace's variants, the amortized per-variant charge must drop below
monolithic, every warm-prefix variant's marginal charge must be at most
half the monolithic per-variant charge, the compile-queue p99 must not
regress, and both modes must replay bit-identically. CI runs this file
and fails on any assertion.
"""

import pytest

from repro.harness import (
    batch_specialization_study,
    compile_pool_study,
    format_table,
    specialization_study,
    staged_compile_study,
)

TIER_METRICS = (
    "dynamic_us",
    "specialized_us",
    "shape_func_us_dynamic",
    "shape_func_us_specialized",
    "allocs_dynamic",
    "allocs_specialized",
)
SERVE_METRICS = (
    "specialized_hits",
    "specialized_hit_rate",
    "num_specialized_executables",
    "p50_us_dynamic",
    "p50_us_specialized",
)


@pytest.mark.paper
def test_specialization_tiers(benchmark):
    results = benchmark.pedantic(specialization_study, rounds=1, iterations=1)
    tiers, serving = results["tiers"], results["serving"]
    print()
    print(
        format_table(
            "Hot shape: dynamic vs specialized executable (virtual µs)",
            [[m, tiers[m]] for m in TIER_METRICS],
            ["metric", "value"],
        )
    )
    print(
        format_table(
            "Serving the LSTM MRPC mix with tiering",
            [[m, serving[m]] for m in SERVE_METRICS],
            ["metric", "value"],
        )
    )
    print(
        f"speedup {tiers['speedup']:.2f}x, bit_identical="
        f"{bool(tiers['bit_identical'])}, "
        f"deterministic={bool(serving['deterministic'])}"
    )
    # Headline: the specialized executable beats the dynamic one on the
    # hot shape with identical outputs, because the shape-function and
    # dispatch overhead is gone.
    assert tiers["bit_identical"] == 1.0
    assert tiers["specialized_us"] < tiers["dynamic_us"]
    assert tiers["shape_func_us_specialized"] == 0.0
    assert tiers["shape_func_us_dynamic"] > 0.0
    assert tiers["dispatch_us_specialized"] < tiers["dispatch_us_dynamic"]
    assert tiers["allocs_specialized"] < tiers["allocs_dynamic"]
    # Serving: the LSTM MRPC mix crosses the hot threshold, compiles
    # static executables, and actually routes requests to them —
    # reproducibly.
    assert serving["specialized_hits"] > 0
    assert serving["num_specialized_executables"] > 0
    assert serving["deterministic"] == 1.0


POOL_METRICS = (
    "specialized_hit_rate",
    "compiles",
    "evictions",
    "mean_queue_wait_us",
    "p99_queue_wait_us",
)


@pytest.mark.paper
def test_compile_pool_eviction(benchmark):
    """Lanes × cache size on the long-tailed mix: eviction beats the hard
    cap, a second lane strictly cuts queue wait, replays bit-identical."""
    results = benchmark.pedantic(
        lambda: compile_pool_study(
            lane_counts=(1, 2), cache_sizes=(2, 4), num_requests=160
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [key] + [results[key][m] for m in POOL_METRICS]
        for key in sorted(k for k in results if k != "summary")
    ]
    print()
    print(
        format_table(
            "Compile pool: lanes × cache on the long-tailed shape mix",
            rows,
            ["config", "hit rate", "compiles", "evictions",
             "mean qwait µs", "p99 qwait µs"],
        )
    )
    summary = results["summary"]
    print(
        f"eviction hit-rate gain {summary['eviction_hit_rate_gain']:.3f}, "
        f"queue wait lanes={summary['min_lanes']:.0f} "
        f"{summary['queue_wait_min_lanes_us']:.0f} µs vs "
        f"lanes={summary['max_lanes']:.0f} "
        f"{summary['queue_wait_max_lanes_us']:.0f} µs, "
        f"deterministic={bool(summary['deterministic'])}"
    )
    # Eviction must keep the specialized hit rate above the no-eviction
    # cap baseline on the same trace, at every cache size — the hard cap
    # starves every hot shape that shows up after the cache fills.
    for cache in (2, 4):
        evicting = results[f"lanes=1,cache={cache}"]
        capped = results[f"no_eviction,cache={cache}"]
        assert evicting["specialized_hit_rate"] > capped["specialized_hit_rate"]
    assert results["lanes=1,cache=2"]["evictions"] > 0
    assert summary["eviction_hit_rate_gain"] > 0
    # The pool: a second lane strictly lowers the mean compile-queue wait.
    assert summary["queue_wait_max_lanes_us"] < summary["queue_wait_min_lanes_us"]
    # Everything above reproduces bit-identically across replays.
    assert summary["deterministic"] == 1.0


STAGED_METRICS = (
    "specialized_hit_rate",
    "fresh_compiles",
    "compile_us",
    "prefix_us",
    "suffix_us",
    "amortized_per_variant_us",
    "p99_queue_wait_us",
)


@pytest.mark.paper
def test_staged_specialization(benchmark):
    """Monolithic vs staged charging on the long-tailed mix at one
    compile lane: the once-per-module prefix amortizes, so per-variant
    charge and queue wait drop — bit-identically replayed."""
    results = benchmark.pedantic(
        lambda: staged_compile_study(num_requests=160),
        rounds=1,
        iterations=1,
    )
    rows = [
        [mode] + [results[mode][m] for m in STAGED_METRICS]
        for mode in ("monolithic", "staged")
    ]
    print()
    print(
        format_table(
            "Monolithic vs staged specialization (long-tailed mix, 1 lane)",
            rows,
            ["mode", "hit rate", "fresh", "compile µs", "prefix µs",
             "suffix µs", "amortized µs", "p99 qwait µs"],
        )
    )
    summary = results["summary"]
    print(
        f"amortized ratio {summary['amortized_ratio']:.2f}, "
        f"warm-prefix marginal ratio "
        f"{summary['warm_prefix_marginal_ratio']:.2f}, "
        f"p99 queue wait {summary['queue_wait_p99_mono_us']:.0f} µs -> "
        f"{summary['queue_wait_p99_staged_us']:.0f} µs, "
        f"deterministic={bool(summary['deterministic'])}"
    )
    mono, staged = results["monolithic"], results["staged"]
    # The study must actually exercise amortization: multiple variants
    # compiled fresh, prefix paid exactly once (never per variant).
    assert staged["fresh_compiles"] >= 2
    assert 0.0 < staged["prefix_us"] < staged["compile_us"]
    assert mono["prefix_us"] == 0.0
    # Headline: with the prefix charged once per module, the amortized
    # per-variant charge drops below monolithic, and every warm-prefix
    # variant's marginal charge is at most HALF the monolithic one (the
    # suffix share of the calibration model).
    assert summary["amortized_ratio"] < 1.0
    assert summary["warm_prefix_marginal_ratio"] <= 0.5
    # At one lane, cheaper variants drain the pending queue faster — the
    # p99 compile-queue wait must not regress.
    assert summary["queue_wait_p99_staged_us"] <= summary["queue_wait_p99_mono_us"]
    # Staging must not cost tier coverage on the identical trace.
    assert staged["specialized_hit_rate"] >= mono["specialized_hit_rate"]
    # Everything above reproduces bit-identically across replays with
    # the prefix cache enabled (the second simulate reuses the memoised
    # prefix and artifacts).
    assert summary["deterministic"] == 1.0


BATCH_TIER_METRICS = (
    "member_pipelined_us",
    "batched_us",
    "throughput_gain",
    "gemm_launches_member_total",
    "gemm_launches_batched",
)
BATCH_SERVE_METRICS = (
    "batched_hits",
    "batched_hit_rate",
    "batched_batches",
    "p50_us_dynamic",
    "p50_us_batched",
)


@pytest.mark.paper
def test_batch_specialization(benchmark):
    """Batch-granularity kernels: a full hot bucket executes as ONE call
    on the batch-specialized executable — one batched GEMM per
    member-wise GEMM site — and must beat member-pipelined static by
    >= 1.5x on the modeled GPU platform, bit-identically."""
    results = benchmark.pedantic(
        batch_specialization_study, rounds=1, iterations=1
    )
    tiers, serving = results["tiers"], results["serving"]
    print()
    print(
        format_table(
            "Hot BERT bucket: member-pipelined static vs one batched call "
            "(modeled GPU, virtual µs)",
            [[m, tiers[m]] for m in BATCH_TIER_METRICS],
            ["metric", "value"],
        )
    )
    print(
        format_table(
            "Serving the hot-heavy LSTM mix with the batched tier",
            [[m, serving[m]] for m in BATCH_SERVE_METRICS],
            ["metric", "value"],
        )
    )
    print(
        f"gain {tiers['throughput_gain']:.2f}x, bit_identical="
        f"{bool(tiers['bit_identical'])}, "
        f"deterministic={bool(serving['deterministic'])}"
    )
    # Headline: the batched tier executes the whole bucket as a single VM
    # call whose GEMM-launch count matches ONE member run (the pipelined
    # bucket pays batch x that), and clears >= 1.5x throughput on the
    # modeled GPU.
    assert tiers["batched_runs"] == 1.0
    assert tiers["gemm_launches_batched"] * tiers["member_runs"] == (
        tiers["gemm_launches_member_total"]
    )
    assert tiers["throughput_gain"] >= 1.5
    assert tiers["bit_identical"] == 1.0
    # Serving: full hot buckets actually route to the batched tier, pay
    # zero shape functions, run one VM call per bucket, and beat the
    # dynamic tier's p50 — reproducibly.
    assert serving["batched_hits"] > 0
    assert serving["batched_shape_func_us"] == 0.0
    assert serving["batched_batches"] > 0
    assert serving["p50_us_batched"] < serving["p50_us_dynamic"]
    assert serving["deterministic"] == 1.0


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
