"""Serving: shape-bucketed batched dispatch vs one-request-at-a-time.

Not a paper table — this extends the reproduction toward the serving
regime the paper motivates (§1: dynamic models behind production traffic).
LSTM and BERT traffic mixes draw sentence lengths from the MRPC
distribution (``data/mrpc.py``); arrivals are a seeded Poisson process.
All numbers are virtual microseconds, so throughput and tail latency are
bit-reproducible — the study itself re-runs the batched simulation from a
fresh server and verifies it reproduces identical numbers.
"""

import pytest

from repro.harness import format_table, serving_study
from repro.models.bert import BertConfig

SYSTEMS = ("serial", "batched")
METRICS = ("throughput_rps", "p50_us", "p99_us", "mean_batch_size")


def _rows(name, result):
    out = []
    for system in SYSTEMS:
        row = result[system]
        out.append([f"{name}/{system}"] + [row[m] for m in METRICS])
    return out


@pytest.mark.paper
def test_serving_throughput(benchmark):
    def study():
        lstm = serving_study(
            model="lstm",
            num_requests=32,
            platform_name="nvidia",
            num_workers=4,
            max_batch_size=8,
            max_delay_us=4000.0,
            mean_interarrival_us=50.0,
            seed=0,
        )
        bert = serving_study(
            model="bert",
            num_requests=24,
            platform_name="nvidia",
            num_workers=4,
            max_batch_size=8,
            max_delay_us=2000.0,
            mean_interarrival_us=50.0,
            bucket_granularity=16,
            bert_config=BertConfig(hidden=256, num_layers=4, num_heads=4, ffn=1024),
            seed=0,
        )
        return {"lstm": lstm, "bert": bert}

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = _rows("lstm", results["lstm"]) + _rows("bert", results["bert"])
    print()
    print(
        format_table(
            "Serving — batched vs serial dispatch (virtual time)",
            rows,
            ["mix"] + list(METRICS),
        )
    )
    for name in ("lstm", "bert"):
        summary = results[name]["summary"]
        print(
            f"{name}: {summary['throughput_speedup']:.2f}x throughput, "
            f"deterministic={bool(summary['deterministic'])}"
        )
    # Headline: batching the LSTM mix at least doubles serial throughput,
    # and the numbers are reproducible.
    assert results["lstm"]["summary"]["throughput_speedup"] >= 2.0
    assert results["lstm"]["summary"]["deterministic"] == 1.0
    assert results["bert"]["summary"]["throughput_speedup"] >= 1.5
    assert results["bert"]["summary"]["deterministic"] == 1.0
    # Batching must not explode tail latency versus the saturated serial
    # queue — the deadline caps queueing delay.
    assert results["lstm"]["batched"]["p99_us"] <= results["lstm"]["serial"]["p99_us"]


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
