"""Table 4: VM overhead vs static TVM on BERT (sequence length 128)."""

import pytest

from repro.harness import format_table, table4_overhead

PAPER = {
    "intel": {"tvm_ms": 19.38, "nimble_ms": 24.32, "kernel_ms": 21.06, "others_ms": 3.26},
    "arm": {"tvm_ms": 223.50, "nimble_ms": 237.41, "kernel_ms": 228.59, "others_ms": 8.82},
    "nvidia": {"tvm_ms": 5.58, "nimble_ms": 5.86, "kernel_ms": 5.60, "others_ms": 0.26},
}


@pytest.mark.paper
def test_table4_overhead(benchmark):
    results = benchmark.pedantic(lambda: table4_overhead(), rounds=1, iterations=1)
    rows = []
    for platform in ("intel", "arm", "nvidia"):
        m = results[platform]
        p = PAPER[platform]
        rows.append(
            [platform, m["tvm_ms"], m["nimble_ms"], m["kernel_ms"], m["others_ms"],
             p["tvm_ms"], p["nimble_ms"], p["kernel_ms"], p["others_ms"]]
        )
    print()
    print(
        format_table(
            "Table 4 — BERT seq-128 latency, ms (measured | paper)",
            rows,
            ["platform", "tvm", "nimble", "kernel", "others",
             "p:tvm", "p:nimble", "p:kernel", "p:others"],
            floatfmt="{:.2f}",
        )
    )
    for platform in ("intel", "arm"):
        m = results[platform]
        overhead = m["nimble_ms"] / m["tvm_ms"] - 1.0
        # Paper: TVM static is 5%-25% faster than Nimble on CPUs.
        assert 0.02 < overhead < 0.30, (platform, overhead)
    # On the GPU the overhead nearly vanishes (overlap, §6.3).
    nv = results["nvidia"]
    assert nv["nimble_ms"] / nv["tvm_ms"] - 1.0 < 0.05
    assert nv["others_ms"] < 0.15
