"""Benchmark configuration: each benchmark regenerates one paper artifact.

The measured quantity (pytest-benchmark) is the wall time of the whole
simulation; the *reported science* is the virtual-microsecond tables each
benchmark prints, which mirror the paper's Tables 1–4 / Figure 3 / §6.3.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "paper: regenerates a paper table/figure")
