"""CI verification sweep: every workload artifact verifies clean.

Builds the paper's three dynamic workloads (LSTM, BERT, TreeLSTM) at
one and four device streams, plus the shape-specialized BERT variant
that actually carries a multi-stream schedule, and runs the full static
verifier (`repro.analysis.verify_executable` — bytecode, races,
lifetimes) over each. The bar is **zero error findings** on every
artifact: a scheduler or memory-planner regression that emits racy or
ill-formed bytecode turns this step red even if no functional test
happens to hit the broken path.

Run under pytest (the CI `verify-artifacts` step) or directly
(`PYTHONPATH=src python benchmarks/verify_artifacts.py`); both exit
nonzero on any finding.
"""

import sys

import pytest

import repro.nimble as nimble
from repro.analysis import verify_executable
from repro.harness import format_table
from repro.hardware.platforms import nvidia_gpu
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.models.lstm import LSTMWeights, build_lstm_module
from repro.models.tree_lstm import TreeLSTMWeights, build_tree_lstm_module
from repro.vm.compiler import CompilerOptions

STREAM_COUNTS = (1, 4)


def _workloads():
    bert_cfg = BertConfig(hidden=64, num_heads=4, num_layers=2, ffn=128)
    return [
        ("lstm", build_lstm_module(LSTMWeights.create(16, 32, 1))),
        ("bert", build_bert_module(BertWeights.create(bert_cfg, seed=0))),
        (
            "tree_lstm",
            build_tree_lstm_module(TreeLSTMWeights.create(16, 24, seed=0)),
        ),
    ]


def sweep():
    """(rows, failures): one row per artifact, one failure per finding."""
    rows, failures = [], []

    def record(name, exe):
        findings = verify_executable(exe)
        errors = [f for f in findings if f.severity == "error"]
        warnings = [f for f in findings if f.severity == "warning"]
        rows.append([
            name,
            float(exe.device_streams),
            float(exe.num_events),
            float(exe.num_instructions),
            float(len(errors)),
            float(len(warnings)),
        ])
        failures.extend(f"{name}: {f}" for f in errors)

    for model, mod in _workloads():
        for streams in STREAM_COUNTS:
            # The compiler's own gate stays off so a broken artifact
            # reaches the sweep and is *reported*, not thrown past.
            opts = CompilerOptions(device_streams=streams, verify=False)
            exe, _ = nimble.build(mod, nvidia_gpu(), options=opts)
            record(f"{model} s{streams}", exe)
    # The one build in the zoo with a real multi-stream schedule.
    bert_cfg = BertConfig(hidden=64, num_heads=4, num_layers=2, ffn=128)
    spec, _ = nimble.specialize(
        build_bert_module(BertWeights.create(bert_cfg, seed=0)),
        nvidia_gpu(),
        shapes=[(8, 64)],
        options=CompilerOptions(device_streams=4, verify=False),
    )
    record("bert specialized s4", spec)
    return rows, failures


@pytest.mark.paper
def test_all_artifacts_verify_clean():
    rows, failures = sweep()
    print()
    print(
        format_table(
            "Static verification sweep (zero errors required)",
            rows,
            ["artifact", "streams", "events", "instrs", "errors", "warnings"],
        )
    )
    assert not failures, "verification failures:\n" + "\n".join(failures)
    # The sweep must include at least one genuinely scheduled artifact,
    # or a scheduler regression could hide behind event-free builds.
    assert any(row[2] > 0 for row in rows)


if __name__ == "__main__":
    test_rows, test_failures = sweep()
    for line in test_failures:
        print(f"FAIL {line}", file=sys.stderr)
    sys.exit(1 if test_failures else 0)
