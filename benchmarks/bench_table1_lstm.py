"""Table 1: LSTM inference latency (µs/token) across systems/platforms."""

import pytest

from repro.harness import format_table, table1_lstm

PAPER = {
    1: {
        "intel": {"nimble": 47.8, "pytorch": 79.3, "mxnet": 212.9, "tensorflow": 301.4},
        "nvidia": {"nimble": 93.0, "pytorch": 110.3, "mxnet": 135.7, "tensorflow": 304.7},
        "arm": {"nimble": 182.2, "pytorch": 1729.5, "mxnet": 3695.9, "tensorflow": 978.3},
    },
    2: {
        "intel": {"nimble": 97.2, "pytorch": 158.1, "mxnet": 401.7, "tensorflow": 687.3},
        "nvidia": {"nimble": 150.9, "pytorch": 214.6, "mxnet": 223.8, "tensorflow": 406.9},
        "arm": {"nimble": 686.4, "pytorch": 3378.1, "mxnet": 7768.0, "tensorflow": 2192.8},
    },
}

SYSTEMS = ("nimble", "pytorch", "mxnet", "tensorflow")


@pytest.mark.paper
def test_table1_lstm(benchmark):
    results = benchmark.pedantic(
        lambda: table1_lstm(num_sentences=6), rounds=1, iterations=1
    )
    rows = []
    for layers in (1, 2):
        for platform in ("intel", "nvidia", "arm"):
            measured = results[layers][platform]
            paper = PAPER[layers][platform]
            rows.append(
                [f"{layers}L/{platform}"]
                + [measured[s] for s in SYSTEMS]
                + [f"{paper[s]:.1f}" for s in SYSTEMS]
            )
    print()
    print(
        format_table(
            "Table 1 — LSTM µs/token (measured | paper)",
            rows,
            ["config"] + [f"{s}" for s in SYSTEMS] + [f"paper:{s}" for s in SYSTEMS],
        )
    )
    # The paper's ordering must hold on every platform.
    for layers in (1, 2):
        for platform in ("intel", "nvidia", "arm"):
            m = results[layers][platform]
            assert m["nimble"] == min(m.values()), (layers, platform, m)
    # Headline: ~20x over MXNet on ARM (paper: 20.3x on 1 layer).
    arm = results[1]["arm"]
    assert arm["mxnet"] / arm["nimble"] > 8.0
