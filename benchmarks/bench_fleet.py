"""Fleet serving: shape-affinity routing over a shared artifact store.

Not a paper table — this extends the reproduction to fleet scale, where
the paper's compile-once economics must hold per *fleet*, not per
replica. The study (``harness.fleet_study``) serves one multi-tenant
trace through ``repro.fleet`` under three routing policies plus a
warm-fleet restart and a replica-count sweep, and asserts the layer's
three claims:

- **affinity concentrates specialization**: more hot shapes than any
  one replica's executable cache can hold, so random placement thrashes
  eviction while affinity pins each tenant's hot shape to one replica —
  ≥1.5× the fleet-wide specialized hit rate at no extra fresh-compile
  charge (the shared store already deduplicates compiles);
- **one replica's compile warms the whole fleet**: a fresh fleet over
  the populated store restores instead of compiling, and its first
  specialized hit lands strictly earlier than the cold fleet's;
- **determinism survives the fleet**: per-tenant admission control
  trips under bursts, store GC prunes mid-run, and still every
  configuration replays bit-identically — and any replica count
  computes bitwise the outputs of one standalone server.

CI runs this file and fails on any assertion.
"""

import pytest

from repro.harness import fleet_study, format_table

ROW_METRICS = (
    "admitted",
    "rejected",
    "affinity_rate",
    "specialized_hit_rate",
    "compile_charge_us",
    "fleet_restores",
    "store_rejects",
    "gc_pruned",
    "gc_kept_referenced",
    "first_specialized_hit_us",
    "p50_us",
    "p99_us",
    "deterministic",
)


@pytest.mark.paper
def test_fleet_routing_and_shared_store(benchmark):
    results = benchmark.pedantic(fleet_study, rounds=1, iterations=1)
    summary = results["summary"]
    policies = ("affinity", "random", "least_loaded", "warm", "gc")
    print()
    print(
        format_table(
            "One multi-tenant trace, five fleet configurations (virtual µs)",
            [[m] + [results[p][m] for p in policies] for m in ROW_METRICS],
            ["metric", *policies],
        )
    )
    print(
        f"affinity/random hit ratio {summary['affinity_random_hit_ratio']:.2f}x "
        f"at charge ratio {summary['affinity_random_charge_ratio']:.3f}, "
        f"warm first-hit speedup {summary['warm_first_hit_speedup']:.2f}x, "
        f"sweep_deterministic={bool(summary['replica_sweep_deterministic'])}, "
        f"single_server_match={bool(summary['single_server_match'])}"
    )

    affinity, random_run = results["affinity"], results["random"]
    # Headline: affinity routing concentrates the specialized tier —
    # ≥1.5× random placement's hit rate without paying more fresh
    # compile charge for it.
    assert summary["affinity_random_hit_ratio"] >= 1.5
    assert summary["affinity_random_charge_ratio"] <= 1.05
    # The shared store warms siblings mid-run: placement-blind routing
    # leans on cross-replica restores (affinity needs none — each shape
    # stays where it compiled, which is the point), and a warm fleet's
    # first specialized hit beats the cold fleet's.
    assert random_run["fleet_restores"] > 0
    assert affinity["fleet_restores"] == 0.0
    assert results["warm"]["first_specialized_hit_us"] < affinity[
        "first_specialized_hit_us"
    ]
    assert summary["warm_earlier"] == 1.0
    # Admission control actually bound: the bursty tenant was shed at
    # the door in every configuration (counted, never queued).
    assert summary["admission_tripped"] == 1.0
    # Store GC: under drifted traffic the retired shape's blob is
    # age-pruned while the refcount guard keeps every live one, with
    # zero store rejects along the way.
    assert summary["gc_exercised"] == 1.0
    assert results["gc"]["gc_pruned"] > 0
    assert results["gc"]["gc_kept_referenced"] > 0
    assert affinity["store_rejects"] == 0.0
    # The determinism contract: every configuration replays
    # bit-identically (counters and outputs), the replica-count sweep
    # {1, 2, 4} replays with GC enabled, and every count computes
    # bitwise the single-server outputs.
    assert summary["deterministic"] == 1.0
    assert summary["replica_sweep_deterministic"] == 1.0
    assert summary["single_server_match"] == 1.0
    # Baselines are non-degenerate: random still specializes (just
    # worse) and the affinity run served the lion's share statically.
    assert random_run["specialized_hit_rate"] > 0.0
    assert affinity["specialized_hit_rate"] > 0.5


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
