"""Warm server restarts from the persistent artifact store.

Not a paper table — this extends the reproduction with the deployment
half of the paper's bet: compilation cost is paid once and *amortized*,
which only holds if the artifacts outlive the process. The study
(``harness.restart_study``) runs a hot-shape-concentrated traffic mix on
a server with ``artifact_dir`` set, drops the server (the "crash"),
constructs a fresh one against the same store, and replays the identical
trace:

- the warm server restores every specialized executable from disk
  (zero fresh compiles) at the modeled deserialize cost, so its total
  lane charge is **< 10%** of the cold run's compile charge;
- it reaches at least the cold run's specialized hit rate, and its
  first specialized hit lands earlier (no compile wall to wait behind);
- outputs are bit-identical across cold and warm — the store changes
  when the static tiers come online, never what they compute;
- both runs replay deterministically (the warm-restorable key set is
  frozen per server, so simulation N sees what simulation 1 saw).

CI runs this file and fails on any assertion.
"""

import pytest

from repro.harness import format_table, restart_study

ROW_METRICS = (
    "specialized_hits",
    "specialized_hit_rate",
    "compile_charge_us",
    "fresh_compiles",
    "restored",
    "restore_us",
    "store_rejects",
    "first_specialized_hit_us",
)


@pytest.mark.paper
def test_warm_restart(benchmark, tmp_path):
    results = benchmark.pedantic(
        lambda: restart_study(artifact_dir=str(tmp_path / "store")),
        rounds=1,
        iterations=1,
    )
    cold, warm, summary = results["cold"], results["warm"], results["summary"]
    print()
    print(
        format_table(
            "Cold vs warm restart against one artifact store (virtual µs)",
            [[m, cold[m], warm[m]] for m in ROW_METRICS],
            ["metric", "cold", "warm"],
        )
    )
    print(
        f"charge ratio {summary['warm_cold_charge_ratio']:.4f}, "
        f"first-hit speedup {summary['first_hit_speedup']:.2f}x, "
        f"bit_identical={bool(summary['bit_identical'])}, "
        f"deterministic={bool(summary['deterministic'])}"
    )
    # Headline: the warm restart compiles NOTHING — every specialized
    # executable restores from the store — and its total lane charge is
    # under 10% of the cold start's compile charge.
    assert warm["fresh_compiles"] == 0.0
    assert warm["restored"] > 0
    assert summary["warm_cold_charge_ratio"] < 0.10
    # The warm server reaches its pre-restart specialized steady state:
    # at least the cold run's hit rate, with the first specialized hit
    # landing strictly earlier (no compile wall).
    assert summary["hit_rate_recovered"] == 1.0
    assert warm["first_specialized_hit_us"] < cold["first_specialized_hit_us"]
    # The cold baseline is non-degenerate (it did reach steady state and
    # did pay real compiles), nothing was rejected, and the store never
    # changes the computation — outputs bitwise equal, replays stable.
    assert cold["specialized_hits"] > 0
    assert cold["fresh_compiles"] > 0
    assert warm["store_rejects"] == 0.0
    assert summary["bit_identical"] == 1.0
    assert summary["deterministic"] == 1.0


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
