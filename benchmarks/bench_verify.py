"""Verification overhead: the static gate must stay nearly free.

`CompilerOptions(verify=True)` is the default, so every compile pays
for the bytecode/race/lifetime checkers. This benchmark measures that
tax directly — compile each workload with the gate off, then time
`verify_executable` on the result — and asserts the verifier costs
**under 5% of compile time** per artifact (the checkers are a few
linear passes over the bytecode; compilation runs type inference, the
pass pipeline, memory planning, and kernel generation).

CI runs this file; a verifier change that regresses past the bound
fails the build before it lands as a compile-latency surprise.
"""

import time

import pytest

import repro.nimble as nimble
from repro.analysis import verify_executable
from repro.harness import format_table
from repro.hardware.platforms import nvidia_gpu
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.models.lstm import LSTMWeights, build_lstm_module
from repro.vm.compiler import CompilerOptions

MAX_VERIFY_SHARE = 0.05


def _cases():
    bert_cfg = BertConfig(hidden=64, num_heads=4, num_layers=2, ffn=128)
    return [
        ("lstm s1", build_lstm_module(LSTMWeights.create(16, 32, 1)), 1),
        (
            "bert s4",
            build_bert_module(BertWeights.create(bert_cfg, seed=0)),
            4,
        ),
    ]


def study():
    rows = []
    for name, mod, streams in _cases():
        opts = CompilerOptions(device_streams=streams, verify=False)
        start = time.perf_counter()
        exe, _ = nimble.build(mod, nvidia_gpu(), options=opts)
        compile_s = time.perf_counter() - start
        # Median of several runs: the verifier is fast enough that a
        # single sample is mostly timer noise.
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            verify_executable(exe)
            samples.append(time.perf_counter() - start)
        verify_s = sorted(samples)[len(samples) // 2]
        rows.append([
            name,
            compile_s * 1e3,
            verify_s * 1e3,
            100.0 * verify_s / compile_s,
        ])
    return rows


@pytest.mark.paper
def test_verification_is_under_five_percent_of_compile(benchmark):
    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Static verification cost vs compilation (wall ms)",
            rows,
            ["artifact", "compile ms", "verify ms", "share %"],
        )
    )
    for name, _compile_ms, _verify_ms, share in rows:
        assert share < 100.0 * MAX_VERIFY_SHARE, (
            f"{name}: verification costs {share:.1f}% of compile time "
            f"(bound {100.0 * MAX_VERIFY_SHARE:.0f}%)"
        )
