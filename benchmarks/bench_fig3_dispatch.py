"""Figure 3: symbolic vs static codegen for 3 BERT dense ops on ARM,
varying the number of dispatched residue kernels."""

import pytest

from repro.harness import figure3_dispatch, format_table

PAPER_NO_DISPATCH = {"dense1": 142.0, "dense2": 204.0, "dense3": 145.0}

LEVELS = ("static", "dispatch/8", "dispatch/4", "dispatch/2", "no dispatch")


@pytest.mark.paper
def test_figure3_dispatch(benchmark):
    results = benchmark.pedantic(lambda: figure3_dispatch(), rounds=1, iterations=1)
    rows = []
    for dense, row in results.items():
        rows.append([dense] + [row[l] for l in LEVELS] + [PAPER_NO_DISPATCH[dense]])
    print()
    print(
        format_table(
            "Figure 3 — relative latency %, ARM (static = 100)",
            rows,
            ["dense"] + list(LEVELS) + ["paper:no-dispatch"],
        )
    )
    for dense, row in results.items():
        # Full dispatch is near-static (paper: "nearly identical").
        assert row["dispatch/8"] < 112.0
        # Monotone degradation as kernels are removed.
        assert row["dispatch/8"] <= row["dispatch/4"] <= row["dispatch/2"] <= row["no dispatch"]
    # dense2 (the 3072-wide FFN) degrades the most (paper: +104% vs +42/45%).
    assert results["dense2"]["no dispatch"] > results["dense1"]["no dispatch"] + 20
    assert results["dense2"]["no dispatch"] > results["dense3"]["no dispatch"] + 20
