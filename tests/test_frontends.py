"""Frontend conversion: framework graphs -> Nimble IR -> VM execution."""

import numpy as np
import pytest

import repro.nimble as nimble
from repro.baselines.graph_framework import Graph, GraphFramework
from repro.errors import CompilerError
from repro.frontends import from_graph
from repro.hardware import intel_cpu
from repro.ir import Any, TensorType, scalar_type
from repro.models.lstm import LSTMWeights, lstm_reference
from repro.vm.interpreter import VirtualMachine


class TestStraightLineConversion:
    def test_simple_dataflow_graph(self):
        g = Graph(num_inputs=2)
        s = g.add_op("add", [0, 1])
        g.output_ids = [g.add_op("tanh", [s])]
        mod = from_graph(g, [TensorType((3,)), TensorType((3,))])
        exe, _ = nimble.build(mod, intel_cpu())
        a, b = np.float32([1, 2, 3]), np.float32([4, 5, 6])
        out = VirtualMachine(exe).run(a, b)
        assert np.allclose(out.numpy(), np.tanh(a + b), atol=1e-6)

    def test_constants_converted(self):
        g = Graph(num_inputs=1)
        c = g.add_const(np.float32([10, 20]))
        g.output_ids = [g.add_op("multiply", [0, c])]
        mod = from_graph(g, [TensorType((2,))])
        exe, _ = nimble.build(mod, intel_cpu())
        out = VirtualMachine(exe).run(np.float32([1, 2]))
        assert out.numpy().tolist() == [10, 40]

    def test_multi_output_graph(self):
        g = Graph(num_inputs=1)
        a = g.add_op("tanh", [0])
        b = g.add_op("exp", [0])
        g.output_ids = [a, b]
        mod = from_graph(g, [TensorType((2,))])
        exe, _ = nimble.build(mod, intel_cpu())
        out = VirtualMachine(exe).run(np.float32([0.5, 1.0]))
        assert isinstance(out, tuple) and len(out) == 2

    def test_input_arity_checked(self):
        g = Graph(num_inputs=2)
        g.output_ids = [g.add_op("add", [0, 1])]
        with pytest.raises(CompilerError):
            from_graph(g, [TensorType((2,))])


class TestWhileLoopConversion:
    def _counter_graph(self):
        """while (i < n) { i = i + 1; acc = acc + x }"""
        cond = Graph(num_inputs=3)
        cond.output_ids = [cond.add_op("less", [0, 1])]
        body = Graph(num_inputs=3)
        one = body.add_const(np.asarray(1, np.int64))
        i_next = body.add_op("add", [0, one])
        body.output_ids = [i_next, 1, 2]

        g = Graph(num_inputs=1)  # n
        zero = g.add_const(np.asarray(0, np.int64))
        x = g.add_const(np.float32([1.0, 2.0]))
        outs = g.add_while([zero, 0, x], cond, body)
        g.output_ids = [outs[0]]
        return g

    def test_loop_becomes_recursive_function(self):
        g = self._counter_graph()
        mod = from_graph(g, [scalar_type("int64")])
        assert any(gv.name_hint.startswith("while_loop") for gv in mod.functions)

    def test_loop_executes(self):
        g = self._counter_graph()
        mod = from_graph(g, [scalar_type("int64")])
        exe, _ = nimble.build(mod, intel_cpu())
        out = VirtualMachine(exe).run(np.int64(5))
        assert out.numpy().item() == 5

    def test_tf_lstm_graph_converts_and_matches(self):
        """The flagship path: the TF-style LSTM while-loop graph imports
        into Nimble IR, compiles, and matches the eager reference."""
        w = LSTMWeights.create(8, 4, 1)
        graph = GraphFramework.build_lstm_graph(w)
        mod = from_graph(
            graph,
            [scalar_type("int64"), TensorType((Any(), 8), "float32")],
        )
        exe, _ = nimble.build(mod, intel_cpu())
        vm = VirtualMachine(exe)
        x = np.random.RandomState(0).randn(5, 8).astype(np.float32)
        out = vm.run(np.asarray(5, np.int64), x)
        assert np.allclose(out.numpy(), lstm_reference(x, w), atol=1e-4)

    def test_converted_model_faster_than_source_framework(self):
        """Import the TF graph, compile with Nimble, and beat the TF-style
        executor that produced it (Table 1's story end to end)."""
        from repro.runtime.context import ExecutionContext

        w = LSTMWeights.create(300, 512, 1)
        graph = GraphFramework.build_lstm_graph(w)
        mod = from_graph(
            graph, [scalar_type("int64"), TensorType((Any(), 300), "float32")]
        )
        exe, _ = nimble.build(mod, intel_cpu())
        ctx = ExecutionContext(intel_cpu(), numerics="lite")
        vm = VirtualMachine(exe, ctx)
        x = np.zeros((20, 300), np.float32)
        vm.run(np.asarray(20, np.int64), x)
        nimble_us = ctx.elapsed_us

        fw = GraphFramework(intel_cpu(), numerics="lite")
        tf_us = fw.run_lstm([x], w).total_us
        assert nimble_us < tf_us / 2
