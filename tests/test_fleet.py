"""The fleet layer: routed replicas over one shared artifact store.

Chaos + differential battery for ``repro.fleet``:

- unit coverage of the admission bucket, the store view model, and
  config validation;
- routing behavior (affinity stickiness vs load balancing, admission
  shedding at the door);
- the chaos suite — replica stalls, cross-replica blob corruption, GC
  racing an in-flight restore, tenant bursts tripping admission — each
  asserting bit-identical replay and fully drained allocators;
- the differential contract: a fleet of any replica count computes
  bitwise the same outputs as one standalone ``InferenceServer``, and a
  one-replica fleet replays its exact event sequence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.kernels import KernelCache
from repro.fleet import (
    CorruptBlob,
    FleetConfig,
    FleetRouter,
    FleetStoreView,
    ReplicaStall,
    ROUTING_POLICIES,
    TenantSpec,
    TokenBucket,
)
from repro.hardware import intel_cpu
from repro.ir import Any, Function, IRModule, TensorType, Var, const
from repro.ops import api
from repro.serve import (
    InferenceServer,
    Request,
    ServeConfig,
    multi_tenant_traffic,
)
from repro.store import ArtifactStore


def _mlp(dim=8, seed=0):
    """main(x: Tensor[(Any, dim)]): one dense + relu — a fast dynamic model."""
    w = const((np.random.RandomState(seed).randn(dim, dim) * 0.1).astype(np.float32))
    x = Var("x", TensorType((Any(), dim), "float32"))
    return IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))


def _payload(rows, dim=8, seed=0):
    return (np.random.RandomState(seed).randn(rows, dim) * 0.1).astype(np.float32)


def _hot_trace(n=24, rows=9, gap_us=100.0, start_us=0.0, tenant="default"):
    """n arrivals of one exact shape, evenly spaced — the affinity magnet."""
    return [
        Request(
            rid=i,
            arrival_us=start_us + i * gap_us,
            payload=_payload(rows, seed=i),
            tenant=tenant,
        )
        for i in range(n)
    ]


# Fast per-replica serving knobs shared by most tests: tiny batches, one
# worker, near-instant specialization trigger.
_FAST = dict(
    max_batch_size=2,
    max_delay_us=300.0,
    num_workers=1,
    specialize=True,
    specialize_threshold=2,
    specialize_compile_us=2000.0,
)


def _outputs(report):
    return {r.rid: r.output.numpy() for r in report.responses}


def _assert_drained(router):
    for replica in router.replicas:
        for worker in replica.workers:
            assert worker.ctx.allocator.live_bytes == 0


def _assert_replays(router, requests, chaos=()):
    """Simulate twice; the replay must be bit-identical (counters and
    response payloads). Returns the first report."""
    first = router.simulate(requests, chaos=chaos)
    second = router.simulate(requests, chaos=chaos)
    assert first.counters() == second.counters()
    a, b = _outputs(first), _outputs(second)
    assert a.keys() == b.keys()
    for rid in a:
        assert np.array_equal(a[rid], b[rid])
    return first


# ---------------------------------------------------------------------------
# Tenancy: specs and the admission bucket
# ---------------------------------------------------------------------------


class TestTenancy:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="deadline_us"):
            TenantSpec("t", deadline_us=0.0)
        with pytest.raises(ValueError, match="rate_per_s"):
            TenantSpec("t", rate_per_s=-1.0)
        with pytest.raises(ValueError, match="burst"):
            TenantSpec("t", burst=0)

    def test_unlimited_rate_always_admits(self):
        bucket = TokenBucket(TenantSpec("t"))
        assert all(bucket.admit(i * 10.0) for i in range(1000))

    def test_burst_capacity_then_shed(self):
        # rate 0: nothing refills, only the initial burst gets through.
        bucket = TokenBucket(TenantSpec("t", rate_per_s=0.0, burst=3))
        assert [bucket.admit(0.0) for _ in range(5)] == [
            True, True, True, False, False,
        ]

    def test_refill_on_virtual_time(self):
        # 1 token per 1000 µs. Burst of 1: back-to-back sheds, spaced admits.
        bucket = TokenBucket(TenantSpec("t", rate_per_s=1000.0, burst=1))
        assert bucket.admit(0.0)
        assert not bucket.admit(1.0)
        assert not bucket.admit(999.0)  # 0.998 tokens: still short
        assert bucket.admit(2000.0)

    def test_reset_restores_the_full_burst(self):
        bucket = TokenBucket(TenantSpec("t", rate_per_s=0.0, burst=2))
        assert bucket.admit(0.0) and bucket.admit(0.0)
        assert not bucket.admit(0.0)
        bucket.reset()
        assert bucket.admit(0.0) and bucket.admit(0.0)


# ---------------------------------------------------------------------------
# The shared store model
# ---------------------------------------------------------------------------


class TestFleetStoreView:
    def test_initial_inventory_is_frozen_at_construction(self, tmp_path):
        store = ArtifactStore(tmp_path)
        from repro.serve.profile import ShapeProfile

        key = store.put_profile(
            ShapeProfile(
                source_signature="a" * 64,
                platform_name="intel",
                hits={(9, 1): 2},
                scores={(9, 1): 1.0},
            )
        )
        view = FleetStoreView(store)
        assert view.present("profile", key)
        # A disk write made BEHIND the model is invisible: the view is
        # the decision surface, record_put is the only way in.
        later = ShapeProfile(
            source_signature="b" * 64,
            platform_name="intel",
            hits={(25, 1): 2},
            scores={(25, 1): 1.0},
        )
        other = store.put_profile(later)
        assert other != key
        assert not view.present("profile", other)

    def test_put_prune_revive_cycle(self, tmp_path):
        view = FleetStoreView(ArtifactStore(tmp_path))
        assert not view.present("exe", "k1")
        view.record_put("exe", "k1", 100.0, replica_id=1)
        assert view.present("exe", "k1")
        assert view.origin("exe", "k1") == 1
        view.record_prune("exe", "k1", 200.0)
        assert not view.present("exe", "k1")
        assert view.origin("exe", "k1") is None
        view.record_put("exe", "k1", 300.0, replica_id=0)
        assert view.present("exe", "k1")
        assert view.origin("exe", "k1") == 0

    def test_init_entries_have_no_origin_and_prune_sticks(self, tmp_path):
        store = ArtifactStore(tmp_path)
        from repro.serve.profile import ShapeProfile

        key = store.put_profile(
            ShapeProfile(
                source_signature="a" * 64,
                platform_name="intel",
                hits={(9, 1): 2},
                scores={(9, 1): 1.0},
            )
        )
        view = FleetStoreView(store)
        assert view.origin("profile", key) is None
        view.record_prune("profile", key, 50.0)
        assert not view.present("profile", key)
        # reset() restores the frozen initial inventory for the next replay.
        view.reset()
        assert view.present("profile", key)
        assert view.last_use_us("profile", key) is None

    def test_last_use_is_monotonic(self, tmp_path):
        view = FleetStoreView(ArtifactStore(tmp_path))
        view.record_put("exe", "k", 100.0, replica_id=0)
        view.record_use("exe", "k", 500.0)
        assert view.last_use_us("exe", "k") == 500.0
        view.record_use("exe", "k", 300.0)  # stale reader: no rewind
        assert view.last_use_us("exe", "k") == 500.0

    def test_inventory_is_sorted_and_mergeable(self, tmp_path):
        view = FleetStoreView(ArtifactStore(tmp_path))
        view.record_put("profile", "p", 1.0, 0)
        view.record_put("exe", "b", 2.0, 0)
        view.record_put("exe", "a", 3.0, 1)
        assert view.inventory() == [("exe", "a"), ("exe", "b"), ("profile", "p")]


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestFleetConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="num_replicas"):
            FleetConfig(num_replicas=0)
        with pytest.raises(ValueError, match="routing"):
            FleetConfig(routing="sticky")
        with pytest.raises(ValueError, match="gc_interval_us"):
            FleetConfig(gc_interval_us=0.0)
        assert set(ROUTING_POLICIES) == {"affinity", "least_loaded", "random"}

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            FleetRouter(
                _mlp(),
                intel_cpu(),
                ServeConfig(),
                tenants=[TenantSpec("a"), TenantSpec("a")],
            )


# ---------------------------------------------------------------------------
# Routing and admission
# ---------------------------------------------------------------------------


class TestFleetRouting:
    def test_one_replica_fleet_replays_the_single_server(self):
        """The degenerate fleet is the single server: same responses,
        same finish times, same tiers, same latencies — the router's
        event loop adds nothing to the timeline."""
        trace = _hot_trace(24) + [
            Request(rid=24 + i, arrival_us=i * 250.0, payload=_payload(25, seed=i))
            for i in range(12)
        ]
        cache = KernelCache()
        single = InferenceServer(
            _mlp(), intel_cpu(), ServeConfig(**_FAST), kernel_cache=cache
        ).simulate(trace)
        router = FleetRouter(
            _mlp(),
            intel_cpu(),
            ServeConfig(**_FAST),
            FleetConfig(num_replicas=1),
            kernel_cache=cache,
        )
        fleet = router.simulate(trace)
        assert [r.rid for r in fleet.responses] == [r.rid for r in single.responses]
        assert [r.finish_us for r in fleet.responses] == [
            r.finish_us for r in single.responses
        ]
        assert [r.tier for r in fleet.responses] == [
            r.tier for r in single.responses
        ]
        for a, b in zip(fleet.responses, single.responses):
            assert np.array_equal(a.output.numpy(), b.output.numpy())
        assert fleet.routed == [len(trace)]
        assert fleet.rejected == 0
        _assert_drained(router)

    def test_affinity_sticks_to_the_specializing_replica(self):
        """Once a replica owns a shape (compiling or ready), affinity
        keeps routing that shape to it even when a sibling is idle —
        where least-loaded drains to the idle sibling instead."""
        trace = _hot_trace(24)
        # Replica 0 triggers the shape at its second observation
        # (200 µs); the stall lands just after, while the compile is in
        # flight.
        stall = [ReplicaStall(at_us=250.0, replica_id=0, duration_us=8000.0)]

        def run(routing):
            router = FleetRouter(
                _mlp(),
                intel_cpu(),
                ServeConfig(**_FAST),
                FleetConfig(num_replicas=2, routing=routing),
            )
            report = router.simulate(trace, chaos=stall)
            _assert_drained(router)
            return report

        affinity, balanced = run("affinity"), run("least_loaded")
        # Affinity still owns the placement through the stall...
        assert affinity.routed == [23, 1]
        assert affinity.affinity_hits == 21
        assert affinity.affinity_rate == affinity.affinity_hits / 24
        # ...while least-loaded detours to the idle sibling.
        assert balanced.routed[1] > balanced.routed[0]
        assert balanced.affinity_hits == 0

    def test_random_routing_spreads_and_replays(self):
        router = FleetRouter(
            _mlp(),
            intel_cpu(),
            ServeConfig(**_FAST),
            FleetConfig(num_replicas=2, routing="random", random_seed=0),
        )
        report = _assert_replays(router, _hot_trace(24))
        assert sum(report.routed) == 24
        assert all(n > 0 for n in report.routed)
        _assert_drained(router)

    def test_admission_sheds_the_burst_not_the_steady_tenant(self):
        """A bursty tenant over budget sheds its own excess; rejected
        requests are counted at the door and never appear in any
        replica's responses (or queues)."""
        steady = _hot_trace(12, gap_us=400.0, tenant="steady")
        burst = [
            Request(
                rid=100 + i,
                arrival_us=1000.0 + i,
                payload=_payload(9, seed=i),
                tenant="bursty",
            )
            for i in range(8)
        ]
        router = FleetRouter(
            _mlp(),
            intel_cpu(),
            ServeConfig(**_FAST),
            FleetConfig(num_replicas=2),
            tenants=[
                TenantSpec("steady", deadline_us=50_000.0),
                TenantSpec("bursty", rate_per_s=0.0, burst=3),
            ],
        )
        report = _assert_replays(router, steady + burst)
        assert report.tenants["steady"].rejected == 0
        assert report.tenants["steady"].admitted == 12
        assert report.tenants["bursty"].admitted == 3
        assert report.tenants["bursty"].rejected == 5
        assert report.rejected_rids == (103, 104, 105, 106, 107)
        served = {r.rid for r in report.responses}
        assert served.isdisjoint(report.rejected_rids)
        assert len(served) == report.admitted == sum(report.routed)
        assert report.tenants["steady"].slo_attainment == 1.0
        _assert_drained(router)


# ---------------------------------------------------------------------------
# Chaos
# ---------------------------------------------------------------------------


class TestFleetChaos:
    def test_stall_redirects_traffic_and_replays(self):
        """A stalled replica's backlog steers least-loaded routing to
        the healthy sibling; the fault is an input, so the whole run —
        stall included — replays bit-identically."""
        trace = _hot_trace(24)
        router = FleetRouter(
            _mlp(),
            intel_cpu(),
            ServeConfig(**_FAST),
            FleetConfig(num_replicas=2, routing="least_loaded"),
        )
        calm = router.simulate(trace)
        stall = [ReplicaStall(at_us=50.0, replica_id=0, duration_us=10_000.0)]
        stormy = _assert_replays(router, trace, chaos=stall)
        assert stormy.chaos_stalls == 1
        assert stormy.routed[0] < calm.routed[0]
        assert stormy.routed[1] > calm.routed[1]
        # Nothing is lost to the stall — it is latency, not failure.
        assert len(stormy.responses) == len(trace)
        _assert_drained(router)

    def test_corrupt_blob_rejected_by_sibling_never_crashes(self, tmp_path):
        """Replica 1 compiles and persists the hot shape; the blob rots
        on disk before replica 0's restore attempt. The reader must
        reject-and-count and fall back to a fresh compile — outputs
        stay bitwise correct and the run replays exactly."""
        trace = _hot_trace(24)
        fleet = FleetConfig(num_replicas=2, routing="random", random_seed=0)

        clean_router = FleetRouter(
            _mlp(),
            intel_cpu(),
            ServeConfig(artifact_dir=str(tmp_path / "clean"), **_FAST),
            fleet,
        )
        clean = clean_router.simulate(trace)
        # Baseline: the sibling warm-restores the other replica's compile.
        assert clean.total_fleet_restores == 1
        assert clean.store_rejects == 0

        # Same trace, same seed, fresh store — but the blob rots between
        # the compiler's put (200 µs) and the sibling's restore (300 µs).
        chaos = [CorruptBlob(at_us=250.0, kind="exe", index=0)]
        router = FleetRouter(
            _mlp(),
            intel_cpu(),
            ServeConfig(artifact_dir=str(tmp_path / "hot"), **_FAST),
            fleet,
        )
        report = _assert_replays(router, trace, chaos=chaos)
        assert report.chaos_corruptions == 1
        assert report.counters()["replica_store_rejects"] == (1, 0)
        assert report.total_fleet_restores == 0
        # Both replicas end up compiling fresh; nobody crashed.
        assert report.counters()["replica_fresh_compiles"] == (1, 1)
        assert len(report.responses) == len(trace)
        single = InferenceServer(_mlp(), intel_cpu(), ServeConfig(**_FAST)).simulate(
            trace
        )
        outs = _outputs(report)
        for r in single.responses:
            assert np.array_equal(outs[r.rid], r.output.numpy())
        _assert_drained(router)

    def test_corrupting_an_empty_store_is_a_counted_noop(self):
        router = FleetRouter(
            _mlp(), intel_cpu(), ServeConfig(**_FAST), FleetConfig(num_replicas=1)
        )
        report = router.simulate(_hot_trace(4), chaos=[CorruptBlob(at_us=10.0)])
        assert report.chaos_noops == 1
        assert report.chaos_corruptions == 0

    def test_gc_racing_a_restore_keeps_the_in_flight_blob(self, tmp_path):
        """An aggressive collector (max_age 0: everything unguarded is
        prunable at every tick) fires mid-restore. The in-flight blob
        must survive every tick and the restore must complete; the cold
        sibling blob is reclaimed."""
        store_dir = str(tmp_path / "store")
        warm_cfg = ServeConfig(artifact_dir=store_dir, **_FAST)
        # Warm the store with two hot shapes (two exe blobs + a profile).
        warm = InferenceServer(_mlp(), intel_cpu(), warm_cfg)
        extra = [
            Request(rid=100 + i, arrival_us=50.0 + i * 100.0, payload=_payload(25, seed=i))
            for i in range(12)
        ]
        warm.simulate(_hot_trace(12) + extra)
        assert len(ArtifactStore(store_dir).keys()) == 2

        router = FleetRouter(
            _mlp(),
            intel_cpu(),
            ServeConfig(
                artifact_dir=store_dir, specialize_restore_us=5000.0, **_FAST
            ),
            FleetConfig(
                num_replicas=1,
                gc_interval_us=1000.0,
                gc_max_age_us=0.0,
            ),
        )
        report = _assert_replays(router, _hot_trace(80))
        # The slow restore (trigger ~100 µs, ready ~5100 µs) overlaps
        # several 1000 µs GC ticks — the in-flight guard held each time.
        assert sum(g.kept_in_flight for g in report.gc_reports) >= 3
        assert report.counters()["replica_restored"] == (1,)
        assert report.specialized_hits > 0
        # The shape nobody asked for this run was pruned...
        pruned = {entry for g in report.gc_reports for entry in g.pruned}
        assert any(kind == "exe" for kind, _ in pruned)
        # ...but never the restored one: it still serves and its blob is
        # still modeled present.
        restored_keys = {
            e for r in router.replicas for e in r.referenced_store_keys()
            if e[0] == "exe"
        }
        assert restored_keys.isdisjoint(pruned)
        assert report.gc_kept_referenced > 0
        _assert_drained(router)


# ---------------------------------------------------------------------------
# Determinism: replay and fleet-vs-single differential
# ---------------------------------------------------------------------------


class TestFleetDeterminism:
    def test_replay_identical_across_replica_counts_with_gc(self, tmp_path):
        """The hard invariant: any replica count, admission on, store GC
        on — two simulations agree on every counter and every byte, and
        all replica counts compute the same responses."""
        trace = multi_tenant_traffic(
            n=48,
            input_size=8,
            mean_interarrival_us=200.0,
            tenant_mix=(("steady", 3), ("spiky", 1)),
            burst_every=16,
            burst_size=4,
            hot_lengths=(9, 25),
            seed=3,
        )
        cache = KernelCache()
        outputs_by_count = {}
        for count in (1, 2, 4):
            router = FleetRouter(
                _mlp(),
                intel_cpu(),
                ServeConfig(
                    artifact_dir=str(tmp_path / f"store{count}"), **_FAST
                ),
                FleetConfig(
                    num_replicas=count,
                    gc_interval_us=2000.0,
                    gc_max_age_us=3000.0,
                ),
                kernel_cache=cache,
            )
            report = _assert_replays(router, trace)
            assert report.rejected == 0
            outputs_by_count[count] = _outputs(report)
            _assert_drained(router)
        single = InferenceServer(
            _mlp(), intel_cpu(), ServeConfig(**_FAST), kernel_cache=cache
        ).simulate(trace)
        reference = {r.rid: r.output.numpy() for r in single.responses}
        for count, outs in outputs_by_count.items():
            assert outs.keys() == reference.keys()
            for rid, out in outs.items():
                assert np.array_equal(out, reference[rid])

    @given(
        replicas=st.sampled_from([1, 2, 4]),
        routing=st.sampled_from(["affinity", "least_loaded", "random"]),
        seed=st.integers(min_value=0, max_value=3),
        mix=st.sampled_from(
            [
                (("steady", 3), ("bursty", 1)),
                (("a", 1), ("b", 1)),
                (("solo", 1),),
            ]
        ),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_fleet_is_differentially_equal_to_one_server(
        self, replicas, routing, seed, mix
    ):
        """Fuzzed over (replica count × routing × tenant mix × seed):
        however the router scatters a trace, every response is bitwise
        the response one standalone server computes, and the fleet's
        counters replay exactly."""
        trace = multi_tenant_traffic(
            n=30,
            input_size=8,
            mean_interarrival_us=150.0,
            tenant_mix=mix,
            burst_every=10,
            burst_size=3,
            hot_lengths=(9, 25),
            seed=seed,
        )
        router = FleetRouter(
            _mlp(),
            intel_cpu(),
            ServeConfig(**_FAST),
            FleetConfig(num_replicas=replicas, routing=routing, random_seed=seed),
            kernel_cache=_SHARED_CACHE,
        )
        report = _assert_replays(router, trace)
        single = InferenceServer(
            _mlp(), intel_cpu(), ServeConfig(**_FAST), kernel_cache=_SHARED_CACHE
        ).simulate(trace)
        outs = _outputs(report)
        reference = {r.rid: r.output.numpy() for r in single.responses}
        assert outs.keys() == reference.keys()
        for rid, out in outs.items():
            assert np.array_equal(out, reference[rid])
        assert sum(report.routed) == len(trace)
        _assert_drained(router)


# One kernel cache across hypothesis examples: codegen runs once, and
# the repo-wide invariant (the cache never changes modeled charges or
# outputs) keeps the differential honest.
_SHARED_CACHE = KernelCache()
