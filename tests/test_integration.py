"""End-to-end integration: dynamic ops through the full pipeline, data
distributions, experiment harness smoke tests, cross-executor agreement."""

import numpy as np
import pytest

import repro.nimble as nimble
from repro.data import Tree, embedding_table, mrpc_like_lengths, sst_like_trees
from repro.hardware import arm_cpu, intel_cpu, nvidia_gpu
from repro.ir import Any, Function, IRModule, TensorType, Var, const
from repro.ops import api
from repro.runtime.context import ExecutionContext
from repro.vm.interpreter import VirtualMachine


class TestDynamicOpsEndToEnd:
    def _run(self, func, *inputs, platform=None):
        exe, report = nimble.build(IRModule.from_expr(func), platform or intel_cpu())
        vm = VirtualMachine(exe)
        return vm.run(*inputs), vm, report

    def test_arange_dynamic_output(self):
        stop = Var("stop", TensorType((), "float32"))
        func = Function([stop], api.arange(const(0.0), stop, const(1.0)))
        out, _, _ = self._run(func, np.float32(6.0))
        assert out.numpy().tolist() == [0, 1, 2, 3, 4, 5]
        out2, _, _ = self._run(func, np.float32(2.0))
        assert out2.numpy().tolist() == [0, 1]

    def test_unique_through_vm(self):
        x = Var("x", TensorType((6,), "int64"))
        func = Function([x], api.unique(x))
        out, _, _ = self._run(func, np.array([5, 1, 5, 2, 1, 5], np.int64))
        assert out.numpy().tolist() == [1, 2, 5]

    def test_nms_upper_bound_through_vm(self):
        boxes = Var("b", TensorType((4, 4), "float32"))
        scores = Var("s", TensorType((4,), "float32"))
        func = Function([boxes, scores], api.non_max_suppression(boxes, scores))
        b = np.array(
            [[0, 0, 10, 10], [1, 1, 11, 11], [50, 50, 60, 60], [0, 0, 9, 9]],
            np.float32,
        )
        s = np.array([0.9, 0.8, 0.95, 0.3], np.float32)
        out, _, _ = self._run(func, b, s)
        # Result is sliced to the true count (upper-bound contract, §4.2).
        assert out.shape[0] < 4
        assert 2 in out.numpy()  # disjoint high-score box survives

    def test_growing_tensor_loop(self):
        """The §4.1 motivating case: a tensor that grows each iteration
        (decoder-style) — typed with Any, executed by the VM."""
        from repro.ir import Call, If, scalar_type

        mod = IRModule()
        gv = mod.get_global_var("grow")
        i = Var("i", scalar_type("int64"))
        n = Var("n", scalar_type("int64"))
        acc = Var("acc", TensorType((Any(), 2), "float32"))
        step = api.concatenate([acc, const(np.ones((1, 2), np.float32))], axis=0)
        body = If(
            api.less(i, n),
            Call(gv, [api.add(i, const(np.int64(1), "int64")), n, step]),
            acc,
        )
        mod[gv] = Function([i, n, acc], body, TensorType((Any(), 2), "float32"))
        seed = Var("seed", TensorType((1, 2), "float32"))
        main_n = Var("n", scalar_type("int64"))
        mod["main"] = Function(
            [main_n, seed],
            Call(gv, [const(np.int64(0), "int64"), main_n, seed]),
        )
        exe, _ = nimble.build(mod, intel_cpu())
        out = VirtualMachine(exe).run(np.int64(4), np.zeros((1, 2), np.float32))
        assert out.shape == (5, 2)

    def test_gpu_platform_agrees_with_cpu(self):
        x = Var("x", TensorType((Any(), 8), "float32"))
        w = const(np.random.RandomState(0).randn(4, 8).astype(np.float32))
        func = Function([x], api.softmax(api.dense(x, w)))
        data = np.random.RandomState(1).randn(5, 8).astype(np.float32)
        outs = []
        for platform in (intel_cpu(), nvidia_gpu(), arm_cpu()):
            exe, _ = nimble.build(IRModule.from_expr(func), platform)
            outs.append(VirtualMachine(exe).run(data).numpy())
        assert np.allclose(outs[0], outs[1], atol=1e-5)
        assert np.allclose(outs[0], outs[2], atol=1e-5)

    def test_latency_deterministic(self):
        x = Var("x", TensorType((Any(), 8), "float32"))
        w = const(np.zeros((4, 8), np.float32))
        func = Function([x], api.dense(x, w))
        data = np.zeros((3, 8), np.float32)
        lats = []
        for _ in range(2):
            exe, _ = nimble.build(IRModule.from_expr(func), intel_cpu())
            ctx = ExecutionContext(intel_cpu())
            VirtualMachine(exe, ctx).run(data)
            lats.append(ctx.elapsed_us)
        assert lats[0] == lats[1]


class TestData:
    def test_mrpc_lengths_distribution(self):
        lengths = mrpc_like_lengths(500, seed=0)
        assert all(7 <= l <= 40 for l in lengths)
        assert 15 < np.mean(lengths) < 27

    def test_mrpc_seeded(self):
        assert mrpc_like_lengths(10, seed=1) == mrpc_like_lengths(10, seed=1)
        assert mrpc_like_lengths(10, seed=1) != mrpc_like_lengths(10, seed=2)

    def test_sst_trees_are_binary(self):
        for tree in sst_like_trees(20, seed=0):
            stack = [tree]
            while stack:
                node = stack.pop()
                if not node.is_leaf:
                    assert node.left is not None and node.right is not None
                    stack.extend([node.left, node.right])
                else:
                    assert node.token_id >= 0

    def test_sst_leaf_distribution(self):
        trees = sst_like_trees(200, seed=1)
        mean_leaves = np.mean([t.num_leaves() for t in trees])
        assert 13 < mean_leaves < 25

    def test_tree_levels_respect_children(self):
        tree = sst_like_trees(1, seed=2)[0]
        levels = tree.nodes_by_depth()
        assert all(n.is_leaf for n in levels[0])
        assert levels[-1] and not levels[-1][0].is_leaf

    def test_embedding_table_shape(self):
        emb = embedding_table(vocab_size=10, dim=7)
        assert emb.shape == (10, 7) and emb.dtype == np.float32


class TestHarnessSmoke:
    """Tiny-config smoke runs of each experiment; the benchmarks run the
    paper-sized versions."""

    def test_table1_shape(self):
        from repro.harness import table1_lstm

        r = table1_lstm(
            num_sentences=2, platforms=("intel",), layer_counts=(1,),
            input_size=16, hidden_size=8,
        )
        row = r[1]["intel"]
        assert set(row) == {"nimble", "pytorch", "mxnet", "tensorflow"}
        assert row["nimble"] < row["tensorflow"]

    def test_table2_shape(self):
        from repro.harness import table2_tree_lstm

        r = table2_tree_lstm(num_trees=2, platforms=("intel",), input_size=16, hidden_size=8)
        assert r["intel"]["nimble"] < r["intel"]["pytorch"]
        assert r["intel"]["tf_fold"] is not None

    def test_table2_fold_missing_on_arm(self):
        from repro.harness import table2_tree_lstm

        r = table2_tree_lstm(num_trees=1, platforms=("arm",), input_size=16, hidden_size=8)
        assert r["arm"]["tf_fold"] is None

    def test_table4_overhead_positive(self):
        from repro.harness import table4_overhead
        from repro.models.bert import BertConfig

        cfg = BertConfig(hidden=32, num_layers=1, num_heads=2, ffn=64)
        r = table4_overhead(platforms=("intel",), config=cfg, seq_len=16)
        row = r["intel"]
        assert row["nimble_ms"] >= row["kernel_ms"]
        assert row["others_ms"] >= 0

    def test_figure3_monotone(self):
        from repro.harness import figure3_dispatch

        r = figure3_dispatch(rows=range(1, 33))
        for dense, row in r.items():
            assert row["static"] == 100.0
            assert row["dispatch/8"] <= row["dispatch/4"] <= row["no dispatch"]

    def test_memory_planning_reduces_allocs(self):
        from repro.harness.experiments import memory_planning_study
        from repro.models.bert import BertConfig

        cfg = BertConfig(hidden=32, num_layers=2, num_heads=2, ffn=64)
        r = memory_planning_study(config=cfg, seq_len=16)
        assert r["allocs_planned"] < r["allocs_unplanned"]
        assert r["alloc_latency_planned_ms"] < r["alloc_latency_unplanned_ms"]

    def test_memory_footprint_vs_static(self):
        from repro.harness.experiments import memory_footprint_vs_static

        r = memory_footprint_vs_static()
        assert set(r) == {"resnet", "mobilenet", "vgg", "squeezenet"}
        for model, row in r.items():
            # Nimble's dynamic allocator should be within a modest factor
            # of the fully-static plan (paper: <= 8% extra).
            assert row["nimble_bytes"] <= row["static_bytes"] * 1.6
