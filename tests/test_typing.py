"""The dynamic type system (§4.1): inference, Any propagation, joins,
sub-shaping, gradual runtime checks."""

import numpy as np
import pytest

from repro.core.typing import (
    any_dim_groups,
    check_subtype,
    infer_expr_type,
    infer_types,
    join_types,
    shared_any_dims,
    unify_types,
)
from repro.errors import ShapeError, TypeInferenceError
from repro.ir import (
    Any,
    Call,
    Clause,
    Function,
    If,
    IRModule,
    Match,
    PatternConstructor,
    PatternVar,
    TensorType,
    Tuple,
    TupleGetItem,
    TupleType,
    TypeCall,
    TypeData,
    Var,
    const,
    scalar_type,
)
from repro.ops import api
from repro.ops.type_relations import broadcast_dim


class TestBroadcastRelation:
    """The paper's §4.1 rules: (Any,1)->Any, (Any,d)->d, (Any,Any)->Any."""

    def test_any_with_one_is_any(self):
        assert isinstance(broadcast_dim(Any(), 1), Any)

    def test_any_with_d_is_d(self):
        assert broadcast_dim(Any(), 7) == 7
        assert broadcast_dim(7, Any()) == 7

    def test_any_with_any_is_any(self):
        assert isinstance(broadcast_dim(Any(), Any()), Any)

    def test_same_token_any_preserved(self):
        a = Any()
        out = broadcast_dim(a, a)
        assert isinstance(out, Any) and out.token == a.token

    def test_static_rules(self):
        assert broadcast_dim(3, 3) == 3
        assert broadcast_dim(1, 5) == 5
        with pytest.raises(TypeInferenceError):
            broadcast_dim(3, 5)


class TestInference:
    def test_paper_arange_example(self):
        """§4.1: arange -> Tensor[(Any,)], broadcast with (5,1) -> (5, Any)."""
        x = Var("x", TensorType((5, 1), "float32"))
        r = api.arange(const(0.0), const(10.0), const(1.0))
        out = api.add(x, r)
        infer_types(IRModule.from_expr(Function([x], out)))
        assert r.checked_type == TensorType((Any(),), "float32")
        assert out.checked_type == TensorType((5, Any()), "float32")

    def test_dense_any_rows(self):
        x = Var("x", TensorType((Any(), 8), "float32"))
        w = Var("w", TensorType((4, 8), "float32"))
        ty = infer_expr_type(Function([x, w], api.dense(x, w)))
        assert ty.ret_type == TensorType((Any(), 4), "float32")

    def test_dense_reduction_mismatch_rejected(self):
        x = Var("x", TensorType((2, 8), "float32"))
        w = Var("w", TensorType((4, 9), "float32"))
        with pytest.raises(TypeInferenceError):
            infer_expr_type(Function([x, w], api.dense(x, w)))

    def test_if_branches_join_to_any(self):
        """Conflicting static dims across branches relax to Any (gradual)."""
        c = Var("c", scalar_type("bool"))
        t = Var("t", TensorType((3, 4)))
        f = Var("f", TensorType((5, 4)))
        ty = infer_expr_type(Function([c, t, f], If(c, t, f)))
        ret = ty.ret_type
        assert isinstance(ret.shape[0], Any)
        assert ret.shape[1] == 4

    def test_if_rank_mismatch_rejected(self):
        c = Var("c", scalar_type("bool"))
        t = Var("t", TensorType((3,)))
        f = Var("f", TensorType((5, 4)))
        with pytest.raises(TypeInferenceError):
            infer_expr_type(Function([c, t, f], If(c, t, f)))

    def test_if_condition_must_be_scalar(self):
        c = Var("c", TensorType((2,), "bool"))
        t = Var("t", TensorType((3,)))
        with pytest.raises(TypeInferenceError):
            infer_expr_type(Function([c, t], If(c, t, t)))

    def test_tuple_projection(self):
        x = Var("x", TensorType((6, 2)))
        parts = api.split(x, 3, axis=0)
        item = TupleGetItem(parts, 1)
        ty = infer_expr_type(Function([x], item))
        assert ty.ret_type == TensorType((2, 2))

    def test_tuple_index_out_of_range(self):
        x = Var("x", TensorType((6, 2)))
        bad = TupleGetItem(api.split(x, 3, axis=0), 7)
        with pytest.raises(TypeInferenceError):
            infer_expr_type(Function([x], bad))

    def test_recursion_requires_annotations(self):
        mod = IRModule()
        gv = mod.get_global_var("f")
        x = Var("x", TensorType((2,)))
        mod[gv] = Function([x], Call(gv, [x]))  # no ret annotation
        with pytest.raises(TypeInferenceError):
            infer_types(mod)

    def test_recursive_function_with_annotation(self):
        mod = IRModule()
        gv = mod.get_global_var("f")
        c = Var("c", scalar_type("bool"))
        x = Var("x", TensorType((2,)))
        body = If(c, Call(gv, [c, x]), x)
        mod[gv] = Function([c, x], body, TensorType((2,)))
        infer_types(mod)
        assert mod[gv].checked_type.ret_type == TensorType((2,))

    def test_unannotated_param_rejected(self):
        x = Var("x")  # no annotation
        with pytest.raises(TypeInferenceError):
            infer_expr_type(Function([x], api.add(x, x)))

    def test_call_arity_mismatch(self):
        mod = IRModule()
        gv = mod.get_global_var("g")
        x = Var("x", TensorType((2,)))
        mod[gv] = Function([x], x, TensorType((2,)))
        y = Var("y", TensorType((2,)))
        mod["main"] = Function([y], Call(gv, [y, y]))
        with pytest.raises(TypeInferenceError):
            infer_types(mod)


class TestADTInference:
    def _tree_mod(self):
        mod = IRModule()
        gtv = mod.get_global_type_var("Tree")
        leaf_ty = TensorType((4,))
        data = TypeData(
            gtv, [], [("Leaf", [leaf_ty]), ("Node", [TypeCall(gtv, []), TypeCall(gtv, [])])]
        )
        mod.add_type_data(data)
        return mod, gtv, data

    def test_constructor_call_types(self):
        mod, gtv, data = self._tree_mod()
        leaf = data.constructor("Leaf")
        x = Var("x", TensorType((4,)))
        mod["main"] = Function([x], Call(leaf, [x]))
        infer_types(mod)
        assert mod.main.checked_type.ret_type == TypeCall(gtv, [])

    def test_constructor_arity_checked(self):
        mod, gtv, data = self._tree_mod()
        node = data.constructor("Node")
        x = Var("x", TensorType((4,)))
        mod["main"] = Function([x], Call(node, [Call(data.constructor("Leaf"), [x])]))
        with pytest.raises(TypeInferenceError):
            infer_types(mod)

    def test_match_binds_pattern_vars(self):
        mod, gtv, data = self._tree_mod()
        leaf, node = data.constructor("Leaf"), data.constructor("Node")
        t = Var("t", TypeCall(gtv, []))
        v = Var("v")
        clauses = [Clause(PatternConstructor(leaf, [PatternVar(v)]), v)]
        mod["main"] = Function([t], Match(t, clauses))
        infer_types(mod)
        assert v.checked_type == TensorType((4,))
        assert mod.main.checked_type.ret_type == TensorType((4,))

    def test_match_on_non_adt_rejected(self):
        mod, gtv, data = self._tree_mod()
        x = Var("x", TensorType((4,)))
        leaf = data.constructor("Leaf")
        clause = Clause(PatternConstructor(leaf, [PatternVar(Var("v"))]), x)
        mod["main"] = Function([x], Match(x, [clause]))
        with pytest.raises(TypeInferenceError):
            infer_types(mod)


class TestUnifyJoinSubtype:
    def test_unify_prefers_specific(self):
        a = TensorType((Any(), 4))
        b = TensorType((3, 4))
        assert unify_types(a, b) == TensorType((3, 4))

    def test_unify_conflict_raises(self):
        with pytest.raises(TypeInferenceError):
            unify_types(TensorType((3,)), TensorType((4,)))

    def test_unify_dtype_conflict(self):
        with pytest.raises(TypeInferenceError):
            unify_types(TensorType((3,), "float32"), TensorType((3,), "int64"))

    def test_join_relaxes_to_any(self):
        out = join_types(TensorType((3, 4)), TensorType((5, 4)))
        assert isinstance(out.shape[0], Any) and out.shape[1] == 4

    def test_join_preserves_identical_any(self):
        a = Any()
        t = TensorType((a, 4))
        out = join_types(t, t)
        assert out.shape[0].token == a.token

    def test_subtype_static_into_any(self):
        check_subtype(TensorType((3, 4)), TensorType((Any(), 4)))

    def test_subtype_any_into_static_rejected(self):
        with pytest.raises(TypeInferenceError):
            check_subtype(TensorType((Any(), 4)), TensorType((3, 4)))

    def test_subtype_function_contravariant(self):
        from repro.ir import FuncType

        specific = FuncType([TensorType((Any(),))], TensorType((3,)))
        general = FuncType([TensorType((3,))], TensorType((Any(),)))
        check_subtype(specific, general)
        with pytest.raises(TypeInferenceError):
            check_subtype(general, specific)

    def test_tuple_subtype_fieldwise(self):
        a = TupleType([TensorType((3,))])
        b = TupleType([TensorType((Any(),))])
        check_subtype(a, b)
        with pytest.raises(TypeInferenceError):
            check_subtype(b, a)


class TestSubShaping:
    def test_elementwise_preserves_token(self):
        x = Var("x", TensorType((Any(), 4), "float32"))
        out = api.tanh(x)
        func = Function([x], out)
        infer_types(IRModule.from_expr(func))
        token = x.checked_type.shape[0].token
        assert out.checked_type.shape[0].token == token

    def test_any_dim_groups_collects_occurrences(self):
        x = Var("x", TensorType((Any(), 4), "float32"))
        out = api.tanh(api.tanh(x))
        func = Function([x], out)
        infer_types(IRModule.from_expr(func))
        groups = any_dim_groups(func)
        assert len(groups) == 1
        (members,) = groups.values()
        assert len(members) >= 3  # x, inner tanh, outer tanh

    def test_shared_any_dims(self):
        a = Any()
        t1 = TensorType((a, 4))
        t2 = TensorType((8, a))
        assert shared_any_dims(t1, t2) == [(0, 1)]


class TestGradualRuntimeChecks:
    def test_broadcast_shape_func_runtime_failure(self):
        """What static typing allowed (Any vs 3) must fail at runtime when
        Any instantiates to an incompatible value."""
        from repro.ops.shape_funcs import broadcast_shape_func

        with pytest.raises(ShapeError):
            broadcast_shape_func([(2, 4), (3, 4)], None, {})

    def test_dense_shape_func_runtime_failure(self):
        from repro.ops import get_op_def

        sf = get_op_def("nn.dense").shape_func
        with pytest.raises(ShapeError):
            sf([(2, 8), (4, 9)], None, {})
