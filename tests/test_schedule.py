"""The AOT kernel dependency graph and static multi-stream scheduler.

Unit level: DAG construction (RAW through registers, WAR/WAW through
storage tokens, alias propagation, the DeviceCopy barrier, host kernels
staying out of the graph), the greedy deterministic stream assignment,
vector-clock event minimization, and the entry-fence/exit-join bracket
on non-entry functions.

Integration level: scheduling is a guaranteed no-op at one stream,
control-flow functions are never touched, compiles are deterministic,
multi-stream runs are faster on the modeled clock yet bitwise identical
in outputs, and the error paths (Fatal, mid-run frame release) still
drain the allocator to zero live bytes on a scheduled interpreter.
"""

import numpy as np
import pytest

import repro.nimble as nimble
from repro.errors import VMError
from repro.hardware.platforms import nvidia_gpu
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.runtime.context import ExecutionContext
from repro.tensor.device import cpu, gpu
from repro.vm import instruction as ins
from repro.vm.compiler import CompilerOptions
from repro.vm.executable import VMFunction
from repro.vm.interpreter import VirtualMachine
from repro.vm.schedule import (
    assign_streams,
    build_dependency_graph,
    is_straight_line,
    schedule_executable,
    schedule_function,
)

GPU = gpu(0)


def kernel(args, num_outputs=1, device=GPU, kind="compute"):
    """A synthetic InvokePacked: last ``num_outputs`` args are outputs."""
    return ins.InvokePacked(
        0, len(args), num_outputs, tuple(args), device, kind
    )


def func_of(instructions, name="main", num_params=0):
    return VMFunction(name, num_params, list(instructions), 64)


def small_bert():
    config = BertConfig(hidden=64, num_heads=4, num_layers=2, ffn=128)
    weights = BertWeights.create(config, seed=0)
    return build_bert_module(weights), config


# ---------------------------------------------------------------------------
# Dependency-graph construction
# ---------------------------------------------------------------------------


class TestDependencyGraph:
    def test_raw_through_registers(self):
        f = func_of([
            kernel([1, 2, 10]),       # k0 writes r10
            kernel([10, 11]),         # k1 reads r10
            kernel([3, 12]),          # k2 independent
            ins.Ret(11),
        ])
        nodes = build_dependency_graph(f)
        assert [n.deps for n in nodes] == [
            frozenset(), frozenset({0}), frozenset()
        ]

    def test_war_and_waw_through_storage_tokens(self):
        f = func_of([
            ins.LoadConsti(0, 8),
            ins.AllocStorage(8, 64, GPU, 5),
            ins.AllocTensor(5, 8, (4,), "float32", 10),
            ins.AllocTensor(5, 8, (4,), "float32", 11),
            kernel([1, 10]),          # k0 writes the storage
            kernel([10, 20]),         # k1 reads it (RAW on k0)
            kernel([2, 11]),          # k2 rewrites it: WAW k0, WAR k1
            ins.Ret(20),
        ])
        nodes = build_dependency_graph(f)
        assert nodes[1].deps == frozenset({0})
        assert nodes[2].deps == frozenset({0, 1})

    def test_device_copy_is_a_barrier(self):
        f = func_of([
            kernel([1, 10]),
            ins.DeviceCopy(10, 11, GPU, cpu(0)),
            kernel([12, 13]),         # k1: older deps are pre-satisfied
            kernel([13, 14]),         # k2 depends on k1 (after barrier)
            ins.Ret(14),
        ])
        nodes = build_dependency_graph(f)
        assert nodes[1].deps == frozenset()
        assert nodes[2].deps == frozenset({1})

    def test_aliases_propagate_producers(self):
        f = func_of([
            kernel([1, 10]),               # k0 writes r10
            ins.Move(10, 11),
            ins.ReshapeTensor(11, 2, 12),
            ins.AllocADT(-1, 1, (12,), 13),
            ins.GetField(13, 0, 14),
            kernel([14, 20]),              # k1 reads through the aliases
            ins.Ret(20),
        ])
        nodes = build_dependency_graph(f)
        assert nodes[1].deps == frozenset({0})

    def test_host_kernels_have_no_edges(self):
        f = func_of([
            kernel([1, 10], kind="shape_func"),
            kernel([2, 11], device=cpu(0)),
            kernel([10, 11, 12]),          # deps on host results: none
            ins.Ret(12),
        ])
        nodes = build_dependency_graph(f)
        assert len(nodes) == 1
        assert nodes[0].deps == frozenset()

    def test_straight_line_classifier(self):
        assert is_straight_line(func_of([kernel([1, 2]), ins.Ret(2)]))
        for bad in (
            ins.If(1, 2, 1, 2),
            ins.Goto(1),
            ins.Invoke(0, (1,), 2),
            ins.InvokeClosure(1, (2,), 3),
            ins.AllocClosure(0, 0, (), 1),
        ):
            assert not is_straight_line(func_of([bad, ins.Ret(1)]))


# ---------------------------------------------------------------------------
# Stream assignment + event planning
# ---------------------------------------------------------------------------


class TestAssignment:
    def diamond(self):
        f = func_of([
            kernel([1, 10]),          # k0
            kernel([10, 11]),         # k1 dep k0
            kernel([10, 2, 12]),      # k2 dep k0
            kernel([11, 12, 13]),     # k3 dep k1, k2
            ins.Ret(13),
        ])
        return build_dependency_graph(f), f

    def test_greedy_diamond(self):
        nodes, _ = self.diamond()
        assign_streams(nodes, 2)
        # k0 opens stream 0; k1 chains onto it; k2 opens the idle stream;
        # k3 chains to the lowest dependent stream.
        assert [n.stream for n in nodes] == [0, 0, 1, 0]

    def test_assignment_is_deterministic(self):
        a, _ = self.diamond()
        b, _ = self.diamond()
        assign_streams(a, 4)
        assign_streams(b, 4)
        assert [n.stream for n in a] == [n.stream for n in b]

    def test_minimal_events_on_diamond(self):
        _, f = self.diamond()
        scheduled, summary = schedule_function(f, 2, is_entry=True)
        # Two cross-stream edges need syncing: k0->k2 and k2->k3. k0->k1
        # and k1->k3 are same-stream (free).
        assert summary.streams_used == (0, 1)
        assert summary.num_events == 2
        assert summary.num_waits == 2
        events = [i for i in scheduled.instructions if isinstance(i, ins.StreamEvent)]
        waits = [i for i in scheduled.instructions if isinstance(i, ins.StreamWait)]
        assert len(events) == 2 and len(waits) == 2
        # Each wait pairs with a recorded event index.
        assert {w.event_index for w in waits} == {e.event_index for e in events}

    def test_transitive_coverage_elides_waits(self):
        # k0(s0) -> k1(s1), then k2 lands on s1 and also depends on k0:
        # the wait k1 already performed covers it via the vector clock.
        f = func_of([
            kernel([1, 10]),          # k0
            kernel([10, 11]),         # k1 dep k0
            kernel([10, 11, 12]),     # k2 dep k0 (covered), k1 (same stream)
            ins.Ret(12),
        ])
        nodes = build_dependency_graph(f)
        # Force the layout the test needs.
        nodes[0].stream, nodes[1].stream, nodes[2].stream = 0, 1, 1
        from repro.vm.schedule import _plan_events

        _events, _waits, num_events, num_waits = _plan_events(nodes, 2)
        assert num_events == 1
        assert num_waits == 1

    def test_single_kernel_not_scheduled(self):
        f = func_of([kernel([1, 10]), ins.Ret(10)])
        assert schedule_function(f, 4, is_entry=True) == (None, None)

    def test_non_entry_gets_fence_and_join(self):
        f = func_of([
            kernel([1, 10]),
            kernel([2, 11]),          # independent: lands on stream 1
            ins.Ret(10),
        ])
        scheduled, summary = schedule_function(f, 2, is_entry=False)
        instrs = scheduled.instructions
        # Entry fence: an event on stream 0, waited on by the side stream,
        # before any kernel.
        assert isinstance(instrs[0], ins.StreamEvent) and instrs[0].stream == 0
        assert isinstance(instrs[1], ins.StreamWait) and instrs[1].stream == 1
        # Exit join: the side stream records, stream 0 waits, before Ret.
        ret_at = next(
            i for i, x in enumerate(instrs) if isinstance(x, ins.Ret)
        )
        join = instrs[ret_at - 2:ret_at]
        assert isinstance(join[0], ins.StreamEvent) and join[0].stream == 1
        assert isinstance(join[1], ins.StreamWait) and join[1].stream == 0
        assert summary.num_events == 2  # fence + join (no cross deps)

    def test_entry_function_unfenced(self):
        f = func_of([
            kernel([1, 10]),
            kernel([2, 11]),
            ins.Ret(10),
        ])
        scheduled, _ = schedule_function(f, 2, is_entry=True)
        assert not isinstance(scheduled.instructions[0], ins.StreamEvent)
        assert not any(
            isinstance(i, (ins.StreamEvent, ins.StreamWait))
            for i in scheduled.instructions
        )


# ---------------------------------------------------------------------------
# Whole-executable scheduling
# ---------------------------------------------------------------------------


class TestScheduleExecutable:
    def test_one_stream_is_a_guaranteed_noop(self):
        mod, _ = small_bert()
        exe, _ = nimble.build(mod, nvidia_gpu())
        before = [list(f.instructions) for f in exe.functions]
        assert schedule_executable(exe, 1) == {}
        assert [list(f.instructions) for f in exe.functions] == before
        assert exe.device_streams == 1
        assert exe.num_events == 0

    def test_control_flow_functions_untouched(self):
        loop = func_of([ins.Goto(1), kernel([1, 10]), ins.Ret(10)], name="f")
        body = func_of(
            [kernel([1, 10]), kernel([2, 11]), ins.Ret(10)], name="main"
        )
        from repro.vm.executable import Executable

        exe = Executable(
            platform_name="nvidia",
            functions=[loop, body],
            func_index={"f": 0, "main": 1},
            constants=[],
            kernels=[],
        )
        schedules = schedule_executable(exe, 2)
        assert set(schedules) == {"main"}
        assert exe.functions[0].instructions == loop.instructions
        assert exe.device_streams == 2

    def test_compiles_are_deterministic(self):
        mod, _ = small_bert()
        opts = CompilerOptions(device_streams=4)
        a, _ = nimble.build(mod, nvidia_gpu(), options=opts)
        b, _ = nimble.build(mod, nvidia_gpu(), options=opts)
        assert a.functions == b.functions
        assert a.device_streams == b.device_streams == 4
        assert a.num_events == b.num_events
        assert a.content_hash() == b.content_hash()

    def test_cpu_platform_clamps_to_one_stream(self):
        from repro.hardware.platforms import intel_cpu

        mod, _ = small_bert()
        exe, _ = nimble.build(
            mod, intel_cpu(), options=CompilerOptions(device_streams=4)
        )
        assert exe.device_streams == 1
        assert exe.num_events == 0
        plain, _ = nimble.build(mod, intel_cpu())
        assert exe.functions == plain.functions
        assert exe.content_hash() == plain.content_hash()


# ---------------------------------------------------------------------------
# Modeled-latency + bit-identity integration
# ---------------------------------------------------------------------------


class TestScheduledExecution:
    @staticmethod
    def wide_module(branches=4, size=256):
        """``branches`` independent dense->softmax chains summed at the
        end: softmax blocks fusion, so each branch stays its own device
        kernel with enough work that multi-stream overlap must win on
        the modeled clock."""
        from repro.ir import Constant, Function, TensorType, Var
        from repro.ir.module import IRModule
        from repro.ops import api

        rng = np.random.RandomState(9)
        x = Var("x", TensorType((size, size), "float32"))
        outs = []
        for i in range(branches):
            w = Constant(
                (rng.randn(size, size) * 0.05).astype(np.float32)
            )
            outs.append(api.softmax(api.dense(x, w)))
        acc = outs[0]
        for o in outs[1:]:
            acc = api.add(acc, o)
        return IRModule.from_expr(Function([x], acc))

    def run_wide(self, mod, streams, x, stream_offset=0):
        exe, _ = nimble.build(
            mod, nvidia_gpu(), options=CompilerOptions(device_streams=streams)
        )
        ctx = ExecutionContext(nvidia_gpu(), numerics="lite")
        vm = VirtualMachine(exe, ctx)
        out = vm.run(x, stream_offset=stream_offset)
        return out.numpy(), ctx.elapsed_us, vm

    def x(self, size=256):
        rng = np.random.RandomState(5)
        return (rng.randn(size, size) * 0.1).astype(np.float32)

    def test_multi_stream_is_faster_and_bit_identical(self):
        mod = self.wide_module()
        x = self.x()
        out1, t1, _ = self.run_wide(mod, 1, x)
        for streams in (2, 4):
            out, t, vm = self.run_wide(mod, streams, x)
            assert np.array_equal(out, out1)
            assert t < t1
            busy = vm.profile.stream_kernel_us
            assert len(busy) == streams
            assert vm.profile.sync_events > 0

    def test_stream_offset_rotation_bit_identical(self):
        mod = self.wide_module()
        x = self.x()
        out0, t0, _ = self.run_wide(mod, 4, x, stream_offset=0)
        for offset in (1, 2, 3):
            out, t, _ = self.run_wide(mod, 4, x, stream_offset=offset)
            assert np.array_equal(out, out0)
            # A pure rotation relabels streams; the modeled time is the
            # same schedule shifted, so latency is preserved too.
            assert t == t0

    def test_replay_is_deterministic(self):
        mod = self.wide_module()
        x = self.x()
        runs = [self.run_wide(mod, 4, x) for _ in range(2)]
        assert np.array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]


# ---------------------------------------------------------------------------
# Error paths on the scheduled interpreter (allocator must drain)
# ---------------------------------------------------------------------------


class TestScheduledErrorPaths:
    def scheduled_exe(self):
        mod, config = small_bert()
        exe, _ = nimble.build(
            mod, nvidia_gpu(), options=CompilerOptions(device_streams=4)
        )
        assert exe.device_streams == 4
        return exe, config

    def inject_fatal(self, exe, after_kernels):
        """Copy the entry function with a Fatal planted after the N-th
        scheduled device kernel."""
        index = exe.func_index[exe.entry]
        func = exe.functions[index]
        seen = 0
        instrs = []
        planted = False
        for instr in func.instructions:
            instrs.append(instr)
            if (
                not planted
                and isinstance(instr, ins.InvokePacked)
                and instr.kind == "compute"
                and instr.device.is_gpu
            ):
                seen += 1
                if seen == after_kernels:
                    instrs.append(ins.Fatal("scheduled boom"))
                    planted = True
        assert planted
        exe.functions[index] = VMFunction(
            func.name, func.num_params, instrs, func.register_count
        )
        return exe

    def test_fatal_mid_schedule_drains_allocator(self):
        for after in (1, 8):
            exe, config = self.scheduled_exe()
            self.inject_fatal(exe, after_kernels=after)
            ctx = ExecutionContext(nvidia_gpu(), numerics="lite")
            vm = VirtualMachine(exe, ctx)
            x = np.zeros((8, config.hidden), dtype=np.float32)
            with pytest.raises(VMError, match="scheduled boom"):
                vm.run(x)
            assert ctx.allocator.live_bytes == 0

    def test_vm_usable_after_scheduled_fatal(self):
        exe, config = self.scheduled_exe()
        good_exe, _ = self.scheduled_exe()
        self.inject_fatal(exe, after_kernels=4)
        ctx = ExecutionContext(nvidia_gpu(), numerics="lite")
        vm = VirtualMachine(exe, ctx)
        x = np.zeros((8, config.hidden), dtype=np.float32)
        with pytest.raises(VMError):
            vm.run(x)
        assert ctx.allocator.live_bytes == 0
        # A clean executable on the same context still runs, and the
        # earlier failure leaked nothing into its result.
        good = VirtualMachine(good_exe, ctx).run(x)
        ref_ctx = ExecutionContext(nvidia_gpu(), numerics="lite")
        ref = VirtualMachine(good_exe, ref_ctx).run(x)
        assert np.array_equal(good.numpy(), ref.numpy())
        assert ctx.allocator.live_bytes == 0

    def test_mid_run_exception_releases_frames(self):
        """A non-VMError exception raised mid-interpretation (a broken
        kernel) must also unwind through the frame-release path."""
        exe, config = self.scheduled_exe()
        boom = RuntimeError("kernel exploded")
        # Break the 6th GPU kernel's implementation.
        count = 0
        target = None
        index = exe.func_index[exe.entry]
        for instr in exe.functions[index].instructions:
            if (
                isinstance(instr, ins.InvokePacked)
                and instr.kind == "compute"
                and instr.device.is_gpu
            ):
                count += 1
                if count == 6:
                    target = instr.packed_index
                    break
        assert target is not None

        class Exploder:
            def __init__(self, inner):
                self.inner = inner

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def invoke_cost(self, *a, **k):
                raise boom

        original = exe.kernels[target]
        exe.kernels[target] = Exploder(original)
        ctx = ExecutionContext(nvidia_gpu(), numerics="lite")
        vm = VirtualMachine(exe, ctx)
        x = np.zeros((8, config.hidden), dtype=np.float32)
        with pytest.raises(Exception, match="kernel exploded"):
            vm.run(x)
        assert ctx.allocator.live_bytes == 0
        # Restore and the same VM completes.
        exe.kernels[target] = original
        out = vm.run(x)
        assert out is not None
        assert ctx.allocator.live_bytes == 0


# ---------------------------------------------------------------------------
# N-version cross-check: the independent race model agrees with the
# scheduler
# ---------------------------------------------------------------------------


class TestScheduleVerifiesUnderRaceModel:
    """Regressions pinning `repro.analysis.races` — a happens-before
    model derived only from the serialized bytecode — to the scheduler's
    trickiest outputs: the cross-function fence/join bracket and the
    vector-clock wait elision. The schedule must verify as emitted, and
    stop verifying the moment its load-bearing sync is removed."""

    def _strip(self, func, drop):
        instrs = [x for i, x in enumerate(func.instructions) if i != drop]
        return VMFunction(
            func.name, func.num_params, instrs, func.register_count
        )

    def test_fence_join_unit_is_ordered(self):
        from repro.analysis.races import _check_function

        f = func_of([
            kernel([1, 10]),
            kernel([2, 11]),          # independent: lands on stream 1
            ins.Ret(10),
        ], name="cell")
        scheduled, _ = schedule_function(f, 2, is_entry=False)
        assert _check_function(scheduled, is_entry=False) == []
        # Drop the fence wait (instruction 1): the side stream races the
        # caller's pending stream-0 work.
        fence_broken = self._strip(scheduled, 1)
        assert any(
            "missing entry fence" in x.message
            for x in _check_function(fence_broken, is_entry=False)
        )
        # Drop the join wait (last StreamWait, on stream 0): stream 0
        # returns before the side stream's kernel is ordered.
        join_at = max(
            i for i, x in enumerate(scheduled.instructions)
            if isinstance(x, ins.StreamWait) and x.stream == 0
        )
        join_broken = self._strip(scheduled, join_at)
        assert any(
            "missing exit join" in x.message
            for x in _check_function(join_broken, is_entry=False)
        )

    def test_two_event_diamond_is_ordered_and_minimal(self):
        from repro.analysis.races import _check_function

        f = func_of([
            kernel([1, 10]),          # k0
            kernel([10, 11]),         # k1 dep k0
            kernel([10, 2, 12]),      # k2 dep k0
            kernel([11, 12, 13]),     # k3 dep k1, k2
            ins.Ret(13),
        ])
        scheduled, summary = schedule_function(f, 2, is_entry=True)
        assert summary.num_events == 2  # the elided minimum
        assert _check_function(scheduled, is_entry=True) == []
        # Minimality, proven by the independent model: removing *either*
        # wait leaves a genuinely unordered hazard edge.
        wait_positions = [
            i for i, x in enumerate(scheduled.instructions)
            if isinstance(x, ins.StreamWait)
        ]
        for pos in wait_positions:
            mutant = self._strip(scheduled, pos)
            assert any(
                "hazard edge unordered" in x.message
                for x in _check_function(mutant, is_entry=True)
            ), f"wait at {pos} was not load-bearing"

    def test_elided_transitive_wait_still_verifies(self):
        from repro.analysis.races import _check_function

        # k0(s0) -> k1(s1) -> k2(s1, also dep k0): the k0->k2 wait is
        # elided — k1's wait already ordered stream 1 after k0. The
        # independent model must agree the single wait covers both
        # edges transitively (the layout _plan_events emits, per
        # test_transitive_coverage_elides_waits above).
        def on_stream(args, stream):
            return ins.InvokePacked(
                0, len(args), 1, tuple(args), GPU, "compute", stream
            )

        scheduled = func_of([
            on_stream([1, 10], 0),               # k0
            ins.StreamEvent(0, GPU, 0),
            ins.StreamWait(0, GPU, 1),
            on_stream([10, 11], 1),              # k1 dep k0 (waited)
            on_stream([10, 11, 12], 1),          # k2 dep k0 (elided), k1
            ins.Ret(12),
        ])
        assert _check_function(scheduled, is_entry=True) == []
        # Without the wait the elision premise is gone: both of k1's and
        # k2's edges to k0 are unordered.
        unwaited = self._strip(scheduled, 2)
        findings = _check_function(unwaited, is_entry=True)
        assert len([
            x for x in findings if "hazard edge unordered" in x.message
        ]) == 2

    def test_scheduled_bert_verifies_end_to_end(self):
        mod, _ = small_bert()
        exe, _ = nimble.specialize(
            mod, nvidia_gpu(), shapes=[(8, 64)],
            options=CompilerOptions(device_streams=4),
        )
        from repro.analysis import check_races

        assert exe.num_events > 0
        assert check_races(exe) == []


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
