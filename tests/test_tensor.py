"""Tensor substrate: dtypes, devices, NDArray, Storage."""

import numpy as np
import pytest

from repro.errors import NimbleError, VMError
from repro.tensor import NDArray, Storage, array, cpu, empty, gpu
from repro.tensor.device import Device, DeviceKind
from repro.tensor.dtype import (
    DataType,
    dtype_bytes,
    from_numpy_dtype,
    is_valid_dtype,
    to_numpy_dtype,
)


class TestDtype:
    def test_valid_dtypes(self):
        for name in ("float32", "float64", "int64", "int32", "bool", "int8", "uint8"):
            assert is_valid_dtype(name)
            assert to_numpy_dtype(name) is not None

    def test_invalid_dtype_rejected(self):
        with pytest.raises(NimbleError):
            to_numpy_dtype("complex128")
        with pytest.raises(NimbleError):
            DataType("float128")

    def test_dtype_bytes(self):
        assert dtype_bytes("float32") == 4
        assert dtype_bytes("int64") == 8
        assert dtype_bytes("bool") == 1
        assert dtype_bytes("float16") == 2

    def test_numpy_roundtrip(self):
        for name in ("float32", "int64", "bool", "uint8"):
            assert from_numpy_dtype(to_numpy_dtype(name)) == name

    def test_datatype_is_str(self):
        dt = DataType("float32")
        assert dt == "float32"
        assert isinstance(dt, str)


class TestDevice:
    def test_cpu_gpu_constructors(self):
        assert cpu().kind is DeviceKind.CPU
        assert gpu(1).index == 1
        assert cpu(0) == cpu(0)
        assert cpu(0) != gpu(0)

    def test_device_predicates(self):
        assert cpu().is_cpu and not cpu().is_gpu
        assert gpu().is_gpu and not gpu().is_cpu

    def test_device_hashable_and_printable(self):
        assert len({cpu(0), cpu(0), gpu(0)}) == 2
        assert str(gpu(2)) == "gpu(2)"


class TestNDArray:
    def test_array_scalar_preserves_rank0(self):
        a = array(1.5)
        assert a.shape == ()
        assert a.dtype == "float32"
        assert a.item() == pytest.approx(1.5)

    def test_array_int_defaults_to_int64(self):
        a = array([1, 2, 3])
        assert a.dtype == "int64"

    def test_array_float_defaults_to_float32(self):
        a = array([1.0, 2.0])
        assert a.dtype == "float32"

    def test_explicit_dtype(self):
        a = array([1, 0], dtype="bool")
        assert a.dtype == "bool"

    def test_item_requires_single_element(self):
        with pytest.raises(VMError):
            array([1.0, 2.0]).item()

    def test_empty(self):
        a = empty((2, 3), "int32")
        assert a.shape == (2, 3)
        assert a.dtype == "int32"

    def test_reshape_shares_buffer(self):
        a = array(np.arange(6, dtype=np.float32))
        b = a.reshape((2, 3))
        b.numpy()[0, 0] = 99.0
        assert a.numpy()[0] == 99.0

    def test_to_device(self):
        a = array([1.0])
        b = a.to_device(gpu(0))
        assert b.device == gpu(0)
        assert a.to_device(cpu(0)) is a

    def test_copy_on_write(self):
        a = array([1.0, 2.0])
        a.retain()
        b = a.copy_on_write()
        assert b is not a
        b2 = b.copy_on_write()
        assert b2 is b  # uniquely referenced


class TestStorage:
    def test_view_carves_tensor(self):
        s = Storage(256, 64, cpu())
        v = s.view(0, 16, np.dtype(np.float32), (4,))
        v[:] = 7.0
        assert np.all(s.buffer[:16].view(np.float32) == 7.0)

    def test_view_bounds_checked(self):
        s = Storage(64, 64, cpu())
        with pytest.raises(VMError):
            s.view(32, 64, np.dtype(np.float32), (16,))

    def test_use_after_free_rejected(self):
        s = Storage(64, 64, cpu())
        s.free()
        with pytest.raises(VMError):
            s.view(0, 4, np.dtype(np.float32), (1,))

    def test_invalid_alignment_rejected(self):
        with pytest.raises(VMError):
            Storage(64, 3, cpu())

    def test_negative_size_rejected(self):
        with pytest.raises(VMError):
            Storage(-1, 64, cpu())

    def test_from_storage_ndarray(self):
        s = Storage(256, 64, cpu())
        t = NDArray.from_storage(s, 64, (4, 4), "float32")
        assert t.shape == (4, 4)
        assert t.storage is s
        assert t.offset == 64
