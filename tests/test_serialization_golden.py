"""Golden-blob serialization tests: checked-in v2, v3, and v4
executables must keep loading as the format evolves (the backward-compat
contract specified in docs/serialization.md), and the current writer
must emit the documented v5 layout.

The golden blobs were written by the historical serializers (v2: PR 2's
specialization marker; v3: PR 4's batch marker; v4: PR 5's
store-metadata section) and hold a minimal runnable program —
``main()`` returning a 2x3 float32 constant — with no pickled kernel
classes, so they stay loadable no matter how the kernel objects
evolve."""

import struct
from pathlib import Path

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.tensor.device import gpu
from repro.vm import instruction as ins
from repro.vm.executable import (
    MAGIC,
    MIN_VERSION,
    VERSION,
    Executable,
    VMFunction,
    artifact_key,
)
from repro.vm.interpreter import VirtualMachine

GOLDEN = Path(__file__).parent / "golden"

EXPECTED_CONST = np.arange(6, dtype=np.float32).reshape(2, 3)


def _load_golden(name: str) -> Executable:
    return Executable.load((GOLDEN / name).read_bytes())


class TestGoldenBlobs:
    def test_v2_blob_loads_and_runs(self):
        exe = _load_golden("executable_v2.bin")
        assert exe.platform_name == "intel"
        assert exe.specialized_shapes == ((4, 8),)
        # v2 predates the batch marker: member-wise by definition.
        assert exe.specialized_batch is None
        # v2/v3 predate the store-metadata section.
        assert exe.source_signature is None
        assert exe.functions[0].instructions == [
            ins.LoadConst(0, 0), ins.Ret(0),
        ]
        out = VirtualMachine(exe).run()
        assert np.array_equal(out.numpy(), EXPECTED_CONST)

    def test_v3_blob_loads_and_runs(self):
        exe = _load_golden("executable_v3.bin")
        assert exe.specialized_shapes == ((4, 8),)
        assert exe.specialized_batch == 2
        assert exe.source_signature is None
        out = VirtualMachine(exe).run()
        assert np.array_equal(out.numpy(), EXPECTED_CONST)

    def test_v4_blob_loads_and_runs(self):
        exe = _load_golden("executable_v4.bin")
        assert exe.specialized_shapes == ((4, 8),)
        assert exe.specialized_batch == 2
        # v4 carries the store metadata (and its hash verified on load)…
        assert exe.source_signature == "golden-v4-fingerprint"
        # …but predates the static scheduler: single-stream, no events.
        assert exe.device_streams == 1
        assert exe.num_events == 0
        out = VirtualMachine(exe).run()
        assert np.array_equal(out.numpy(), EXPECTED_CONST)

    def test_v4_blob_keeps_its_v4_artifact_key(self):
        """The stream count joins the key only for v5+; a v4 blob's
        embedded hash must keep verifying under the v5 loader, which is
        exactly what ``content_hash(version=4)`` computes."""
        exe = _load_golden("executable_v4.bin")
        assert exe.content_hash(4) == artifact_key(
            exe.source_signature, "intel", ((4, 8),), 2, version=4
        )
        # Tampering with the batch marker must break the embedded hash.
        blob = bytearray((GOLDEN / "executable_v4.bin").read_bytes())
        idx = blob.rindex(bytes([2 << 1]))  # the batch varint (zigzag 2)
        blob[idx] = 3 << 1
        with pytest.raises(SerializationError, match="content hash"):
            Executable.load(bytes(blob))

    def test_golden_blobs_declare_their_versions(self):
        versions = (
            ("executable_v2.bin", 2),
            ("executable_v3.bin", 3),
            ("executable_v4.bin", 4),
        )
        for name, version in versions:
            blob = (GOLDEN / name).read_bytes()
            assert blob[:4] == MAGIC
            assert struct.unpack("<H", blob[4:6]) == (version,)

    def test_resave_upgrades_to_current_version(self):
        """Loading an old blob and saving it re-emits the current
        format — including the content hash, which the re-load
        verifies."""
        exe = _load_golden("executable_v2.bin")
        blob = exe.save()
        assert struct.unpack("<H", blob[4:6]) == (VERSION,)
        again = Executable.load(blob)
        assert again.specialized_shapes == exe.specialized_shapes
        assert again.content_hash() == exe.content_hash()

    def test_stale_and_future_versions_rejected(self):
        blob = bytearray((GOLDEN / "executable_v3.bin").read_bytes())
        for bad in (MIN_VERSION - 1, VERSION + 1):
            blob[4:6] = struct.pack("<H", bad)
            with pytest.raises(SerializationError, match="version"):
                Executable.load(bytes(blob))


def _scheduled_exe() -> Executable:
    """A hand-assembled v5 executable exercising every scheduling
    construct the format added: an InvokePacked on a non-zero stream,
    the two sync opcodes, and the trailing schedule section."""
    from repro.tensor.ndarray import NDArray

    dev = gpu(0)
    instrs = [
        ins.LoadConst(0, 0),
        ins.InvokePacked(0, 2, 1, (0, 1), dev, "compute", stream=2),
        ins.StreamEvent(0, dev, 2),
        ins.StreamWait(0, dev, 0),
        ins.Ret(1),
    ]
    return Executable(
        platform_name="nvidia",
        functions=[VMFunction("main", 0, instrs, 8)],
        func_index={"main": 0},
        constants=[NDArray(EXPECTED_CONST)],
        kernels=[],
        entry="main",
        source_signature="golden-v5-fingerprint",
        device_streams=4,
        num_events=1,
    )


class TestV5Schedule:
    def test_current_writer_emits_v5(self):
        blob = _scheduled_exe().save()
        assert blob[:4] == MAGIC
        assert struct.unpack("<H", blob[4:6]) == (VERSION,)

    def test_v5_roundtrip_preserves_schedule(self):
        exe = _scheduled_exe()
        again = Executable.load(exe.save())
        assert again.device_streams == 4
        assert again.num_events == 1
        assert again.functions[0].instructions == exe.functions[0].instructions
        assert again.functions[0].instructions[1].stream == 2
        assert again.content_hash() == exe.content_hash()

    def test_artifact_key_folds_streams_only_for_v5(self):
        base = dict(
            source_signature="sig",
            platform_name="nvidia",
            specialized_shapes=None,
            specialized_batch=None,
        )
        # v5 keys: stream count is identity — different counts, different
        # artifacts (their bytecode genuinely differs).
        one = artifact_key(**base, version=5, device_streams=1)
        four = artifact_key(**base, version=5, device_streams=4)
        assert one != four
        # None and 1 both mean single-stream: no aliasing keys.
        assert artifact_key(**base, version=5, device_streams=None) == one
        # v4 keys predate the scheduler: the stream count must NOT
        # perturb them, or every already-stored artifact would orphan.
        assert artifact_key(**base, version=4, device_streams=4) == artifact_key(
            **base, version=4, device_streams=1
        )

    def test_scheduled_executable_key_differs_from_unscheduled(self):
        exe = _scheduled_exe()
        single = Executable(
            platform_name=exe.platform_name,
            functions=exe.functions,
            func_index=exe.func_index,
            constants=exe.constants,
            kernels=[],
            entry="main",
            source_signature=exe.source_signature,
        )
        assert exe.content_hash() != single.content_hash()
