"""Golden-blob serialization tests: checked-in v2 and v3 executables
must keep loading as the format evolves (the backward-compat contract
specified in docs/serialization.md), and the current writer must emit
the documented v4 layout.

The golden blobs were written by the historical serializers (v2: PR 2's
specialization marker; v3: PR 4's batch marker) and hold a minimal
runnable program — ``main()`` returning a 2x3 float32 constant — with
no pickled kernel classes, so they stay loadable no matter how the
kernel objects evolve."""

import struct
from pathlib import Path

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.vm import instruction as ins
from repro.vm.executable import MAGIC, MIN_VERSION, VERSION, Executable
from repro.vm.interpreter import VirtualMachine

GOLDEN = Path(__file__).parent / "golden"

EXPECTED_CONST = np.arange(6, dtype=np.float32).reshape(2, 3)


def _load_golden(name: str) -> Executable:
    return Executable.load((GOLDEN / name).read_bytes())


class TestGoldenBlobs:
    def test_v2_blob_loads_and_runs(self):
        exe = _load_golden("executable_v2.bin")
        assert exe.platform_name == "intel"
        assert exe.specialized_shapes == ((4, 8),)
        # v2 predates the batch marker: member-wise by definition.
        assert exe.specialized_batch is None
        # v2/v3 predate the store-metadata section.
        assert exe.source_signature is None
        assert exe.functions[0].instructions == [
            ins.LoadConst(0, 0), ins.Ret(0),
        ]
        out = VirtualMachine(exe).run()
        assert np.array_equal(out.numpy(), EXPECTED_CONST)

    def test_v3_blob_loads_and_runs(self):
        exe = _load_golden("executable_v3.bin")
        assert exe.specialized_shapes == ((4, 8),)
        assert exe.specialized_batch == 2
        assert exe.source_signature is None
        out = VirtualMachine(exe).run()
        assert np.array_equal(out.numpy(), EXPECTED_CONST)

    def test_golden_blobs_declare_their_versions(self):
        for name, version in (("executable_v2.bin", 2), ("executable_v3.bin", 3)):
            blob = (GOLDEN / name).read_bytes()
            assert blob[:4] == MAGIC
            assert struct.unpack("<H", blob[4:6]) == (version,)

    def test_resave_upgrades_to_current_version(self):
        """Loading an old blob and saving it re-emits the current
        format — including the content hash, which the re-load
        verifies."""
        exe = _load_golden("executable_v2.bin")
        blob = exe.save()
        assert struct.unpack("<H", blob[4:6]) == (VERSION,)
        again = Executable.load(blob)
        assert again.specialized_shapes == exe.specialized_shapes
        assert again.content_hash() == exe.content_hash()

    def test_stale_and_future_versions_rejected(self):
        blob = bytearray((GOLDEN / "executable_v3.bin").read_bytes())
        for bad in (MIN_VERSION - 1, VERSION + 1):
            blob[4:6] = struct.pack("<H", bad)
            with pytest.raises(SerializationError, match="version"):
                Executable.load(bytes(blob))
