"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.hardware import arm_cpu, intel_cpu, nvidia_gpu


@pytest.fixture
def rng():
    return np.random.RandomState(0)


@pytest.fixture(params=["intel", "nvidia", "arm"])
def any_platform(request):
    return {"intel": intel_cpu, "nvidia": nvidia_gpu, "arm": arm_cpu}[request.param]()


@pytest.fixture
def intel():
    return intel_cpu()


@pytest.fixture
def nvidia():
    return nvidia_gpu()


@pytest.fixture
def arm():
    return arm_cpu()
