"""Generic passes: ANF, constant folding, DCE, CSE, simplification, fusion."""

import numpy as np
import pytest

from repro.core.typing import infer_types
from repro.ir import (
    Any,
    Call,
    Constant,
    Function,
    If,
    IRModule,
    Let,
    Op,
    ScopeBuilder,
    TensorType,
    Tuple,
    TupleGetItem,
    Var,
    const,
    free_vars,
    iter_nodes,
    scalar_type,
)
from repro.ops import api
from repro.ops.registry import OpPattern
from repro.passes import (
    CommonSubexprElimination,
    DeadCodeElimination,
    FoldConstant,
    FuseOps,
    SimplifyExpressions,
    ToANF,
    to_anf,
)


def _let_chain(expr):
    out = []
    node = expr
    while isinstance(node, Let):
        out.append((node.var, node.value))
        node = node.body
    return out, node


class TestToANF:
    def test_nested_calls_flattened(self):
        x = Var("x", TensorType((2,)))
        expr = api.add(api.multiply(x, x), api.tanh(x))
        body = to_anf(Function([x], expr)).body
        bindings, tail = _let_chain(body)
        assert len(bindings) == 3
        assert isinstance(tail, Var)  # strict ANF: atom result

    def test_shared_subexpression_bound_once(self):
        x = Var("x", TensorType((2,)))
        shared = api.multiply(x, x)
        expr = api.add(shared, shared)  # same object twice
        bindings, _ = _let_chain(to_anf(Function([x], expr)).body)
        assert len(bindings) == 2  # multiply once + add

    def test_if_branches_get_own_scopes(self):
        c = Var("c", scalar_type("bool"))
        x = Var("x", TensorType((2,)))
        expr = If(c, api.add(x, x), api.multiply(x, x))
        bindings, tail = _let_chain(to_anf(Function([c, x], expr)).body)
        (var, value), = [b for b in bindings if isinstance(b[1], If)]
        t_bindings, t_tail = _let_chain(value.true_branch)
        assert len(t_bindings) == 1 and isinstance(t_tail, Var)

    def test_existing_lets_preserved(self):
        x = Var("x", TensorType((2,)))
        sb = ScopeBuilder()
        a = sb.let("a", api.add(x, x))
        body = to_anf(Function([x], sb.get(a))).body
        bindings, tail = _let_chain(body)
        assert bindings[0][0] is a
        assert tail is a

    def test_free_vars_preserved(self):
        x = Var("x", TensorType((2,)))
        y = Var("y", TensorType((2,)))
        f = Function([x], api.add(api.multiply(x, y), y))
        assert free_vars(to_anf(f)) == [y]


class TestFoldConstant:
    def _fold(self, expr, params=()):
        mod = IRModule.from_expr(Function(list(params), expr))
        mod = infer_types(mod)
        return FoldConstant().run(mod).main.body

    def test_folds_constant_arithmetic(self):
        out = self._fold(api.add(const(2.0), const(3.0)))
        assert isinstance(out, Constant)
        assert out.data.item() == pytest.approx(5.0)

    def test_folds_dynamic_arange_to_static(self):
        out = self._fold(api.arange(const(0.0), const(4.0), const(1.0)))
        assert isinstance(out, Constant)
        assert out.data.shape == (4,)

    def test_leaves_variable_expressions(self):
        x = Var("x", TensorType((2,)))
        out = self._fold(api.add(x, const(1.0)), [x])
        assert isinstance(out, Call)

    def test_folds_multi_output_and_projection(self):
        expr = TupleGetItem(api.split(const(np.arange(6, dtype=np.float32)), 3), 1)
        out = self._fold(expr)
        assert isinstance(out, Constant)
        assert out.data.tolist() == [2.0, 3.0]


class TestDeadCode:
    def test_removes_unused_binding(self):
        x = Var("x", TensorType((2,)))
        sb = ScopeBuilder()
        sb.let("dead", api.add(x, x))
        live = sb.let("live", api.multiply(x, x))
        mod = IRModule.from_expr(Function([x], sb.get(live)))
        out = DeadCodeElimination().run(mod).main
        bindings, _ = _let_chain(out.body)
        assert len(bindings) == 1

    def test_cascading_removal(self):
        x = Var("x", TensorType((2,)))
        sb = ScopeBuilder()
        a = sb.let("a", api.add(x, x))
        sb.let("b", api.tanh(a))  # b unused -> then a unused
        live = sb.let("live", x)
        mod = IRModule.from_expr(Function([x], sb.get(live)))
        out = DeadCodeElimination().run(mod).main
        bindings, _ = _let_chain(out.body)
        assert len(bindings) == 1

    def test_keeps_effectful_ops(self):
        x = Var("x", TensorType((2,)))
        sb = ScopeBuilder()
        sb.let("k", Call(Op.get("memory.kill"), [x]))
        live = sb.let("live", x)
        mod = IRModule.from_expr(Function([x], sb.get(live)))
        out = DeadCodeElimination().run(mod).main
        bindings, _ = _let_chain(out.body)
        assert len(bindings) == 2


class TestCSE:
    def test_duplicate_calls_merged(self):
        x = Var("x", TensorType((2,)))
        sb = ScopeBuilder()
        a = sb.let("a", api.add(x, x))
        b = sb.let("b", api.add(x, x))  # duplicate
        out_v = sb.let("out", api.multiply(a, b))
        mod = IRModule.from_expr(Function([x], sb.get(out_v)))
        mod = infer_types(mod)
        out = CommonSubexprElimination().run(mod).main
        bindings, _ = _let_chain(out.body)
        adds = [v for _, v in bindings if isinstance(v, Call) and v.op == Op.get("add")]
        assert len(adds) == 1
        # The multiply now uses the surviving variable twice.
        mul = bindings[-1][1]
        assert mul.args[0] is mul.args[1]

    def test_different_attrs_not_merged(self):
        x = Var("x", TensorType((4,)))
        sb = ScopeBuilder()
        a = sb.let("a", api.reshape(x, (2, 2)))
        b = sb.let("b", api.reshape(x, (4, 1)))
        out_v = sb.let("o", Tuple([a, b]))
        mod = IRModule.from_expr(Function([x], sb.get(out_v)))
        out = CommonSubexprElimination().run(mod).main
        bindings, _ = _let_chain(out.body)
        reshapes = [v for _, v in bindings if isinstance(v, Call)]
        assert len(reshapes) == 2


class TestSimplify:
    def _simplify(self, expr, params):
        mod = IRModule.from_expr(Function(list(params), expr))
        mod = infer_types(mod)
        return SimplifyExpressions().run(mod).main.body

    def test_identity_reshape_removed(self):
        x = Var("x", TensorType((2, 3)))
        out = self._simplify(api.reshape(x, (2, 3)), [x])
        assert out is x

    def test_identity_cast_removed(self):
        x = Var("x", TensorType((2,), "float32"))
        out = self._simplify(api.cast(x, "float32"), [x])
        assert out is x

    def test_add_zero_removed(self):
        x = Var("x", TensorType((2,)))
        out = self._simplify(api.add(x, const(0.0)), [x])
        assert out is x

    def test_mul_one_removed(self):
        x = Var("x", TensorType((2,)))
        out = self._simplify(api.multiply(x, const(1.0)), [x])
        assert out is x

    def test_real_reshape_kept(self):
        x = Var("x", TensorType((2, 3)))
        out = self._simplify(api.reshape(x, (3, 2)), [x])
        assert isinstance(out, Call)


class TestFusion:
    def _fuse(self, func):
        mod = IRModule.from_expr(func)
        mod = infer_types(mod)
        mod = ToANF().run(mod)
        mod = infer_types(mod)
        return FuseOps().run(mod).main

    @staticmethod
    def _prim_calls(func):
        out = []
        for node in iter_nodes(func.body):
            if isinstance(node, Call) and isinstance(node.op, Function) and node.op.is_primitive:
                out.append(node)
        return out

    @staticmethod
    def _ops_of(prim_call):
        names = []
        for node in iter_nodes(prim_call.op.body):
            if isinstance(node, Call) and isinstance(node.op, Op):
                names.append(node.op.name)
        return sorted(names)

    def test_dense_absorbs_elementwise_epilogue(self):
        x = Var("x", TensorType((4, 8)))
        w = Var("w", TensorType((16, 8)))
        func = Function([x, w], api.relu(api.dense(x, w)))
        fused = self._fuse(func)
        prims = self._prim_calls(fused)
        assert len(prims) == 1
        assert self._ops_of(prims[0]) == ["nn.dense", "nn.relu"]

    def test_elementwise_chain_fuses(self):
        x = Var("x", TensorType((4,)))
        func = Function([x], api.tanh(api.sigmoid(api.exp(x))))
        prims = self._prim_calls(self._fuse(func))
        assert len(prims) == 1
        assert len(self._ops_of(prims[0])) == 3

    def test_two_denses_not_fused_together(self):
        x = Var("x", TensorType((4, 8)))
        w1 = Var("w1", TensorType((8, 8)))
        w2 = Var("w2", TensorType((8, 8)))
        func = Function([x, w1, w2], api.dense(api.dense(x, w1), w2))
        prims = self._prim_calls(self._fuse(func))
        assert len(prims) == 2

    def test_multi_use_producer_not_fused(self):
        x = Var("x", TensorType((4,)))
        shared = api.exp(x)
        func = Function([x], api.add(api.tanh(shared), shared))
        prims = self._prim_calls(self._fuse(func))
        # exp has two consumers: it must stay its own kernel.
        exp_groups = [p for p in prims if "exp" in self._ops_of(p)]
        assert len(exp_groups) == 1
        assert self._ops_of(exp_groups[0]) == ["exp"]

    def test_dynamic_op_never_absorbs_producers(self):
        """The §4.2 fusion policy: data-dependent shape functions cannot
        take fused intermediate results."""
        x = Var("x", TensorType((6,)))
        func = Function([x], api.unique(api.tanh(x)))
        prims = self._prim_calls(self._fuse(func))
        assert len(prims) == 2
        unique_groups = [p for p in prims if "unique" in self._ops_of(p)]
        assert self._ops_of(unique_groups[0]) == ["unique"]

    def test_injective_fuses_into_reduce(self):
        x = Var("x", TensorType((4, 4)))
        func = Function([x], api.sum_(api.tanh(x), axis=1))
        prims = self._prim_calls(self._fuse(func))
        assert len(prims) == 1

    def test_every_compute_becomes_primitive(self):
        # After fusion, every top-level binding that computes does so
        # through a primitive function call (uniform kernel lowering).
        x = Var("x", TensorType((4, 8)))
        w = Var("w", TensorType((8, 8)))
        fused = self._fuse(Function([x, w], api.dense(x, w)))
        bindings, _ = _let_chain(fused.body)
        for _, value in bindings:
            if isinstance(value, Call) and isinstance(value.op, Op):
                assert value.op.name.startswith(("vm.", "memory.", "device."))

    def test_constants_become_params(self):
        x = Var("x", TensorType((2, 4)))
        w = const(np.zeros((3, 4), np.float32))
        fused = self._fuse(Function([x], api.dense(x, w)))
        prims = self._prim_calls(fused)
        assert len(prims[0].op.params) == 2
        assert any(isinstance(a, Constant) for a in prims[0].args)
