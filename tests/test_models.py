"""Models: Nimble-compiled output must match the eager NumPy references."""

import numpy as np
import pytest

import repro.nimble as nimble
from repro.data import embedding_table, sst_like_trees
from repro.hardware import intel_cpu, nvidia_gpu
from repro.models.bert import BertConfig, BertWeights, bert_reference, build_bert_module, build_bert_static_module
from repro.models.lstm import LSTMWeights, build_lstm_module, lstm_reference
from repro.models.tree_lstm import (
    TreeLSTMWeights,
    build_tree_lstm_module,
    tree_lstm_reference,
    tree_to_adt,
)
from repro.models.vision import (
    build_mobilenet_like,
    build_resnet_like,
    build_squeezenet_like,
    build_vgg_like,
)
from repro.vm.interpreter import VirtualMachine


class TestLSTM:
    @pytest.mark.parametrize("layers", [1, 2])
    def test_matches_reference(self, layers):
        w = LSTMWeights.create(input_size=12, hidden_size=6, num_layers=layers, seed=layers)
        exe, _ = nimble.build(build_lstm_module(w), intel_cpu())
        vm = VirtualMachine(exe)
        x = np.random.RandomState(0).randn(7, 12).astype(np.float32)
        out = vm.run(x)
        assert np.allclose(out.numpy(), lstm_reference(x, w), atol=1e-5)

    def test_variable_lengths_same_executable(self):
        """The whole point: one compiled artifact serves every length."""
        w = LSTMWeights.create(8, 4, 1)
        exe, _ = nimble.build(build_lstm_module(w), intel_cpu())
        vm = VirtualMachine(exe)
        for length in (1, 3, 9):
            x = np.random.RandomState(length).randn(length, 8).astype(np.float32)
            assert np.allclose(vm.run(x).numpy(), lstm_reference(x, w), atol=1e-5)

    def test_runs_on_gpu_platform(self):
        w = LSTMWeights.create(8, 4, 1)
        exe, _ = nimble.build(build_lstm_module(w), nvidia_gpu())
        vm = VirtualMachine(exe)
        x = np.random.RandomState(3).randn(4, 8).astype(np.float32)
        assert np.allclose(vm.run(x).numpy(), lstm_reference(x, w), atol=1e-5)


class TestTreeLSTM:
    def test_matches_reference_on_random_trees(self):
        w = TreeLSTMWeights.create(input_size=10, hidden_size=5, seed=1)
        exe, _ = nimble.build(build_tree_lstm_module(w), intel_cpu())
        vm = VirtualMachine(exe)
        emb = embedding_table(vocab_size=40, dim=10, seed=2)
        for tree in sst_like_trees(3, vocab_size=40, seed=3):
            out = vm.run(tree_to_adt(tree, emb))
            ref_h, _ = tree_lstm_reference(tree, emb, w)
            assert np.allclose(out.numpy(), ref_h, atol=1e-5)

    def test_single_leaf_tree(self):
        from repro.data.trees import Tree

        w = TreeLSTMWeights.create(10, 5)
        exe, _ = nimble.build(build_tree_lstm_module(w), intel_cpu())
        vm = VirtualMachine(exe)
        emb = embedding_table(vocab_size=4, dim=10)
        tree = Tree.leaf(2)
        out = vm.run(tree_to_adt(tree, emb))
        ref_h, _ = tree_lstm_reference(tree, emb, w)
        assert np.allclose(out.numpy(), ref_h, atol=1e-5)


class TestBERT:
    def test_matches_reference(self):
        cfg = BertConfig(hidden=24, num_layers=2, num_heads=3, ffn=48)
        w = BertWeights.create(cfg, seed=4)
        exe, _ = nimble.build(build_bert_module(w), intel_cpu())
        vm = VirtualMachine(exe)
        x = np.random.RandomState(5).randn(6, 24).astype(np.float32)
        assert np.allclose(vm.run(x).numpy(), bert_reference(x, w), atol=1e-4)

    def test_variable_sequence_lengths(self):
        cfg = BertConfig(hidden=16, num_layers=1, num_heads=2, ffn=32)
        w = BertWeights.create(cfg)
        exe, _ = nimble.build(build_bert_module(w), intel_cpu())
        vm = VirtualMachine(exe)
        for L in (1, 5, 13):
            x = np.random.RandomState(L).randn(L, 16).astype(np.float32)
            assert np.allclose(vm.run(x).numpy(), bert_reference(x, w), atol=1e-4)

    def test_static_module_matches_dynamic(self):
        cfg = BertConfig(hidden=16, num_layers=1, num_heads=2, ffn=32)
        w = BertWeights.create(cfg)
        x = np.random.RandomState(9).randn(8, 16).astype(np.float32)
        dyn_exe, _ = nimble.build(build_bert_module(w), intel_cpu())
        sta_exe, _ = nimble.build(build_bert_static_module(w, 8), intel_cpu())
        a = VirtualMachine(dyn_exe).run(x).numpy()
        b = VirtualMachine(sta_exe).run(x).numpy()
        assert np.allclose(a, b, atol=1e-5)


class TestVisionModels:
    @pytest.mark.parametrize(
        "builder",
        [build_resnet_like, build_mobilenet_like, build_vgg_like, build_squeezenet_like],
    )
    def test_compiles_and_runs(self, builder):
        mod = builder(image=32)
        exe, _ = nimble.build(mod, intel_cpu())
        vm = VirtualMachine(exe)
        out = vm.run(np.random.RandomState(0).randn(1, 3, 32, 32).astype(np.float32))
        assert out.shape == (1, 10)
        assert np.all(np.isfinite(out.numpy()))
