"""Manifest allocation, memory planning (§4.3), device placement (§4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device import DevicePlace
from repro.core.memory import ManifestAlloc, MemoryPlan
from repro.core.memory.liveness import AliasLiveness
from repro.core.typing import infer_types
from repro.hardware import intel_cpu, nvidia_gpu
from repro.ir import (
    Any,
    Call,
    Function,
    IRModule,
    Let,
    Op,
    TensorType,
    Var,
    iter_nodes,
)
from repro.ops import api
from repro.passes import DeadCodeElimination, FuseOps, Sequential, ToANF
from repro.tensor.device import cpu, gpu


def _lower(func, plan=True, platform=None):
    platform = platform or intel_cpu()
    # Same order as nimble.build: placement before planning.
    passes = [ToANF(), FuseOps(), ManifestAlloc(), DevicePlace(platform.host, platform.compute)]
    if plan:
        passes.append(MemoryPlan())
    mod = infer_types(IRModule.from_expr(func))
    return Sequential(passes).run(mod)


def _op_calls(func, name):
    out = []
    for node in iter_nodes(func.body):
        if isinstance(node, Call) and isinstance(node.op, Op) and node.op.name == name:
            out.append(node)
    return out


class TestManifestAlloc:
    def test_static_call_gets_explicit_allocation(self):
        x = Var("x", TensorType((4, 8)))
        w = Var("w", TensorType((8, 8)))
        mod = _lower(Function([x, w], api.dense(x, w)), plan=False)
        main = mod.main
        assert len(_op_calls(main, "memory.alloc_storage")) == 1
        assert len(_op_calls(main, "memory.alloc_tensor")) == 1
        assert len(_op_calls(main, "vm.invoke_mut")) == 1
        # Static shapes: no shape functions needed.
        assert len(_op_calls(main, "vm.shape_of")) == 0

    def test_dynamic_call_gets_shape_function(self):
        """The paper's §4.3 dynamic-concat lowering: shape_of on each input,
        a shape-function invocation, size computation, then the kernel."""
        x = Var("x", TensorType((Any(), 2), "float32"))
        y = Var("y", TensorType((1, 2), "float32"))
        mod = _lower(Function([x, y], api.concatenate([x, y], axis=0)), plan=False)
        main = mod.main
        assert len(_op_calls(main, "vm.shape_of")) == 2
        invokes = _op_calls(main, "vm.invoke_mut")
        kinds = sorted(c.attrs.get("kind", "compute") for c in invokes)
        assert kinds == ["compute", "host_scalar", "shape_func"]

    def test_data_dependent_op_receives_values(self):
        x = Var("x", TensorType((6,), "float32"))
        mod = _lower(Function([x], api.unique(x)), plan=False)
        main = mod.main
        # Data-dependent: shape function consumes the value, not shape_of.
        sf = [c for c in _op_calls(main, "vm.invoke_mut") if c.attrs.get("kind") == "shape_func"]
        assert len(sf) == 1
        assert len(_op_calls(main, "vm.shape_of")) == 0

    def test_upper_bound_op_gets_slice(self):
        boxes = Var("b", TensorType((8, 4), "float32"))
        scores = Var("s", TensorType((8,), "float32"))
        mod = _lower(
            Function([boxes, scores], api.non_max_suppression(boxes, scores)), plan=False
        )
        main = mod.main
        slices = _op_calls(main, "vm.slice_upper_bound")
        assert len(slices) == 1


class TestMemoryPlan:
    def _bert_like(self, n_layers=4):
        """A chain of denses: successive temporaries have disjoint lives."""
        x = Var("x", TensorType((8, 16)))
        cur = x
        params = [x]
        import numpy as np
        from repro.ir import const

        for i in range(n_layers):
            w = const(np.zeros((16, 16), np.float32))
            cur = api.relu(api.dense(cur, w))
        return Function(params, cur)

    def test_coalescing_reduces_allocations(self):
        plan_pass = MemoryPlan()
        mod = infer_types(IRModule.from_expr(self._bert_like()))
        mod = Sequential([ToANF(), FuseOps(), ManifestAlloc(), plan_pass]).run(mod)
        report = plan_pass.report
        assert report.allocs_before > report.allocs_after
        assert report.alloc_reduction > 0.3

    def test_kills_inserted(self):
        plan_pass = MemoryPlan()
        mod = infer_types(IRModule.from_expr(self._bert_like()))
        mod = Sequential([ToANF(), FuseOps(), ManifestAlloc(), plan_pass]).run(mod)
        assert plan_pass.report.kills_inserted > 0
        assert len(_op_calls(mod.main, "memory.kill")) == plan_pass.report.kills_inserted

    def test_result_buffer_never_killed(self):
        plan_pass = MemoryPlan()
        mod = infer_types(IRModule.from_expr(self._bert_like()))
        mod = Sequential([ToANF(), FuseOps(), ManifestAlloc(), plan_pass]).run(mod)
        # Execute and verify the result buffer is intact (the VM would
        # raise use-after-free otherwise).
        from repro.vm.compiler import VMCompiler
        from repro.vm.interpreter import VirtualMachine

        exe = VMCompiler(intel_cpu()).compile(mod)
        vm = VirtualMachine(exe)
        out = vm.run(np.random.randn(8, 16).astype(np.float32))
        assert out.shape == (8, 16)

    def test_reuse_preserves_numerics(self):
        """The planner's non-overlap invariant: with and without planning,
        results are identical."""
        func = self._bert_like()
        x = np.random.RandomState(0).randn(8, 16).astype(np.float32)
        import repro.nimble as nimble

        results = []
        for plan in (False, True):
            exe, _ = nimble.build(IRModule.from_expr(func), intel_cpu(), plan_memory=plan)
            from repro.vm.interpreter import VirtualMachine

            results.append(VirtualMachine(exe).run(x).numpy())
        assert np.allclose(results[0], results[1])


@st.composite
def _op_chains(draw):
    """A random straight-line compute chain: each step applies a unary or
    binary elementwise op (or a dense) to previously-computed values."""
    n = draw(st.integers(min_value=3, max_value=10))
    steps = []
    for i in range(n):
        kind = draw(st.sampled_from(["relu", "tanh", "sigmoid", "dense", "add", "multiply"]))
        a = draw(st.integers(min_value=0, max_value=i))
        b = draw(st.integers(min_value=0, max_value=i)) if kind in ("add", "multiply") else None
        steps.append((kind, a, b))
    return steps


class TestPlannerProperty:
    """§4.3 soundness, property-based: whatever the liveness intervals, the
    planner never multiplexes two overlapping-lifetime buffers onto one
    storage slot — checked structurally on the planned IR and end-to-end on
    the numerics."""

    SHAPE = (8, 16)

    def _build(self, steps):
        from repro.ir import const

        rng = np.random.RandomState(0)
        w = const(rng.randn(self.SHAPE[1], self.SHAPE[1]).astype(np.float32) * 0.1)
        x = Var("x", TensorType(self.SHAPE, "float32"))
        vals = [x]
        for kind, a, b in steps:
            if kind == "dense":
                vals.append(api.dense(vals[a], w))
            elif kind in ("add", "multiply"):
                vals.append(getattr(api, kind)(vals[a], vals[b]))
            else:
                vals.append(getattr(api, kind)(vals[a]))
        return Function([x], vals[-1])

    @staticmethod
    def _storage_conflicts(main):
        """Group planned tensors by storage root; return any pair carved
        from one slot whose [def, last-use] intervals overlap."""
        bindings = []
        node = main.body
        while isinstance(node, Let):
            bindings.append((node.var, node.value))
            node = node.body
        tail = node

        def op_name(value):
            if isinstance(value, Call) and isinstance(value.op, Op):
                return value.op.name
            return None

        # Resolve storage aliases (Let var = other_storage_var) to roots.
        roots = {}
        for var, value in bindings:
            if op_name(value) == "memory.alloc_storage":
                roots[var] = var
            elif isinstance(value, Var) and value in roots:
                roots[var] = roots[value]

        index = {}
        tensor_storage = {}
        for i, (var, value) in enumerate(bindings):
            index[var] = i
            if op_name(value) == "memory.alloc_tensor":
                storage = value.args[0]
                if isinstance(storage, Var) and storage in roots:
                    tensor_storage[var] = roots[storage]

        # Last *real* use of each var: kills are destructor markers, not reads.
        last_use = {}
        for i, (var, value) in enumerate(bindings):
            if op_name(value) == "memory.kill":
                continue
            for node in iter_nodes(value):
                if isinstance(node, Var):
                    last_use[node] = i
        for node in iter_nodes(tail):
            if isinstance(node, Var):
                last_use[node] = len(bindings)

        by_storage = {}
        for tensor, storage in tensor_storage.items():
            interval = (index[tensor], max(index[tensor], last_use.get(tensor, -1)))
            by_storage.setdefault(storage, []).append((tensor, interval))

        conflicts = []
        for storage, tensors in by_storage.items():
            tensors.sort(key=lambda entry: entry[1])
            for (t1, (s1, e1)), (t2, (s2, e2)) in zip(tensors, tensors[1:]):
                if s2 <= e1:
                    conflicts.append((storage, t1, (s1, e1), t2, (s2, e2)))
        return conflicts

    @given(steps=_op_chains())
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_no_overlapping_lifetimes_share_a_slot(self, steps):
        func = self._build(steps)
        plan_pass = MemoryPlan()
        platform = intel_cpu()
        # Same order as nimble.build: placement before planning.
        mod = infer_types(IRModule.from_expr(func))
        mod = Sequential(
            [ToANF(), FuseOps(), ManifestAlloc(),
             DevicePlace(platform.host, platform.compute), plan_pass]
        ).run(mod)
        assert self._storage_conflicts(mod.main) == []

        # End-to-end: reuse must be invisible in the numerics.
        import repro.nimble as nimble
        from repro.vm.interpreter import VirtualMachine

        x = np.random.RandomState(1).randn(*self.SHAPE).astype(np.float32)
        outputs = []
        for plan in (False, True):
            exe, _ = nimble.build(IRModule.from_expr(func), platform, plan_memory=plan)
            outputs.append(VirtualMachine(exe).run(x).numpy())
        assert np.allclose(outputs[0], outputs[1], atol=1e-5)


class TestAliasLiveness:
    def test_move_aliases_share_group(self):
        x = Var("x", TensorType((2,)))
        a = Var("a")
        b = Var("b")
        chain = Let(a, api.tanh(x), Let(b, a, b))
        live = AliasLiveness(chain)
        assert live.aliases.same(a, b)

    def test_escaping_tail(self):
        x = Var("x", TensorType((2,)))
        a = Var("a")
        chain = Let(a, api.tanh(x), a)
        live = AliasLiveness(chain)
        assert live.group_escapes(a)

    def test_non_escaping_intermediate(self):
        x = Var("x", TensorType((2,)))
        a, b = Var("a"), Var("b")
        chain = Let(a, api.tanh(x), Let(b, api.exp(a), b))
        live = AliasLiveness(chain)
        assert not live.group_escapes(a)
        assert live.group_interval(a) == (0, 1)


class TestDevicePlacement:
    def _lower_gpu(self, func, **kw):
        return _lower(func, platform=nvidia_gpu(), **kw)

    def test_cpu_platform_no_copies(self):
        x = Var("x", TensorType((Any(), 2), "float32"))
        y = Var("y", TensorType((1, 2), "float32"))
        place = DevicePlace(cpu(0), cpu(0))
        mod = infer_types(IRModule.from_expr(Function([x, y], api.concatenate([x, y], axis=0))))
        mod = Sequential([ToANF(), FuseOps(), ManifestAlloc(), place]).run(mod)
        assert place.report.copies_inserted == 0

    def test_gpu_kernels_on_device_shape_funcs_on_host(self):
        x = Var("x", TensorType((Any(), 2), "float32"))
        y = Var("y", TensorType((1, 2), "float32"))
        mod = self._lower_gpu(Function([x, y], api.concatenate([x, y], axis=0)), plan=False)
        invokes = _op_calls(mod.main, "vm.invoke_mut")
        for call in invokes:
            kind = call.attrs.get("kind", "compute")
            device = call.attrs.get("device")
            if kind == "compute":
                assert device.is_gpu
            else:
                assert device.is_cpu

    def test_alloc_storage_gets_device_attr(self):
        x = Var("x", TensorType((4, 8), "float32"))
        w = Var("w", TensorType((8, 8), "float32"))
        mod = self._lower_gpu(Function([x, w], api.dense(x, w)))
        allocs = _op_calls(mod.main, "memory.alloc_storage")
        assert all("device" in a.attrs for a in allocs)
        assert any(a.attrs["device"].is_gpu for a in allocs)

    def test_data_dependent_shape_func_forces_copy(self):
        """unique's shape function needs the VALUE on the host: on a GPU
        platform a device_copy must appear (§4.4)."""
        x = Var("x", TensorType((6,), "float32"))
        func = Function([x], api.unique(api.tanh(x)))
        mod = self._lower_gpu(func, plan=False)
        copies = _op_calls(mod.main, "device.device_copy")
        assert len(copies) >= 1

    def test_scalar_kernels_go_to_host(self):
        i = Var("i", TensorType((), "int64"))
        n = Var("n", TensorType((), "int64"))
        func = Function([i, n], api.less(i, n))
        mod = self._lower_gpu(func)
        invokes = _op_calls(mod.main, "vm.invoke_mut")
        assert all(c.attrs["device"].is_cpu for c in invokes)
