"""End-to-end determinism: the whole point of the virtual-clock
methodology is that compile + run is a pure function of its inputs. For
all three dynamic model families, two independent ``nimble.build`` +
``vm.run`` invocations must produce bit-identical outputs, identical
virtual latencies, and identical serialized executables."""

import numpy as np
import pytest

import repro.nimble as nimble
from repro.hardware import intel_cpu, nvidia_gpu
from repro.runtime.context import ExecutionContext
from repro.vm.interpreter import VirtualMachine


def _lstm_case():
    from repro.models.lstm import LSTMWeights, build_lstm_module

    weights = LSTMWeights.create(input_size=8, hidden_size=8, num_layers=1, seed=0)
    mod = build_lstm_module(weights)
    x = (np.random.RandomState(3).randn(11, 8) * 0.1).astype(np.float32)
    return mod, (x,)


def _tree_lstm_case():
    from repro.data import embedding_table, sst_like_trees
    from repro.models.tree_lstm import TreeLSTMWeights, build_tree_lstm_module, tree_to_adt

    weights = TreeLSTMWeights.create(input_size=8, hidden_size=4, seed=0)
    mod = build_tree_lstm_module(weights)
    tree = sst_like_trees(1, seed=0)[0]
    embeddings = embedding_table(dim=8, seed=0)
    return mod, (tree_to_adt(tree, embeddings),)


def _bert_case():
    from repro.models.bert import BertConfig, BertWeights, build_bert_module

    config = BertConfig(hidden=16, num_layers=2, num_heads=2, ffn=32)
    weights = BertWeights.create(config, seed=0)
    mod = build_bert_module(weights)
    x = (np.random.RandomState(5).randn(9, 16) * 0.1).astype(np.float32)
    return mod, (x,)


CASES = {"lstm": _lstm_case, "tree_lstm": _tree_lstm_case, "bert": _bert_case}


def _flatten(out):
    if isinstance(out, tuple):
        return [arr for item in out for arr in _flatten(item)]
    return [out.numpy()]


def _once(family, platform):
    mod, inputs = CASES[family]()
    exe, _ = nimble.build(mod, platform)
    ctx = ExecutionContext(platform)
    vm = VirtualMachine(exe, ctx)
    out = vm.run(*inputs)
    # Compare the bytecode + constant sections: kernels pickle ``Any``
    # identity tokens, which are process-global counters and thus differ
    # between two builds without changing semantics.
    sections = exe._serialize_bytecode() + exe._serialize_constants()
    return _flatten(out), ctx.elapsed_us, sections


@pytest.mark.parametrize("family", ["lstm", "tree_lstm", "bert"])
@pytest.mark.parametrize("platform_fn", [intel_cpu, nvidia_gpu], ids=["intel", "nvidia"])
def test_build_and_run_bit_identical(family, platform_fn):
    out_a, latency_a, bytecode_a = _once(family, platform_fn())
    out_b, latency_b, bytecode_b = _once(family, platform_fn())
    assert len(out_a) == len(out_b)
    for arr_a, arr_b in zip(out_a, out_b):
        assert arr_a.dtype == arr_b.dtype
        assert np.array_equal(arr_a, arr_b)  # bit-identical, not just close
    assert latency_a == latency_b
    assert bytecode_a == bytecode_b


@pytest.mark.parametrize("family", ["lstm", "tree_lstm", "bert"])
def test_latency_identical_across_numerics_modes(family):
    """lite mode skips heavy NumPy but must keep the exact latency model."""
    mod, inputs = CASES[family]()
    exe, _ = nimble.build(mod, intel_cpu())
    latencies = {}
    for mode in ("full", "lite"):
        ctx = ExecutionContext(intel_cpu(), numerics=mode)
        VirtualMachine(exe, ctx).run(*inputs)
        latencies[mode] = ctx.elapsed_us
    assert latencies["full"] == latencies["lite"]
