"""Closures: LambdaLift + the AllocClosure/InvokeClosure ISA path."""

import numpy as np
import pytest

import repro.nimble as nimble
from repro.core.typing import infer_types
from repro.hardware import intel_cpu
from repro.ir import (
    Call,
    Function,
    FuncType,
    IRModule,
    ScopeBuilder,
    TensorType,
    Var,
)
from repro.ops import api
from repro.passes import LambdaLift, ToANF
from repro.vm.interpreter import VirtualMachine


def _adder_module():
    """main(x, y) = (fn(z){ z + x })(y)  — the closure captures x."""
    ty = TensorType((4,), "float32")
    x = Var("x", ty)
    y = Var("y", ty)
    z = Var("z", ty)
    inner = Function([z], api.add(z, x), ty)
    sb = ScopeBuilder()
    clo = sb.let("clo", inner)
    out = sb.let("out", Call(clo, [y]))
    return IRModule.from_expr(Function([x, y], sb.get(out)))


class TestLambdaLift:
    def test_lifts_literal_to_global(self):
        mod = infer_types(_adder_module())
        mod = ToANF().run(mod)
        mod = infer_types(mod)
        lifted = LambdaLift().run(mod)
        names = [gv.name_hint for gv in lifted.functions]
        assert any(n.startswith("lifted") for n in names)

    def test_lifted_function_takes_captures_as_params(self):
        mod = infer_types(_adder_module())
        mod = infer_types(ToANF().run(mod))
        lifted = LambdaLift().run(mod)
        inner = next(
            f for gv, f in lifted.functions.items() if gv.name_hint.startswith("lifted")
        )
        assert len(inner.params) == 2  # z + captured x
        assert all(p.type_annotation is not None for p in inner.params)

    def test_closure_executes_through_vm(self):
        exe, _ = nimble.build(_adder_module(), intel_cpu())
        vm = VirtualMachine(exe)
        x = np.float32([1, 2, 3, 4])
        y = np.float32([10, 20, 30, 40])
        out = vm.run(x, y)
        assert out.numpy().tolist() == [11, 22, 33, 44]
        assert vm.profile.instruction_counts["ALLOC_CLOSURE"] == 1
        assert vm.profile.instruction_counts["INVOKE_CLOSURE"] == 1

    def test_closure_called_twice(self):
        ty = TensorType((2,), "float32")
        x = Var("x", ty)
        y = Var("y", ty)
        z = Var("z", ty)
        inner = Function([z], api.multiply(z, x), ty)
        sb = ScopeBuilder()
        clo = sb.let("clo", inner)
        a = sb.let("a", Call(clo, [y]))
        b = sb.let("b", Call(clo, [a]))
        mod = IRModule.from_expr(Function([x, y], sb.get(b)))
        exe, _ = nimble.build(mod, intel_cpu())
        out = VirtualMachine(exe).run(np.float32([2, 3]), np.float32([1, 1]))
        assert out.numpy().tolist() == [4, 9]  # y * x * x

    def test_capture_free_closure(self):
        ty = TensorType((2,), "float32")
        y = Var("y", ty)
        z = Var("z", ty)
        inner = Function([z], api.tanh(z), ty)
        sb = ScopeBuilder()
        clo = sb.let("clo", inner)
        out = sb.let("out", Call(clo, [y]))
        mod = IRModule.from_expr(Function([y], sb.get(out)))
        exe, _ = nimble.build(mod, intel_cpu())
        out_v = VirtualMachine(exe).run(np.float32([0.5, -0.5]))
        assert np.allclose(out_v.numpy(), np.tanh([0.5, -0.5]), atol=1e-6)

    def test_capture_escapes_memory_planning(self):
        """A tensor captured by a closure must never be killed/reused even
        if the closure is invoked later."""
        ty = TensorType((2,), "float32")
        x = Var("x", ty)
        z = Var("z", ty)
        sb = ScopeBuilder()
        cap = sb.let("cap", api.exp(x))  # tensor captured by the closure
        inner = Function([z], api.add(z, cap), ty)
        clo = sb.let("clo", inner)
        spacer = sb.let("spacer", api.tanh(x))  # allocates after cap dies?
        out = sb.let("out", Call(clo, [spacer]))
        mod = IRModule.from_expr(Function([x], sb.get(out)))
        exe, _ = nimble.build(mod, intel_cpu())
        data = np.float32([0.1, 0.2])
        out_v = VirtualMachine(exe).run(data)
        expect = np.tanh(data) + np.exp(data)
        assert np.allclose(out_v.numpy(), expect, atol=1e-5)
