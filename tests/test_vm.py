"""The VM (§5): ISA completeness, serialization round-trip, interpreter
semantics, reference counting, profiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nimble as nimble
from repro.errors import SerializationError, VMError
from repro.hardware import intel_cpu, nvidia_gpu
from repro.ir import (
    Any,
    Call,
    Clause,
    Function,
    If,
    IRModule,
    Match,
    PatternConstructor,
    PatternVar,
    PatternWildcard,
    ScopeBuilder,
    TensorType,
    Tuple,
    TupleGetItem,
    TypeCall,
    TypeData,
    Var,
    const,
    scalar_type,
)
from repro.ops import api
from repro.runtime.context import ExecutionContext
from repro.tensor import array, cpu, gpu
from repro.vm import instruction as ins
from repro.vm.executable import Executable, VMFunction, _decode_instruction, _encode_instruction
from repro.vm.interpreter import VirtualMachine
from repro.vm.objects import ADTObj, StorageObj, TensorObj


class TestISA:
    def test_exactly_twenty_paper_opcodes(self):
        """Table A.1: the ISA has exactly 20 paper instructions, plus the
        two scheduling opcodes of the AOT multi-stream extension."""
        scheduling = {ins.Opcode.STREAM_EVENT, ins.Opcode.STREAM_WAIT}
        assert len(set(ins.Opcode) - scheduling) == 20
        assert len(ins.Opcode) == 22

    def test_all_opcodes_named_as_paper(self):
        names = {op.name for op in ins.Opcode}
        for expected in (
            "MOVE", "RET", "INVOKE", "INVOKE_CLOSURE", "INVOKE_PACKED",
            "ALLOC_STORAGE", "ALLOC_TENSOR", "ALLOC_TENSOR_REG", "ALLOC_ADT",
            "ALLOC_CLOSURE", "GET_FIELD", "GET_TAG", "IF", "GOTO",
            "LOAD_CONST", "LOAD_CONSTI", "DEVICE_COPY", "SHAPE_OF",
            "RESHAPE_TENSOR", "FATAL",
        ):
            assert expected in names


def _sample_instructions():
    return [
        ins.Move(1, 2),
        ins.Ret(3),
        ins.Invoke(0, (1, 2), 3),
        ins.InvokeClosure(4, (5,), 6),
        ins.InvokePacked(2, 3, 1, (0, 1, 2), cpu(0), "compute"),
        ins.AllocStorage(1, 64, gpu(0), 2),
        ins.AllocTensor(1, 2, (3, 4), "float32", 5),
        ins.AllocTensorReg(1, 2, 3, "int64", 4),
        ins.AllocADT(-1, 2, (1, 2), 3),
        ins.AllocClosure(1, 2, (3, 4), 5),
        ins.GetField(1, 0, 2),
        ins.GetTag(1, 2),
        ins.If(1, 2, 1, -5),
        ins.Goto(-3),
        ins.LoadConst(0, 1),
        ins.LoadConsti(-42, 1),
        ins.DeviceCopy(1, 2, gpu(0), cpu(0)),
        ins.ShapeOf(1, 2),
        ins.ReshapeTensor(1, 2, 3),
        ins.Fatal("boom"),
        ins.InvokePacked(2, 3, 1, (0, 1, 2), gpu(0), "compute", stream=3),
        ins.StreamEvent(7, gpu(0), 2),
        ins.StreamWait(7, gpu(0), 0),
    ]


class TestSerialization:
    def test_every_instruction_roundtrips(self):
        import io

        for instr in _sample_instructions():
            buf = io.BytesIO()
            _encode_instruction(buf, instr)
            buf.seek(0)
            assert _decode_instruction(buf) == instr

    def test_executable_roundtrip(self):
        exe = Executable(
            platform_name="intel",
            functions=[VMFunction("main", 1, _sample_instructions(), 10)],
            func_index={"main": 0},
            constants=[array(np.arange(6, dtype=np.float32).reshape(2, 3))],
            kernels=[],
        )
        blob = exe.save()
        loaded = Executable.load(blob)
        assert loaded.platform_name == "intel"
        assert loaded.functions[0].instructions == exe.functions[0].instructions
        assert np.array_equal(loaded.constants[0].numpy(), exe.constants[0].numpy())

    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError):
            Executable.load(b"XXXX" + b"\x00" * 16)

    @given(values=st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_varint_roundtrip(self, values):
        import io

        from repro.vm.executable import _read_varint, _write_varint

        buf = io.BytesIO()
        for v in values:
            _write_varint(buf, v)
        buf.seek(0)
        assert [_read_varint(buf) for _ in values] == values

    def test_compiled_executable_roundtrips_and_runs(self):
        x = Var("x", TensorType((Any(), 2), "float32"))
        y = Var("y", TensorType((1, 2), "float32"))
        mod = IRModule.from_expr(Function([x, y], api.concatenate([x, y], axis=0)))
        exe, _ = nimble.build(mod, intel_cpu())
        loaded = Executable.load(exe.save())
        xa = np.random.rand(3, 2).astype(np.float32)
        ya = np.random.rand(1, 2).astype(np.float32)
        out = VirtualMachine(loaded).run(xa, ya)
        assert np.allclose(out.numpy(), np.concatenate([xa, ya]))


class TestObjects:
    def test_storage_refcount_frees_once(self):
        freed = []
        from repro.tensor.storage import Storage

        sto = StorageObj(Storage(64, 64, cpu()), on_free=freed.append)
        sto.retain()
        sto.release()
        assert not freed
        sto.release()
        assert len(freed) == 1

    def test_tensor_retains_storage(self):
        freed = []
        from repro.tensor.storage import Storage

        raw = Storage(64, 64, cpu())
        sto = StorageObj(raw, on_free=freed.append)
        t = TensorObj(array([1.0]), sto)
        sto.release()  # drop the storage register's own ref
        assert not freed
        t.release()  # last tensor reference
        assert len(freed) == 1

    def test_adt_retains_fields(self):
        freed = []
        from repro.tensor.storage import Storage

        sto = StorageObj(Storage(64, 64, cpu()), on_free=freed.append)
        t = TensorObj(array([1.0]), sto)
        adt = ADTObj(0, [t])
        sto.release()
        t.release()
        assert not freed  # ADT still holds the field
        adt.release()
        assert len(freed) == 1


class TestInterpreterSemantics:
    def _run(self, mod, *inputs, platform=None):
        exe, _ = nimble.build(mod, platform or intel_cpu())
        vm = VirtualMachine(exe)
        return vm.run(*inputs), vm

    def test_if_both_branches(self):
        c = Var("c", scalar_type("bool"))
        x = Var("x", TensorType((2,)))
        mod = IRModule.from_expr(Function([c, x], If(c, api.add(x, x), x)))
        x_in = np.float32([1, 2])
        out_t, _ = self._run(mod, np.bool_(True), x_in)
        out_f, _ = self._run(mod, np.bool_(False), x_in)
        assert out_t.numpy().tolist() == [2, 4]
        assert out_f.numpy().tolist() == [1, 2]

    def test_match_wildcard_clause(self):
        mod = IRModule()
        gtv = mod.get_global_type_var("Opt")
        data = TypeData(gtv, [], [("None_", []), ("Some", [TensorType((2,))])])
        mod.add_type_data(data)
        t = Var("t", TypeCall(gtv, []))
        v = Var("v")
        fallback = const(np.zeros(2, np.float32))
        clauses = [
            Clause(PatternConstructor(data.constructor("Some"), [PatternVar(v)]), v),
            Clause(PatternWildcard(), fallback),
        ]
        mod["main"] = Function([t], Match(t, clauses), TensorType((2,)))
        some = ADTObj(1, [TensorObj(array(np.float32([5, 6])))])
        none = ADTObj(0, [])
        out_some, _ = self._run(mod, some)
        out_none, _ = self._run(mod, none)
        assert out_some.numpy().tolist() == [5, 6]
        assert out_none.numpy().tolist() == [0, 0]

    def test_no_matching_clause_is_fatal(self):
        mod = IRModule()
        gtv = mod.get_global_type_var("Opt2")
        data = TypeData(gtv, [], [("A", []), ("B", [])])
        mod.add_type_data(data)
        t = Var("t", TypeCall(gtv, []))
        clauses = [Clause(PatternConstructor(data.constructor("A"), []), const(1.0))]
        mod["main"] = Function([t], Match(t, clauses), scalar_type())
        exe, _ = nimble.build(mod, intel_cpu())
        with pytest.raises(VMError, match="no matching clause"):
            VirtualMachine(exe).run(ADTObj(1, []))

    def test_tuple_construction_and_projection(self):
        x = Var("x", TensorType((2,)))
        pair = Tuple([x, api.add(x, x)])
        mod = IRModule.from_expr(Function([x], TupleGetItem(pair, 1)))
        out, _ = self._run(mod, np.float32([1, 2]))
        assert out.numpy().tolist() == [2, 4]

    def test_returning_tuple_unwraps(self):
        x = Var("x", TensorType((2,)))
        mod = IRModule.from_expr(Function([x], Tuple([x, x])))
        out, _ = self._run(mod, np.float32([1, 2]))
        assert isinstance(out, tuple) and len(out) == 2

    def test_wrong_arity_rejected(self):
        x = Var("x", TensorType((2,)))
        mod = IRModule.from_expr(Function([x], x))
        exe, _ = nimble.build(mod, intel_cpu())
        with pytest.raises(VMError):
            VirtualMachine(exe).run()

    def test_platform_mismatch_rejected(self):
        x = Var("x", TensorType((2,)))
        mod = IRModule.from_expr(Function([x], api.tanh(x)))
        exe, _ = nimble.build(mod, intel_cpu())
        with pytest.raises(VMError):
            VirtualMachine(exe, ExecutionContext(nvidia_gpu()))

    def test_deep_recursion_via_frame_stack(self):
        """300 recursive calls: the explicit frame stack handles depths
        that would stress Python recursion inside the dispatch loop."""
        mod = IRModule()
        gv = mod.get_global_var("count")
        i = Var("i", scalar_type("int64"))
        n = Var("n", scalar_type("int64"))
        body = If(
            api.less(i, n),
            Call(gv, [api.add(i, const(np.int64(1), "int64")), n]),
            i,
        )
        mod[gv] = Function([i, n], body, scalar_type("int64"))
        main_n = Var("n", scalar_type("int64"))
        mod["main"] = Function([main_n], Call(gv, [const(np.int64(0), "int64"), main_n]))
        out, _ = self._run(mod, np.int64(300))
        assert out.numpy().item() == 300

    def test_profile_counts_instructions(self):
        x = Var("x", TensorType((4, 8)))
        w = Var("w", TensorType((8, 8)))
        mod = IRModule.from_expr(Function([x, w], api.dense(x, w)))
        _, vm = self._run(mod, np.zeros((4, 8), np.float32), np.zeros((8, 8), np.float32))
        assert vm.profile.kernel_invocations == 1
        assert vm.profile.instruction_counts["INVOKE_PACKED"] == 1
        assert vm.profile.instruction_counts["RET"] == 1

    def test_gpu_overlap_reduces_others(self):
        """§6.3: on the GPU platform, bytecode overhead overlaps with
        asynchronous kernel execution."""
        x = Var("x", TensorType((64, 64)))
        w = Var("w", TensorType((64, 64)))
        body = api.relu(api.dense(x, w))
        for _ in range(4):
            body = api.relu(api.dense(body, w))  # denses never fuse together
        mod = IRModule.from_expr(Function([x, w], body))
        exe, _ = nimble.build(mod, nvidia_gpu())
        ctx = ExecutionContext(nvidia_gpu())
        vm = VirtualMachine(exe, ctx)
        vm.run(np.zeros((64, 64), np.float32), np.zeros((64, 64), np.float32))
        elapsed = ctx.elapsed_us
        others = vm.profile.others_us(elapsed)
        # Host work overlaps: "others" is a small fraction of kernel time.
        assert others < vm.profile.kernel_time_us * 0.5

    def test_lite_numerics_same_latency(self):
        """The latency model is identical in full and lite modes."""
        x = Var("x", TensorType((Any(), 32), "float32"))
        w = const(np.random.RandomState(0).randn(32, 32).astype(np.float32))
        mod = IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))
        exe, _ = nimble.build(mod, intel_cpu())
        lat = {}
        for mode in ("full", "lite"):
            ctx = ExecutionContext(intel_cpu(), numerics=mode)
            vm = VirtualMachine(exe, ctx)
            vm.run(np.random.rand(9, 32).astype(np.float32))
            lat[mode] = ctx.elapsed_us
        assert lat["full"] == pytest.approx(lat["lite"], rel=1e-9)

    def test_profile_counts_runs(self):
        x = Var("x", TensorType((2,)))
        mod = IRModule.from_expr(Function([x], api.tanh(x)))
        _, vm = self._run(mod, np.zeros(2, np.float32))
        assert vm.profile.runs == 1
        vm.run(np.zeros(2, np.float32))
        assert vm.profile.runs == 2

    def test_allocator_pooling_across_runs(self):
        x = Var("x", TensorType((Any(), 16), "float32"))
        w = const(np.zeros((16, 16), np.float32))
        mod = IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))
        exe, _ = nimble.build(mod, intel_cpu())
        ctx = ExecutionContext(intel_cpu())
        vm = VirtualMachine(exe, ctx)
        data = np.zeros((4, 16), np.float32)
        vm.run(data)
        fresh_first = ctx.allocator.stats.fresh_allocs
        vm.run(data)
        # Second run reuses pooled buffers freed by kills/refcounting.
        assert ctx.allocator.stats.pooled_allocs > 0
        assert ctx.allocator.stats.fresh_allocs == fresh_first


class TestLeakRegression:
    """After every run — successful or not — each pooled storage buffer must
    return to the allocator: refcounts drain to zero, live bytes hit zero."""

    def _dyn_module(self):
        x = Var("x", TensorType((Any(), 8), "float32"))
        w = const(np.zeros((8, 8), np.float32))
        return IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))

    def test_buffers_drain_after_run(self):
        exe, _ = nimble.build(self._dyn_module(), intel_cpu())
        ctx = ExecutionContext(intel_cpu())
        vm = VirtualMachine(exe, ctx)
        for rows in (3, 9, 3, 17):
            vm.run(np.zeros((rows, 8), np.float32))
            assert ctx.allocator.live_bytes == 0
        stats = ctx.allocator.stats
        assert stats.frees == stats.total_allocs

    def test_buffers_drain_after_tuple_result(self):
        x = Var("x", TensorType((4,)))
        mod = IRModule.from_expr(Function([x], Tuple([api.tanh(x), api.exp(x)])))
        exe, _ = nimble.build(mod, intel_cpu())
        ctx = ExecutionContext(intel_cpu())
        out = VirtualMachine(exe, ctx).run(np.zeros(4, np.float32))
        assert isinstance(out, tuple)
        assert ctx.allocator.live_bytes == 0

    def _failing_module(self):
        """Allocates a buffer (tanh), then dies: Match with no clause for B."""
        from repro.ir import Clause, Match, PatternConstructor, ScopeBuilder, TypeCall, TypeData

        mod = IRModule()
        gtv = mod.get_global_type_var("LeakOpt")
        data = TypeData(gtv, [], [("A", []), ("B", [])])
        mod.add_type_data(data)
        t = Var("t", TypeCall(gtv, []))
        x = Var("x", TensorType((16,)))
        sb = ScopeBuilder()
        a = sb.let("a", api.tanh(x))
        clauses = [Clause(PatternConstructor(data.constructor("A"), []), a)]
        m = sb.let("m", Match(t, clauses))
        mod["main"] = Function([t, x], sb.get(m), TensorType((16,)))
        return mod

    def test_buffers_drain_on_error_path(self):
        exe, _ = nimble.build(self._failing_module(), intel_cpu())
        ctx = ExecutionContext(intel_cpu())
        vm = VirtualMachine(exe, ctx)
        bad = ADTObj(1, [])  # constructor B: no matching clause -> Fatal
        with pytest.raises(VMError, match="no matching clause"):
            vm.run(bad, np.zeros(16, np.float32))
        assert ctx.allocator.live_bytes == 0
        assert ctx.allocator.stats.frees == ctx.allocator.stats.total_allocs

    def test_vm_usable_after_error(self):
        exe, _ = nimble.build(self._failing_module(), intel_cpu())
        ctx = ExecutionContext(intel_cpu())
        vm = VirtualMachine(exe, ctx)
        with pytest.raises(VMError):
            vm.run(ADTObj(1, []), np.zeros(16, np.float32))
        good = vm.run(ADTObj(0, []), np.ones(16, np.float32))
        assert np.allclose(good.numpy(), np.tanh(np.ones(16, np.float32)))
        assert ctx.allocator.live_bytes == 0

    def test_release_all_keeps_leaks_visible(self):
        """Regression: release_all used to zero live_bytes unconditionally,
        forgiving leaked (never-freed) buffers and defeating the
        leak-regression invariant."""
        from repro.runtime.allocator import PoolingAllocator

        allocator = PoolingAllocator(intel_cpu())
        device = intel_cpu().host
        leaked = allocator.alloc(128, 64, device)
        pooled = allocator.alloc(256, 64, device)
        allocator.free(pooled)
        assert allocator.live_bytes == 128
        allocator.release_all()  # drops only the pooled storage
        assert allocator.live_bytes == 128
        with pytest.raises(MemoryError, match="live bytes"):
            allocator.assert_drained()
        allocator.free(leaked)
        assert allocator.live_bytes == 0
        allocator.assert_drained()

    def test_worker_reset_surfaces_leaks(self):
        """A worker whose allocator still holds live buffers must fail its
        reset instead of silently replaying on a leaky pool."""
        from repro.serve import Worker

        exe, _ = nimble.build(self._dyn_module(), intel_cpu())
        worker = Worker(0, exe, intel_cpu())
        worker.reset()  # clean reset works
        worker.ctx.allocator.alloc(64, 64, intel_cpu().host)  # simulate a leak
        with pytest.raises(MemoryError, match="live bytes"):
            worker.reset()


class TestProfileResetMergeSymmetry:
    """merge/reset walk the dataclass fields, so every field — present
    and future — must survive the symmetry: populate, merge == manual
    sums, reset == pristine. A field either of them misses fails here."""

    @staticmethod
    def populated(scale=1):
        from collections import Counter
        from dataclasses import fields

        from repro.vm.profiler import VMProfile

        p = VMProfile()
        for i, f in enumerate(fields(p), start=1):
            value = getattr(p, f.name)
            if isinstance(value, Counter):
                value.update({f"k{i}": i * scale, i % 3: 2 * i * scale})
            elif isinstance(value, float):
                setattr(p, f.name, (i + 0.5) * scale)
            else:
                setattr(p, f.name, i * scale)
        return p

    def test_populator_touches_every_field(self):
        from dataclasses import fields

        p = self.populated()
        for f in fields(p):
            assert getattr(p, f.name), f"field {f.name} not populated"

    def test_merge_sums_every_field(self):
        from collections import Counter
        from dataclasses import fields

        a, b = self.populated(1), self.populated(10)
        expect = self.populated(11)  # populate is linear in scale
        a.merge(b)
        for f in fields(a):
            got, want = getattr(a, f.name), getattr(expect, f.name)
            if isinstance(got, Counter):
                assert got == want, f.name
            else:
                assert got == pytest.approx(want), f.name

    def test_reset_zeroes_every_field(self):
        from dataclasses import fields

        from repro.vm.profiler import VMProfile

        p = self.populated()
        p.reset()
        assert p == VMProfile()
        for f in fields(p):
            assert not getattr(p, f.name), f"field {f.name} survived reset"

    def test_reset_does_not_alias_fresh_profiles(self):
        """reset() must clear Counters in place (merged references stay
        live) and never share state with a new profile."""
        from repro.vm.profiler import VMProfile

        p = self.populated()
        counts = p.instruction_counts
        p.reset()
        assert counts is p.instruction_counts  # cleared, not replaced
        p.instruction_counts["X"] += 1
        assert VMProfile().instruction_counts == {}

    def test_shape_func_invocations_reset_regression(self):
        from repro.vm.profiler import VMProfile

        p = VMProfile()
        p.record_shape_func(3.0)
        p.record_shape_func(4.0)
        assert p.shape_func_invocations == 2
        p.reset()
        assert p.shape_func_invocations == 0
        assert p.shape_func_time_us == 0.0

    def test_merge_then_reset_roundtrip(self):
        from repro.vm.profiler import VMProfile

        a = self.populated(3)
        b = VMProfile()
        b.merge(a)
        assert b == a
        a.reset()
        a.merge(b)
        assert a == b
