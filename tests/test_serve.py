"""The serving layer: shape bucketing, deadline batching, worker-pool
scheduling, report statistics, determinism, and leak-freedom."""

import numpy as np
import pytest

from repro.core.typing import infer_types
from repro.errors import VMError
from repro.harness.reporting import percentile
from repro.hardware import intel_cpu, nvidia_gpu
from repro.ir import Any, Function, IRModule, TensorType, TupleGetItem, Var, const
from repro.models.lstm import LSTMWeights, build_lstm_module, lstm_reference
from repro.ops import api
from repro.serve import (
    Batcher,
    InferenceServer,
    Request,
    Response,
    ServeConfig,
    ShapeBucketer,
    lstm_traffic,
    poisson_arrivals,
)
from repro.serve.report import ServeReport


def _dyn_mlp_module(dim=8, seed=0):
    """main(x: Tensor[(Any, dim)]): one dense + relu — a fast dynamic model."""
    w = const((np.random.RandomState(seed).randn(dim, dim) * 0.1).astype(np.float32))
    x = Var("x", TensorType((Any(), dim), "float32"))
    return IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))


def _typed_main(mod):
    return infer_types(mod)["main"]


def _payload(rows, dim=8, seed=0):
    return (np.random.RandomState(seed).randn(rows, dim) * 0.1).astype(np.float32)


def _requests(rows_list, dim=8, gap_us=100.0):
    return [
        Request(rid=i, arrival_us=i * gap_us, payload=_payload(rows, dim, seed=i))
        for i, rows in enumerate(rows_list)
    ]


class TestShapeBucketer:
    def test_lengths_round_up_to_shared_bucket(self):
        b = ShapeBucketer(_typed_main(_dyn_mlp_module()), granularity=8)
        assert b.dynamic_dims == [(0, (), 0)]
        assert b.key(_payload(9)) == (16,)
        assert b.key(_payload(16)) == (16,)
        assert b.key(_payload(17)) == (24,)

    def test_granularity_one_keeps_exact_shapes(self):
        b = ShapeBucketer(_typed_main(_dyn_mlp_module()), granularity=1)
        assert b.key(_payload(9)) == (9,)
        assert b.key(_payload(10)) == (10,)

    def test_static_model_has_single_bucket(self):
        x = Var("x", TensorType((4, 8), "float32"))
        mod = IRModule.from_expr(Function([x], api.relu(x)))
        b = ShapeBucketer(_typed_main(mod), granularity=8)
        assert b.dynamic_dims == []
        assert b.key(_payload(4)) == ()

    def test_independent_dynamic_dims_get_separate_components(self):
        x = Var("x", TensorType((Any(), 4), "float32"))
        y = Var("y", TensorType((Any(), 4), "float32"))
        mod = IRModule.from_expr(Function([x, y], api.concatenate([x, y], axis=0)))
        b = ShapeBucketer(_typed_main(mod), granularity=4)
        assert len(b.dynamic_dims) == 2
        key = b.key((_payload(3, 4), _payload(9, 4)))
        assert key == (4, 12)

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            ShapeBucketer(_typed_main(_dyn_mlp_module()), granularity=0)

    def test_tuple_typed_entry_dims_are_not_dropped(self):
        """Regression: a dynamic dim that only occurs inside a tuple-typed
        parameter used to be silently dropped from the bucket key, letting
        different dynamic shapes batch together."""
        from repro.ir.types import TupleType

        a, b = Any(), Any()
        pair_ty = TupleType(
            [TensorType((a, 4), "float32"), TensorType((b, 4), "float32")]
        )
        p = Var("p", pair_ty)
        body = api.concatenate(
            [TupleGetItem(p, 0), TupleGetItem(p, 1)], axis=0
        )
        mod = IRModule.from_expr(Function([p], body))
        bucketer = ShapeBucketer(_typed_main(mod), granularity=4)
        # Both tuple-field dims contribute key components through paths.
        assert bucketer.dynamic_dims == [(0, (0,), 0), (0, (1,), 0)]
        key = bucketer.key(((_payload(3, 4), _payload(9, 4)),))
        assert key == (4, 12)
        assert bucketer.exact_key(((_payload(3, 4), _payload(9, 4)),)) == (3, 9)
        # Different tuple shapes land in different buckets.
        other = bucketer.key(((_payload(9, 4), _payload(9, 4)),))
        assert other != key

    def test_tuple_path_on_non_tuple_payload_raises(self):
        from repro.ir.types import TupleType

        pair_ty = TupleType([TensorType((Any(), 4), "float32")])
        p = Var("p", pair_ty)
        mod = IRModule.from_expr(Function([p], api.relu(TupleGetItem(p, 0))))
        bucketer = ShapeBucketer(_typed_main(mod), granularity=4)
        with pytest.raises(ValueError, match="tuple-structured"):
            bucketer.key((_payload(3, 4),))

    def test_exact_key_is_unrounded(self):
        b = ShapeBucketer(_typed_main(_dyn_mlp_module()), granularity=8)
        assert b.exact_key(_payload(9)) == (9,)
        assert b.key(_payload(9)) == (16,)

    def test_round_key_is_the_single_rounding_path(self):
        """`key` must be exactly `round_key(exact_key(...))` — the server's
        specialization-aware bucket key reuses `round_key`, so the two
        rounding paths cannot drift."""
        b = ShapeBucketer(_typed_main(_dyn_mlp_module()), granularity=8)
        assert b.round_key((9,)) == (16,)
        assert b.round_key((16,)) == (16,)
        for rows in (1, 7, 8, 9, 31):
            assert b.key(_payload(rows)) == b.round_key(b.exact_key(_payload(rows)))


class TestBatcher:
    def _batcher(self, max_batch=3, max_delay=500.0, granularity=8):
        bucketer = ShapeBucketer(_typed_main(_dyn_mlp_module()), granularity)
        return Batcher(bucketer, max_batch_size=max_batch, max_delay_us=max_delay)

    def test_full_bucket_flushes_immediately(self):
        batcher = self._batcher(max_batch=2)
        assert batcher.add(Request(0, 0.0, _payload(8)), 0.0) is None
        batch = batcher.add(Request(1, 10.0, _payload(8)), 10.0)
        assert batch is not None and len(batch) == 2
        assert batcher.pending == 0

    def test_deadline_tracks_oldest_request(self):
        batcher = self._batcher(max_delay=500.0)
        assert batcher.next_deadline() is None
        batcher.add(Request(0, 100.0, _payload(8)), 100.0)
        batcher.add(Request(1, 150.0, _payload(24)), 150.0)
        assert batcher.next_deadline() == pytest.approx(600.0)
        assert batcher.flush_due(599.0) == []
        due = batcher.flush_due(600.0)
        assert len(due) == 1 and due[0].requests[0].rid == 0
        assert batcher.pending == 1  # the other bucket still waits

    def test_different_buckets_never_mix(self):
        batcher = self._batcher(max_batch=8)
        for i, rows in enumerate([5, 20, 6, 21, 7, 22]):
            batcher.add(Request(i, float(i), _payload(rows)), float(i))
        batches = batcher.flush_all(100.0)
        assert sorted(len(b) for b in batches) == [3, 3]
        for batch in batches:
            keys = {batcher.bucketer.key(r.payload) for r in batch.requests}
            assert keys == {batch.key}

    def test_key_fn_receives_the_virtual_time_explicitly(self):
        """The key_fn contract is key_fn(payload, now_us): time-dependent
        keying (the specialization tier's hot-bucket promotion) gets the
        clock threaded through the call, not smuggled via hidden server
        state."""
        bucketer = ShapeBucketer(_typed_main(_dyn_mlp_module()), 8)
        seen = []

        def key_fn(payload, now_us):
            seen.append(now_us)
            return ("late",) if now_us >= 100.0 else ("early",)

        batcher = Batcher(bucketer, max_batch_size=8, key_fn=key_fn)
        batcher.add(Request(0, 0.0, _payload(8)), 10.0)
        batcher.add(Request(1, 20.0, _payload(8)), 150.0)
        assert seen == [10.0, 150.0]
        keys = {batch.key for batch in batcher.flush_all(200.0)}
        assert keys == {("early",), ("late",)}

    def test_default_key_fn_ignores_time(self):
        bucketer = ShapeBucketer(_typed_main(_dyn_mlp_module()), 8)
        batcher = Batcher(bucketer, max_batch_size=8)
        batcher.add(Request(0, 0.0, _payload(9)), 0.0)
        batcher.add(Request(1, 10.0, _payload(10)), 1e9)
        (batch,) = batcher.flush_all(1e9)
        assert batch.key == (16,)
        assert len(batch) == 2

    def test_flush_all_drains_everything(self):
        batcher = self._batcher()
        for i in range(5):
            batcher.add(Request(i, float(i), _payload(8 + 8 * i)), float(i))
        assert batcher.pending > 0
        batcher.flush_all(10.0)
        assert batcher.pending == 0 and batcher.next_deadline() is None


class TestServeConfig:
    def test_serial_accepts_pass_through_knobs(self):
        config = ServeConfig.serial(numerics="full", bucket_granularity=4)
        assert config.max_batch_size == 1
        assert config.numerics == "full"
        assert config.bucket_granularity == 4

    def test_serial_overrides_win_for_serial_defaults(self):
        """Regression: overriding max_batch_size/max_delay_us/num_workers
        used to raise TypeError('got multiple values')."""
        config = ServeConfig.serial(num_workers=3, max_delay_us=50.0)
        assert config.num_workers == 3
        assert config.max_delay_us == 50.0
        assert config.max_batch_size == 1  # untouched serial default


class TestInferenceServer:
    def test_deadline_bounds_queueing_delay(self):
        """A lone request flushes exactly at arrival + max_delay."""
        server = InferenceServer(
            _dyn_mlp_module(), intel_cpu(),
            ServeConfig(max_batch_size=8, max_delay_us=700.0, num_workers=1),
        )
        report = server.simulate([Request(0, arrival_us=50.0, payload=_payload(9))])
        (resp,) = report.responses
        assert resp.dispatch_us == pytest.approx(750.0)
        assert resp.queue_us == pytest.approx(700.0)
        assert resp.finish_us > resp.dispatch_us

    def test_worker_pool_fairness(self):
        """Back-to-back batches spread across the pool via earliest-free."""
        server = InferenceServer(
            _dyn_mlp_module(), intel_cpu(),
            ServeConfig(max_batch_size=2, max_delay_us=50.0, num_workers=2),
        )
        report = server.simulate(_requests([8] * 12, gap_us=1.0))
        assert report.num_batches == 6
        assert all(b >= 2 for b in report.worker_batches)
        busy = report.worker_busy_us
        assert max(busy) < 2.0 * min(busy)  # no worker starves

    def test_single_worker_serializes(self):
        server = InferenceServer(
            _dyn_mlp_module(), intel_cpu(),
            ServeConfig(max_batch_size=1, max_delay_us=0.0, num_workers=1),
        )
        report = server.simulate(_requests([8, 8, 8], gap_us=0.5))
        # Batches run in order on one worker: dispatches never overlap.
        spans = sorted((r.dispatch_us, r.finish_us) for r in report.responses)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_outputs_match_direct_execution(self):
        """Serving changes scheduling, never numerics."""
        import repro.nimble as nimble
        from repro.runtime.context import ExecutionContext
        from repro.vm.interpreter import VirtualMachine

        mod = _dyn_mlp_module()
        requests = _requests([5, 9, 9, 17, 5], gap_us=10.0)
        server = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=2, max_delay_us=100.0, num_workers=2,
                        numerics="full"),
        )
        report = server.simulate(requests)
        exe, _ = nimble.build(mod, intel_cpu())
        vm = VirtualMachine(exe, ExecutionContext(intel_cpu()))
        for req, resp in zip(requests, report.responses):
            assert resp.rid == req.rid
            expect = vm.run(req.payload)
            assert np.array_equal(resp.output.numpy(), expect.numpy())

    def test_lstm_outputs_match_reference(self):
        weights = LSTMWeights.create(input_size=8, hidden_size=8, seed=0)
        mod = build_lstm_module(weights)
        requests = lstm_traffic(4, input_size=8, mean_interarrival_us=100.0, seed=1)
        server = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=2, max_delay_us=500.0, numerics="full"),
        )
        report = server.simulate(requests)
        for req, resp in zip(requests, report.responses):
            expect = lstm_reference(req.payload, weights)
            assert np.allclose(resp.output.numpy(), expect, atol=1e-5)

    def test_simulation_is_deterministic(self):
        def run():
            server = InferenceServer(
                _dyn_mlp_module(), nvidia_gpu(),
                ServeConfig(max_batch_size=4, max_delay_us=300.0, num_workers=2),
            )
            return server.simulate(_requests([5, 9, 17, 9, 5, 33, 9, 5], gap_us=20.0))

        a, b = run(), run()
        assert a.latencies_us == b.latencies_us
        assert a.throughput_rps == b.throughput_rps
        assert a.worker_busy_us == b.worker_busy_us
        assert a.batch_histogram == b.batch_histogram

    def test_repeated_simulate_is_independent(self):
        """Each simulate() is a cold-start replay: no clock, pool, busy-time
        or profile state bleeds from one simulation into the next."""
        server = InferenceServer(
            _dyn_mlp_module(), intel_cpu(),
            ServeConfig(max_batch_size=2, max_delay_us=100.0, num_workers=2),
        )
        trace = _requests([5, 9, 17, 9], gap_us=10.0)
        a, b = server.simulate(trace), server.simulate(trace)
        assert a.latencies_us == b.latencies_us
        assert a.worker_busy_us == b.worker_busy_us
        assert a.profile.runs == b.profile.runs == len(trace)

    def test_infinite_delay_flushes_on_size_only(self):
        """max_delay_us=inf: buckets flush when full; partial buckets drain
        at shutdown instead of waiting for a deadline that never fires."""
        import math

        server = InferenceServer(
            _dyn_mlp_module(), intel_cpu(),
            ServeConfig(max_batch_size=2, max_delay_us=math.inf, num_workers=1),
        )
        report = server.simulate(_requests([8, 8, 8], gap_us=10.0))
        assert report.num_requests == 3
        assert report.batch_histogram == {1: 1, 2: 1}
        # The leftover singleton drains at the last event, not at infinity.
        assert all(math.isfinite(r.finish_us) for r in report.responses)

    def test_empty_trace_reports_cleanly(self):
        server = InferenceServer(_dyn_mlp_module(), intel_cpu(), ServeConfig())
        report = server.simulate([])
        assert report.num_requests == 0
        assert report.throughput_rps == 0.0
        assert report.p50_us == 0.0
        assert "requests" in report.format()

    def test_batched_beats_serial_dispatch(self):
        weights = LSTMWeights.create(input_size=16, hidden_size=32, seed=0)
        mod = build_lstm_module(weights)
        requests = lstm_traffic(12, input_size=16, mean_interarrival_us=20.0, seed=0)

        def throughput(config):
            server = InferenceServer(mod, nvidia_gpu(), config)
            return server.simulate(requests).throughput_rps

        serial = throughput(ServeConfig.serial())
        batched = throughput(
            ServeConfig(max_batch_size=4, max_delay_us=2000.0, num_workers=4)
        )
        assert batched > 1.5 * serial

    def test_no_buffer_leaks_after_serving(self):
        server = InferenceServer(
            _dyn_mlp_module(), intel_cpu(),
            ServeConfig(max_batch_size=3, max_delay_us=100.0, num_workers=2),
        )
        server.simulate(_requests([5, 9, 17, 9, 5, 33], gap_us=10.0))
        for worker in server.workers:
            assert worker.ctx.allocator.live_bytes == 0

    def test_profile_aggregates_across_workers(self):
        server = InferenceServer(
            _dyn_mlp_module(), intel_cpu(),
            ServeConfig(max_batch_size=2, max_delay_us=50.0, num_workers=2),
        )
        report = server.simulate(_requests([8] * 6, gap_us=1.0))
        assert report.profile.runs == 6
        assert report.profile.kernel_invocations >= 6
        per_worker = sum(w.vm.profile.runs for w in server.workers)
        assert per_worker == report.profile.runs

    def test_vm_run_is_not_reentrant(self):
        server = InferenceServer(_dyn_mlp_module(), intel_cpu(), ServeConfig())
        vm = server.workers[0].vm
        vm._running = True
        try:
            with pytest.raises(VMError, match="re-entrant"):
                vm.run(_payload(4))
        finally:
            vm._running = False
        assert vm.run(_payload(4)).shape == (4, 8)


class TestReportStatistics:
    def _report(self):
        responses = []
        rid = 0
        # Two batches of 2 (latencies 100, 200, 300, 400) + one singleton (500).
        for batch_size, lats in ((2, (100.0, 200.0)), (2, (300.0, 400.0)), (1, (500.0,))):
            for lat in lats:
                responses.append(
                    Response(
                        rid=rid, output=None, arrival_us=100.0 * rid,
                        dispatch_us=100.0 * rid + 10.0,
                        finish_us=100.0 * rid + lat,
                        bucket_key=(8,), batch_size=batch_size, worker_id=rid % 2,
                    )
                )
                rid += 1
        return ServeReport(
            responses=responses,
            worker_busy_us=[300.0, 200.0],
            worker_batches=[2, 1],
        )

    def test_percentiles_and_means(self):
        report = self._report()
        assert report.latencies_us == [100.0, 200.0, 300.0, 400.0, 500.0]
        assert report.p50_us == pytest.approx(300.0)
        assert report.p99_us == pytest.approx(496.0)
        assert report.mean_latency_us == pytest.approx(300.0)
        assert report.max_latency_us == pytest.approx(500.0)

    def test_throughput_over_span(self):
        report = self._report()
        # First arrival 0, last finish 400*1 + 500 = 900.
        assert report.span_us == pytest.approx(900.0)
        assert report.throughput_rps == pytest.approx(5 / 900.0 * 1e6)

    def test_batch_histogram_counts_batches(self):
        report = self._report()
        assert report.batch_histogram == {1: 1, 2: 2}
        assert report.num_batches == 3
        assert report.mean_batch_size == pytest.approx(5 / 3)

    def test_format_renders_tables(self):
        text = self._report().format("unit test")
        assert "unit test" in text
        assert "throughput (req/s)" in text
        assert "Batch-size histogram" in text
        assert "Workers" in text

    def test_percentile_function(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile(values, 50) == pytest.approx(50.5)
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestTraffic:
    def test_poisson_arrivals_monotone_and_seeded(self):
        a = poisson_arrivals(20, 100.0, seed=3)
        b = poisson_arrivals(20, 100.0, seed=3)
        assert a == b
        assert all(x < y for x, y in zip(a, a[1:]))
        assert poisson_arrivals(20, 100.0, seed=4) != a

    def test_lstm_traffic_shapes_follow_mrpc(self):
        from repro.data.mrpc import MAX_LENGTH, MIN_LENGTH

        requests = lstm_traffic(16, input_size=8, seed=0)
        assert [r.rid for r in requests] == list(range(16))
        for req in requests:
            assert MIN_LENGTH <= req.payload.shape[0] <= MAX_LENGTH
            assert req.payload.shape[1] == 8
