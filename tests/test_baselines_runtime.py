"""Baseline frameworks, the static graph runtime, clock, allocator."""

import numpy as np
import pytest

from repro.baselines import EagerFramework, FoldFramework, GraphFramework, HybridFramework
from repro.baselines.base import OpExecutor
from repro.baselines.graph_framework import Graph, GraphExecutor
from repro.data import embedding_table, sst_like_trees
from repro.errors import CompilerError
from repro.hardware import arm_cpu, intel_cpu, nvidia_gpu
from repro.models.bert import BertConfig, BertWeights, bert_reference
from repro.models.lstm import LSTMWeights, lstm_reference
from repro.models.tree_lstm import TreeLSTMWeights, tree_lstm_reference
from repro.runtime.clock import VirtualClock
from repro.runtime.context import ExecutionContext
from repro.runtime.graph_runtime import GraphRuntime
from repro.tensor.device import gpu


class TestVirtualClock:
    def test_sync_execution(self):
        clock = VirtualClock()
        clock.run_sync(10.0)
        assert clock.elapsed_us == 10.0

    def test_async_overlap(self):
        clock = VirtualClock()
        dev = gpu(0)
        clock.launch_async(dev, 100.0, enqueue_us=1.0)
        clock.host_advance(50.0)  # overlapped host work
        assert clock.host_us == 51.0
        assert clock.elapsed_us == 101.0  # device finishes at 1 + 100

    def test_sync_waits_for_queue(self):
        clock = VirtualClock()
        dev = gpu(0)
        clock.launch_async(dev, 100.0, enqueue_us=1.0)
        clock.sync(dev)
        assert clock.host_us == 101.0

    def test_queue_serializes_kernels(self):
        clock = VirtualClock()
        dev = gpu(0)
        clock.launch_async(dev, 10.0, 1.0)
        clock.launch_async(dev, 10.0, 1.0)
        assert clock.elapsed_us == pytest.approx(21.0)

    def test_zero_duration_launch(self):
        clock = VirtualClock()
        dev = gpu(0)
        clock.launch_async(dev, 0.0, enqueue_us=1.0)
        # A zero-length kernel still occupies a queue slot: the stream's
        # frontier lands exactly at enqueue time, never before host time.
        assert clock.stream_ready_us[(dev, 0)] == 1.0
        assert clock.elapsed_us == 1.0
        clock.launch_async(dev, 5.0, enqueue_us=1.0)
        assert clock.elapsed_us == pytest.approx(7.0)

    def test_sync_with_no_pending_work(self):
        clock = VirtualClock()
        dev = gpu(0)
        clock.host_advance(3.0)
        clock.sync(dev)  # nothing enqueued: a no-op
        clock.sync_all()
        assert clock.host_us == 3.0
        assert clock.elapsed_us == 3.0
        assert clock.device_ready(dev) == 0.0

    def test_interleaved_advance_to_and_run_sync(self):
        clock = VirtualClock()
        clock.run_sync(10.0)
        clock.advance_to(5.0)  # already past: must not rewind
        assert clock.host_us == 10.0
        clock.advance_to(20.0)
        assert clock.host_us == 20.0
        clock.run_sync(2.5)
        assert clock.host_us == 22.5
        # advance_to is idle wall time, run_sync is work: ordering of an
        # advance between two kernels only fast-forwards the gap.
        clock.advance_to(22.5)
        assert clock.elapsed_us == 22.5

    def test_streams_are_independent_queues(self):
        clock = VirtualClock()
        dev = gpu(0)
        clock.launch_async(dev, 100.0, 1.0, stream=0)
        clock.launch_async(dev, 100.0, 1.0, stream=1)
        # Two streams overlap; the second kernel starts when its enqueue
        # lands (host at 2.0), not after the first retires.
        assert clock.stream_ready_us[(dev, 0)] == 101.0
        assert clock.stream_ready_us[(dev, 1)] == 102.0
        assert clock.elapsed_us == 102.0

    def test_record_event_on_idle_stream_is_host_time(self):
        clock = VirtualClock()
        dev = gpu(0)
        clock.host_advance(7.0)
        ts = clock.record_event(dev, 3, host_cost_us=1.0)
        # Nothing pending on the stream: the event completes at record
        # time (host after paying the record cost).
        assert ts == 8.0
        assert clock.host_us == 8.0

    def test_wait_event_charges_sync_only_on_stall(self):
        clock = VirtualClock()
        dev = gpu(0)
        clock.launch_async(dev, 100.0, 1.0, stream=0)
        ts = clock.record_event(dev, 0, host_cost_us=1.0)
        assert ts == 101.0
        # Stream 1 is behind the event: it stalls to the event plus the
        # propagation charge, and the stall is returned.
        stall = clock.wait_event(dev, 1, ts, host_cost_us=1.0, sync_us=1.5)
        assert stall == pytest.approx(102.5)
        assert clock.stream_ready_us[(dev, 1)] == pytest.approx(102.5)
        # A wait on an already-complete event is free on the device: no
        # frontier movement, no sync charge, zero stall.
        clock.launch_async(dev, 150.0, 1.0, stream=2)
        before = clock.stream_ready_us[(dev, 2)]
        assert before > ts
        stall2 = clock.wait_event(dev, 2, ts, host_cost_us=1.0, sync_us=1.5)
        assert stall2 == 0.0
        assert clock.stream_ready_us[(dev, 2)] == before

    def test_single_stream_reproduces_single_lane_model(self):
        a, b = VirtualClock(), VirtualClock()
        dev = gpu(0)
        for clock in (a, b):
            clock.run_sync(2.0)
        a.launch_async(dev, 10.0, 1.0)  # pre-streams call shape
        b.launch_async(dev, 10.0, 1.0, stream=0)
        assert a.elapsed_us == b.elapsed_us
        a.sync(dev)
        b.sync(dev)
        assert a.host_us == b.host_us


class TestAllocator:
    def test_pool_hit_cheaper_than_fresh(self):
        from repro.hardware import calibration

        ctx = ExecutionContext(intel_cpu())
        alloc = ctx.allocator
        s = alloc.alloc(1000, 64, intel_cpu().host)
        alloc.free(s)
        s2 = alloc.alloc(900, 64, intel_cpu().host)  # same size class
        assert alloc.stats.pooled_allocs == 1
        assert alloc.stats.fresh_allocs == 1

    def test_no_pooling_mode(self):
        ctx = ExecutionContext(intel_cpu(), pooling=False)
        s = ctx.allocator.alloc(128, 64, intel_cpu().host)
        ctx.allocator.free(s)
        ctx.allocator.alloc(128, 64, intel_cpu().host)
        assert ctx.allocator.stats.pooled_allocs == 0
        assert ctx.allocator.stats.fresh_allocs == 2

    def test_peak_tracking(self):
        ctx = ExecutionContext(intel_cpu())
        a = ctx.allocator.alloc(1024, 64, intel_cpu().host)
        b = ctx.allocator.alloc(1024, 64, intel_cpu().host)
        ctx.allocator.free(a)
        ctx.allocator.alloc(512, 64, intel_cpu().host)
        assert ctx.allocator.stats.peak_bytes == 2048

    def test_double_free_ignored(self):
        ctx = ExecutionContext(intel_cpu())
        s = ctx.allocator.alloc(64, 64, intel_cpu().host)
        ctx.allocator.free(s)
        ctx.allocator.free(s)
        assert ctx.allocator.stats.frees == 1


class TestGraphRuntime:
    def test_static_bert_matches_reference(self):
        from repro.models.bert import build_bert_static_module

        cfg = BertConfig(hidden=16, num_layers=1, num_heads=2, ffn=32)
        w = BertWeights.create(cfg)
        rt = GraphRuntime(build_bert_static_module(w, 6), intel_cpu())
        x = np.random.RandomState(1).randn(6, 16).astype(np.float32)
        out, latency = rt.run(x)
        assert np.allclose(out, bert_reference(x, w), atol=1e-4)
        assert latency > 0

    def test_rejects_dynamic_models(self):
        from repro.models.bert import build_bert_module

        cfg = BertConfig(hidden=16, num_layers=1, num_heads=2, ffn=32)
        w = BertWeights.create(cfg)
        with pytest.raises(CompilerError):
            GraphRuntime(build_bert_module(w), intel_cpu())

    def test_static_planning_reuses_buffers(self):
        from repro.models.vision import build_vgg_like

        rt = GraphRuntime(build_vgg_like(image=32), intel_cpu())
        assert rt.planned_bytes < rt.total_tensor_bytes


class TestEagerFramework:
    def test_lstm_numerics_and_tokens(self):
        w = LSTMWeights.create(8, 4, 1)
        fw = EagerFramework(intel_cpu())
        sents = [np.random.RandomState(i).randn(3 + i, 8).astype(np.float32) for i in range(2)]
        result = fw.run_lstm(sents, w)
        assert result.total_tokens == 3 + 4
        assert result.total_us > 0

    def test_tree_lstm_supported(self):
        assert EagerFramework(intel_cpu()).supports("tree_lstm")

    def test_bert_runs(self):
        cfg = BertConfig(hidden=16, num_layers=1, num_heads=2, ffn=32)
        w = BertWeights.create(cfg)
        fw = EagerFramework(intel_cpu())
        r = fw.run_bert([np.zeros((4, 16), np.float32)], w)
        assert r.total_tokens == 4


class TestFrameworkSupportMatrix:
    """§6.2's availability: who can run what (and where)."""

    def test_mxnet_cannot_tree_lstm(self):
        assert not HybridFramework(intel_cpu()).supports("tree_lstm")

    def test_tensorflow_cannot_tree_lstm(self):
        assert not GraphFramework(intel_cpu()).supports("tree_lstm")

    def test_fold_only_tree_lstm(self):
        fold = FoldFramework(intel_cpu())
        assert fold.supports("tree_lstm")
        assert not fold.supports("lstm")
        assert not fold.supports("bert")

    def test_fold_does_not_build_on_arm(self):
        assert not FoldFramework(arm_cpu()).supports("tree_lstm")


class TestGraphFrameworkExecutor:
    def test_while_loop_semantics(self):
        w = LSTMWeights.create(8, 4, 1)
        fw = GraphFramework(intel_cpu())
        graph = fw.build_lstm_graph(w)
        ctx = fw.make_context()
        ex = fw._executor(ctx)
        executor = GraphExecutor(ex, "intel")
        x = np.random.RandomState(0).randn(5, 8).astype(np.float32)
        (out,) = executor.run(graph, [np.asarray(5, np.int64), x])
        assert np.allclose(out, lstm_reference(x, w), atol=1e-4)

    def test_control_primitives_charged(self):
        w = LSTMWeights.create(8, 4, 1)
        fw_graph = GraphFramework(intel_cpu())
        fw_eager = EagerFramework(intel_cpu())
        sent = [np.zeros((20, 8), np.float32)]
        graph_us = fw_graph.run_lstm(sent, w).total_us
        eager_us = fw_eager.run_lstm(sent, w).total_us
        # TF's per-iteration control primitives dominate its LSTM cost.
        assert graph_us > eager_us


class TestFoldFramework:
    def test_batched_numerics_match_reference(self):
        w = TreeLSTMWeights.create(10, 5, seed=2)
        emb = embedding_table(vocab_size=30, dim=10, seed=1)
        trees = sst_like_trees(2, vocab_size=30, seed=5)
        fold = FoldFramework(intel_cpu())
        ctx = fold.make_context()
        ex = OpExecutor(intel_cpu(), ctx, 1.0)
        for tree in trees:
            h, c = fold._run_batched(ex, tree, emb, w, level_us=1.0)
            ref_h, ref_c = tree_lstm_reference(tree, emb, w)
            assert np.allclose(h, ref_h, atol=1e-4)
            assert np.allclose(c, ref_c, atol=1e-4)

    def test_fold_faster_than_eager_slower_than_nothing(self):
        w = TreeLSTMWeights.create(10, 5)
        emb = embedding_table(vocab_size=30, dim=10)
        trees = sst_like_trees(3, vocab_size=30, seed=6)
        fold_us = FoldFramework(intel_cpu()).run_tree_lstm(trees, emb, w).us_per_token
        eager_us = EagerFramework(intel_cpu()).run_tree_lstm(trees, emb, w).us_per_token
        assert fold_us < eager_us  # batching wins despite per-input compile
