"""IR: types with Any, expressions, module, builder, printer, analyses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TypeInferenceError
from repro.ir import (
    Any,
    Call,
    Constant,
    Function,
    FuncType,
    GlobalVar,
    If,
    IRModule,
    Let,
    Op,
    ScopeBuilder,
    TensorType,
    Tuple,
    TupleGetItem,
    TupleType,
    TypeData,
    Var,
    const,
    count_nodes,
    free_vars,
    bound_vars,
    post_dfs_order,
    pretty,
    scalar_type,
    structural_equal,
    structural_hash,
    type_equal,
)
from repro.ir.types import StorageType, has_any_dim, same_dim
from repro.ops import api


class TestTypes:
    def test_tensor_type_basics(self):
        t = TensorType((2, 3), "float32")
        assert t.ndim == 2 and t.is_static and t.num_elements() == 6

    def test_any_dim_makes_dynamic(self):
        t = TensorType((2, Any()), "float32")
        assert not t.is_static
        assert t.num_elements() is None
        assert has_any_dim(t)

    def test_any_equality_ignores_token(self):
        assert TensorType((Any(),)) == TensorType((Any(),))
        assert TensorType((Any(),)) != TensorType((3,))

    def test_same_dim_uses_tokens(self):
        a = Any()
        assert same_dim(a, a)
        assert not same_dim(a, Any())
        assert same_dim(4, 4)
        assert not same_dim(4, Any())

    def test_negative_dim_rejected(self):
        with pytest.raises(TypeInferenceError):
            TensorType((-1, 2))

    def test_invalid_dtype_rejected(self):
        with pytest.raises(TypeInferenceError):
            TensorType((1,), "float999")

    def test_tuple_and_func_types(self):
        tt = TupleType([scalar_type(), TensorType((2,))])
        ft = FuncType([tt], scalar_type())
        assert type_equal(ft, FuncType([TupleType([scalar_type(), TensorType((2,))])], scalar_type()))
        assert not type_equal(ft, FuncType([tt], TensorType((2,))))

    def test_storage_type_equality(self):
        assert type_equal(StorageType(), StorageType())

    def test_type_hash_consistent_with_equality(self):
        a = TensorType((2, Any()), "float32")
        b = TensorType((2, Any()), "float32")
        assert hash(a) == hash(b)


class TestExpressions:
    def test_var_identity_equality(self):
        a, b = Var("x"), Var("x")
        assert a == a and a != b
        assert len({a, b}) == 2

    def test_constant_wraps_values(self):
        c = const(2.0)
        assert c.data.item() == pytest.approx(2.0)
        assert const([1, 2], "int64").value.dtype == "int64"

    def test_annotated_var_has_checked_type(self):
        v = Var("x", TensorType((3,)))
        assert v.checked_type == TensorType((3,))

    def test_op_interning(self):
        assert Op.get("add") is Op.get("add")
        assert Op.get("add") == Op.get("add")
        assert Op.get("add") != Op.get("multiply")

    def test_function_primitive_flag(self):
        f = Function([], const(1.0), attrs={"primitive": True})
        assert f.is_primitive
        assert not Function([], const(1.0)).is_primitive


class TestModule:
    def test_global_var_interning(self):
        mod = IRModule()
        assert mod.get_global_var("f") is mod.get_global_var("f")

    def test_set_get_function(self):
        mod = IRModule()
        f = Function([], const(1.0))
        mod["main"] = f
        assert mod["main"] is f
        assert "main" in mod
        assert "missing" not in mod

    def test_from_expr_wraps(self):
        mod = IRModule.from_expr(const(1.0))
        assert isinstance(mod.main, Function)

    def test_adt_registration(self):
        mod = IRModule()
        gtv = mod.get_global_type_var("List")
        data = TypeData(gtv, [], [("Nil", []), ("Cons", [scalar_type()])])
        mod.add_type_data(data)
        assert mod.get_constructor("List", "Cons").tag == 1
        with pytest.raises(KeyError):
            mod.get_constructor("List", "Missing")

    def test_shallow_copy_independent(self):
        mod = IRModule()
        mod["main"] = Function([], const(1.0))
        copy = mod.shallow_copy()
        copy["extra"] = Function([], const(2.0))
        assert "extra" not in mod


class TestScopeBuilder:
    def test_builds_let_chain(self):
        sb = ScopeBuilder()
        x = Var("x", TensorType((2,)))
        a = sb.let("a", api.add(x, x))
        b = sb.let("b", api.multiply(a, a))
        body = sb.get(b)
        assert isinstance(body, Let)
        assert body.var is a
        assert isinstance(body.body, Let)

    def test_fresh_names_unique(self):
        sb = ScopeBuilder()
        v1 = sb.let("t", const(1.0))
        v2 = sb.let("t", const(2.0))
        assert v1.name_hint != v2.name_hint

    def test_finalized_builder_rejects_let(self):
        from repro.errors import CompilerError

        sb = ScopeBuilder()
        sb.get(const(1.0))
        with pytest.raises(CompilerError):
            sb.let("x", const(2.0))


class TestAnalysis:
    def _sample(self):
        x = Var("x", TensorType((2,)))
        y = Var("y", TensorType((2,)))
        sb = ScopeBuilder()
        a = sb.let("a", api.add(x, y))
        b = sb.let("b", api.multiply(a, x))
        return x, y, Function([x], sb.get(b))

    def test_free_vars(self):
        x, y, func = self._sample()
        assert free_vars(func) == [y]
        assert free_vars(func.body) == [x, y]

    def test_bound_vars(self):
        x, y, func = self._sample()
        bv = bound_vars(func)
        assert x in bv and y not in bv
        assert len(bv) == 3  # param + two lets

    def test_post_dfs_operands_before_users(self):
        x, y, func = self._sample()
        order = post_dfs_order(func.body)
        positions = {id(n): i for i, n in enumerate(order)}
        for node in order:
            from repro.ir.analysis import _children

            for child in _children(node):
                assert positions[id(child)] < positions[id(node)]

    def test_count_nodes(self):
        _, _, func = self._sample()
        assert count_nodes(func) > 5

    def test_deep_let_chain_no_recursion_error(self):
        # 5000 bindings would blow Python's stack if visited recursively.
        x = Var("x", TensorType((2,)))
        sb = ScopeBuilder()
        cur = x
        for _ in range(5000):
            cur = sb.let("t", api.add(cur, x))
        body = sb.get(cur)
        assert len(free_vars(body)) == 1
        assert count_nodes(body) > 5000


class TestStructuralEquality:
    def test_alpha_equivalence(self):
        x1, x2 = Var("x", TensorType((2,))), Var("y", TensorType((2,)))
        f1 = Function([x1], api.add(x1, x1))
        f2 = Function([x2], api.add(x2, x2))
        assert structural_equal(f1, f2)
        assert structural_hash(f1) == structural_hash(f2)

    def test_different_ops_not_equal(self):
        x = Var("x", TensorType((2,)))
        assert not structural_equal(api.add(x, x), api.multiply(x, x))

    def test_different_attrs_not_equal(self):
        x = Var("x", TensorType((4,)))
        assert not structural_equal(
            api.reshape(x, (2, 2)), api.reshape(x, (4, 1))
        )

    def test_constants_compared_by_value(self):
        assert structural_equal(const(1.5), const(1.5))
        assert not structural_equal(const(1.5), const(2.5))

    def test_free_vars_must_be_identical(self):
        x, y = Var("x", TensorType((2,))), Var("y", TensorType((2,)))
        assert structural_equal(api.add(x, x), api.add(x, x))
        assert not structural_equal(api.add(x, x), api.add(y, y))

    def test_let_chains_alpha_equal(self):
        def build():
            x = Var("x", TensorType((2,)))
            sb = ScopeBuilder()
            a = sb.let("a", api.add(x, x))
            return Function([x], sb.get(a))

        assert structural_equal(build(), build())

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_hash_equal_for_alpha_equal_chains(self, n):
        def build():
            x = Var("x", TensorType((2,)))
            sb = ScopeBuilder()
            cur = x
            for _ in range(n):
                cur = sb.let("t", api.add(cur, cur))
            return Function([x], sb.get(cur))

        a, b = build(), build()
        assert structural_equal(a, b)
        assert structural_hash(a) == structural_hash(b)


class TestPrinterGolden:
    """The printed text of each model family is stable (golden files) and
    carries enough structure to recover every function signature."""

    @staticmethod
    def _builders():
        from repro.models.bert import BertConfig, BertWeights, build_bert_module
        from repro.models.lstm import LSTMWeights, build_lstm_module
        from repro.models.tree_lstm import TreeLSTMWeights, build_tree_lstm_module

        return {
            "lstm": lambda: build_lstm_module(
                LSTMWeights.create(input_size=8, hidden_size=4, num_layers=1, seed=0)
            ),
            "tree_lstm": lambda: build_tree_lstm_module(
                TreeLSTMWeights.create(input_size=8, hidden_size=4, seed=0)
            ),
            "bert": lambda: build_bert_module(
                BertWeights.create(
                    BertConfig(hidden=8, num_layers=1, num_heads=2, ffn=16), seed=0
                )
            ),
        }

    @staticmethod
    def _golden(name):
        import pathlib

        path = pathlib.Path(__file__).parent / "golden" / f"{name}.txt"
        return path.read_text()

    @pytest.mark.parametrize("family", ["lstm", "tree_lstm", "bert"])
    def test_printed_module_matches_golden(self, family):
        from repro.ir import pretty_module

        mod = self._builders()[family]()
        assert pretty_module(mod) + "\n" == self._golden(family)

    @pytest.mark.parametrize("family", ["lstm", "tree_lstm", "bert"])
    def test_rebuild_is_equivalent(self, family):
        from repro.ir import pretty_module

        from repro.ir import iter_nodes
        from repro.ir.expr import Constructor

        build = self._builders()[family]
        a, b = build(), build()
        assert pretty_module(a) == pretty_module(b)
        for gv, func in a.functions.items():
            # Global refs compare by identity, so alpha-equivalence only
            # applies to self-contained functions; cross-module reference
            # equality is covered by the printed-text comparison above.
            self_contained = not any(
                isinstance(n, (GlobalVar, Constructor)) for n in iter_nodes(func)
            )
            if self_contained:
                assert structural_equal(func, b[gv.name_hint])

    @pytest.mark.parametrize("family", ["lstm", "tree_lstm", "bert"])
    def test_signature_reparses_from_text(self, family):
        from repro.ir import module_signature, parse_module_signature

        mod = self._builders()[family]()
        parsed = parse_module_signature(self._golden(family))
        assert parsed == module_signature(mod)
        assert "main" in parsed

    def test_signature_parser_handles_nested_types(self):
        from repro.ir import module_signature, parse_module_signature, pretty_module

        x = Var("x", TupleType([TensorType((Any(), 2)), scalar_type("int64")]))
        mod = IRModule.from_expr(Function([x], TupleGetItem(x, 0), TensorType((Any(), 2))))
        assert parse_module_signature(pretty_module(mod)) == module_signature(mod)


class TestPrinter:
    def test_prints_function(self):
        x = Var("x", TensorType((2, Any()), "float32"))
        text = pretty(Function([x], api.add(x, x)))
        assert "fn" in text and "add" in text and "?" in text

    def test_prints_let_chain_flat(self):
        x = Var("x", TensorType((2,)))
        sb = ScopeBuilder()
        a = sb.let("a", api.add(x, x))
        text = pretty(sb.get(a))
        assert "let" in text

    def test_name_collisions_disambiguated(self):
        a, b = Var("x"), Var("x")
        text = pretty(Tuple([a, b]))
        assert "%x" in text and "%x_1" in text
