"""Symbolic codegen (§4.5): workload analysis, cost model, schedules,
residue dispatch, auto-tuning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import (
    KernelSet,
    Schedule,
    SymbolicTuner,
    compute_workload,
    run_prim_func,
    search_space,
)
from repro.codegen.kernels import canonical_mnk, is_symbolic_prim
from repro.codegen.tuner import AutoTuner, instantiate_shapes
from repro.core.typing import infer_types
from repro.hardware import arm_cpu, intel_cpu, nvidia_gpu
from repro.ir import Any, Constant, Function, IRModule, TensorType, Var, const
from repro.ops import api
from repro.tensor.ndarray import array as make_array


def _dense_prim(n_out=16, k_in=8, symbolic=True, with_relu=False):
    rng = np.random.RandomState(0)
    w = (rng.randn(n_out, k_in) * 0.1).astype(np.float32)
    m = Any() if symbolic else 4
    x = Var("x", TensorType((m, k_in), "float32"))
    body = api.dense(x, Constant(make_array(w)))
    if with_relu:
        body = api.relu(body)
    f = Function([x], body, TensorType((Any() if symbolic else 4, n_out), "float32"), {"primitive": True})
    infer_types(IRModule.from_expr(Function([Var("d", TensorType((1,)))], const(0.0))))  # no-op
    return f, w


class TestWorkload:
    def test_dense_flops_and_bytes(self):
        prim, w = _dense_prim(16, 8)
        wl = compute_workload(prim, [(4, 8)])
        assert wl.flops == 2.0 * 4 * 16 * 8
        assert wl.is_gemm
        # bytes: x (4*8*4) + w (16*8*4) + out (4*16*4)
        assert wl.bytes_moved == 4 * 8 * 4 + 16 * 8 * 4 + 4 * 16 * 4
        assert wl.out_shapes == ((4, 16),)

    def test_fusion_does_not_double_count_bytes(self):
        fused, _ = _dense_prim(16, 8, with_relu=True)
        plain, _ = _dense_prim(16, 8, with_relu=False)
        wl_fused = compute_workload(fused, [(4, 8)])
        wl_plain = compute_workload(plain, [(4, 8)])
        # The relu adds flops but no extra memory traffic (that is the
        # point of fusion).
        assert wl_fused.flops > wl_plain.flops
        assert wl_fused.bytes_moved == wl_plain.bytes_moved

    def test_run_prim_func_numerics(self):
        prim, w = _dense_prim(16, 8, with_relu=True)
        x = np.random.RandomState(1).randn(4, 8).astype(np.float32)
        (out,) = run_prim_func(prim, [x])
        assert np.allclose(out, np.maximum(x @ w.T, 0), atol=1e-5)

    def test_canonical_mnk_with_constant_weight(self):
        prim, _ = _dense_prim(16, 8)
        wl = compute_workload(prim, [(4, 8)])
        assert canonical_mnk(prim, [(4, 8)], wl.out_shapes[0]) == (4, 16, 8)

    def test_is_symbolic_detection(self):
        sym, _ = _dense_prim(symbolic=True)
        sta, _ = _dense_prim(symbolic=False)
        assert is_symbolic_prim(sym)
        assert not is_symbolic_prim(sta)


class TestCostModel:
    def test_more_flops_costs_more(self):
        prim, _ = _dense_prim(64, 64)
        spec = intel_cpu().compute_spec
        k = KernelSet(prim, intel_cpu(), spec, symbolic=False)
        small = k.invoke_cost([(2, 64)]).duration_us
        large = k.invoke_cost([(256, 64)]).duration_us
        assert large > small

    def test_gpu_launch_floor(self):
        prim, _ = _dense_prim(4, 4)
        plat = nvidia_gpu()
        k = KernelSet(prim, plat, plat.compute_spec, symbolic=False)
        assert k.invoke_cost([(1, 4)]).duration_us >= plat.compute_spec.launch_overhead_us

    def test_symbolic_slower_than_static(self):
        sym, _ = _dense_prim(64, 64, symbolic=True)
        sta, _ = _dense_prim(64, 64, symbolic=False)
        plat = arm_cpu()
        s = Schedule(8, 4, 2, True)
        k_sym = KernelSet(sym, plat, plat.compute_spec, schedule=s, symbolic=True, allow_library=False)
        k_sta = KernelSet(sta, plat, plat.compute_spec, schedule=s, symbolic=False, allow_library=False)
        assert k_sym.invoke_cost([(64, 64)]).duration_us > k_sta.invoke_cost([(64, 64)]).duration_us

    def test_dispatch_monotone_in_kernel_count(self):
        """Figure 3's trend: fewer dispatch kernels -> more boundary checks
        -> slower."""
        prim, _ = _dense_prim(64, 64, symbolic=True)
        plat = arm_cpu()
        s = Schedule(8, 4, 2, True)
        costs = []
        for n in (8, 4, 2, 1):
            k = KernelSet(prim, plat, plat.compute_spec, schedule=s,
                          num_dispatch_kernels=n, symbolic=True, allow_library=False)
            costs.append(k.invoke_cost([(63, 64)]).duration_us)
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_library_selected_when_faster(self):
        """The dispatcher picks the vendor library when profiling favors it
        (§6.2)."""
        prim, _ = _dense_prim(512, 512, symbolic=True)
        plat = intel_cpu()
        bad = Schedule(32, 1, 1, False)  # deliberately poor schedule
        k = KernelSet(prim, plat, plat.compute_spec, schedule=bad, symbolic=True)
        inv = k.invoke_cost([(256, 512)])
        assert inv.impl == "mkl"

    def test_kernel_code_size_scales_with_variants(self):
        prim, _ = _dense_prim(symbolic=True)
        plat = intel_cpu()
        k8 = KernelSet(prim, plat, plat.compute_spec, num_dispatch_kernels=8)
        k1 = KernelSet(prim, plat, plat.compute_spec, num_dispatch_kernels=1)
        assert k8.code_size_bytes > k1.code_size_bytes


class TestSchedule:
    def test_search_space_nonempty_unique(self):
        space = search_space()
        assert len(space) > 100
        assert len(set(space)) == len(space)

    def test_quality_in_unit_interval(self):
        for s in search_space()[:50]:
            q = s.quality(21, 768, 768)
            assert 0.0 < q <= 1.0

    @given(m=st.integers(1, 256))
    @settings(max_examples=30, deadline=None)
    def test_divisible_rows_never_worse(self, m):
        s = Schedule(8, 4, 2, True)
        q_div = s.quality(m - m % 8 + 8, 768, 768)
        q_frac = s.quality(m - m % 8 + 3, 768, 768)
        assert q_div >= q_frac - 1e-9

    def test_boundary_penalty_grows_with_footprint(self):
        narrow = Schedule(8, 2, 1, True)
        wide = Schedule(8, 16, 4, True)
        assert wide.boundary_penalty_coeff("arm") > narrow.boundary_penalty_coeff("arm")


class TestTuner:
    def test_instantiate_shapes(self):
        prim, _ = _dense_prim(16, 8, symbolic=True)
        assert instantiate_shapes(prim, 13) == [(13, 8)]

    def test_tuner_improves_over_worst(self):
        prim, _ = _dense_prim(64, 64, symbolic=True)
        plat = arm_cpu()
        tuner = AutoTuner(prim, plat, plat.compute_spec, seed=0)
        records = tuner.tune(64, n_trials=64)
        assert records[0].cost_us <= records[-1].cost_us
        assert records[0].cost_us < records[len(records) // 2].cost_us

    def test_tuning_deterministic(self):
        prim, _ = _dense_prim(64, 64, symbolic=True)
        plat = arm_cpu()
        a = AutoTuner(prim, plat, plat.compute_spec, seed=5).tune(64, 32)
        b = AutoTuner(prim, plat, plat.compute_spec, seed=5).tune(64, 32)
        assert a[0].schedule == b[0].schedule

    def test_records_carry_no_duplicate_schedules(self):
        """Regression: greedy mutation re-inserted schedules already in the
        record list, wasting SymbolicTuner's top-k cross-shape slots."""
        prim, _ = _dense_prim(64, 64, symbolic=True)
        plat = arm_cpu()
        for seed in range(6):
            records = AutoTuner(prim, plat, plat.compute_spec, seed=seed).tune(
                64, n_trials=96
            )
            schedules = [r.schedule for r in records]
            assert len(schedules) == len(set(schedules))
            assert all(
                x.cost_us <= y.cost_us for x, y in zip(records, records[1:])
            )

    def test_symbolic_workflow_beats_naive_on_average(self):
        """§4.5's claim: the cross-shape-selected config is at least as good
        on the shape distribution as naively reusing the shape-64 winner."""
        prim, _ = _dense_prim(256, 128, symbolic=True)
        plat = arm_cpu()
        tuner = AutoTuner(prim, plat, plat.compute_spec, seed=2)
        naive = tuner.tune(64, n_trials=96)[0].schedule
        chosen = SymbolicTuner(prim, plat, plat.compute_spec, seed=2).tune(n_trials=96)
        shapes = [2**i for i in range(9)]
        total_naive = sum(tuner.measure(naive, m) for m in shapes)
        total_chosen = sum(tuner.measure(chosen, m) for m in shapes)
        assert total_chosen <= total_naive * 1.0001

    def test_empty_space_rejected(self):
        from repro.errors import TuningError

        prim, _ = _dense_prim()
        plat = intel_cpu()
        tuner = AutoTuner(prim, plat, plat.compute_spec)
        import repro.codegen.tuner as tuner_mod

        original = tuner_mod.search_space
        tuner_mod.search_space = lambda: []
        try:
            with pytest.raises(TuningError):
                tuner.tune(64)
        finally:
            tuner_mod.search_space = original
