"""The static verification subsystem (`repro.analysis`).

Unit level: every finding class of the bytecode verifier (structural
operand validity plus the all-paths dataflow), the independent
vector-clock race model (hazard edges, lost wakeups, the fence/join
contract, the control-flow soundness rule), the memory-lifetime checker
(byte-range overlap, the unverifiable dynamic fragment, hygiene
warnings), and the IR lint (scoping, unique binders, type agreement,
ANF, `verify_each_pass`).

Integration level: golden v2-v4 blobs and freshly compiled models all
verify with zero error findings; every seeded corruption class of the
mutation harness is detected on a real multi-stream build (the 100%
detection acceptance bar); and the store rejects-and-counts a blob that
fails verification instead of ever handing it to a VM.
"""

import numpy as np
import pytest

import repro.nimble as nimble
from repro.analysis import (
    OPERATORS,
    all_mutants,
    assert_verified,
    check_bytecode,
    check_lifetimes,
    check_races,
    lint_function,
    lint_module,
    verify_executable,
)
from repro.analysis.bytecode import check_function
from repro.analysis.lifetimes import check_function_lifetimes
from repro.analysis.races import _check_function
from repro.errors import Finding, VerificationError
from repro.hardware.platforms import intel_cpu, nvidia_gpu
from repro.ir import Constant, Function, Let, TensorType, Tuple, Var
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.models.lstm import LSTMWeights, build_lstm_module
from repro.passes import (
    CommonSubexprElimination,
    DeadCodeElimination,
    FoldConstant,
    Pass,
    Sequential,
    SimplifyExpressions,
)
from repro.store import ArtifactStore
from repro.tensor.device import cpu, gpu
from repro.vm import instruction as ins
from repro.vm.compiler import CompilerOptions
from repro.vm.executable import Executable, VMFunction
from repro.vm.schedule import schedule_function

GPU = gpu(0)


def kernel(args, num_outputs=1, device=GPU, kind="compute", stream=0):
    """A synthetic InvokePacked: last ``num_outputs`` args are outputs."""
    return ins.InvokePacked(
        0, len(args), num_outputs, tuple(args), device, kind, stream
    )


def func_of(instructions, name="main", num_params=0):
    return VMFunction(name, num_params, list(instructions), 64)


def exe_of(functions, constants=(), device_streams=1, num_events=0):
    """A minimal executable wrapping hand-assembled functions. One kernel
    slot so the synthetic ``packed_index=0`` stays in bounds."""
    return Executable(
        platform_name="nvidia",
        functions=list(functions),
        func_index={f.name: i for i, f in enumerate(functions)},
        constants=list(constants),
        kernels=[None],
        device_streams=device_streams,
        num_events=num_events,
    )


def errors_of(findings):
    return [f for f in findings if f.severity == "error"]


def small_bert():
    config = BertConfig(hidden=64, num_heads=4, num_layers=2, ffn=128)
    weights = BertWeights.create(config, seed=0)
    return build_bert_module(weights)


def small_lstm():
    return build_lstm_module(LSTMWeights.create(16, 32, 1))


@pytest.fixture(scope="module")
def scheduled_bert():
    """Shape-specialized BERT at four streams: the one build in the test
    zoo that actually carries a static multi-stream schedule."""
    exe, _ = nimble.specialize(
        small_bert(), nvidia_gpu(), shapes=[(8, 64)],
        options=CompilerOptions(device_streams=4),
    )
    return exe


# ---------------------------------------------------------------------------
# Bytecode verifier: structural validity
# ---------------------------------------------------------------------------


class TestBytecodeStructural:
    def test_clean_minimal_function(self):
        exe = exe_of(
            [func_of([ins.LoadConst(0, 0), ins.Ret(0)])],
            constants=[np.zeros((2,), np.float32)],
        )
        assert check_bytecode(exe) == []

    def test_register_outside_register_file(self):
        f = VMFunction("main", 0, [ins.Move(99, 0), ins.Ret(0)], 8)
        findings = check_function(f, exe_of([f]))
        assert any("r99" in f_.message for f_ in findings)

    def test_packed_arity_and_output_size(self):
        bad_arity = ins.InvokePacked(0, 3, 1, (1, 2), GPU, "compute")
        bad_output = ins.InvokePacked(0, 2, 3, (1, 2), GPU, "compute")
        f = func_of([bad_arity, bad_output, ins.Ret(1)])
        msgs = [x.message for x in check_function(f, exe_of([f]))]
        assert any("arity 3 disagrees" in m for m in msgs)
        assert any("output_size 3" in m for m in msgs)

    def test_packed_index_outside_kernel_table(self):
        f = func_of([
            ins.InvokePacked(7, 2, 1, (1, 2), GPU, "compute"), ins.Ret(2),
        ])
        findings = check_function(f, exe_of([f]))
        assert any("packed_index 7" in x.message for x in findings)

    def test_invoke_parameter_count_mismatch(self):
        callee = func_of([ins.Ret(0)], name="cell", num_params=2)
        caller = func_of(
            [ins.LoadConsti(1, 0), ins.Invoke(0, (0,), 1), ins.Ret(1)],
            name="main",
        )
        exe = exe_of([callee, caller])
        findings = check_function(caller, exe)
        assert any(
            "takes 2 parameter(s), called with 1" in x.message
            for x in findings
        )
        assert check_function(callee, exe) == []  # params arrive defined

    def test_const_and_func_indices_bounds(self):
        f = func_of([
            ins.LoadConst(5, 0),
            ins.AllocClosure(9, 0, (), 1),
            ins.Ret(0),
        ])
        msgs = [x.message for x in check_function(f, exe_of([f]))]
        assert any("const_index 5" in m for m in msgs)
        assert any("func_index 9" in m for m in msgs)

    def test_jump_targets_stay_inside_function(self):
        f = func_of([ins.LoadConsti(1, 0), ins.Goto(5), ins.Ret(0)])
        findings = check_function(f, exe_of([f]))
        assert any("jump target 6" in x.message for x in findings)
        g = func_of([ins.LoadConsti(1, 0), ins.If(0, 0, 1, -5), ins.Ret(0)])
        findings = check_function(g, exe_of([g]))
        assert any("jump target -4" in x.message for x in findings)

    def test_stream_and_event_operand_bounds(self):
        f = func_of([
            ins.StreamEvent(4, GPU, 0),    # event table has 2 slots
            ins.StreamWait(0, GPU, 7),     # only 2 streams declared
            kernel([1, 2], stream=5),
            ins.Ret(2),
        ])
        exe = exe_of([f], device_streams=2, num_events=2)
        msgs = [x.message for x in check_function(f, exe)]
        assert any("event_index 4" in m for m in msgs)
        assert any("stream 7" in m for m in msgs)
        assert any("stream 5" in m for m in msgs)

    def test_adt_and_closure_count_mismatches(self):
        f = func_of([
            ins.LoadConsti(1, 0),
            ins.AllocADT(0, 3, (0,), 1),
            ins.AllocClosure(0, 2, (0,), 2),
            ins.Ret(1),
        ])
        msgs = [x.message for x in check_function(f, exe_of([f]))]
        assert any("num_fields 3 disagrees" in m for m in msgs)
        assert any("num_captured 2 disagrees" in m for m in msgs)

    def test_entry_missing_from_function_table(self):
        exe = exe_of([func_of([ins.Ret(0)], name="helper", num_params=1)])
        findings = check_bytecode(exe)
        assert any("entry function" in x.message for x in findings)


# ---------------------------------------------------------------------------
# Bytecode verifier: dataflow
# ---------------------------------------------------------------------------


class TestBytecodeDataflow:
    def test_read_before_definition(self):
        f = func_of([ins.Move(3, 4), ins.Ret(4)])
        findings = check_function(f, exe_of([f]))
        assert any(
            "r3 read before definition" in x.message for x in findings
        )

    def test_defined_on_one_path_only(self):
        # The true branch defines r1; the false branch jumps straight to
        # the join, which reads it. Must-defined = intersection -> error.
        f = func_of([
            ins.LoadConsti(1, 0),
            ins.If(0, 0, 1, 2),
            ins.LoadConsti(7, 1),     # true path defines r1
            ins.Ret(1),               # join: r1 only maybe-defined
        ])
        findings = check_function(f, exe_of([f]))
        assert any(
            "r1 read before definition" in x.message for x in findings
        )

    def test_defined_on_all_paths_is_clean(self):
        f = func_of([
            ins.LoadConsti(1, 0),
            ins.If(0, 0, 1, 3),
            ins.LoadConsti(7, 1),
            ins.Goto(2),
            ins.LoadConsti(8, 1),     # false path defines r1 too
            ins.Ret(1),
        ])
        assert check_function(f, exe_of([f])) == []

    def test_execution_falls_off_the_end(self):
        f = func_of([ins.LoadConsti(1, 0)])
        findings = check_function(f, exe_of([f]))
        assert any("falls off the end" in x.message for x in findings)

    def test_alloc_tensor_from_provable_non_storage(self):
        f = func_of([
            ins.LoadConsti(0, 0),
            ins.AllocTensor(0, 0, (4,), "float32", 1),  # r0 is an int
            ins.Ret(1),
        ])
        findings = check_function(f, exe_of([f]))
        assert any(
            "does not hold a storage block" in x.message for x in findings
        )

    def test_moved_storage_register_is_accepted(self):
        f = func_of([
            ins.LoadConsti(64, 0),
            ins.AllocStorage(0, 64, GPU, 1),
            ins.Move(1, 2),           # storage-ness survives the move
            ins.AllocTensor(2, 0, (4,), "float32", 3),
            ins.Ret(3),
        ])
        assert check_function(f, exe_of([f])) == []

    def test_unreachable_code_is_not_condemned(self):
        f = func_of([
            ins.LoadConsti(1, 0),
            ins.Ret(0),
            ins.Move(9, 10),          # dead: never reached, never flagged
            ins.Ret(10),
        ])
        assert check_function(f, exe_of([f])) == []


# ---------------------------------------------------------------------------
# Stream-schedule race detector
# ---------------------------------------------------------------------------


def diamond():
    """k1 and k2 both read k0's output; k3 joins them."""
    return func_of([
        kernel([1, 10]),          # k0
        kernel([10, 11]),         # k1 dep k0
        kernel([10, 2, 12]),      # k2 dep k0
        kernel([11, 12, 13]),     # k3 dep k1, k2
        ins.Ret(13),
    ])


class TestRaceDetector:
    def test_scheduled_diamond_is_ordered(self):
        scheduled, _ = schedule_function(diamond(), 2, is_entry=True)
        assert _check_function(scheduled, is_entry=True) == []

    def test_unsynchronized_cross_stream_edge(self):
        # k1 on stream 1 reads k0's output with no event in sight.
        f = func_of([
            kernel([1, 10], stream=0),
            kernel([10, 11], stream=1),
            ins.Ret(11),
        ])
        findings = _check_function(f, is_entry=True)
        assert any("hazard edge unordered" in x.message for x in findings)

    def test_dropped_wait_is_detected(self):
        scheduled, _ = schedule_function(diamond(), 2, is_entry=True)
        instrs = list(scheduled.instructions)
        wait_at = max(
            i for i, x in enumerate(instrs) if isinstance(x, ins.StreamWait)
        )
        del instrs[wait_at]
        mutant = VMFunction(
            scheduled.name, scheduled.num_params, instrs,
            scheduled.register_count,
        )
        assert errors_of(_check_function(mutant, is_entry=True))

    def test_reordered_event_is_a_lost_wakeup(self):
        scheduled, _ = schedule_function(diamond(), 2, is_entry=True)
        instrs = list(scheduled.instructions)
        wait_at = next(
            i for i, x in enumerate(instrs) if isinstance(x, ins.StreamWait)
        )
        wait = instrs[wait_at]
        event_at = next(
            i for i, x in enumerate(instrs)
            if isinstance(x, ins.StreamEvent)
            and x.event_index == wait.event_index
        )
        assert event_at < wait_at
        instrs.insert(wait_at + 1, instrs.pop(event_at))
        mutant = VMFunction(
            scheduled.name, scheduled.num_params, instrs,
            scheduled.register_count,
        )
        assert errors_of(_check_function(mutant, is_entry=True))

    def test_device_copy_is_a_global_sync(self):
        # The cross-stream read happens after a DeviceCopy drained the
        # device: no event needed, and the model must agree.
        f = func_of([
            kernel([1, 10], stream=1),
            ins.DeviceCopy(10, 11, GPU, cpu(0)),
            kernel([12, 13], stream=0),
            ins.Ret(13),
        ])
        assert _check_function(f, is_entry=True) == []

    def test_control_flow_with_schedule_is_flagged(self):
        f = func_of([
            ins.Goto(1),
            kernel([1, 10], stream=1),
            ins.Ret(10),
        ])
        findings = _check_function(f, is_entry=False)
        assert any(
            "control flow or calls carries a stream schedule" in x.message
            for x in findings
        )

    def test_control_flow_without_schedule_is_fine(self):
        f = func_of([ins.Goto(1), kernel([1, 10]), ins.Ret(10)])
        assert _check_function(f, is_entry=False) == []

    def test_fence_and_join_satisfy_the_caller_contract(self):
        f = func_of([kernel([1, 10]), kernel([2, 11]), ins.Ret(10)],
                    name="cell")
        scheduled, _ = schedule_function(f, 2, is_entry=False)
        assert _check_function(scheduled, is_entry=False) == []

    def test_missing_entry_fence_is_detected(self):
        f = func_of([kernel([1, 10]), kernel([2, 11]), ins.Ret(10)],
                    name="cell")
        scheduled, _ = schedule_function(f, 2, is_entry=False)
        instrs = list(scheduled.instructions)
        # Strip the prologue: the stream-0 event and the side stream's
        # wait on it.
        assert isinstance(instrs[0], ins.StreamEvent)
        assert isinstance(instrs[1], ins.StreamWait)
        mutant = VMFunction(
            scheduled.name, scheduled.num_params, instrs[2:],
            scheduled.register_count,
        )
        findings = _check_function(mutant, is_entry=False)
        assert any("missing entry fence" in x.message for x in findings)

    def test_missing_exit_join_is_detected(self):
        f = func_of([kernel([1, 10]), kernel([2, 11]), ins.Ret(10)],
                    name="cell")
        scheduled, _ = schedule_function(f, 2, is_entry=False)
        instrs = [
            x for x in scheduled.instructions
            if not (isinstance(x, ins.StreamWait) and x.stream == 0)
        ]
        mutant = VMFunction(
            scheduled.name, scheduled.num_params, instrs,
            scheduled.register_count,
        )
        findings = _check_function(mutant, is_entry=False)
        assert any("missing exit join" in x.message for x in findings)

    def test_entry_function_owes_no_fence(self):
        # The same unfenced body is legal as the entry: no caller to race.
        f = func_of([kernel([1, 10], stream=1), ins.Ret(10)])
        assert _check_function(f, is_entry=True) == []
        findings = _check_function(f, is_entry=False)
        assert any("missing entry fence" in x.message for x in findings)


# ---------------------------------------------------------------------------
# Memory-lifetime checker
# ---------------------------------------------------------------------------


def storage_prologue(size=64):
    """LoadConsti size -> r0, AllocStorage -> r1, LoadConsti 0 -> r2."""
    return [
        ins.LoadConsti(size, 0),
        ins.AllocStorage(0, 64, GPU, 1),
        ins.LoadConsti(0, 2),
    ]


class TestLifetimes:
    def test_overlapping_live_intervals_detected(self):
        f = func_of(storage_prologue() + [
            ins.AllocTensor(1, 2, (4,), "float32", 3),   # bytes [0, 16)
            ins.AllocTensor(1, 2, (4,), "float32", 4),   # same bytes
            kernel([3, 4]),      # reads A, writes B
            kernel([4, 3]),      # reads B, writes A: both alive at once
            ins.Ret(3),
        ])
        findings = check_function_lifetimes(f, exe_of([f]))
        assert any(
            "overlapping live intervals" in x.message
            for x in errors_of(findings)
        )

    def test_disjoint_byte_ranges_are_clean(self):
        f = func_of(storage_prologue(128) + [
            ins.LoadConsti(16, 5),
            ins.AllocTensor(1, 2, (4,), "float32", 3),   # bytes [0, 16)
            ins.AllocTensor(1, 5, (4,), "float32", 4),   # bytes [16, 32)
            kernel([3, 4]),
            kernel([4, 3]),
            ins.Ret(3),
        ])
        assert errors_of(check_function_lifetimes(f, exe_of([f]))) == []

    def test_sequential_reuse_is_clean(self):
        # B is carved over A's bytes only after A's last use: the exact
        # coalescing the memory planner exists to perform.
        f = func_of(storage_prologue() + [
            ins.AllocTensor(1, 2, (4,), "float32", 3),
            kernel([9, 3]),      # writes A     (r9: unrelated input)
            kernel([3, 10]),     # reads A: A's lifetime ends here
            ins.AllocTensor(1, 2, (4,), "float32", 4),
            kernel([11, 4]),     # writes B, after A is dead
            ins.Ret(4),
        ])
        assert errors_of(check_function_lifetimes(f, exe_of([f]))) == []

    def test_unused_storage_warns(self):
        f = func_of(storage_prologue() + [ins.Ret(2)])
        findings = check_function_lifetimes(f, exe_of([f]))
        assert any(
            "never carved into a tensor" in x.message
            and x.severity == "warning"
            for x in findings
        )

    def test_read_before_any_write_warns(self):
        f = func_of(storage_prologue() + [
            ins.AllocTensor(1, 2, (4,), "float32", 3),
            kernel([3, 10]),     # reads the fresh tensor
            ins.Ret(3),
        ])
        findings = check_function_lifetimes(f, exe_of([f]))
        assert any(
            "read but never written" in x.message
            and x.severity == "warning"
            for x in findings
        )

    def test_dynamic_token_leaves_the_provable_fragment(self):
        # An AllocTensorReg on the token makes its extent dynamic: the
        # checker must stay silent even on an overlap-shaped pattern.
        f = func_of(storage_prologue() + [
            ins.ShapeOf(3, 6),   # some shape register (value irrelevant)
            ins.AllocTensorReg(1, 2, 6, "float32", 7),
            ins.AllocTensor(1, 2, (4,), "float32", 3),
            ins.AllocTensor(1, 2, (4,), "float32", 4),
            kernel([3, 4]),
            kernel([4, 3]),
            ins.Ret(3),
        ])
        assert errors_of(check_function_lifetimes(f, exe_of([f]))) == []

    def test_control_flow_functions_are_out_of_scope(self):
        f = func_of([ins.Goto(1), ins.LoadConsti(0, 0), ins.Ret(0)])
        assert check_function_lifetimes(f, exe_of([f])) == []


# ---------------------------------------------------------------------------
# IR lint + verify_each_pass
# ---------------------------------------------------------------------------


def t(shape=(2,)):
    return TensorType(shape, "float32")


class TestLint:
    def test_free_variable_is_an_error(self):
        x, y = Var("x", t()), Var("y", t())
        findings = lint_function("f", Function([x], y), typed=False)
        assert any("free variable %y" in f.message for f in findings)

    def test_duplicate_binder_is_an_error(self):
        x = Var("x", t())
        body = Let(x, Constant(np.zeros((2,), np.float32)), x)
        findings = lint_function("f", Function([x], body), typed=False)
        assert any("bound more than once" in f.message for f in findings)

    def test_shadowing_and_unused_bindings_warn(self):
        x1, x2 = Var("x", t()), Var("x", t())
        body = Let(x2, Constant(np.zeros((2,), np.float32)), x1)
        findings = lint_function("f", Function([x1], body), typed=False)
        assert any(
            "shadowing" in f.message and f.severity == "warning"
            for f in findings
        )
        assert any(
            "unused binding %x" in f.message and f.severity == "warning"
            for f in findings
        )
        assert errors_of(findings) == []  # hygiene, not soundness

    def test_let_type_disagreement_is_an_error(self):
        v = Var("v", t((2,)))
        v.checked_type = t((2,))
        c = Constant(np.zeros((3,), np.float32))
        c.checked_type = t((3,))
        findings = lint_function("f", Function([], Let(v, c, v)))
        assert any(
            "disagrees with value type" in f.message
            for f in errors_of(findings)
        )

    def test_anf_discipline(self):
        x = Var("x", t())
        nested = Tuple([Tuple([x])])
        findings = lint_function(
            "f", Function([x], nested), typed=False, anf=True
        )
        assert any("ANF discipline" in f.message for f in findings)
        assert lint_function(
            "f", Function([x], Tuple([x])), typed=False, anf=True
        ) == []

    def test_compiler_pipeline_output_is_clean(self):
        from repro.core.typing import infer_types

        mod = infer_types(small_lstm())
        pipeline = Sequential(
            [FoldConstant(), SimplifyExpressions(),
             CommonSubexprElimination(), DeadCodeElimination()],
            verify_each_pass=True,
        )
        out = pipeline.run(mod)
        assert errors_of(lint_module(out)) == []

    def test_verify_each_pass_names_the_offending_pass(self):
        class ScopeBreaker(Pass):
            name = "ScopeBreaker"

            def run(self, mod):
                out = mod.shallow_copy()
                for gv, f in list(out.functions.items()):
                    if not f.is_primitive and f.params:
                        out.functions[gv] = Function(
                            f.params[:-1], f.body, f.ret_type, f.attrs
                        )
                return out

        pipeline = Sequential(
            [ScopeBreaker()], reinfer_types=False, verify_each_pass=True
        )
        with pytest.raises(VerificationError) as err:
            pipeline.run(small_lstm())
        assert "after pass ScopeBreaker" in str(err.value)
        assert any(
            "free variable" in f.message for f in err.value.findings
        )


# ---------------------------------------------------------------------------
# Golden artifacts + compiled models verify clean
# ---------------------------------------------------------------------------


class TestCleanArtifacts:
    @pytest.mark.parametrize(
        "blob", ["executable_v2.bin", "executable_v3.bin", "executable_v4.bin"]
    )
    def test_golden_blobs_verify(self, blob):
        from pathlib import Path

        golden = Path(__file__).parent / "golden" / blob
        exe = Executable.load(golden.read_bytes())
        assert errors_of(verify_executable(exe)) == []

    def test_dynamic_builds_verify(self):
        for mod, platform in [
            (small_lstm(), nvidia_gpu()),
            (small_bert(), intel_cpu()),
        ]:
            exe, _ = nimble.build(mod, platform)
            assert assert_verified(exe) is not None

    def test_scheduled_specialized_build_verifies(self, scheduled_bert):
        assert scheduled_bert.device_streams == 4
        assert scheduled_bert.num_events > 0
        assert errors_of(verify_executable(scheduled_bert)) == []


# ---------------------------------------------------------------------------
# Mutation harness: 100% detection of every seeded corruption class
# ---------------------------------------------------------------------------


class TestMutationDetection:
    @pytest.mark.parametrize("name", sorted(OPERATORS))
    def test_corruption_class_detected(self, scheduled_bert, name):
        mutant = OPERATORS[name](scheduled_bert)
        assert mutant is not None, f"no site for {name} on a 4-stream build"
        errors = errors_of(verify_executable(mutant))
        assert errors, f"{name} mutant verified clean"

    def test_operators_never_modify_the_input(self, scheduled_bert):
        before = [list(f.instructions) for f in scheduled_bert.functions]
        all_mutants(scheduled_bert)
        after = [list(f.instructions) for f in scheduled_bert.functions]
        assert before == after
        assert errors_of(verify_executable(scheduled_bert)) == []

    def test_assert_verified_raises_structured_findings(self, scheduled_bert):
        mutant = OPERATORS["undefine_register"](scheduled_bert)
        with pytest.raises(VerificationError) as err:
            assert_verified(mutant, context="(mutant)")
        assert "(mutant)" in str(err.value)
        assert all(isinstance(f, Finding) for f in err.value.findings)
        assert any(f.checker == "bytecode" for f in err.value.findings)


# ---------------------------------------------------------------------------
# System gates: compile default, store load, serving sample
# ---------------------------------------------------------------------------


class TestSystemGates:
    def test_compile_gate_defaults_on(self):
        assert CompilerOptions().verify is True

    def test_store_rejects_verify_failed_blob(self, tmp_path):
        exe, _ = nimble.build(small_lstm(), nvidia_gpu())
        mutant = OPERATORS["undefine_register"](exe)
        assert mutant is not None
        # The artifact key hashes identity (module, platform, shapes,
        # version), not instructions: the mutant files under the same
        # key the clean artifact would -- a corrupted writer, faithfully
        # modeled.
        assert mutant.content_hash() == exe.content_hash()
        store = ArtifactStore(tmp_path / "store")
        key = store.put(mutant)
        assert store.get(key) is None  # never handed to a VM
        assert store.rejects == 1
        assert store.verify_rejects == 1
        assert "failed static verification" in store.reject_log[0][1]

    def test_store_verify_gate_can_be_disabled_for_forensics(self, tmp_path):
        exe, _ = nimble.build(small_lstm(), nvidia_gpu())
        mutant = OPERATORS["undefine_register"](exe)
        store = ArtifactStore(tmp_path / "store", verify=False)
        key = store.put(mutant)
        loaded = store.get(key)
        assert loaded is not None
        assert store.verify_rejects == 0

    def test_clean_blob_round_trips_through_the_gate(self, tmp_path):
        exe, _ = nimble.build(small_lstm(), nvidia_gpu())
        store = ArtifactStore(tmp_path / "store")
        key = store.put(exe)
        assert store.get(key) is not None
        assert store.rejects == 0

    def test_serve_config_samples_verification(self):
        from repro.serve.server import ServeConfig

        assert ServeConfig().verify_sample == 4

    def test_serve_report_counts_verify_rejects(self):
        from repro.serve.report import ServeReport

        report = ServeReport(store_rejects=3, verify_rejects=2,
                             specialize_restored=1,
                             num_specialized_executables=1)
        assert "2 failed verification" in report.format()
