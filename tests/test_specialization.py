"""Tiered shape specialization: the SpecializeShapes pass, the
nimble.specialize API, kernel-cache tier separation, serialization, the
serving-layer SpecializationManager, and tier routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache, prim_signature
from repro.core.typing import collect_shape_bindings, infer_types
from repro.core.typing.bind import batch_type, bind_any_dims
from repro.errors import CompilerError, TypeInferenceError
from repro.hardware import intel_cpu, nvidia_gpu
from repro.ir import Any, Function, IRModule, TensorType, Var, const
from repro.ir.types import TupleType, has_any_dim
from repro.ir.printer import module_fingerprint
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.models.lstm import LSTMWeights, build_lstm_module, lstm_reference
from repro.models.tree_lstm import (
    TreeLSTMWeights,
    build_tree_lstm_module,
    tree_to_adt,
)
from repro.ops import api
from repro.passes import BatchSpecializeError, SpecializeBatch, SpecializeShapes
from repro.runtime.context import ExecutionContext
from repro.store import ArtifactStore
from repro.models import build_gram_module
from repro.serve import (
    Batch,
    Batcher,
    InferenceServer,
    Request,
    ServeConfig,
    ShapeBucketer,
    SpecializationManager,
    Worker,
    long_tailed_traffic,
    lstm_traffic,
)
from repro.vm.executable import Executable
from repro.vm.interpreter import VirtualMachine


def _dyn_mlp_module(dim=8, seed=0):
    w = const((np.random.RandomState(seed).randn(dim, dim) * 0.1).astype(np.float32))
    x = Var("x", TensorType((Any(), dim), "float32"))
    return IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))


def _run(exe, *inputs, platform=None, numerics="full"):
    ctx = ExecutionContext(platform or intel_cpu(), numerics=numerics)
    vm = VirtualMachine(exe, ctx)
    out, latency = vm.run_with_latency(*inputs)
    return out, latency, vm


# ---------------------------------------------------------------------------
# Binding helpers
# ---------------------------------------------------------------------------


class TestBindHelpers:
    def test_collect_binds_any_and_checks_static(self):
        a = Any()
        ty = TensorType((a, 8), "float32")
        binding = collect_shape_bindings(ty, (12, 8))
        assert binding == {a.token: 12}

    def test_collect_rejects_static_mismatch(self):
        ty = TensorType((Any(), 8), "float32")
        with pytest.raises(TypeInferenceError, match="static dim"):
            collect_shape_bindings(ty, (12, 9))

    def test_collect_rejects_rank_mismatch(self):
        ty = TensorType((Any(), 8), "float32")
        with pytest.raises(TypeInferenceError, match="rank"):
            collect_shape_bindings(ty, (12,))

    def test_collect_rejects_conflicting_token_values(self):
        a = Any()
        ty = TupleType([TensorType((a, 4)), TensorType((a, 4))])
        with pytest.raises(TypeInferenceError, match="bound to both"):
            collect_shape_bindings(ty, [(3, 4), (5, 4)])

    def test_collect_through_tuple_and_none_skips(self):
        a, b = Any(), Any()
        ty = TupleType([TensorType((a, 4)), TensorType((b, 4))])
        binding = collect_shape_bindings(ty, [(3, 4), None])
        assert binding == {a.token: 3}

    def test_bind_substitutes_only_bound_tokens(self):
        a, b = Any(), Any()
        ty = TupleType([TensorType((a, b)), TensorType((4,))])
        out = bind_any_dims(ty, {a.token: 7})
        assert out.fields[0].shape[0] == 7
        assert isinstance(out.fields[0].shape[1], Any)
        assert out.fields[1] is ty.fields[1]  # untouched subtree shared


# ---------------------------------------------------------------------------
# The SpecializeShapes pass
# ---------------------------------------------------------------------------


class TestSpecializeShapesPass:
    def test_entry_types_become_static(self):
        mod = _dyn_mlp_module()
        out = SpecializeShapes(shapes=[(12, 8)])(mod)
        typed = infer_types(out)
        main = typed["main"]
        assert main.params[0].checked_type == TensorType((12, 8), "float32")
        assert not has_any_dim(main.body.checked_type)

    def test_original_module_untouched(self):
        mod = _dyn_mlp_module()
        typed = infer_types(mod)
        before = repr(typed["main"].params[0].type_annotation)
        SpecializeShapes(shapes=[(12, 8)])(mod)
        assert repr(typed["main"].params[0].type_annotation) == before
        assert has_any_dim(typed["main"].params[0].type_annotation)

    def test_binding_propagates_across_functions(self):
        """The LSTM shares its sequence Any token between main and the
        recursive loop function; binding it must specialize both."""
        mod = build_lstm_module(LSTMWeights.create(8, 8, seed=0))
        out = SpecializeShapes(shapes=[(10, 8)])(mod)
        typed = infer_types(out)
        loop = typed["lstm_loop"]
        x_param = loop.params[2]  # (t, n, x, ...)
        assert x_param.checked_type == TensorType((10, 8), "float32")

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompilerError, match="entry parameters"):
            SpecializeShapes(shapes=[(12, 8), (1, 1)])(_dyn_mlp_module())

    def test_missing_entry_rejected(self):
        with pytest.raises(CompilerError, match="no entry"):
            SpecializeShapes(shapes=[(12, 8)], entry="nope")(_dyn_mlp_module())

    def test_bound_shapes_recorded(self):
        p = SpecializeShapes(shapes=[(12, 8)])
        p(_dyn_mlp_module())
        assert p.bound_shapes == (((12, 8)),)


# ---------------------------------------------------------------------------
# nimble.specialize: bit-identical outputs, overhead removal, round-trips
# ---------------------------------------------------------------------------


class TestSpecializeAPI:
    @pytest.mark.parametrize("rows", [5, 12, 24])
    def test_lstm_bit_identical_across_shapes(self, rows):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(rows, 8)], kernel_cache=cache
        )
        x = (np.random.RandomState(rows).randn(rows, 8) * 0.1).astype(np.float32)
        out_d, _, _ = _run(dyn, x)
        out_s, _, _ = _run(spec, x)
        assert np.array_equal(out_d.numpy(), out_s.numpy())
        assert np.allclose(out_s.numpy(), lstm_reference(x, weights), atol=1e-5)

    def test_bert_removes_shape_funcs_and_dynamic_allocs(self):
        config = BertConfig(hidden=32, num_layers=1, num_heads=2, ffn=64)
        weights = BertWeights.create(config, seed=0)
        mod = build_bert_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(24, 32)], kernel_cache=cache
        )
        x = (np.random.RandomState(0).randn(24, 32) * 0.1).astype(np.float32)
        out_d, lat_d, vm_d = _run(dyn, x)
        out_s, lat_s, vm_s = _run(spec, x)
        assert np.array_equal(out_d.numpy(), out_s.numpy())
        # The static tier pays no shape functions, fewer instructions,
        # fewer allocations, and strictly less end-to-end latency.
        assert vm_d.profile.shape_func_invocations > 0
        assert vm_s.profile.shape_func_invocations == 0
        assert vm_s.profile.dispatch_time_us < vm_d.profile.dispatch_time_us
        assert (
            vm_s.ctx.allocator.stats.total_allocs
            < vm_d.ctx.allocator.stats.total_allocs
        )
        assert lat_s < lat_d

    def test_tree_lstm_specialize_is_safe_on_adt_entry(self):
        """No Any dims in the TreeLSTM entry: specialization is an
        (ADT-preserving) identity and stays bit-identical."""
        from repro.data import sst_like_trees, embedding_table

        weights = TreeLSTMWeights.create(16, 8, seed=0)
        mod = build_tree_lstm_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[None], kernel_cache=cache
        )
        tree = sst_like_trees(1, seed=3)[0]
        adt = tree_to_adt(tree, embedding_table(dim=16, seed=0))
        out_d, _, _ = _run(dyn, adt)
        out_s, _, _ = _run(spec, adt)
        assert np.array_equal(out_d.numpy(), out_s.numpy())

    def test_specialized_marker_and_save_load_round_trip(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        spec, _ = nimble.specialize(mod, intel_cpu(), shapes=[(9, 8)])
        assert spec.is_specialized
        assert spec.specialized_shapes == ((9, 8),)
        loaded = Executable.load(spec.save())
        assert loaded.specialized_shapes == ((9, 8),)
        x = (np.random.RandomState(4).randn(9, 8) * 0.1).astype(np.float32)
        out_a, _, _ = _run(spec, x)
        out_b, _, _ = _run(loaded, x)
        assert np.array_equal(out_a.numpy(), out_b.numpy())

    def test_dynamic_build_is_unmarked(self):
        exe, _ = nimble.build(_dyn_mlp_module(), intel_cpu())
        assert not exe.is_specialized
        assert Executable.load(exe.save()).specialized_shapes is None

    def test_kernel_cache_keeps_tiers_apart(self):
        """A specialized prim hashes structurally equal to its symbolic
        original; the cache key's shape signature must keep them apart
        (the symbolic kernel must never serve the static tier)."""
        mod = _dyn_mlp_module()
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        n_dynamic = len(cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(16, 8)], kernel_cache=cache
        )
        assert len(cache) > n_dynamic
        assert any(getattr(k, "symbolic", False) for k in dyn.kernels)
        assert not any(getattr(k, "symbolic", False) for k in spec.kernels)

    def test_prim_signature_distinguishes_static_from_symbolic(self):
        w = const(np.zeros((8, 8), np.float32))

        def prim(m):
            x = Var("x", TensorType((m, 8), "float32"))
            return Function(
                [x], api.dense(x, w), TensorType((m, 8), "float32"),
                {"primitive": True},
            )

        a = Any()
        assert prim_signature(prim(a)) != prim_signature(prim(16))
        assert prim_signature(prim(16)) != prim_signature(prim(32))

    def test_empty_shared_kernel_cache_is_not_discarded(self):
        """Regression: KernelCache defines __len__, so an empty cache is
        falsy — `or`-defaulting used to silently compile into a private
        cache and defeat sharing."""
        cache = KernelCache()
        nimble.build(_dyn_mlp_module(), intel_cpu(), kernel_cache=cache)
        assert len(cache) > 0


# ---------------------------------------------------------------------------
# The serving tier
# ---------------------------------------------------------------------------


def _lstm_server(threshold=3, compile_us=1000.0, **overrides):
    weights = LSTMWeights.create(8, 16, seed=0)
    mod = build_lstm_module(weights)
    config = ServeConfig(
        max_batch_size=4,
        max_delay_us=2000.0,
        num_workers=2,
        specialize=True,
        specialize_threshold=threshold,
        specialize_compile_us=compile_us,
        **overrides,
    )
    return InferenceServer(mod, intel_cpu(), config), weights


def _mlp_manager(threshold=2, kernel_cache=None, **kwargs):
    mod = _dyn_mlp_module()
    typed = infer_types(mod)
    bucketer = ShapeBucketer(typed["main"], granularity=8)
    return SpecializationManager(
        mod, intel_cpu(), bucketer, kernel_cache or KernelCache(),
        threshold=threshold, compile_us=100.0, **kwargs,
    )


class TestSpecializationManager:
    def _manager(self, threshold=2, **kwargs):
        return _mlp_manager(threshold=threshold, **kwargs)

    def test_threshold_triggers_compile_on_background_lane(self):
        mgr = self._manager(threshold=2)
        mgr.observe((16,), 10.0)
        assert mgr.num_executables == 0
        mgr.observe((16,), 20.0)
        assert mgr.num_executables == 1
        (event,) = mgr.events
        assert event.trigger_us == 20.0
        assert event.ready_us == pytest.approx(120.0)
        # Not routable until the compile lane finishes.
        assert mgr.executable_for((16,), 50.0) is None
        exe = mgr.executable_for((16,), 120.0)
        assert exe is not None and exe.specialized_shapes == ((16, 8),)

    def test_single_lane_serializes_compiles_through_queue(self):
        mgr = self._manager(threshold=1)
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 0.0)
        # The lane is busy until 100, so the second compile waits in the
        # pending queue; draining the pool binds it when the lane frees.
        assert [e.ready_us for e in mgr.events] == [100.0]
        mgr.drain()
        assert [e.ready_us for e in mgr.events] == [100.0, 200.0]
        assert [e.queue_us for e in mgr.events] == [0.0, 100.0]
        assert mgr.lane_busy_us == [200.0]

    def test_pending_compile_binds_at_lane_free_event(self):
        """A compile left pending by a busy lane starts at the lane-free
        time — not at the next observation — once any later observation
        (or drain) pumps the pool past it."""
        mgr = self._manager(threshold=1)
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 10.0)
        mgr.observe((8,), 500.0)  # any arrival pumps: lane freed at 100
        assert [(e.key, e.start_us) for e in mgr.events] == [
            ((8,), 0.0),
            ((16,), 100.0),
        ]

    def test_capacity_cap_stops_new_specializations(self):
        # All resident compiles are still in flight at the third trigger,
        # so even with eviction enabled nothing can be displaced.
        mgr = self._manager(threshold=1, max_executables=2)
        for v in (8, 16, 24):
            mgr.observe((v,), 0.0)
        assert mgr.num_executables == 2
        assert mgr.num_resident == 2
        assert mgr.executable_for((24,), 1e9) is None

    def test_reset_preserves_compiled_cache_but_restarts_counters(self):
        mgr = self._manager(threshold=2)
        mgr.observe((16,), 0.0)
        mgr.observe((16,), 1.0)
        assert mgr.num_executables == 1
        mgr.reset()
        assert mgr.num_executables == 1
        assert mgr.hits((16,)) == 0
        assert mgr.executable_for((16,), 1e9) is None  # not hot again yet
        mgr.observe((16,), 5.0)
        mgr.observe((16,), 6.0)
        assert mgr.executable_for((16,), 106.0) is not None

    def test_static_model_never_specializes(self):
        x = Var("x", TensorType((4, 8), "float32"))
        mod = IRModule.from_expr(Function([x], api.relu(x)))
        typed = infer_types(mod)
        bucketer = ShapeBucketer(typed["main"], granularity=8)
        mgr = SpecializationManager(
            mod, intel_cpu(), bucketer, KernelCache(), threshold=1,
            compile_us=1.0,
        )
        mgr.observe((), 0.0)
        assert mgr.num_executables == 0


class TestCompilePool:
    def test_two_lanes_overlap_independent_compiles(self):
        mgr = _mlp_manager(threshold=1, compile_lanes=2)
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 0.0)
        assert [(e.lane, e.start_us, e.ready_us) for e in mgr.events] == [
            (0, 0.0, 100.0),
            (1, 0.0, 100.0),
        ]
        assert mgr.lane_busy_us == [100.0, 100.0]

    def test_pending_queue_prioritizes_hotter_traffic(self):
        """The free lane picks the pending compile with the highest hit
        rate since trigger, recomputed at the lane-free event — not FIFO."""
        mgr = _mlp_manager(threshold=1)
        mgr.observe((8,), 0.0)    # occupies the lane until 100
        mgr.observe((16,), 10.0)  # pending, 1 hit
        mgr.observe((24,), 20.0)  # pending...
        mgr.observe((24,), 30.0)
        mgr.observe((24,), 40.0)  # ...but much hotter since its trigger
        mgr.drain()
        assert [e.key for e in mgr.events] == [(8,), (24,), (16,)]

    def test_lane_assignment_is_deterministic(self):
        """Equal-priority pending compiles and simultaneously-free lanes
        bind by (trigger time, key) and (free time, lane id) — replays of
        the same observation sequence are bit-identical."""

        def run():
            mgr = _mlp_manager(threshold=1, compile_lanes=3)
            for t, v in [(0, 8), (0, 16), (5, 24), (5, 32), (9, 40)]:
                mgr.observe((v,), float(t))
            mgr.drain()
            return [(e.key, e.lane, e.start_us, e.ready_us) for e in mgr.events]

        first = run()
        assert run() == first
        assert {lane for _, lane, _, _ in first} == {0, 1, 2}

    def test_compile_charge_equals_lane_busy_time(self):
        mgr = _mlp_manager(threshold=1, compile_lanes=2)
        for t, v in [(0, 8), (3, 16), (6, 24), (9, 32)]:
            mgr.observe((v,), float(t))
        mgr.drain()
        assert mgr.compile_us_spent == pytest.approx(sum(mgr.lane_busy_us))
        assert mgr.compile_us_spent == pytest.approx(400.0)


class TestRearmAndEviction:
    def test_starved_shape_rearms_and_recompiles_after_eviction(self):
        """Regression for the headline trigger bug: `observe` fired only
        on an exact threshold hit, so a shape whose trigger was swallowed
        by a full cache could never specialize. Now it stays armed and
        retries on every later hit, succeeding once eviction frees the
        slot."""
        mgr = _mlp_manager(
            threshold=2, max_executables=1, decay_half_life_us=1000.0
        )
        mgr.observe((8,), 0.0)
        mgr.observe((8,), 10.0)  # A triggers, compile ready at 110
        assert mgr.is_hot((8,), 110.0)
        # B crosses the threshold while the cache is full (and A's compile
        # is still in flight): blocked. The old `!= threshold` trigger
        # would have starved B forever from this point on.
        mgr.observe((16,), 20.0)
        mgr.observe((16,), 30.0)
        assert mgr.evictions == []
        assert mgr.num_resident == 1
        assert not mgr.is_hot((16,), 1e9)
        # Five half-lives later A has gone cold; B's next hit — well past
        # the exact threshold — retries, evicts A, and compiles.
        mgr.observe((16,), 5000.0)
        assert mgr.hits((16,)) == 3  # the trigger fired on hit 3, not 2
        assert [e.key for e in mgr.evictions] == [(8,)]
        (compile_b,) = [e for e in mgr.events if e.key == (16,)]
        assert compile_b.trigger_us == 5000.0
        assert mgr.is_hot((16,), compile_b.ready_us)
        assert not mgr.is_hot((8,), 1e9)  # evicted: no longer routable

    def test_evicted_shape_rearms_and_recompiles(self):
        """An evicted shape's hit count still sits past the threshold, so
        when it heats back up it re-triggers; the artifact is memoised but
        the modeled compile cost is charged again."""
        mgr = _mlp_manager(
            threshold=2, max_executables=1, decay_half_life_us=1000.0
        )
        mgr.observe((8,), 0.0)
        mgr.observe((8,), 10.0)
        mgr.observe((16,), 20.0)
        mgr.observe((16,), 30.0)
        mgr.observe((16,), 5000.0)  # evicts A (as above)
        mgr.observe((8,), 5200.0)   # A warm again, but within the margin
        assert [e.key for e in mgr.evictions] == [(8,)]
        mgr.observe((8,), 5210.0)   # past 2x B's decayed score: evicts B
        assert [e.key for e in mgr.evictions] == [(8,), (16,)]
        assert [e.key for e in mgr.events] == [(8,), (16,), (8,)]
        assert mgr.num_executables == 2  # artifacts memoised, not re-built
        assert mgr.compile_us_spent == pytest.approx(300.0)  # 3 charges

    def test_inflight_compile_is_never_evicted(self):
        mgr = _mlp_manager(
            threshold=1, max_executables=1, decay_half_life_us=1.0
        )
        mgr.observe((8,), 0.0)    # in flight until 100
        mgr.observe((16,), 50.0)  # hotter, but the victim is in flight
        assert mgr.evictions == []
        assert mgr.num_resident == 1
        mgr.observe((16,), 200.0)  # A landed and went cold: evictable now
        assert [e.key for e in mgr.evictions] == [(8,)]

    def test_eviction_requires_strictly_colder_victim(self):
        """Equal heat keeps the incumbent — a challenger only displaces a
        resident whose decayed score it strictly beats (margin 1.0: the
        bare policy, no thrash protection). Hitting both shapes at the
        same instants makes their decayed scores exactly equal."""
        mgr = _mlp_manager(threshold=1, max_executables=1, eviction_margin=1.0)
        mgr.observe((8,), 0.0)     # A triggers, resident, ready at 100
        mgr.observe((16,), 0.0)    # B armed; A in flight anyway
        mgr.observe((8,), 100.0)   # A: 2 same-instant-pattern hits
        mgr.observe((16,), 100.0)  # B: exactly A's score — incumbent kept
        assert mgr.evictions == []
        assert mgr.num_resident == 1
        mgr.observe((16,), 100.0)  # third hit: strictly hotter now
        assert [e.key for e in mgr.evictions] == [(8,)]

    def test_margin_blocks_comparable_heat_thrash(self):
        """The default eviction margin (2x) keeps an incumbent whose heat
        is comparable to the challenger's: a steady mix of hot shapes
        must not ping-pong the cache and throw away compile investment.
        Only a challenger more than twice as hot displaces."""
        mgr = _mlp_manager(threshold=1, max_executables=1)
        for t in (0.0, 1.0, 2.0):
            mgr.observe((8,), t)  # A: score ~3, compile lands at 100
        for t in (103.0, 104.0, 105.0, 106.0, 107.0):
            mgr.observe((16,), t)  # B climbs to ~5: hotter, but under 2x
        assert mgr.evictions == []
        assert mgr.is_hot((8,), 107.0)
        mgr.observe((16,), 108.0)  # score ~6 > 2 x 3: past the margin
        assert [e.key for e in mgr.evictions] == [(8,)]

    def test_eviction_off_restores_hard_cap(self):
        mgr = _mlp_manager(
            threshold=1, max_executables=1, eviction=False,
            decay_half_life_us=1.0,
        )
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 1000.0)  # would evict; hard cap blocks instead
        mgr.observe((16,), 2000.0)
        assert mgr.evictions == []
        assert mgr.num_resident == 1
        assert not mgr.is_hot((16,), 1e9)


class TestPoolProperties:
    """Property-style invariants over randomized observation traces,
    checked at every lane count on the same trace."""

    _managers = {}

    @classmethod
    def _pool(cls, lanes):
        # Managers are cached across examples (sharing one kernel cache)
        # so the handful of distinct shapes compiles exactly once; reset()
        # restores per-simulation state between examples.
        if lanes not in cls._managers:
            if not cls._managers:
                cls._shared_cache = KernelCache()
            cls._managers[lanes] = _mlp_manager(
                threshold=2,
                max_executables=2,
                compile_lanes=lanes,
                decay_half_life_us=200.0,
                kernel_cache=cls._shared_cache,
            )
        mgr = cls._managers[lanes]
        mgr.reset()
        return mgr

    @staticmethod
    def _replay(mgr, trace):
        now = 0.0
        for idx, gap in trace:
            now += gap
            mgr.observe(((idx + 1) * 8,), now)
        mgr.drain()
        return (
            [(e.key, e.lane, e.trigger_us, e.start_us, e.ready_us) for e in mgr.events],
            [(e.key, e.evicted_us, e.by_key) for e in mgr.evictions],
        )

    @given(
        trace=st.lists(
            st.tuples(st.integers(0, 3), st.floats(0.0, 400.0)),
            min_size=4,
            max_size=40,
        ),
        lanes=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_replay_eviction_and_charge_invariants(self, trace, lanes):
        mgr = self._pool(lanes)
        first = self._replay(mgr, trace)
        events, evictions = first
        # (a) replaying one trace is bit-identical.
        mgr.reset()
        assert self._replay(mgr, trace) == first
        # (b) eviction never hits a shape with an in-flight compile: a
        # victim must have a compile fully landed by its eviction, and no
        # compile of it straddles the eviction instant. (A compile of the
        # same key *starting* exactly at the eviction time is the shape
        # legitimately re-triggering into the just-freed slot, so the
        # straddle check is strict.)
        for key, evicted_us, _ in evictions:
            landed = [e for e in events if e[0] == key and e[4] <= evicted_us]
            assert landed, "evicted a shape whose compile never landed"
            straddling = [
                e for e in events if e[0] == key and e[3] < evicted_us < e[4]
            ]
            assert not straddling
        # (c) total compile charge equals the sum of per-lane busy time.
        assert mgr.compile_us_spent == pytest.approx(sum(mgr.lane_busy_us))
        assert len(mgr.lane_busy_us) == lanes
        # Residency never exceeds the cap.
        assert mgr.num_resident <= 2


# One kernel cache shared by every server in the compile-pool serving
# tests: they all compile the same LSTM module, so kernels memoise across
# configurations (the *modeled* compile cost is still charged per trigger).
_POOL_TEST_KERNELS = KernelCache()


class TestCompilePoolServing:
    """End-to-end acceptance for the compile pool + eviction on the
    long-tailed shape mix (ISSUE 3): starved shapes recover via eviction,
    a second lane strictly cuts compile-queue wait, and replays stay
    bit-identical under every setting."""

    _weights = LSTMWeights.create(8, 16, seed=0)

    def _server(self, lanes, eviction=True):
        mod = build_lstm_module(self._weights)
        config = ServeConfig(
            max_batch_size=4,
            max_delay_us=1500.0,
            num_workers=2,
            specialize=True,
            specialize_threshold=2,
            specialize_max_executables=4,
            specialize_compile_us=6000.0,
            specialize_compile_lanes=lanes,
            specialize_eviction=eviction,
            specialize_decay_half_life_us=3_000.0,
        )
        return InferenceServer(
            mod, intel_cpu(), config, kernel_cache=_POOL_TEST_KERNELS
        )

    @staticmethod
    def _trace(n=80):
        from repro.serve import long_tailed_traffic

        return long_tailed_traffic(
            n,
            input_size=8,
            mean_interarrival_us=300.0,
            hot_lengths=(5, 11, 17, 23, 29),
            tail_min=3,
            tail_max=32,
            seed=0,
        )

    def test_starved_hot_shape_specializes_after_eviction(self):
        """Regression for the starved-shape trace: shapes the hard cap
        blocks forever get specialized once eviction frees a slot."""
        requests = self._trace()
        capped = self._server(1, eviction=False)
        evicting = self._server(1)
        capped.simulate(requests)
        report = evicting.simulate(requests)
        assert report.specialize_evictions > 0
        compiled_capped = {e.key for e in capped.specializer.events}
        compiled_evicting = {e.key for e in evicting.specializer.events}
        starved = compiled_evicting - compiled_capped
        assert starved, "eviction should specialize shapes the cap starves"
        # Each recovered shape triggered at/after the eviction that could
        # have freed its slot — they were blocked until then.
        first_eviction = evicting.specializer.evictions[0].evicted_us
        for key in starved:
            trigger = min(
                e.trigger_us
                for e in evicting.specializer.events
                if e.key == key
            )
            assert trigger >= first_eviction
        assert evicting.specializer.num_resident <= 4

    def test_second_lane_strictly_cuts_queue_wait(self):
        requests = self._trace()
        waits = {}
        for lanes in (1, 2):
            server = self._server(lanes)
            a = server.simulate(requests)
            b = server.simulate(requests)
            # Bit-identical replay under both settings.
            assert a.latencies_us == b.latencies_us
            assert [r.tier for r in a.responses] == [r.tier for r in b.responses]
            assert a.specialize_queue_waits_us == b.specialize_queue_waits_us
            assert a.specialize_lane_busy_us == b.specialize_lane_busy_us
            assert a.specialize_evictions == b.specialize_evictions
            assert len(a.specialize_lane_busy_us) == lanes
            waits[lanes] = a.mean_compile_queue_wait_us
        assert waits[1] > 0.0
        assert waits[2] < waits[1]

    def test_replay_bit_identical_under_any_lane_count(self):
        requests = self._trace(n=36)
        for lanes in (1, 2, 3):
            server = self._server(lanes)
            a = server.simulate(requests)
            b = server.simulate(requests)
            assert [
                (r.rid, r.latency_us, r.tier, r.worker_id, r.bucket_key)
                for r in a.responses
            ] == [
                (r.rid, r.latency_us, r.tier, r.worker_id, r.bucket_key)
                for r in b.responses
            ]
            assert a.batch_histogram == b.batch_histogram
            assert a.specialize_compile_us == b.specialize_compile_us


class TestTieredServing:
    def test_hot_bucket_gets_specialized_hits(self):
        server, _ = _lstm_server()
        requests = lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        report = server.simulate(requests)
        assert report.specialized_hits > 0
        assert 0.0 < report.specialized_hit_rate <= 1.0
        assert report.num_specialized_executables > 0
        assert report.specialize_compile_us > 0.0
        # Per-tier accounting: every response carries its tier and the
        # split adds back up.
        tiers = {r.tier for r in report.responses}
        assert tiers == {"dynamic", "specialized"}
        assert (
            len(report.tier_latencies_us("dynamic"))
            + len(report.tier_latencies_us("specialized"))
            == report.num_requests
        )

    def test_outputs_identical_to_untiered_server(self):
        """Tiering changes scheduling and dispatch, never numerics."""
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        requests = lstm_traffic(32, input_size=8, mean_interarrival_us=150.0, seed=1)
        tiered = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=4, max_delay_us=2000.0, num_workers=2,
                        numerics="full", specialize=True,
                        specialize_threshold=2, specialize_compile_us=500.0),
        )
        plain = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=4, max_delay_us=2000.0, num_workers=2,
                        numerics="full"),
        )
        a = tiered.simulate(requests)
        b = plain.simulate(requests)
        assert a.specialized_hits > 0
        for ra, rb in zip(a.responses, b.responses):
            assert ra.rid == rb.rid
            assert np.array_equal(ra.output.numpy(), rb.output.numpy())

    def test_replay_is_bit_stable(self):
        """The specialized-hit rate and the whole report reproduce exactly
        across replays of one trace (compiled executables are cached, hit
        counters reset)."""
        server, _ = _lstm_server()
        requests = lstm_traffic(48, input_size=8, mean_interarrival_us=200.0, seed=2)
        a = server.simulate(requests)
        b = server.simulate(requests)
        assert a.specialized_hits == b.specialized_hits > 0
        assert a.specialized_hit_rate == b.specialized_hit_rate
        assert a.latencies_us == b.latencies_us
        assert a.specialize_compile_us == b.specialize_compile_us
        assert a.batch_histogram == b.batch_histogram
        assert [r.tier for r in a.responses] == [r.tier for r in b.responses]

    def test_specialized_tier_pays_no_shape_funcs(self):
        server, _ = _lstm_server()
        requests = lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        report = server.simulate(requests)
        assert report.specialized_hits > 0
        assert report.profile_specialized.shape_func_time_us == 0.0
        assert report.profile_specialized.runs == report.specialized_hits
        assert report.profile_dynamic.runs == (
            report.num_requests - report.specialized_hits
        )

    def test_tiering_off_keeps_everything_dynamic(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        server = InferenceServer(
            mod, intel_cpu(), ServeConfig(max_batch_size=4, num_workers=2)
        )
        report = server.simulate(
            lstm_traffic(16, input_size=8, mean_interarrival_us=100.0, seed=0)
        )
        assert report.specialized_hits == 0
        assert report.specialized_hit_rate == 0.0
        assert all(r.tier == "dynamic" for r in report.responses)

    def test_report_format_shows_tiers(self):
        server, _ = _lstm_server()
        report = server.simulate(
            lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        )
        text = report.format("tiered")
        assert "specialized hit rate" in text
        assert "shape-func µs" in text

    def test_gpu_platform_tiering_is_deterministic(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        config = ServeConfig(
            max_batch_size=4, max_delay_us=1000.0, num_workers=2,
            specialize=True, specialize_threshold=2,
            specialize_compile_us=800.0,
        )
        server = InferenceServer(mod, nvidia_gpu(), config)
        requests = lstm_traffic(32, input_size=8, mean_interarrival_us=150.0, seed=3)
        a = server.simulate(requests)
        b = server.simulate(requests)
        assert a.latencies_us == b.latencies_us
        assert a.specialized_hits == b.specialized_hits


# ---------------------------------------------------------------------------
# Batch-granularity specialization: the SpecializeBatch pass, batched
# executables, the (shape, batch)-variant cache, and the batched tier
# ---------------------------------------------------------------------------


class TestBatchType:
    def test_stacks_leading_dim_and_shares_scalars(self):
        ty = TupleType([TensorType((5, 8)), TensorType((), "int64")])
        out = batch_type(ty, 4)
        assert out.fields[0].shape == (20, 8)
        assert out.fields[1] is ty.fields[1]  # rank-0: shared, untouched

    def test_rejects_dynamic_leading_dim(self):
        with pytest.raises(TypeInferenceError, match="dynamic leading dim"):
            batch_type(TensorType((Any(), 8)), 2)


class TestSpecializeBatchPass:
    @staticmethod
    def _golden(name):
        import pathlib

        path = pathlib.Path(__file__).parent / "golden" / f"{name}.txt"
        return path.read_text()

    @staticmethod
    def _batched_module(family):
        if family == "lstm_batch":
            mod = build_lstm_module(
                LSTMWeights.create(input_size=8, hidden_size=4, num_layers=1, seed=0)
            )
            return SpecializeBatch(2)(SpecializeShapes(shapes=[(6, 8)])(mod))
        mod = build_bert_module(
            BertWeights.create(
                BertConfig(hidden=8, num_layers=1, num_heads=2, ffn=16), seed=0
            )
        )
        return SpecializeBatch(3)(SpecializeShapes(shapes=[(5, 8)])(mod))

    @pytest.mark.parametrize("family", ["lstm_batch", "bert_batch"])
    def test_batched_module_matches_golden(self, family):
        """The batch-rewritten module is stable text: static storage
        sizes, no shape functions, stacked entry signature, one
        nn.batch_dense per member-wise GEMM site."""
        from repro.ir import pretty_module

        text = pretty_module(self._batched_module(family)) + "\n"
        assert text == self._golden(family)
        assert "nn.batch_dense" in text
        assert "vm.shape_of" not in text
        assert "?" not in text  # every dim is static

    @pytest.mark.parametrize("family", ["lstm_batch", "bert_batch"])
    def test_batched_golden_signature_reparses(self, family):
        from repro.ir import module_signature, parse_module_signature

        mod = self._batched_module(family)
        parsed = parse_module_signature(self._golden(family))
        assert parsed == module_signature(mod)
        assert "main" in parsed

    def test_entry_signature_is_stacked(self):
        mod = self._batched_module("lstm_batch")
        typed = infer_types(mod)
        # member (6, 8) stacked 2x; member state (1, 4) stacked to (2, 4).
        assert typed["main"].params[0].checked_type == TensorType((12, 8), "float32")
        assert typed["main"].body.checked_type == TensorType((2, 4), "float32")

    def test_batch_one_is_identity(self):
        mod = SpecializeShapes(shapes=[(6, 8)])(_dyn_mlp_module())
        assert SpecializeBatch(1)(mod) is mod

    def test_requires_static_entry(self):
        with pytest.raises(BatchSpecializeError, match="fully static"):
            SpecializeBatch(2)(_dyn_mlp_module())

    def test_rejects_adt_entry(self):
        mod = build_tree_lstm_module(TreeLSTMWeights.create(16, 8, seed=0))
        with pytest.raises(BatchSpecializeError):
            SpecializeBatch(2)(mod)

    def test_rejects_unsupported_op(self):
        x = Var("x", TensorType((Any(), 8), "float32"))
        mod = IRModule.from_expr(Function([x], api.expand_dims(api.relu(x), 0)))
        spec = SpecializeShapes(shapes=[(4, 8)])(mod)
        with pytest.raises(BatchSpecializeError, match="expand_dims"):
            SpecializeBatch(2)(spec)

    def test_marker_and_save_load_round_trip(self):
        """specialized_shapes stays in member terms; the batch lives in a
        separate marker that survives serialization (v3)."""
        mod = _dyn_mlp_module()
        exe, _ = nimble.specialize(mod, intel_cpu(), shapes=[(8, 8)], batch=4)
        assert exe.specialized_shapes == ((8, 8),)
        assert exe.specialized_batch == 4
        assert exe.is_batch_specialized
        loaded = Executable.load(exe.save())
        assert loaded.specialized_shapes == ((8, 8),)
        assert loaded.specialized_batch == 4
        x = np.random.RandomState(0).randn(32, 8).astype(np.float32)
        ctx_a = ExecutionContext(intel_cpu(), numerics="full")
        ctx_b = ExecutionContext(intel_cpu(), numerics="full")
        out_a = VirtualMachine(exe, ctx_a).run(x)
        out_b = VirtualMachine(loaded, ctx_b).run(x)
        assert np.array_equal(out_a.numpy(), out_b.numpy())

    def test_member_build_is_unmarked(self):
        exe, _ = nimble.specialize(_dyn_mlp_module(), intel_cpu(), shapes=[(8, 8)])
        assert exe.specialized_batch is None
        assert not exe.is_batch_specialized
        assert Executable.load(exe.save()).specialized_batch is None


class TestWorkerBatchVariantVMs:
    def test_vm_cache_keys_include_the_batch_variant(self):
        """Regression: member (4, 8) batched 8x and member (8, 8) batched
        4x stack to the SAME entry signature (32, 8), so a VM cache keyed
        on specialized_shapes alone would reuse a stale VM across a
        batch-cap change — splitting outputs at the wrong granularity."""
        mod = _dyn_mlp_module()
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        a, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(4, 8)], kernel_cache=cache, batch=8
        )
        b, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(8, 8)], kernel_cache=cache, batch=4
        )
        worker = Worker(0, dyn, intel_cpu())
        vm_a = worker._specialized_vm(a)
        vm_b = worker._specialized_vm(b)
        assert vm_a is not vm_b
        assert worker._specialized_vm(a) is vm_a  # stable across lookups
        # Batched VMs pool into the batched profile, member VMs into the
        # specialized profile.
        member, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(4, 8)], kernel_cache=cache
        )
        assert vm_a.profile is worker.batched_profile
        assert worker._specialized_vm(member).profile is worker.specialized_profile


class TestBatcherCaps:
    @staticmethod
    def _batcher(cap_fn, max_batch_size=8):
        x = Var("x", TensorType((Any(), 8), "float32"))
        typed = infer_types(IRModule.from_expr(Function([x], api.relu(x))))
        bucketer = ShapeBucketer(typed["main"], granularity=8)
        return Batcher(
            bucketer, max_batch_size=max_batch_size, max_delay_us=1e6,
            cap_fn=cap_fn,
        )

    @staticmethod
    def _request(rid, rows):
        return Request(
            rid=rid, arrival_us=float(rid),
            payload=np.zeros((rows, 8), np.float32),
        )

    def test_bucket_flushes_at_its_cap(self):
        batcher = self._batcher(cap_fn=lambda key: 3)
        batches = [
            batcher.add(self._request(i, 5), float(i)) for i in range(7)
        ]
        formed = [b for b in batches if b is not None]
        assert [len(b) for b in formed] == [3, 3]
        assert batcher.pending == 1

    def test_cap_clamps_to_max_batch_size(self):
        batcher = self._batcher(cap_fn=lambda key: 99, max_batch_size=2)
        assert batcher.bucket_cap((8,)) == 2

    def test_nonpositive_cap_rejected(self):
        batcher = self._batcher(cap_fn=lambda key: 0)
        with pytest.raises(ValueError, match="cap"):
            batcher.add(self._request(0, 5), 0.0)

    def test_server_never_forms_hot_bucket_past_the_compiled_cap(self):
        """End to end: with the batched tier on, every exact (hot) bucket
        flushes at exactly the compiled batch size or smaller — a bucket
        larger than the kernel compiled for it could never execute."""
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        config = ServeConfig(
            max_batch_size=8, max_delay_us=3000.0, num_workers=2,
            specialize=True, specialize_threshold=2,
            specialize_compile_us=300.0, specialize_batch=True,
            specialize_batch_cap=3,
        )
        server = InferenceServer(mod, intel_cpu(), config)
        requests = long_tailed_traffic(
            72, input_size=8, mean_interarrival_us=150.0,
            hot_lengths=(7,), hot_fraction=0.8, tail_min=3, tail_max=16,
            seed=0,
        )
        report = server.simulate(requests)
        assert report.batched_hits > 0
        for r in report.responses:
            if r.bucket_key and r.bucket_key[0] == -1:
                assert r.batch_size <= 3
            if r.tier == "batched":
                assert r.batch_size == 3


def _batched_lstm_server(lanes=1, cache=4, kernel_cache=None, **overrides):
    weights = LSTMWeights.create(8, 16, seed=0)
    mod = build_lstm_module(weights)
    params = dict(
        max_batch_size=4,
        max_delay_us=1500.0,
        num_workers=2,
        specialize=True,
        specialize_threshold=2,
        specialize_max_executables=cache,
        specialize_compile_us=500.0,
        specialize_compile_lanes=lanes,
        specialize_decay_half_life_us=3_000.0,
        specialize_batch=True,
    )
    params.update(overrides)
    return InferenceServer(
        mod, intel_cpu(), ServeConfig(**params), kernel_cache=kernel_cache
    )


def _hot_heavy_trace(n=72, seed=0):
    return long_tailed_traffic(
        n, input_size=8, mean_interarrival_us=150.0,
        hot_lengths=(7, 11), hot_fraction=0.8, tail_min=3, tail_max=16,
        seed=seed,
    )


# Shared kernels across the batched-serving tests (same module everywhere).
_BATCH_TEST_KERNELS = KernelCache()


class TestBatchedManagerVariants:
    def test_trigger_compiles_both_variants_deterministically(self):
        mgr = _mlp_manager(threshold=1, batch_cap=4)
        mgr.observe((16,), 0.0)
        mgr.drain()
        assert [(e.key, e.batch) for e in mgr.events] == [((16,), 1), ((16,), 4)]
        # Member variant binds the lane first (it also serves ragged
        # tails); both charged separately.
        assert mgr.compile_us_spent == pytest.approx(200.0)
        assert mgr.num_executables == 1   # one shape...
        assert mgr.num_variants == 2      # ...two artifacts
        ready = mgr.events[-1].ready_us
        assert mgr.is_hot((16,), ready)
        assert mgr.is_batched_hot((16,), ready)
        member = mgr.executable_for((16,), ready)
        batched = mgr.batched_executable_for((16,), ready)
        assert member is not None and member.specialized_batch is None
        assert batched is not None and batched.specialized_batch == 4

    def test_member_routable_before_batched_lands(self):
        mgr = _mlp_manager(threshold=1, batch_cap=4)
        mgr.observe((16,), 0.0)
        mgr.drain()
        member_ready = mgr.events[0].ready_us
        assert mgr.is_hot((16,), member_ready)
        assert not mgr.is_batched_hot((16,), member_ready)
        assert mgr.batched_executable_for((16,), member_ready) is None
        assert mgr.executable_for((16,), member_ready) is not None

    def test_variants_evict_together_and_rearm(self):
        mgr = _mlp_manager(
            threshold=1, max_executables=1, batch_cap=2,
            decay_half_life_us=1000.0,
        )
        mgr.observe((8,), 0.0)
        mgr.drain()
        assert mgr.is_batched_hot((8,), 1e5)
        for t in (5000.0, 5010.0, 5020.0):
            mgr.observe((16,), t)  # hotter after A decays: evicts A
        assert [e.key for e in mgr.evictions] == [(8,)]
        assert not mgr.is_hot((8,), 1e9)
        assert not mgr.is_batched_hot((8,), 1e9)
        # Re-arm: A's next hit re-triggers BOTH variants (artifacts are
        # memoised, compile cost recharged per variant).
        mgr.observe((8,), 50_000.0)
        mgr.drain()
        a_events = [(e.key, e.batch) for e in mgr.events if e.key == (8,)]
        assert a_events == [((8,), 1), ((8,), 2), ((8,), 1), ((8,), 2)]
        assert mgr.num_variants == 4  # two shapes x two variants, memoised

    def test_unbatchable_module_falls_back_member_wise(self):
        x = Var("x", TensorType((Any(), 8), "float32"))
        mod = IRModule.from_expr(Function([x], api.expand_dims(api.relu(x), 0)))
        typed = infer_types(mod)
        bucketer = ShapeBucketer(typed["main"], granularity=8)
        mgr = SpecializationManager(
            mod, intel_cpu(), bucketer, KernelCache(), threshold=1,
            compile_us=100.0, batch_cap=4,
        )
        mgr.observe((16,), 0.0)
        mgr.drain()
        assert [(e.key, e.batch) for e in mgr.events] == [((16,), 1)]
        assert mgr.is_hot((16,), 200.0)
        assert not mgr.is_batched_hot((16,), 1e9)
        # The probe is memoised: the next shape skips the batched attempt.
        mgr.observe((24,), 1000.0)
        mgr.drain()
        assert [(e.key, e.batch) for e in mgr.events][-1] == ((24,), 1)


class TestBatchedServing:
    def test_full_hot_buckets_route_batched_as_one_vm_call(self):
        server = _batched_lstm_server(kernel_cache=_BATCH_TEST_KERNELS)
        report = server.simulate(_hot_heavy_trace())
        assert report.batched_hits > 0
        assert 0.0 < report.batched_hit_rate <= report.specialized_hit_rate
        # One VM run per batched bucket — the whole point of the tier.
        batched_batches = {
            (r.worker_id, r.dispatch_us)
            for r in report.responses
            if r.tier == "batched"
        }
        assert report.profile_batched.runs == len(batched_batches)
        assert all(
            r.batch_size == server.config.batch_cap
            for r in report.responses
            if r.tier == "batched"
        )
        # Static tiers pay zero shape functions; the dynamic tier pays.
        assert report.profile_batched.shape_func_time_us == 0.0
        assert report.profile_specialized.shape_func_time_us == 0.0
        assert report.profile_batched.gemm_invocations() > 0
        tiers = {r.tier for r in report.responses}
        assert "batched" in tiers and "dynamic" in tiers
        text = report.format("batched")
        assert "batched" in text

    def test_outputs_identical_to_untiered_server(self):
        """The batched tier changes kernel granularity and scheduling,
        never numerics: every response is bit-identical with the plain
        dynamic server's."""
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        requests = _hot_heavy_trace(60, seed=3)
        tiered = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=4, max_delay_us=1500.0, num_workers=2,
                        numerics="full", specialize=True,
                        specialize_threshold=2, specialize_compile_us=300.0,
                        specialize_batch=True),
        )
        plain = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=4, max_delay_us=1500.0, num_workers=2,
                        numerics="full"),
        )
        a = tiered.simulate(requests)
        b = plain.simulate(requests)
        assert a.batched_hits > 0
        for ra, rb in zip(a.responses, b.responses):
            assert ra.rid == rb.rid
            assert np.array_equal(ra.output.numpy(), rb.output.numpy())

    @pytest.mark.parametrize("lanes", [1, 2, 4])
    def test_replay_identity_per_lane_count_with_batch_variants(self, lanes):
        """Traces that trigger batch-specialized compiles (and evict
        batch-variant executables) replay bit-identically at every lane
        count — the variant queue, lane binding, eviction, and routing
        are all pure functions of the trace."""
        server = _batched_lstm_server(
            lanes=lanes, cache=2, kernel_cache=_BATCH_TEST_KERNELS
        )
        requests = _hot_heavy_trace(96, seed=1)
        a = server.simulate(requests)
        b = server.simulate(requests)
        assert a.batched_hits == b.batched_hits > 0
        assert a.specialize_evictions == b.specialize_evictions > 0
        assert any(e.batch > 1 for e in server.specializer.events)
        assert a.latencies_us == b.latencies_us
        assert [r.tier for r in a.responses] == [r.tier for r in b.responses]
        assert [
            (r.rid, r.worker_id, r.bucket_key, r.batch_size)
            for r in a.responses
        ] == [
            (r.rid, r.worker_id, r.bucket_key, r.batch_size)
            for r in b.responses
        ]
        assert a.specialize_queue_waits_us == b.specialize_queue_waits_us
        assert a.specialize_lane_busy_us == b.specialize_lane_busy_us
        assert len(a.specialize_lane_busy_us) == lanes

    def test_batched_tier_off_keeps_member_routing(self):
        """specialize_batch=False reproduces the PR 2/3 behaviour: no
        batched responses, no batch-variant compiles."""
        server = _batched_lstm_server(
            kernel_cache=_BATCH_TEST_KERNELS, specialize_batch=False
        )
        report = server.simulate(_hot_heavy_trace())
        assert report.batched_hits == 0
        assert all(e.batch == 1 for e in server.specializer.events)
        assert report.specialized_hit_rate > 0


class TestBatchRewriteSafety:
    """Fallback paths of the batch rewrite: anything it cannot express
    must surface as BatchSpecializeError (so the serving layer degrades
    member-wise) — never as silent wrong numerics, an ill-typed module,
    or a simulation-killing exception."""

    def test_rejects_rank0_entry_param(self):
        """A rank-0 entry param carries per-member data with no axis to
        stack along; treating it as shared would feed member 0's scalar
        to every member."""
        x = Var("x", TensorType((Any(), 8), "float32"))
        s = Var("s", TensorType((), "float32"))
        mod = IRModule.from_expr(Function([x, s], api.multiply(x, s)))
        spec = SpecializeShapes(shapes=[(4, 8), ()])(mod)
        with pytest.raises(BatchSpecializeError, match="rank-0"):
            SpecializeBatch(2)(spec)

    def test_refuses_broadcast_up_along_stacked_axis(self):
        """A shared operand whose lead broadcasts the members *up*
        (shared (4, 8) against member (1, 8)) has no stacked equivalent;
        tiling it would emit an ill-typed op. It must refuse with
        BatchSpecializeError, not leak a TypeInferenceError."""
        x = Var("x", TensorType((Any(), 8), "float32"))
        c = const(np.ones((4, 8), np.float32))
        mod = IRModule.from_expr(Function([x], api.add(x, c)))
        spec = SpecializeShapes(shapes=[(1, 8)])(mod)
        with pytest.raises(BatchSpecializeError, match="stacked axis"):
            SpecializeBatch(2)(spec)

    def test_equal_lead_shared_operand_tiles_bit_identically(self):
        """The legitimate tiling case — shared lead == member lead, no
        axis-0 broadcast member-wise — still batches, bit-identically."""
        x = Var("x", TensorType((Any(), 8), "float32"))
        c = const(
            (np.random.RandomState(3).randn(4, 8) * 0.1).astype(np.float32)
        )
        mod = IRModule.from_expr(Function([x], api.add(x, c)))
        cache = KernelCache()
        member, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(4, 8)], kernel_cache=cache
        )
        batched, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(4, 8)], kernel_cache=cache, batch=2
        )
        rng = np.random.RandomState(5)
        xs = [rng.randn(4, 8).astype(np.float32) for _ in range(2)]
        outs_m = [_run(member, v)[0].numpy() for v in xs]
        stacked, _, _ = _run(batched, np.concatenate(xs, axis=0))
        parts = np.split(stacked.numpy(), 2, axis=0)
        for m, b in zip(outs_m, parts):
            assert np.array_equal(m, b)

    def test_manager_probe_absorbs_non_batch_rewrite_errors(self, monkeypatch):
        """Any compile error from the *batched* variant — not just
        BatchSpecializeError — marks the module unbatchable and keeps
        serving member-wise; it must never abort the simulation."""
        mgr = _mlp_manager(threshold=1, batch_cap=4)
        real = nimble.specialize

        def broken_batched(*args, **kwargs):
            if kwargs.get("batch", 1) > 1:
                raise TypeInferenceError("rewrite gap surfacing late")
            return real(*args, **kwargs)

        monkeypatch.setattr(nimble, "specialize", broken_batched)
        mgr.observe((16,), 0.0)
        mgr.drain()
        assert [(e.key, e.batch) for e in mgr.events] == [((16,), 1)]
        assert not mgr.batch_tier_active_for((16,))
        assert mgr.is_hot((16,), 1e9)

    def test_unbatchable_module_keeps_full_member_batches(self):
        """Once the probe rules the module out, hot buckets must keep the
        configured max batch size — capping them at the (unreachable)
        compiled batch size would shrink member-tier batches for
        nothing."""
        x = Var("x", TensorType((Any(), 8), "float32"))
        mod = IRModule.from_expr(Function([x], api.expand_dims(api.relu(x), 0)))
        config = ServeConfig(
            max_batch_size=4, max_delay_us=5000.0, num_workers=1,
            specialize=True, specialize_threshold=2,
            specialize_compile_us=100.0, specialize_batch=True,
            specialize_batch_cap=2,
        )
        server = InferenceServer(mod, intel_cpu(), config)
        rng = np.random.RandomState(0)
        requests = [
            Request(
                rid=i, arrival_us=100.0 * (i + 1),
                payload=rng.randn(7, 8).astype(np.float32),
            )
            for i in range(24)
        ]
        report = server.simulate(requests)
        assert not server.specializer.batch_tier_active_for((7,))
        assert report.batched_hits == 0
        hot_sizes = {
            r.batch_size
            for r in report.responses
            if r.bucket_key and r.bucket_key[0] == -1
        }
        assert max(hot_sizes) == 4  # full member batches, not the dead cap

    def test_rejects_rank0_entry_output(self):
        """A rank-0 output leaf compiles fine but has no axis for the
        worker to split back into members — refuse at rewrite time."""
        from repro.ir import Tuple as IRTuple

        x = Var("x", TensorType((Any(), 8), "float32"))
        scalar = const(np.float32(2.0))
        mod = IRModule.from_expr(
            Function([x], IRTuple([api.relu(x), api.exp(scalar)]))
        )
        spec = SpecializeShapes(shapes=[(4, 8)])(mod)
        with pytest.raises(BatchSpecializeError, match="rank-0"):
            SpecializeBatch(2)(spec)

    def test_batchability_is_tracked_per_shape(self):
        """A shape whose batched rewrite fails must not disable the tier
        for shapes that batch fine — and eviction must leave no stale
        batched ready-time behind for unbatchable shapes."""
        x = Var("x", TensorType((Any(), 8), "float32"))
        c = const(np.ones((4, 8), np.float32))
        mod = IRModule.from_expr(Function([x], api.add(x, c)))
        typed = infer_types(mod)
        bucketer = ShapeBucketer(typed["main"], granularity=8)
        mgr = SpecializationManager(
            mod, intel_cpu(), bucketer, KernelCache(), threshold=1,
            compile_us=100.0, batch_cap=2,
        )
        # (1,): member-legal broadcast-up, no stacked equivalent.
        mgr.observe((1,), 0.0)
        mgr.drain()
        assert not mgr.batch_tier_active_for((1,))
        # (4,): lead matches the constant — batches fine, even after the
        # other shape's probe failed.
        mgr.observe((4,), 1000.0)
        mgr.drain()
        assert mgr.batch_tier_active_for((4,))
        batched_ready = [e for e in mgr.events if e.batch == 2]
        assert [e.key for e in batched_ready] == [(4,)]
        assert mgr.is_batched_hot((4,), batched_ready[0].ready_us)
        assert not mgr.is_batched_hot((1,), 1e9)

    def test_serveconfig_rejects_zero_batch_cap(self):
        config = ServeConfig(
            specialize=True, specialize_batch=True, specialize_batch_cap=0
        )
        with pytest.raises(ValueError, match="specialize_batch_cap"):
            config.batch_cap

    @pytest.mark.parametrize("index", [-1, -3, 0, 2])
    def test_axis0_take_wraps_negative_indices_per_member(self, index):
        """take's negative-index convention wraps within the *member*;
        the batched offset-gather must normalize before adding member
        offsets, or member i silently receives another member's row."""
        x = Var("x", TensorType((Any(), 8), "float32"))
        row = api.reshape(
            api.take(x, const(np.int64(index)), axis=0), (1, 8)
        )
        mod = IRModule.from_expr(Function([x], api.relu(row)))
        cache = KernelCache()
        member, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(3, 8)], kernel_cache=cache
        )
        batched, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(3, 8)], kernel_cache=cache, batch=2
        )
        rng = np.random.RandomState(9)
        xs = [rng.randn(3, 8).astype(np.float32) for _ in range(2)]
        outs_m = [_run(member, v)[0].numpy() for v in xs]
        stacked, _, _ = _run(batched, np.concatenate(xs, axis=0))
        parts = np.split(stacked.numpy(), 2, axis=0)
        for m, b in zip(outs_m, parts):
            assert np.array_equal(m, b)


# ---------------------------------------------------------------------------
# Staged specialization: the shape-independent prefix + shape-binding suffix
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=False)
def fresh_prefix_cache():
    nimble.clear_prefix_cache()
    yield
    nimble.clear_prefix_cache()


class TestStagedCompile:
    """nimble.build_prefix / compile_prefix / specialize(prefix=...):
    staged compiles must be indistinguishable from monolithic ones —
    same artifact key, bitwise-identical outputs."""

    def _lstm(self):
        return build_lstm_module(LSTMWeights.create(8, 16, seed=0))

    def test_prefix_suffix_matches_monolithic_key_and_output(
        self, fresh_prefix_cache
    ):
        mod = self._lstm()
        cache = KernelCache()
        mono, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(10, 8)], kernel_cache=cache
        )
        prefix, origin = nimble.compile_prefix(mod, intel_cpu())
        assert origin == "built"
        staged, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(10, 8)], kernel_cache=cache,
            prefix=prefix,
        )
        assert staged.content_hash() == mono.content_hash()
        assert staged.specialized_shapes == mono.specialized_shapes
        x = np.random.RandomState(1).randn(10, 8).astype(np.float32)
        out_m, _, _ = _run(mono, x)
        out_s, _, _ = _run(staged, x)
        assert np.array_equal(out_m.numpy(), out_s.numpy())

    def test_member_and_batched_variants_share_one_prefix(
        self, fresh_prefix_cache
    ):
        mod = self._lstm()
        cache = KernelCache()
        prefix, _ = nimble.compile_prefix(mod, intel_cpu())
        for batch in (1, 3):
            mono, _ = nimble.specialize(
                mod, intel_cpu(), shapes=[(6, 8)], kernel_cache=cache,
                batch=batch,
            )
            staged, _ = nimble.specialize(
                mod, intel_cpu(), shapes=[(6, 8)], kernel_cache=cache,
                batch=batch, prefix=prefix,
            )
            assert staged.content_hash() == mono.content_hash()

    def test_pickled_prefix_round_trip_produces_same_key(
        self, fresh_prefix_cache
    ):
        """A prefix that went through save()/load() — another process's
        prefix, token ints and all — must compile to the same artifact."""
        mod = self._lstm()
        cache = KernelCache()
        prefix, _ = nimble.compile_prefix(mod, intel_cpu())
        loaded = nimble.SpecializationPrefix.load(prefix.save())
        assert loaded.store_key() == prefix.store_key()
        mono, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(7, 8)], kernel_cache=cache
        )
        staged, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(7, 8)], kernel_cache=cache,
            prefix=loaded,
        )
        assert staged.content_hash() == mono.content_hash()
        x = np.random.RandomState(2).randn(7, 8).astype(np.float32)
        assert np.array_equal(
            _run(mono, x)[0].numpy(), _run(staged, x)[0].numpy()
        )

    def test_prefix_for_wrong_module_or_platform_rejected(
        self, fresh_prefix_cache
    ):
        mod = self._lstm()
        other = build_lstm_module(LSTMWeights.create(8, 16, seed=1))
        prefix, _ = nimble.compile_prefix(mod, intel_cpu())
        with pytest.raises(CompilerError, match="built from module"):
            nimble.specialize(other, intel_cpu(), shapes=[(5, 8)], prefix=prefix)
        with pytest.raises(CompilerError, match="platform"):
            nimble.specialize(mod, nvidia_gpu(), shapes=[(5, 8)], prefix=prefix)

    def test_compile_prefix_origin_ladder(self, fresh_prefix_cache, tmp_path):
        """built -> memory (same process) -> store (fresh process sim)."""
        mod = self._lstm()
        store = ArtifactStore(tmp_path)
        _, origin = nimble.compile_prefix(mod, intel_cpu(), store=store)
        assert origin == "built"
        assert store.prefix_keys()  # persisted on build
        _, origin = nimble.compile_prefix(mod, intel_cpu(), store=store)
        assert origin == "memory"
        nimble.clear_prefix_cache()  # "restart" the process
        _, origin = nimble.compile_prefix(mod, intel_cpu(), store=store)
        assert origin == "store"

    def test_failed_prefix_build_poisons_no_cache(
        self, fresh_prefix_cache, tmp_path, monkeypatch
    ):
        """Satellite: an exception mid-prefix-construction must leave
        both the in-process cache and the store untouched — the next
        call rebuilds from scratch instead of reusing a partial result."""
        mod = self._lstm()
        store = ArtifactStore(tmp_path)

        class Boom(RuntimeError):
            pass

        class ExplodingLift:
            name = "LambdaLift"

            def __call__(self, m):
                raise Boom("mid-prefix fault")

            def run(self, m):
                raise Boom("mid-prefix fault")

        monkeypatch.setattr(nimble, "LambdaLift", ExplodingLift)
        with pytest.raises(Boom):
            nimble.compile_prefix(mod, intel_cpu(), store=store)
        monkeypatch.undo()
        assert store.prefix_keys() == []  # nothing half-written
        # The in-process cache must also be empty: the retry rebuilds.
        prefix, origin = nimble.compile_prefix(mod, intel_cpu(), store=store)
        assert origin == "built"
        # And the rebuilt prefix actually works.
        staged, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(4, 8)], prefix=prefix
        )
        assert staged.specialized_shapes == ((4, 8),)

    def test_corrupt_stored_prefix_rejected_and_rebuilt(
        self, fresh_prefix_cache, tmp_path
    ):
        mod = self._lstm()
        store = ArtifactStore(tmp_path)
        prefix, _ = nimble.compile_prefix(mod, intel_cpu(), store=store)
        (key,) = store.prefix_keys()
        path = store._prefix_path(key)
        path.write_bytes(path.read_bytes()[:-7])
        nimble.clear_prefix_cache()
        rebuilt, origin = nimble.compile_prefix(mod, intel_cpu(), store=store)
        assert origin == "built"
        assert store.rejects >= 1
        assert rebuilt.store_key() == prefix.store_key()


class TestSpecializeShapesReuse:
    def test_raising_run_clears_stale_bound_shapes(self):
        """Satellite regression: a reused SpecializeShapes instance whose
        second run raises must not keep reporting the previous module's
        bound_shapes through the side channel."""
        p = SpecializeShapes(shapes=[(12, 8)])
        p(_dyn_mlp_module())
        assert p.bound_shapes == ((12, 8),)
        with pytest.raises(CompilerError, match="no entry"):
            p(IRModule())  # no main: raises after reset, before rebinding
        assert p.bound_shapes is None

    def test_batch_run_clears_stale_batched_shapes(self):
        p = SpecializeBatch(batch=2)
        mod = SpecializeShapes(shapes=[(4, 8)])(_dyn_mlp_module())
        p(infer_types(mod))
        assert p.batched_shapes is not None
        with pytest.raises(CompilerError, match="no entry"):
            p(IRModule())
        assert p.batched_shapes is None


class TestTupleEntryKeyAgreement:
    """Satellite: bound_entry_shapes (the store-key path, computed
    without compiling) must agree with the marker the compiled
    executable carries, including on tuple-typed entry params."""

    def _tuple_mod(self):
        from repro.ir import TupleGetItem

        a = Any()
        t = Var(
            "t",
            TupleType(
                [TensorType((a, 8), "float32"), TensorType((a, 8), "float32")]
            ),
        )
        body = api.relu(api.add(TupleGetItem(t, 0), TupleGetItem(t, 1)))
        return IRModule.from_expr(Function([t], body))

    def test_marker_and_store_key_agree_on_tuple_params(self):
        from repro.core.typing import collect_shape_bindings
        from repro.passes import bound_entry_shapes
        from repro.vm.executable import artifact_key

        mod = self._tuple_mod()
        spec = ((6, 8), (6, 8))
        binding = {}
        collect_shape_bindings(
            mod["main"].params[0].type_annotation, spec, binding, what="t"
        )
        predicted = bound_entry_shapes(mod["main"], binding)
        exe, _ = nimble.specialize(mod, intel_cpu(), shapes=[spec])
        assert exe.specialized_shapes == predicted
        fp = module_fingerprint(mod)
        assert artifact_key(fp, "intel", predicted, None) == artifact_key(
            fp, "intel", exe.specialized_shapes, None
        )

    def test_partial_binding_keeps_unbound_dims_dynamic_in_both(self):
        from repro.passes import bound_entry_shapes

        mod = self._tuple_mod()
        # Empty binding: everything stays dynamic; both paths must agree
        # the marker is all-None dims, not crash or drift.
        predicted = bound_entry_shapes(mod["main"], {})
        assert predicted == (((None, 8), (None, 8)),)


class TestStagedManager:
    def _manager(self, threshold=2, **kwargs):
        return _mlp_manager(threshold=threshold, **kwargs)

    def test_prefix_charged_once_then_suffix_only(self):
        nimble.clear_prefix_cache()
        mgr = self._manager(staged=True)  # compile_us=100 override
        mgr.observe((16,), 0.0)
        mgr.observe((16,), 10.0)
        mgr.observe((24,), 20.0)
        mgr.observe((24,), 30.0)
        mgr.drain()
        events = mgr.events
        assert len(events) == 2
        # First fresh compile carries prefix (60%) + suffix (40%) of the
        # 100 µs override; the second pays the suffix share only.
        assert events[0].prefix_us == pytest.approx(60.0)
        assert events[0].compile_us == pytest.approx(100.0)
        assert events[1].prefix_us == 0.0
        assert events[1].compile_us == pytest.approx(40.0)
        assert mgr.prefix_us_spent == pytest.approx(60.0)
        assert mgr.suffix_us_spent == pytest.approx(80.0)
        assert mgr.compile_us_spent == pytest.approx(140.0)
        # Lane-busy invariant holds with the split.
        assert sum(mgr.lane_busy_us) == pytest.approx(mgr.compile_us_spent)

    def test_monolithic_default_is_unchanged(self):
        mgr = self._manager(staged=False)
        mgr.observe((16,), 0.0)
        mgr.observe((16,), 10.0)
        mgr.drain()
        (event,) = mgr.events
        assert event.prefix_us == 0.0
        assert event.compile_us == pytest.approx(100.0)
        assert mgr.prefix_us_spent == 0.0
        assert mgr.suffix_us_spent == pytest.approx(100.0)

    def test_staged_replay_is_bit_identical(self):
        nimble.clear_prefix_cache()
        mgr = self._manager(staged=True)

        def run():
            mgr.reset()
            for t, key in enumerate(((16,), (16,), (24,), (24,), (32,), (32,))):
                mgr.observe(key, float(t * 10))
            mgr.drain()
            return (
                [(e.key, e.compile_us, e.prefix_us, e.lane) for e in mgr.events],
                mgr.compile_us_spent,
            )

        first = run()
        second = run()
        assert first == second
        # The prefix recharges each simulation (the model restarts), but
        # only once per simulation.
        assert sum(1 for e in mgr.events if e.prefix_us > 0) == 1

    def test_calibration_split_sums_to_monolithic(self):
        """Without a compile_us override, prefix + suffix constants must
        reproduce the monolithic charge exactly — a single-variant
        staged sim costs the same as a monolithic one."""
        from repro.hardware import calibration

        nimble.clear_prefix_cache()
        mono = _mlp_manager(threshold=2)
        mono.compile_us = None
        mono.observe((16,), 0.0)
        mono.observe((16,), 10.0)
        mono.drain()
        staged = _mlp_manager(threshold=2, staged=True)
        staged.compile_us = None
        staged.observe((16,), 0.0)
        staged.observe((16,), 10.0)
        staged.drain()
        assert staged.compile_us_spent == pytest.approx(mono.compile_us_spent)
        assert staged.prefix_us_spent > 0
        for name in ("intel", "nvidia", "arm"):
            assert (
                calibration.SPECIALIZE_PREFIX_BASE_US[name]
                + calibration.SPECIALIZE_SUFFIX_BASE_US[name]
            ) == pytest.approx(calibration.SPECIALIZE_BASE_US[name])
            assert (
                calibration.SPECIALIZE_PREFIX_PER_KERNEL_US[name]
                + calibration.SPECIALIZE_SUFFIX_PER_KERNEL_US[name]
            ) == pytest.approx(calibration.SPECIALIZE_PER_KERNEL_US[name])

    def test_warm_restart_restores_prefix_from_store(self, tmp_path):
        nimble.clear_prefix_cache()
        store = ArtifactStore(tmp_path)
        cache = KernelCache()
        first = _mlp_manager(
            threshold=2, kernel_cache=cache, staged=True, store=store,
            restore_us=5.0,
        )
        first.observe((16,), 0.0)
        first.observe((16,), 10.0)
        first.drain()
        assert first.prefix_us_spent == pytest.approx(60.0)
        assert store.prefix_keys()  # prefix persisted alongside artifacts
        # "Restart": a new manager over the same store. The old shape
        # restores wholesale (no prefix needed); a NEW shape compiles
        # fresh but pays only the prefix *restore* charge.
        nimble.clear_prefix_cache()
        second = _mlp_manager(
            threshold=2, kernel_cache=cache, staged=True, store=store,
            restore_us=5.0,
        )
        second.observe((16,), 0.0)
        second.observe((16,), 10.0)
        second.observe((24,), 20.0)
        second.observe((24,), 30.0)
        second.drain()
        restored = [e for e in second.events if e.restored]
        fresh = [e for e in second.events if not e.restored]
        assert [e.key for e in restored] == [(16,)]
        assert [e.key for e in fresh] == [(24,)]
        assert restored[0].prefix_us == 0.0
        # Fresh compile under a store-warm prefix: restore charge (5)
        # plus the suffix share (40) — not the full 60 µs prefix build.
        assert fresh[0].prefix_us == pytest.approx(5.0)
        assert fresh[0].compile_us == pytest.approx(45.0)

    def test_corrupt_prefix_blob_rejected_rebuilt_and_replayed(self, tmp_path):
        nimble.clear_prefix_cache()
        store = ArtifactStore(tmp_path)
        cache = KernelCache()
        first = _mlp_manager(
            threshold=2, kernel_cache=cache, staged=True, store=store
        )
        first.observe((16,), 0.0)
        first.observe((16,), 10.0)
        first.drain()
        (pkey,) = store.prefix_keys()
        path = store._prefix_path(pkey)
        path.write_bytes(path.read_bytes()[:-9])
        nimble.clear_prefix_cache()
        second = _mlp_manager(
            threshold=2, kernel_cache=cache, staged=True, store=store
        )

        def run():
            second.reset()
            second.observe((24,), 0.0)
            second.observe((24,), 10.0)
            second.drain()
            return second.store_rejects, second.prefix_us_spent

        rejects1, prefix_us1 = run()
        assert rejects1 >= 1  # the bad blob is visible, not silent
        assert prefix_us1 == pytest.approx(60.0)  # full rebuild charge
        # Replays re-count the reject without re-reading the (healed)
        # file — bit-identical accounting.
        assert run() == (rejects1, prefix_us1)
        # And the rebuild healed the store for the *next* process.
        nimble.clear_prefix_cache()
        assert store.get_prefix(pkey) is not None


# ---------------------------------------------------------------------------
# Decayed-score arithmetic (pinned)
# ---------------------------------------------------------------------------


HALF_LIFE_US = 100_000.0  # the manager's decay_half_life_us default


class TestScoreDecayPinned:
    """Hand-computed half-life arithmetic. 0.5**1 and 0.5**2 are exact
    in binary floating point, so these assert equality, not approx: any
    drift in how decay is anchored or compounded is a real change."""

    def test_decay_anchors_at_last_bump_and_folds_on_observe(self):
        mgr = _mlp_manager(threshold=100)  # never triggers: pure scoring
        key = (16,)
        mgr.observe(key, 0.0)
        assert mgr.score(key, 0.0) == 1.0
        # A *reading* one half-life later halves; it does not re-anchor.
        assert mgr.score(key, HALF_LIFE_US) == 0.5
        assert mgr.score(key, HALF_LIFE_US) == 0.5
        # A *bump* folds the decayed value and adds one: 1*0.5 + 1.
        mgr.observe(key, HALF_LIFE_US)
        assert mgr.score(key, HALF_LIFE_US) == 1.5
        assert mgr.score(key, 2 * HALF_LIFE_US) == 0.75

    def test_same_microsecond_reobserves_add_exactly_one_each(self):
        """Regression: decay anchored at the last *hit* (instead of the
        last bump) double-counts same-timestamp hits; anchoring at the
        bump makes N same-microsecond observes worth exactly +N."""
        mgr = _mlp_manager(threshold=100)
        key = (16,)
        mgr.observe(key, 0.0)
        mgr.observe(key, HALF_LIFE_US)        # 1.5
        assert mgr.score(key, 2 * HALF_LIFE_US) == 0.75
        mgr.observe(key, 2 * HALF_LIFE_US)    # 0.75 + 1
        assert mgr.score(key, 2 * HALF_LIFE_US) == 1.75
        mgr.observe(key, 2 * HALF_LIFE_US)    # 1.75 + 1
        assert mgr.score(key, 2 * HALF_LIFE_US) == 2.75

    def test_reading_before_the_anchor_clamps_instead_of_inflating(self):
        """Regression: a negative age (reading at a timestamp before the
        anchor — same-microsecond queries, or the t=0 eviction scan over
        predictively seeded scores) must clamp to the raw value, never
        inflate it through a negative exponent."""
        mgr = _mlp_manager(threshold=100)
        key = (16,)
        mgr.observe(key, 2 * HALF_LIFE_US)
        assert mgr.score(key, 0.0) == 1.0          # NOT 1.0 * 0.5**-2 == 4.0
        assert mgr.score(key, HALF_LIFE_US) == 1.0
        assert mgr.score(key, 3 * HALF_LIFE_US) == 0.5

    def test_unseen_key_scores_zero(self):
        mgr = _mlp_manager(threshold=100)
        assert mgr.score((64,), 123.0) == 0.0


# ---------------------------------------------------------------------------
# Predictive pre-arming from the persisted shape profile
# ---------------------------------------------------------------------------


class TestPredictivePreArm:
    def _first_run(self, store):
        """Simulation one: three shapes go hot, executables and the
        shape profile land in the store."""
        first = _mlp_manager(threshold=1, store=store, max_executables=4)
        for t, v in [(0.0, 8), (10.0, 8), (20.0, 16), (30.0, 24)]:
            first.observe((v,), t)
        first.drain()
        store.put_profile(first.profile_snapshot())
        return first

    def _warm(self, store, **kwargs):
        """A restarted (fresh-process) manager over the same store. Its
        threshold is high, so predictive pre-arming is the only way
        anything can trigger."""
        return _mlp_manager(
            threshold=100, store=store, max_executables=4,
            predictive=True, **kwargs,
        )

    def test_pre_arms_historical_top_k_at_time_zero(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._first_run(store)
        warm = self._warm(store)
        assert warm.predictive_compiles == 3
        assert warm.predictive_keys == {(8,), (16,), (24,)}
        assert all(e.trigger_us == 0.0 for e in warm.events)
        # Restores, not fresh compiles: the artifacts are in the store.
        warm.drain()
        assert warm.num_fresh_compiles == 0
        assert warm.num_restored == 3
        # Routable without a single observation ever reaching this
        # manager — the whole point of pre-arming.
        ready = max(e.ready_us for e in warm.events)
        assert warm.executable_for((8,), ready) is not None

    def test_hottest_profile_key_gets_the_first_lane(self, tmp_path):
        """Lane binding follows profile rank (hottest first), not the
        pending queue's lexicographic tie-break: at t=0 every pre-arm
        job ties on hits and trigger time, so pumping once per trigger
        is what keeps the order honest."""
        store = ArtifactStore(tmp_path)
        first = self._first_run(store)
        profile = store.get_profile(
            first.profile_snapshot().store_key()
        )
        warm = self._warm(store)
        armed_order = [e.key for e in warm.events]
        assert armed_order == list(profile.top_keys(len(armed_order)))

    def test_pre_armed_entries_carry_a_last_hit_time(self, tmp_path):
        """Regression: eviction sorts score ties by last-hit time, and a
        predictively pre-armed entry has never been observed — before
        the fix its lookup fell back to -inf, making the freshly armed
        hot set the unconditional eviction victim. The trigger now seeds
        last-hit at trigger time."""
        store = ArtifactStore(tmp_path)
        self._first_run(store)
        warm = self._warm(store)
        assert warm.predictive_keys  # non-degenerate
        for key in warm.predictive_keys:
            assert warm._last_hit_us[key] == 0.0

    def test_top_k_caps_the_pre_armed_set(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = self._first_run(store)
        profile = store.get_profile(first.profile_snapshot().store_key())
        warm = self._warm(store, predictive_top_k=1)
        assert warm.predictive_compiles == 1
        assert {e.key for e in warm.events} == set(profile.top_keys(1))

    def test_reset_replays_bit_identically(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._first_run(store)
        warm = self._warm(store)

        def snapshot():
            warm.drain()
            return (
                warm.predictive_compiles,
                sorted(warm.predictive_keys),
                [(e.key, e.lane, e.start_us, e.ready_us, e.restored)
                 for e in warm.events],
                warm.store_rejects,
            )

        one = snapshot()
        warm.reset()
        assert snapshot() == one

    def test_profile_is_frozen_at_construction(self, tmp_path):
        """A manager constructed against an empty store stays cold even
        after a profile appears on disk — replays N of a simulation must
        see what replay 1 saw."""
        store = ArtifactStore(tmp_path)
        warm = self._warm(store)  # no profile on disk yet
        assert warm.predictive_compiles == 0
        self._first_run(store)    # profile lands *after* construction
        warm.reset()
        assert warm.predictive_compiles == 0
        assert warm.events == []

    def test_corrupt_profile_rejected_and_recounted_each_reset(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = self._first_run(store)
        key = first.profile_snapshot().store_key()
        path = store._profile_path(key)
        path.write_bytes(path.read_bytes()[:12])
        warm = self._warm(store)
        assert warm.predictive_compiles == 0
        assert warm.store_rejects == 1
        # Memoised reject: replays re-count without re-reading the
        # (possibly since-healed) file — accounting is bit-identical.
        warm.reset()
        assert warm.store_rejects == 1

    def test_non_predictive_manager_ignores_the_profile(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._first_run(store)
        plain = _mlp_manager(threshold=100, store=store, max_executables=4)
        assert plain.predictive_compiles == 0
        assert plain.events == []


# ---------------------------------------------------------------------------
# Partial-variant synthesis and routing
# ---------------------------------------------------------------------------


def _gram_manager(threshold=4, **kwargs):
    mod = build_gram_module()
    typed = infer_types(mod)
    bucketer = ShapeBucketer(typed["main"], granularity=8)
    return SpecializationManager(
        mod, intel_cpu(), bucketer, KernelCache(),
        threshold=threshold, compile_us=100.0, **kwargs,
    )


class TestPartialSynthesis:
    def test_stable_dim_plus_long_tail_synthesizes_partial_variant(self):
        """Three distinct row counts over one stable feature width, with
        threshold total hits: the manager binds the stable dim, leaves
        the row dim None, and the variant then covers row counts it has
        NEVER seen."""
        mgr = _gram_manager(threshold=4, partial=True, partial_min_shapes=3)
        for t, rows in [(0.0, 9), (10.0, 9), (20.0, 25), (30.0, 41)]:
            mgr.observe((rows, 16), t)
        mgr.drain()
        ready = max(e.ready_us for e in mgr.events)
        found = mgr.partial_executable_for([(57, 16)], ready)
        assert found is not None
        exe, pkey = found
        assert pkey == (None, 16)
        assert exe.is_partial
        assert exe.guard_mismatch(
            (np.zeros((57, 16), dtype=np.float32),)
        ) is None

    def test_no_partial_without_a_stable_dim(self):
        mgr = _gram_manager(threshold=3, partial=True, partial_min_shapes=3)
        for t, key in [(0.0, (9, 16)), (10.0, (25, 8)), (20.0, (41, 32))]:
            mgr.observe(key, t)
        mgr.drain()
        assert mgr.partial_executable_for([(9, 16)], 1e9) is None
        assert all(None not in e.key for e in mgr.events)

    def test_family_must_span_min_shapes(self):
        """Two exact shapes are not a family — exact specialization
        already covers them; min_shapes=3 holds the variant back until a
        third distinct shape appears."""
        mgr = _gram_manager(threshold=2, partial=True, partial_min_shapes=3)
        for t, rows in [(0.0, 9), (10.0, 9), (20.0, 25), (30.0, 25)]:
            mgr.observe((rows, 16), t)
        assert not any(None in e.key for e in mgr.events)
        mgr.observe((41, 16), 40.0)
        mgr.drain()
        assert any(e.key == (None, 16) for e in mgr.events)

    def test_partial_off_by_default(self):
        mgr = _gram_manager(threshold=2)
        for t, rows in [(0.0, 9), (5.0, 25), (10.0, 41), (15.0, 9)]:
            mgr.observe((rows, 16), t)
        mgr.drain()
        assert all(None not in e.key for e in mgr.events)

    def test_partial_variant_never_enters_the_batched_tier(self):
        """A partial variant's members differ in shape, so axis-0
        stacking is ill-defined: the batched tier must refuse partial
        keys even when batching is on."""
        mgr = _gram_manager(
            threshold=4, partial=True, partial_min_shapes=3, batch_cap=4,
        )
        assert mgr.batch_tier_active_for((None, 16)) is False
        assert mgr.batch_tier_active_for((9, 16)) is True

    def test_routing_picks_the_widest_cover_deterministically(self):
        mgr = _gram_manager(threshold=4, partial=True, partial_min_shapes=3)
        for t, rows in [(0.0, 9), (10.0, 9), (20.0, 25), (30.0, 41)]:
            mgr.observe((rows, 16), t)
        mgr.drain()
        ready = max(e.ready_us for e in mgr.events)
        # No member matches -> no partial routing.
        assert mgr.partial_executable_for([(9, 8), (25, 32)], ready) is None
        # Mixed batch: the variant covering more members wins.
        found = mgr.partial_executable_for([(9, 16), (25, 16), (9, 8)], ready)
        assert found is not None and found[1] == (None, 16)


class TestGuardDeopt:
    def test_guard_rejected_member_deopts_to_dynamic_and_is_counted(self):
        """A batch routed to a partial variant with one non-matching
        member: the worker re-runs that member on the dynamic VM,
        reports its tier as "dynamic", counts the deopt — and the
        deopted output is bitwise the dynamic tier's."""
        mod = build_gram_module()
        platform = intel_cpu()
        cache = KernelCache()
        dyn, _ = nimble.build(mod, platform, kernel_cache=cache)
        part, _ = nimble.specialize(
            mod, platform, shapes=[(None, 16)], kernel_cache=cache
        )
        rng = np.random.RandomState(0)
        ok = (rng.randn(5, 16) * 0.2).astype(np.float32)
        bad = (rng.randn(5, 8) * 0.2).astype(np.float32)
        worker = Worker(0, dyn, platform, numerics="full")
        batch = Batch(
            key=(0, 16),
            requests=[
                Request(rid=0, arrival_us=0.0, payload=ok),
                Request(rid=1, arrival_us=0.0, payload=bad),
            ],
            formed_us=0.0,
        )
        responses = worker.run_batch(
            batch, 0.0, executable=part, tier="partial"
        )
        assert [r.tier for r in responses] == ["partial", "dynamic"]
        assert worker.deopts == 1
        ref_vm = VirtualMachine(
            dyn, ExecutionContext(platform, numerics="full")
        )
        for r, x in zip(responses, (ok, bad)):
            assert np.array_equal(r.output.numpy(), ref_vm.run(x).numpy())

    def test_matching_batch_takes_the_partial_tier_without_deopts(self):
        mod = build_gram_module()
        platform = intel_cpu()
        cache = KernelCache()
        dyn, _ = nimble.build(mod, platform, kernel_cache=cache)
        part, _ = nimble.specialize(
            mod, platform, shapes=[(None, 16)], kernel_cache=cache
        )
        rng = np.random.RandomState(1)
        members = [
            (rng.randn(rows, 16) * 0.2).astype(np.float32)
            for rows in (3, 7, 11)
        ]
        worker = Worker(0, dyn, platform, numerics="full")
        batch = Batch(
            key=(0, 16),
            requests=[
                Request(rid=i, arrival_us=0.0, payload=x)
                for i, x in enumerate(members)
            ],
            formed_us=0.0,
        )
        responses = worker.run_batch(
            batch, 0.0, executable=part, tier="partial"
        )
        assert [r.tier for r in responses] == ["partial"] * 3
        assert worker.deopts == 0
