"""Tiered shape specialization: the SpecializeShapes pass, the
nimble.specialize API, kernel-cache tier separation, serialization, the
serving-layer SpecializationManager, and tier routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache, prim_signature
from repro.core.typing import collect_shape_bindings, infer_types
from repro.core.typing.bind import bind_any_dims
from repro.errors import CompilerError, TypeInferenceError
from repro.hardware import intel_cpu, nvidia_gpu
from repro.ir import Any, Function, IRModule, TensorType, Var, const
from repro.ir.types import TupleType, has_any_dim
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.models.lstm import LSTMWeights, build_lstm_module, lstm_reference
from repro.models.tree_lstm import (
    TreeLSTMWeights,
    build_tree_lstm_module,
    tree_to_adt,
)
from repro.ops import api
from repro.passes import SpecializeShapes
from repro.runtime.context import ExecutionContext
from repro.serve import (
    InferenceServer,
    Request,
    ServeConfig,
    ShapeBucketer,
    SpecializationManager,
    lstm_traffic,
)
from repro.vm.executable import Executable
from repro.vm.interpreter import VirtualMachine


def _dyn_mlp_module(dim=8, seed=0):
    w = const((np.random.RandomState(seed).randn(dim, dim) * 0.1).astype(np.float32))
    x = Var("x", TensorType((Any(), dim), "float32"))
    return IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))


def _run(exe, *inputs, platform=None, numerics="full"):
    ctx = ExecutionContext(platform or intel_cpu(), numerics=numerics)
    vm = VirtualMachine(exe, ctx)
    out, latency = vm.run_with_latency(*inputs)
    return out, latency, vm


# ---------------------------------------------------------------------------
# Binding helpers
# ---------------------------------------------------------------------------


class TestBindHelpers:
    def test_collect_binds_any_and_checks_static(self):
        a = Any()
        ty = TensorType((a, 8), "float32")
        binding = collect_shape_bindings(ty, (12, 8))
        assert binding == {a.token: 12}

    def test_collect_rejects_static_mismatch(self):
        ty = TensorType((Any(), 8), "float32")
        with pytest.raises(TypeInferenceError, match="static dim"):
            collect_shape_bindings(ty, (12, 9))

    def test_collect_rejects_rank_mismatch(self):
        ty = TensorType((Any(), 8), "float32")
        with pytest.raises(TypeInferenceError, match="rank"):
            collect_shape_bindings(ty, (12,))

    def test_collect_rejects_conflicting_token_values(self):
        a = Any()
        ty = TupleType([TensorType((a, 4)), TensorType((a, 4))])
        with pytest.raises(TypeInferenceError, match="bound to both"):
            collect_shape_bindings(ty, [(3, 4), (5, 4)])

    def test_collect_through_tuple_and_none_skips(self):
        a, b = Any(), Any()
        ty = TupleType([TensorType((a, 4)), TensorType((b, 4))])
        binding = collect_shape_bindings(ty, [(3, 4), None])
        assert binding == {a.token: 3}

    def test_bind_substitutes_only_bound_tokens(self):
        a, b = Any(), Any()
        ty = TupleType([TensorType((a, b)), TensorType((4,))])
        out = bind_any_dims(ty, {a.token: 7})
        assert out.fields[0].shape[0] == 7
        assert isinstance(out.fields[0].shape[1], Any)
        assert out.fields[1] is ty.fields[1]  # untouched subtree shared


# ---------------------------------------------------------------------------
# The SpecializeShapes pass
# ---------------------------------------------------------------------------


class TestSpecializeShapesPass:
    def test_entry_types_become_static(self):
        mod = _dyn_mlp_module()
        out = SpecializeShapes(shapes=[(12, 8)])(mod)
        typed = infer_types(out)
        main = typed["main"]
        assert main.params[0].checked_type == TensorType((12, 8), "float32")
        assert not has_any_dim(main.body.checked_type)

    def test_original_module_untouched(self):
        mod = _dyn_mlp_module()
        typed = infer_types(mod)
        before = repr(typed["main"].params[0].type_annotation)
        SpecializeShapes(shapes=[(12, 8)])(mod)
        assert repr(typed["main"].params[0].type_annotation) == before
        assert has_any_dim(typed["main"].params[0].type_annotation)

    def test_binding_propagates_across_functions(self):
        """The LSTM shares its sequence Any token between main and the
        recursive loop function; binding it must specialize both."""
        mod = build_lstm_module(LSTMWeights.create(8, 8, seed=0))
        out = SpecializeShapes(shapes=[(10, 8)])(mod)
        typed = infer_types(out)
        loop = typed["lstm_loop"]
        x_param = loop.params[2]  # (t, n, x, ...)
        assert x_param.checked_type == TensorType((10, 8), "float32")

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompilerError, match="entry parameters"):
            SpecializeShapes(shapes=[(12, 8), (1, 1)])(_dyn_mlp_module())

    def test_missing_entry_rejected(self):
        with pytest.raises(CompilerError, match="no entry"):
            SpecializeShapes(shapes=[(12, 8)], entry="nope")(_dyn_mlp_module())

    def test_bound_shapes_recorded(self):
        p = SpecializeShapes(shapes=[(12, 8)])
        p(_dyn_mlp_module())
        assert p.bound_shapes == (((12, 8)),)


# ---------------------------------------------------------------------------
# nimble.specialize: bit-identical outputs, overhead removal, round-trips
# ---------------------------------------------------------------------------


class TestSpecializeAPI:
    @pytest.mark.parametrize("rows", [5, 12, 24])
    def test_lstm_bit_identical_across_shapes(self, rows):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(rows, 8)], kernel_cache=cache
        )
        x = (np.random.RandomState(rows).randn(rows, 8) * 0.1).astype(np.float32)
        out_d, _, _ = _run(dyn, x)
        out_s, _, _ = _run(spec, x)
        assert np.array_equal(out_d.numpy(), out_s.numpy())
        assert np.allclose(out_s.numpy(), lstm_reference(x, weights), atol=1e-5)

    def test_bert_removes_shape_funcs_and_dynamic_allocs(self):
        config = BertConfig(hidden=32, num_layers=1, num_heads=2, ffn=64)
        weights = BertWeights.create(config, seed=0)
        mod = build_bert_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(24, 32)], kernel_cache=cache
        )
        x = (np.random.RandomState(0).randn(24, 32) * 0.1).astype(np.float32)
        out_d, lat_d, vm_d = _run(dyn, x)
        out_s, lat_s, vm_s = _run(spec, x)
        assert np.array_equal(out_d.numpy(), out_s.numpy())
        # The static tier pays no shape functions, fewer instructions,
        # fewer allocations, and strictly less end-to-end latency.
        assert vm_d.profile.shape_func_invocations > 0
        assert vm_s.profile.shape_func_invocations == 0
        assert vm_s.profile.dispatch_time_us < vm_d.profile.dispatch_time_us
        assert (
            vm_s.ctx.allocator.stats.total_allocs
            < vm_d.ctx.allocator.stats.total_allocs
        )
        assert lat_s < lat_d

    def test_tree_lstm_specialize_is_safe_on_adt_entry(self):
        """No Any dims in the TreeLSTM entry: specialization is an
        (ADT-preserving) identity and stays bit-identical."""
        from repro.data import sst_like_trees, embedding_table

        weights = TreeLSTMWeights.create(16, 8, seed=0)
        mod = build_tree_lstm_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[None], kernel_cache=cache
        )
        tree = sst_like_trees(1, seed=3)[0]
        adt = tree_to_adt(tree, embedding_table(dim=16, seed=0))
        out_d, _, _ = _run(dyn, adt)
        out_s, _, _ = _run(spec, adt)
        assert np.array_equal(out_d.numpy(), out_s.numpy())

    def test_specialized_marker_and_save_load_round_trip(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        spec, _ = nimble.specialize(mod, intel_cpu(), shapes=[(9, 8)])
        assert spec.is_specialized
        assert spec.specialized_shapes == ((9, 8),)
        loaded = Executable.load(spec.save())
        assert loaded.specialized_shapes == ((9, 8),)
        x = (np.random.RandomState(4).randn(9, 8) * 0.1).astype(np.float32)
        out_a, _, _ = _run(spec, x)
        out_b, _, _ = _run(loaded, x)
        assert np.array_equal(out_a.numpy(), out_b.numpy())

    def test_dynamic_build_is_unmarked(self):
        exe, _ = nimble.build(_dyn_mlp_module(), intel_cpu())
        assert not exe.is_specialized
        assert Executable.load(exe.save()).specialized_shapes is None

    def test_kernel_cache_keeps_tiers_apart(self):
        """A specialized prim hashes structurally equal to its symbolic
        original; the cache key's shape signature must keep them apart
        (the symbolic kernel must never serve the static tier)."""
        mod = _dyn_mlp_module()
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        n_dynamic = len(cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(16, 8)], kernel_cache=cache
        )
        assert len(cache) > n_dynamic
        assert any(getattr(k, "symbolic", False) for k in dyn.kernels)
        assert not any(getattr(k, "symbolic", False) for k in spec.kernels)

    def test_prim_signature_distinguishes_static_from_symbolic(self):
        w = const(np.zeros((8, 8), np.float32))

        def prim(m):
            x = Var("x", TensorType((m, 8), "float32"))
            return Function(
                [x], api.dense(x, w), TensorType((m, 8), "float32"),
                {"primitive": True},
            )

        a = Any()
        assert prim_signature(prim(a)) != prim_signature(prim(16))
        assert prim_signature(prim(16)) != prim_signature(prim(32))

    def test_empty_shared_kernel_cache_is_not_discarded(self):
        """Regression: KernelCache defines __len__, so an empty cache is
        falsy — `or`-defaulting used to silently compile into a private
        cache and defeat sharing."""
        cache = KernelCache()
        nimble.build(_dyn_mlp_module(), intel_cpu(), kernel_cache=cache)
        assert len(cache) > 0


# ---------------------------------------------------------------------------
# The serving tier
# ---------------------------------------------------------------------------


def _lstm_server(threshold=3, compile_us=1000.0, **overrides):
    weights = LSTMWeights.create(8, 16, seed=0)
    mod = build_lstm_module(weights)
    config = ServeConfig(
        max_batch_size=4,
        max_delay_us=2000.0,
        num_workers=2,
        specialize=True,
        specialize_threshold=threshold,
        specialize_compile_us=compile_us,
        **overrides,
    )
    return InferenceServer(mod, intel_cpu(), config), weights


def _mlp_manager(threshold=2, kernel_cache=None, **kwargs):
    mod = _dyn_mlp_module()
    typed = infer_types(mod)
    bucketer = ShapeBucketer(typed["main"], granularity=8)
    return SpecializationManager(
        mod, intel_cpu(), bucketer, kernel_cache or KernelCache(),
        threshold=threshold, compile_us=100.0, **kwargs,
    )


class TestSpecializationManager:
    def _manager(self, threshold=2, **kwargs):
        return _mlp_manager(threshold=threshold, **kwargs)

    def test_threshold_triggers_compile_on_background_lane(self):
        mgr = self._manager(threshold=2)
        mgr.observe((16,), 10.0)
        assert mgr.num_executables == 0
        mgr.observe((16,), 20.0)
        assert mgr.num_executables == 1
        (event,) = mgr.events
        assert event.trigger_us == 20.0
        assert event.ready_us == pytest.approx(120.0)
        # Not routable until the compile lane finishes.
        assert mgr.executable_for((16,), 50.0) is None
        exe = mgr.executable_for((16,), 120.0)
        assert exe is not None and exe.specialized_shapes == ((16, 8),)

    def test_single_lane_serializes_compiles_through_queue(self):
        mgr = self._manager(threshold=1)
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 0.0)
        # The lane is busy until 100, so the second compile waits in the
        # pending queue; draining the pool binds it when the lane frees.
        assert [e.ready_us for e in mgr.events] == [100.0]
        mgr.drain()
        assert [e.ready_us for e in mgr.events] == [100.0, 200.0]
        assert [e.queue_us for e in mgr.events] == [0.0, 100.0]
        assert mgr.lane_busy_us == [200.0]

    def test_pending_compile_binds_at_lane_free_event(self):
        """A compile left pending by a busy lane starts at the lane-free
        time — not at the next observation — once any later observation
        (or drain) pumps the pool past it."""
        mgr = self._manager(threshold=1)
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 10.0)
        mgr.observe((8,), 500.0)  # any arrival pumps: lane freed at 100
        assert [(e.key, e.start_us) for e in mgr.events] == [
            ((8,), 0.0),
            ((16,), 100.0),
        ]

    def test_capacity_cap_stops_new_specializations(self):
        # All resident compiles are still in flight at the third trigger,
        # so even with eviction enabled nothing can be displaced.
        mgr = self._manager(threshold=1, max_executables=2)
        for v in (8, 16, 24):
            mgr.observe((v,), 0.0)
        assert mgr.num_executables == 2
        assert mgr.num_resident == 2
        assert mgr.executable_for((24,), 1e9) is None

    def test_reset_preserves_compiled_cache_but_restarts_counters(self):
        mgr = self._manager(threshold=2)
        mgr.observe((16,), 0.0)
        mgr.observe((16,), 1.0)
        assert mgr.num_executables == 1
        mgr.reset()
        assert mgr.num_executables == 1
        assert mgr.hits((16,)) == 0
        assert mgr.executable_for((16,), 1e9) is None  # not hot again yet
        mgr.observe((16,), 5.0)
        mgr.observe((16,), 6.0)
        assert mgr.executable_for((16,), 106.0) is not None

    def test_static_model_never_specializes(self):
        x = Var("x", TensorType((4, 8), "float32"))
        mod = IRModule.from_expr(Function([x], api.relu(x)))
        typed = infer_types(mod)
        bucketer = ShapeBucketer(typed["main"], granularity=8)
        mgr = SpecializationManager(
            mod, intel_cpu(), bucketer, KernelCache(), threshold=1,
            compile_us=1.0,
        )
        mgr.observe((), 0.0)
        assert mgr.num_executables == 0


class TestCompilePool:
    def test_two_lanes_overlap_independent_compiles(self):
        mgr = _mlp_manager(threshold=1, compile_lanes=2)
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 0.0)
        assert [(e.lane, e.start_us, e.ready_us) for e in mgr.events] == [
            (0, 0.0, 100.0),
            (1, 0.0, 100.0),
        ]
        assert mgr.lane_busy_us == [100.0, 100.0]

    def test_pending_queue_prioritizes_hotter_traffic(self):
        """The free lane picks the pending compile with the highest hit
        rate since trigger, recomputed at the lane-free event — not FIFO."""
        mgr = _mlp_manager(threshold=1)
        mgr.observe((8,), 0.0)    # occupies the lane until 100
        mgr.observe((16,), 10.0)  # pending, 1 hit
        mgr.observe((24,), 20.0)  # pending...
        mgr.observe((24,), 30.0)
        mgr.observe((24,), 40.0)  # ...but much hotter since its trigger
        mgr.drain()
        assert [e.key for e in mgr.events] == [(8,), (24,), (16,)]

    def test_lane_assignment_is_deterministic(self):
        """Equal-priority pending compiles and simultaneously-free lanes
        bind by (trigger time, key) and (free time, lane id) — replays of
        the same observation sequence are bit-identical."""

        def run():
            mgr = _mlp_manager(threshold=1, compile_lanes=3)
            for t, v in [(0, 8), (0, 16), (5, 24), (5, 32), (9, 40)]:
                mgr.observe((v,), float(t))
            mgr.drain()
            return [(e.key, e.lane, e.start_us, e.ready_us) for e in mgr.events]

        first = run()
        assert run() == first
        assert {lane for _, lane, _, _ in first} == {0, 1, 2}

    def test_compile_charge_equals_lane_busy_time(self):
        mgr = _mlp_manager(threshold=1, compile_lanes=2)
        for t, v in [(0, 8), (3, 16), (6, 24), (9, 32)]:
            mgr.observe((v,), float(t))
        mgr.drain()
        assert mgr.compile_us_spent == pytest.approx(sum(mgr.lane_busy_us))
        assert mgr.compile_us_spent == pytest.approx(400.0)


class TestRearmAndEviction:
    def test_starved_shape_rearms_and_recompiles_after_eviction(self):
        """Regression for the headline trigger bug: `observe` fired only
        on an exact threshold hit, so a shape whose trigger was swallowed
        by a full cache could never specialize. Now it stays armed and
        retries on every later hit, succeeding once eviction frees the
        slot."""
        mgr = _mlp_manager(
            threshold=2, max_executables=1, decay_half_life_us=1000.0
        )
        mgr.observe((8,), 0.0)
        mgr.observe((8,), 10.0)  # A triggers, compile ready at 110
        assert mgr.is_hot((8,), 110.0)
        # B crosses the threshold while the cache is full (and A's compile
        # is still in flight): blocked. The old `!= threshold` trigger
        # would have starved B forever from this point on.
        mgr.observe((16,), 20.0)
        mgr.observe((16,), 30.0)
        assert mgr.evictions == []
        assert mgr.num_resident == 1
        assert not mgr.is_hot((16,), 1e9)
        # Five half-lives later A has gone cold; B's next hit — well past
        # the exact threshold — retries, evicts A, and compiles.
        mgr.observe((16,), 5000.0)
        assert mgr.hits((16,)) == 3  # the trigger fired on hit 3, not 2
        assert [e.key for e in mgr.evictions] == [(8,)]
        (compile_b,) = [e for e in mgr.events if e.key == (16,)]
        assert compile_b.trigger_us == 5000.0
        assert mgr.is_hot((16,), compile_b.ready_us)
        assert not mgr.is_hot((8,), 1e9)  # evicted: no longer routable

    def test_evicted_shape_rearms_and_recompiles(self):
        """An evicted shape's hit count still sits past the threshold, so
        when it heats back up it re-triggers; the artifact is memoised but
        the modeled compile cost is charged again."""
        mgr = _mlp_manager(
            threshold=2, max_executables=1, decay_half_life_us=1000.0
        )
        mgr.observe((8,), 0.0)
        mgr.observe((8,), 10.0)
        mgr.observe((16,), 20.0)
        mgr.observe((16,), 30.0)
        mgr.observe((16,), 5000.0)  # evicts A (as above)
        mgr.observe((8,), 5200.0)   # A warm again, but within the margin
        assert [e.key for e in mgr.evictions] == [(8,)]
        mgr.observe((8,), 5210.0)   # past 2x B's decayed score: evicts B
        assert [e.key for e in mgr.evictions] == [(8,), (16,)]
        assert [e.key for e in mgr.events] == [(8,), (16,), (8,)]
        assert mgr.num_executables == 2  # artifacts memoised, not re-built
        assert mgr.compile_us_spent == pytest.approx(300.0)  # 3 charges

    def test_inflight_compile_is_never_evicted(self):
        mgr = _mlp_manager(
            threshold=1, max_executables=1, decay_half_life_us=1.0
        )
        mgr.observe((8,), 0.0)    # in flight until 100
        mgr.observe((16,), 50.0)  # hotter, but the victim is in flight
        assert mgr.evictions == []
        assert mgr.num_resident == 1
        mgr.observe((16,), 200.0)  # A landed and went cold: evictable now
        assert [e.key for e in mgr.evictions] == [(8,)]

    def test_eviction_requires_strictly_colder_victim(self):
        """Equal heat keeps the incumbent — a challenger only displaces a
        resident whose decayed score it strictly beats (margin 1.0: the
        bare policy, no thrash protection). Hitting both shapes at the
        same instants makes their decayed scores exactly equal."""
        mgr = _mlp_manager(threshold=1, max_executables=1, eviction_margin=1.0)
        mgr.observe((8,), 0.0)     # A triggers, resident, ready at 100
        mgr.observe((16,), 0.0)    # B armed; A in flight anyway
        mgr.observe((8,), 100.0)   # A: 2 same-instant-pattern hits
        mgr.observe((16,), 100.0)  # B: exactly A's score — incumbent kept
        assert mgr.evictions == []
        assert mgr.num_resident == 1
        mgr.observe((16,), 100.0)  # third hit: strictly hotter now
        assert [e.key for e in mgr.evictions] == [(8,)]

    def test_margin_blocks_comparable_heat_thrash(self):
        """The default eviction margin (2x) keeps an incumbent whose heat
        is comparable to the challenger's: a steady mix of hot shapes
        must not ping-pong the cache and throw away compile investment.
        Only a challenger more than twice as hot displaces."""
        mgr = _mlp_manager(threshold=1, max_executables=1)
        for t in (0.0, 1.0, 2.0):
            mgr.observe((8,), t)  # A: score ~3, compile lands at 100
        for t in (103.0, 104.0, 105.0, 106.0, 107.0):
            mgr.observe((16,), t)  # B climbs to ~5: hotter, but under 2x
        assert mgr.evictions == []
        assert mgr.is_hot((8,), 107.0)
        mgr.observe((16,), 108.0)  # score ~6 > 2 x 3: past the margin
        assert [e.key for e in mgr.evictions] == [(8,)]

    def test_eviction_off_restores_hard_cap(self):
        mgr = _mlp_manager(
            threshold=1, max_executables=1, eviction=False,
            decay_half_life_us=1.0,
        )
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 1000.0)  # would evict; hard cap blocks instead
        mgr.observe((16,), 2000.0)
        assert mgr.evictions == []
        assert mgr.num_resident == 1
        assert not mgr.is_hot((16,), 1e9)


class TestPoolProperties:
    """Property-style invariants over randomized observation traces,
    checked at every lane count on the same trace."""

    _managers = {}

    @classmethod
    def _pool(cls, lanes):
        # Managers are cached across examples (sharing one kernel cache)
        # so the handful of distinct shapes compiles exactly once; reset()
        # restores per-simulation state between examples.
        if lanes not in cls._managers:
            if not cls._managers:
                cls._shared_cache = KernelCache()
            cls._managers[lanes] = _mlp_manager(
                threshold=2,
                max_executables=2,
                compile_lanes=lanes,
                decay_half_life_us=200.0,
                kernel_cache=cls._shared_cache,
            )
        mgr = cls._managers[lanes]
        mgr.reset()
        return mgr

    @staticmethod
    def _replay(mgr, trace):
        now = 0.0
        for idx, gap in trace:
            now += gap
            mgr.observe(((idx + 1) * 8,), now)
        mgr.drain()
        return (
            [(e.key, e.lane, e.trigger_us, e.start_us, e.ready_us) for e in mgr.events],
            [(e.key, e.evicted_us, e.by_key) for e in mgr.evictions],
        )

    @given(
        trace=st.lists(
            st.tuples(st.integers(0, 3), st.floats(0.0, 400.0)),
            min_size=4,
            max_size=40,
        ),
        lanes=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_replay_eviction_and_charge_invariants(self, trace, lanes):
        mgr = self._pool(lanes)
        first = self._replay(mgr, trace)
        events, evictions = first
        # (a) replaying one trace is bit-identical.
        mgr.reset()
        assert self._replay(mgr, trace) == first
        # (b) eviction never hits a shape with an in-flight compile: a
        # victim must have a compile fully landed by its eviction, and no
        # compile of it straddles the eviction instant. (A compile of the
        # same key *starting* exactly at the eviction time is the shape
        # legitimately re-triggering into the just-freed slot, so the
        # straddle check is strict.)
        for key, evicted_us, _ in evictions:
            landed = [e for e in events if e[0] == key and e[4] <= evicted_us]
            assert landed, "evicted a shape whose compile never landed"
            straddling = [
                e for e in events if e[0] == key and e[3] < evicted_us < e[4]
            ]
            assert not straddling
        # (c) total compile charge equals the sum of per-lane busy time.
        assert mgr.compile_us_spent == pytest.approx(sum(mgr.lane_busy_us))
        assert len(mgr.lane_busy_us) == lanes
        # Residency never exceeds the cap.
        assert mgr.num_resident <= 2


# One kernel cache shared by every server in the compile-pool serving
# tests: they all compile the same LSTM module, so kernels memoise across
# configurations (the *modeled* compile cost is still charged per trigger).
_POOL_TEST_KERNELS = KernelCache()


class TestCompilePoolServing:
    """End-to-end acceptance for the compile pool + eviction on the
    long-tailed shape mix (ISSUE 3): starved shapes recover via eviction,
    a second lane strictly cuts compile-queue wait, and replays stay
    bit-identical under every setting."""

    _weights = LSTMWeights.create(8, 16, seed=0)

    def _server(self, lanes, eviction=True):
        mod = build_lstm_module(self._weights)
        config = ServeConfig(
            max_batch_size=4,
            max_delay_us=1500.0,
            num_workers=2,
            specialize=True,
            specialize_threshold=2,
            specialize_max_executables=4,
            specialize_compile_us=6000.0,
            specialize_compile_lanes=lanes,
            specialize_eviction=eviction,
            specialize_decay_half_life_us=3_000.0,
        )
        return InferenceServer(
            mod, intel_cpu(), config, kernel_cache=_POOL_TEST_KERNELS
        )

    @staticmethod
    def _trace(n=80):
        from repro.serve import long_tailed_traffic

        return long_tailed_traffic(
            n,
            input_size=8,
            mean_interarrival_us=300.0,
            hot_lengths=(5, 11, 17, 23, 29),
            tail_min=3,
            tail_max=32,
            seed=0,
        )

    def test_starved_hot_shape_specializes_after_eviction(self):
        """Regression for the starved-shape trace: shapes the hard cap
        blocks forever get specialized once eviction frees a slot."""
        requests = self._trace()
        capped = self._server(1, eviction=False)
        evicting = self._server(1)
        capped.simulate(requests)
        report = evicting.simulate(requests)
        assert report.specialize_evictions > 0
        compiled_capped = {e.key for e in capped.specializer.events}
        compiled_evicting = {e.key for e in evicting.specializer.events}
        starved = compiled_evicting - compiled_capped
        assert starved, "eviction should specialize shapes the cap starves"
        # Each recovered shape triggered at/after the eviction that could
        # have freed its slot — they were blocked until then.
        first_eviction = evicting.specializer.evictions[0].evicted_us
        for key in starved:
            trigger = min(
                e.trigger_us
                for e in evicting.specializer.events
                if e.key == key
            )
            assert trigger >= first_eviction
        assert evicting.specializer.num_resident <= 4

    def test_second_lane_strictly_cuts_queue_wait(self):
        requests = self._trace()
        waits = {}
        for lanes in (1, 2):
            server = self._server(lanes)
            a = server.simulate(requests)
            b = server.simulate(requests)
            # Bit-identical replay under both settings.
            assert a.latencies_us == b.latencies_us
            assert [r.tier for r in a.responses] == [r.tier for r in b.responses]
            assert a.specialize_queue_waits_us == b.specialize_queue_waits_us
            assert a.specialize_lane_busy_us == b.specialize_lane_busy_us
            assert a.specialize_evictions == b.specialize_evictions
            assert len(a.specialize_lane_busy_us) == lanes
            waits[lanes] = a.mean_compile_queue_wait_us
        assert waits[1] > 0.0
        assert waits[2] < waits[1]

    def test_replay_bit_identical_under_any_lane_count(self):
        requests = self._trace(n=36)
        for lanes in (1, 2, 3):
            server = self._server(lanes)
            a = server.simulate(requests)
            b = server.simulate(requests)
            assert [
                (r.rid, r.latency_us, r.tier, r.worker_id, r.bucket_key)
                for r in a.responses
            ] == [
                (r.rid, r.latency_us, r.tier, r.worker_id, r.bucket_key)
                for r in b.responses
            ]
            assert a.batch_histogram == b.batch_histogram
            assert a.specialize_compile_us == b.specialize_compile_us


class TestTieredServing:
    def test_hot_bucket_gets_specialized_hits(self):
        server, _ = _lstm_server()
        requests = lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        report = server.simulate(requests)
        assert report.specialized_hits > 0
        assert 0.0 < report.specialized_hit_rate <= 1.0
        assert report.num_specialized_executables > 0
        assert report.specialize_compile_us > 0.0
        # Per-tier accounting: every response carries its tier and the
        # split adds back up.
        tiers = {r.tier for r in report.responses}
        assert tiers == {"dynamic", "specialized"}
        assert (
            len(report.tier_latencies_us("dynamic"))
            + len(report.tier_latencies_us("specialized"))
            == report.num_requests
        )

    def test_outputs_identical_to_untiered_server(self):
        """Tiering changes scheduling and dispatch, never numerics."""
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        requests = lstm_traffic(32, input_size=8, mean_interarrival_us=150.0, seed=1)
        tiered = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=4, max_delay_us=2000.0, num_workers=2,
                        numerics="full", specialize=True,
                        specialize_threshold=2, specialize_compile_us=500.0),
        )
        plain = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=4, max_delay_us=2000.0, num_workers=2,
                        numerics="full"),
        )
        a = tiered.simulate(requests)
        b = plain.simulate(requests)
        assert a.specialized_hits > 0
        for ra, rb in zip(a.responses, b.responses):
            assert ra.rid == rb.rid
            assert np.array_equal(ra.output.numpy(), rb.output.numpy())

    def test_replay_is_bit_stable(self):
        """The specialized-hit rate and the whole report reproduce exactly
        across replays of one trace (compiled executables are cached, hit
        counters reset)."""
        server, _ = _lstm_server()
        requests = lstm_traffic(48, input_size=8, mean_interarrival_us=200.0, seed=2)
        a = server.simulate(requests)
        b = server.simulate(requests)
        assert a.specialized_hits == b.specialized_hits > 0
        assert a.specialized_hit_rate == b.specialized_hit_rate
        assert a.latencies_us == b.latencies_us
        assert a.specialize_compile_us == b.specialize_compile_us
        assert a.batch_histogram == b.batch_histogram
        assert [r.tier for r in a.responses] == [r.tier for r in b.responses]

    def test_specialized_tier_pays_no_shape_funcs(self):
        server, _ = _lstm_server()
        requests = lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        report = server.simulate(requests)
        assert report.specialized_hits > 0
        assert report.profile_specialized.shape_func_time_us == 0.0
        assert report.profile_specialized.runs == report.specialized_hits
        assert report.profile_dynamic.runs == (
            report.num_requests - report.specialized_hits
        )

    def test_tiering_off_keeps_everything_dynamic(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        server = InferenceServer(
            mod, intel_cpu(), ServeConfig(max_batch_size=4, num_workers=2)
        )
        report = server.simulate(
            lstm_traffic(16, input_size=8, mean_interarrival_us=100.0, seed=0)
        )
        assert report.specialized_hits == 0
        assert report.specialized_hit_rate == 0.0
        assert all(r.tier == "dynamic" for r in report.responses)

    def test_report_format_shows_tiers(self):
        server, _ = _lstm_server()
        report = server.simulate(
            lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        )
        text = report.format("tiered")
        assert "specialized hit rate" in text
        assert "shape-func µs" in text

    def test_gpu_platform_tiering_is_deterministic(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        config = ServeConfig(
            max_batch_size=4, max_delay_us=1000.0, num_workers=2,
            specialize=True, specialize_threshold=2,
            specialize_compile_us=800.0,
        )
        server = InferenceServer(mod, nvidia_gpu(), config)
        requests = lstm_traffic(32, input_size=8, mean_interarrival_us=150.0, seed=3)
        a = server.simulate(requests)
        b = server.simulate(requests)
        assert a.latencies_us == b.latencies_us
        assert a.specialized_hits == b.specialized_hits
