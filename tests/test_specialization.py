"""Tiered shape specialization: the SpecializeShapes pass, the
nimble.specialize API, kernel-cache tier separation, serialization, the
serving-layer SpecializationManager, and tier routing."""

import numpy as np
import pytest

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache, prim_signature
from repro.core.typing import collect_shape_bindings, infer_types
from repro.core.typing.bind import bind_any_dims
from repro.errors import CompilerError, TypeInferenceError
from repro.hardware import intel_cpu, nvidia_gpu
from repro.ir import Any, Function, IRModule, TensorType, Var, const
from repro.ir.types import TupleType, has_any_dim
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.models.lstm import LSTMWeights, build_lstm_module, lstm_reference
from repro.models.tree_lstm import (
    TreeLSTMWeights,
    build_tree_lstm_module,
    tree_to_adt,
)
from repro.ops import api
from repro.passes import SpecializeShapes
from repro.runtime.context import ExecutionContext
from repro.serve import (
    InferenceServer,
    Request,
    ServeConfig,
    ShapeBucketer,
    SpecializationManager,
    lstm_traffic,
)
from repro.vm.executable import Executable
from repro.vm.interpreter import VirtualMachine


def _dyn_mlp_module(dim=8, seed=0):
    w = const((np.random.RandomState(seed).randn(dim, dim) * 0.1).astype(np.float32))
    x = Var("x", TensorType((Any(), dim), "float32"))
    return IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))


def _run(exe, *inputs, platform=None, numerics="full"):
    ctx = ExecutionContext(platform or intel_cpu(), numerics=numerics)
    vm = VirtualMachine(exe, ctx)
    out, latency = vm.run_with_latency(*inputs)
    return out, latency, vm


# ---------------------------------------------------------------------------
# Binding helpers
# ---------------------------------------------------------------------------


class TestBindHelpers:
    def test_collect_binds_any_and_checks_static(self):
        a = Any()
        ty = TensorType((a, 8), "float32")
        binding = collect_shape_bindings(ty, (12, 8))
        assert binding == {a.token: 12}

    def test_collect_rejects_static_mismatch(self):
        ty = TensorType((Any(), 8), "float32")
        with pytest.raises(TypeInferenceError, match="static dim"):
            collect_shape_bindings(ty, (12, 9))

    def test_collect_rejects_rank_mismatch(self):
        ty = TensorType((Any(), 8), "float32")
        with pytest.raises(TypeInferenceError, match="rank"):
            collect_shape_bindings(ty, (12,))

    def test_collect_rejects_conflicting_token_values(self):
        a = Any()
        ty = TupleType([TensorType((a, 4)), TensorType((a, 4))])
        with pytest.raises(TypeInferenceError, match="bound to both"):
            collect_shape_bindings(ty, [(3, 4), (5, 4)])

    def test_collect_through_tuple_and_none_skips(self):
        a, b = Any(), Any()
        ty = TupleType([TensorType((a, 4)), TensorType((b, 4))])
        binding = collect_shape_bindings(ty, [(3, 4), None])
        assert binding == {a.token: 3}

    def test_bind_substitutes_only_bound_tokens(self):
        a, b = Any(), Any()
        ty = TupleType([TensorType((a, b)), TensorType((4,))])
        out = bind_any_dims(ty, {a.token: 7})
        assert out.fields[0].shape[0] == 7
        assert isinstance(out.fields[0].shape[1], Any)
        assert out.fields[1] is ty.fields[1]  # untouched subtree shared


# ---------------------------------------------------------------------------
# The SpecializeShapes pass
# ---------------------------------------------------------------------------


class TestSpecializeShapesPass:
    def test_entry_types_become_static(self):
        mod = _dyn_mlp_module()
        out = SpecializeShapes(shapes=[(12, 8)])(mod)
        typed = infer_types(out)
        main = typed["main"]
        assert main.params[0].checked_type == TensorType((12, 8), "float32")
        assert not has_any_dim(main.body.checked_type)

    def test_original_module_untouched(self):
        mod = _dyn_mlp_module()
        typed = infer_types(mod)
        before = repr(typed["main"].params[0].type_annotation)
        SpecializeShapes(shapes=[(12, 8)])(mod)
        assert repr(typed["main"].params[0].type_annotation) == before
        assert has_any_dim(typed["main"].params[0].type_annotation)

    def test_binding_propagates_across_functions(self):
        """The LSTM shares its sequence Any token between main and the
        recursive loop function; binding it must specialize both."""
        mod = build_lstm_module(LSTMWeights.create(8, 8, seed=0))
        out = SpecializeShapes(shapes=[(10, 8)])(mod)
        typed = infer_types(out)
        loop = typed["lstm_loop"]
        x_param = loop.params[2]  # (t, n, x, ...)
        assert x_param.checked_type == TensorType((10, 8), "float32")

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompilerError, match="entry parameters"):
            SpecializeShapes(shapes=[(12, 8), (1, 1)])(_dyn_mlp_module())

    def test_missing_entry_rejected(self):
        with pytest.raises(CompilerError, match="no entry"):
            SpecializeShapes(shapes=[(12, 8)], entry="nope")(_dyn_mlp_module())

    def test_bound_shapes_recorded(self):
        p = SpecializeShapes(shapes=[(12, 8)])
        p(_dyn_mlp_module())
        assert p.bound_shapes == (((12, 8)),)


# ---------------------------------------------------------------------------
# nimble.specialize: bit-identical outputs, overhead removal, round-trips
# ---------------------------------------------------------------------------


class TestSpecializeAPI:
    @pytest.mark.parametrize("rows", [5, 12, 24])
    def test_lstm_bit_identical_across_shapes(self, rows):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(rows, 8)], kernel_cache=cache
        )
        x = (np.random.RandomState(rows).randn(rows, 8) * 0.1).astype(np.float32)
        out_d, _, _ = _run(dyn, x)
        out_s, _, _ = _run(spec, x)
        assert np.array_equal(out_d.numpy(), out_s.numpy())
        assert np.allclose(out_s.numpy(), lstm_reference(x, weights), atol=1e-5)

    def test_bert_removes_shape_funcs_and_dynamic_allocs(self):
        config = BertConfig(hidden=32, num_layers=1, num_heads=2, ffn=64)
        weights = BertWeights.create(config, seed=0)
        mod = build_bert_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(24, 32)], kernel_cache=cache
        )
        x = (np.random.RandomState(0).randn(24, 32) * 0.1).astype(np.float32)
        out_d, lat_d, vm_d = _run(dyn, x)
        out_s, lat_s, vm_s = _run(spec, x)
        assert np.array_equal(out_d.numpy(), out_s.numpy())
        # The static tier pays no shape functions, fewer instructions,
        # fewer allocations, and strictly less end-to-end latency.
        assert vm_d.profile.shape_func_invocations > 0
        assert vm_s.profile.shape_func_invocations == 0
        assert vm_s.profile.dispatch_time_us < vm_d.profile.dispatch_time_us
        assert (
            vm_s.ctx.allocator.stats.total_allocs
            < vm_d.ctx.allocator.stats.total_allocs
        )
        assert lat_s < lat_d

    def test_tree_lstm_specialize_is_safe_on_adt_entry(self):
        """No Any dims in the TreeLSTM entry: specialization is an
        (ADT-preserving) identity and stays bit-identical."""
        from repro.data import sst_like_trees, embedding_table

        weights = TreeLSTMWeights.create(16, 8, seed=0)
        mod = build_tree_lstm_module(weights)
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[None], kernel_cache=cache
        )
        tree = sst_like_trees(1, seed=3)[0]
        adt = tree_to_adt(tree, embedding_table(dim=16, seed=0))
        out_d, _, _ = _run(dyn, adt)
        out_s, _, _ = _run(spec, adt)
        assert np.array_equal(out_d.numpy(), out_s.numpy())

    def test_specialized_marker_and_save_load_round_trip(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        spec, _ = nimble.specialize(mod, intel_cpu(), shapes=[(9, 8)])
        assert spec.is_specialized
        assert spec.specialized_shapes == ((9, 8),)
        loaded = Executable.load(spec.save())
        assert loaded.specialized_shapes == ((9, 8),)
        x = (np.random.RandomState(4).randn(9, 8) * 0.1).astype(np.float32)
        out_a, _, _ = _run(spec, x)
        out_b, _, _ = _run(loaded, x)
        assert np.array_equal(out_a.numpy(), out_b.numpy())

    def test_dynamic_build_is_unmarked(self):
        exe, _ = nimble.build(_dyn_mlp_module(), intel_cpu())
        assert not exe.is_specialized
        assert Executable.load(exe.save()).specialized_shapes is None

    def test_kernel_cache_keeps_tiers_apart(self):
        """A specialized prim hashes structurally equal to its symbolic
        original; the cache key's shape signature must keep them apart
        (the symbolic kernel must never serve the static tier)."""
        mod = _dyn_mlp_module()
        cache = KernelCache()
        dyn, _ = nimble.build(mod, intel_cpu(), kernel_cache=cache)
        n_dynamic = len(cache)
        spec, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(16, 8)], kernel_cache=cache
        )
        assert len(cache) > n_dynamic
        assert any(getattr(k, "symbolic", False) for k in dyn.kernels)
        assert not any(getattr(k, "symbolic", False) for k in spec.kernels)

    def test_prim_signature_distinguishes_static_from_symbolic(self):
        w = const(np.zeros((8, 8), np.float32))

        def prim(m):
            x = Var("x", TensorType((m, 8), "float32"))
            return Function(
                [x], api.dense(x, w), TensorType((m, 8), "float32"),
                {"primitive": True},
            )

        a = Any()
        assert prim_signature(prim(a)) != prim_signature(prim(16))
        assert prim_signature(prim(16)) != prim_signature(prim(32))

    def test_empty_shared_kernel_cache_is_not_discarded(self):
        """Regression: KernelCache defines __len__, so an empty cache is
        falsy — `or`-defaulting used to silently compile into a private
        cache and defeat sharing."""
        cache = KernelCache()
        nimble.build(_dyn_mlp_module(), intel_cpu(), kernel_cache=cache)
        assert len(cache) > 0


# ---------------------------------------------------------------------------
# The serving tier
# ---------------------------------------------------------------------------


def _lstm_server(threshold=3, compile_us=1000.0, **overrides):
    weights = LSTMWeights.create(8, 16, seed=0)
    mod = build_lstm_module(weights)
    config = ServeConfig(
        max_batch_size=4,
        max_delay_us=2000.0,
        num_workers=2,
        specialize=True,
        specialize_threshold=threshold,
        specialize_compile_us=compile_us,
        **overrides,
    )
    return InferenceServer(mod, intel_cpu(), config), weights


class TestSpecializationManager:
    def _manager(self, threshold=2, **kwargs):
        mod = _dyn_mlp_module()
        typed = infer_types(mod)
        bucketer = ShapeBucketer(typed["main"], granularity=8)
        return SpecializationManager(
            mod, intel_cpu(), bucketer, KernelCache(),
            threshold=threshold, compile_us=100.0, **kwargs,
        )

    def test_threshold_triggers_compile_on_background_lane(self):
        mgr = self._manager(threshold=2)
        mgr.observe((16,), 10.0)
        assert mgr.num_executables == 0
        mgr.observe((16,), 20.0)
        assert mgr.num_executables == 1
        (event,) = mgr.events
        assert event.trigger_us == 20.0
        assert event.ready_us == pytest.approx(120.0)
        # Not routable until the compile lane finishes.
        assert mgr.executable_for((16,), 50.0) is None
        exe = mgr.executable_for((16,), 120.0)
        assert exe is not None and exe.specialized_shapes == ((16, 8),)

    def test_lane_serializes_compiles(self):
        mgr = self._manager(threshold=1)
        mgr.observe((8,), 0.0)
        mgr.observe((16,), 0.0)
        assert [e.ready_us for e in mgr.events] == [100.0, 200.0]

    def test_capacity_cap_stops_new_specializations(self):
        mgr = self._manager(threshold=1, max_executables=2)
        for v in (8, 16, 24):
            mgr.observe((v,), 0.0)
        assert mgr.num_executables == 2
        assert mgr.executable_for((24,), 1e9) is None

    def test_reset_preserves_compiled_cache_but_restarts_counters(self):
        mgr = self._manager(threshold=2)
        mgr.observe((16,), 0.0)
        mgr.observe((16,), 1.0)
        assert mgr.num_executables == 1
        mgr.reset()
        assert mgr.num_executables == 1
        assert mgr.hits((16,)) == 0
        assert mgr.executable_for((16,), 1e9) is None  # not hot again yet
        mgr.observe((16,), 5.0)
        mgr.observe((16,), 6.0)
        assert mgr.executable_for((16,), 106.0) is not None

    def test_static_model_never_specializes(self):
        x = Var("x", TensorType((4, 8), "float32"))
        mod = IRModule.from_expr(Function([x], api.relu(x)))
        typed = infer_types(mod)
        bucketer = ShapeBucketer(typed["main"], granularity=8)
        mgr = SpecializationManager(
            mod, intel_cpu(), bucketer, KernelCache(), threshold=1,
            compile_us=1.0,
        )
        mgr.observe((), 0.0)
        assert mgr.num_executables == 0


class TestTieredServing:
    def test_hot_bucket_gets_specialized_hits(self):
        server, _ = _lstm_server()
        requests = lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        report = server.simulate(requests)
        assert report.specialized_hits > 0
        assert 0.0 < report.specialized_hit_rate <= 1.0
        assert report.num_specialized_executables > 0
        assert report.specialize_compile_us > 0.0
        # Per-tier accounting: every response carries its tier and the
        # split adds back up.
        tiers = {r.tier for r in report.responses}
        assert tiers == {"dynamic", "specialized"}
        assert (
            len(report.tier_latencies_us("dynamic"))
            + len(report.tier_latencies_us("specialized"))
            == report.num_requests
        )

    def test_outputs_identical_to_untiered_server(self):
        """Tiering changes scheduling and dispatch, never numerics."""
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        requests = lstm_traffic(32, input_size=8, mean_interarrival_us=150.0, seed=1)
        tiered = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=4, max_delay_us=2000.0, num_workers=2,
                        numerics="full", specialize=True,
                        specialize_threshold=2, specialize_compile_us=500.0),
        )
        plain = InferenceServer(
            mod, intel_cpu(),
            ServeConfig(max_batch_size=4, max_delay_us=2000.0, num_workers=2,
                        numerics="full"),
        )
        a = tiered.simulate(requests)
        b = plain.simulate(requests)
        assert a.specialized_hits > 0
        for ra, rb in zip(a.responses, b.responses):
            assert ra.rid == rb.rid
            assert np.array_equal(ra.output.numpy(), rb.output.numpy())

    def test_replay_is_bit_stable(self):
        """The specialized-hit rate and the whole report reproduce exactly
        across replays of one trace (compiled executables are cached, hit
        counters reset)."""
        server, _ = _lstm_server()
        requests = lstm_traffic(48, input_size=8, mean_interarrival_us=200.0, seed=2)
        a = server.simulate(requests)
        b = server.simulate(requests)
        assert a.specialized_hits == b.specialized_hits > 0
        assert a.specialized_hit_rate == b.specialized_hit_rate
        assert a.latencies_us == b.latencies_us
        assert a.specialize_compile_us == b.specialize_compile_us
        assert a.batch_histogram == b.batch_histogram
        assert [r.tier for r in a.responses] == [r.tier for r in b.responses]

    def test_specialized_tier_pays_no_shape_funcs(self):
        server, _ = _lstm_server()
        requests = lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        report = server.simulate(requests)
        assert report.specialized_hits > 0
        assert report.profile_specialized.shape_func_time_us == 0.0
        assert report.profile_specialized.runs == report.specialized_hits
        assert report.profile_dynamic.runs == (
            report.num_requests - report.specialized_hits
        )

    def test_tiering_off_keeps_everything_dynamic(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        server = InferenceServer(
            mod, intel_cpu(), ServeConfig(max_batch_size=4, num_workers=2)
        )
        report = server.simulate(
            lstm_traffic(16, input_size=8, mean_interarrival_us=100.0, seed=0)
        )
        assert report.specialized_hits == 0
        assert report.specialized_hit_rate == 0.0
        assert all(r.tier == "dynamic" for r in report.responses)

    def test_report_format_shows_tiers(self):
        server, _ = _lstm_server()
        report = server.simulate(
            lstm_traffic(64, input_size=8, mean_interarrival_us=200.0, seed=0)
        )
        text = report.format("tiered")
        assert "specialized hit rate" in text
        assert "shape-func µs" in text

    def test_gpu_platform_tiering_is_deterministic(self):
        weights = LSTMWeights.create(8, 16, seed=0)
        mod = build_lstm_module(weights)
        config = ServeConfig(
            max_batch_size=4, max_delay_us=1000.0, num_workers=2,
            specialize=True, specialize_threshold=2,
            specialize_compile_us=800.0,
        )
        server = InferenceServer(mod, nvidia_gpu(), config)
        requests = lstm_traffic(32, input_size=8, mean_interarrival_us=150.0, seed=3)
        a = server.simulate(requests)
        b = server.simulate(requests)
        assert a.latencies_us == b.latencies_us
        assert a.specialized_hits == b.specialized_hits
