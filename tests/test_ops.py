"""Operator library: computes vs NumPy ground truth, shape-function
exactness (property-based), fusion patterns, dynamic-op contracts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.ops import (
    OpPattern,
    ShapeFuncMode,
    all_op_names,
    get_op_def,
    has_op,
    num_outputs_of,
)

RNG = np.random.RandomState(7)


def run_op(name, inputs, attrs=None):
    return get_op_def(name).compute([np.asarray(i) for i in inputs], attrs or {})


class TestElementwise:
    @pytest.mark.parametrize(
        "name,fn",
        [
            ("add", np.add),
            ("subtract", np.subtract),
            ("multiply", np.multiply),
            ("divide", np.divide),
            ("maximum", np.maximum),
            ("minimum", np.minimum),
        ],
    )
    def test_binary_matches_numpy(self, name, fn):
        a = RNG.randn(3, 4).astype(np.float32)
        b = RNG.randn(3, 4).astype(np.float32) + 2.0
        assert np.allclose(run_op(name, [a, b]), fn(a, b), atol=1e-6)

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("exp", np.exp),
            ("log", lambda x: np.log(np.abs(x) + 1)),
            ("tanh", np.tanh),
            ("negative", np.negative),
            ("abs", np.abs),
            ("sqrt", lambda x: np.sqrt(np.abs(x))),
        ],
    )
    def test_unary_matches_numpy(self, name, fn):
        x = np.abs(RNG.randn(5).astype(np.float32)) + 1.0 if name in ("log", "sqrt") else RNG.randn(5).astype(np.float32)
        expect = fn(x) if name not in ("log", "sqrt") else (np.log(x) if name == "log" else np.sqrt(x))
        assert np.allclose(run_op(name, [x]), expect, atol=1e-5)

    def test_sigmoid(self):
        x = RNG.randn(8).astype(np.float32)
        assert np.allclose(run_op("sigmoid", [x]), 1 / (1 + np.exp(-x)), atol=1e-6)

    def test_broadcasting(self):
        a = RNG.randn(3, 1).astype(np.float32)
        b = RNG.randn(1, 4).astype(np.float32)
        assert run_op("add", [a, b]).shape == (3, 4)

    def test_comparisons_produce_bool(self):
        a = np.array([1.0, 2.0], np.float32)
        b = np.array([2.0, 1.0], np.float32)
        out = run_op("less", [a, b])
        assert out.dtype == np.bool_
        assert out.tolist() == [True, False]

    def test_where(self):
        c = np.array([True, False])
        out = run_op("where", [c, np.float32([1, 1]), np.float32([2, 2])])
        assert out.tolist() == [1.0, 2.0]

    def test_cast(self):
        out = run_op("cast", [np.float32([1.7])], {"dtype": "int64"})
        assert out.dtype == np.int64

    def test_clip(self):
        out = run_op("clip", [np.float32([-5, 0.5, 5])], {"a_min": 0.0, "a_max": 1.0})
        assert out.tolist() == [0.0, 0.5, 1.0]


class TestNN:
    def test_dense(self):
        x = RNG.randn(3, 8).astype(np.float32)
        w = RNG.randn(5, 8).astype(np.float32)
        assert np.allclose(run_op("nn.dense", [x, w]), x @ w.T, atol=1e-5)

    def test_batch_matmul(self):
        a = RNG.randn(2, 3, 4).astype(np.float32)
        b = RNG.randn(2, 5, 4).astype(np.float32)
        assert np.allclose(
            run_op("nn.batch_matmul", [a, b]), a @ b.transpose(0, 2, 1), atol=1e-5
        )

    def test_softmax_rows_sum_to_one(self):
        x = RNG.randn(4, 9).astype(np.float32)
        out = run_op("nn.softmax", [x], {"axis": -1})
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)

    def test_log_softmax(self):
        x = RNG.randn(4, 9).astype(np.float32)
        out = run_op("nn.log_softmax", [x], {"axis": -1})
        assert np.allclose(np.exp(out).sum(axis=-1), 1.0, atol=1e-4)

    def test_layer_norm_normalizes(self):
        x = RNG.randn(6, 16).astype(np.float32) * 3 + 5
        g, b = np.ones(16, np.float32), np.zeros(16, np.float32)
        out = run_op("nn.layer_norm", [x, g, b], {"axis": -1, "epsilon": 1e-5})
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_bias_add(self):
        x = RNG.randn(2, 3).astype(np.float32)
        b = RNG.randn(3).astype(np.float32)
        assert np.allclose(run_op("nn.bias_add", [x, b], {"axis": -1}), x + b)

    def test_conv2d_matches_direct(self):
        x = RNG.randn(1, 2, 6, 6).astype(np.float32)
        w = RNG.randn(3, 2, 3, 3).astype(np.float32)
        out = run_op("nn.conv2d", [x, w], {"strides": 1, "padding": 1, "groups": 1})
        assert out.shape == (1, 3, 6, 6)
        # Check one output position against a direct dot product: output
        # (1, 1) covers padded rows/cols [1:4] with a 3x3 kernel.
        patch = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))[0, :, 1:4, 1:4]
        assert np.allclose(out[0, 0, 1, 1], np.sum(patch * w[0]), atol=1e-4)

    def test_depthwise_conv2d(self):
        x = RNG.randn(1, 4, 6, 6).astype(np.float32)
        w = RNG.randn(4, 1, 3, 3).astype(np.float32)
        out = run_op("nn.conv2d", [x, w], {"strides": 1, "padding": 1, "groups": 4})
        assert out.shape == (1, 4, 6, 6)

    def test_max_pool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = run_op("nn.max_pool2d", [x], {"pool_size": 2, "strides": 2, "padding": 0})
        assert out[0, 0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_gelu_bounds(self):
        x = RNG.randn(100).astype(np.float32)
        out = run_op("nn.gelu", [x])
        assert np.all(out >= np.minimum(x, 0) - 0.2)


class TestTransforms:
    def test_reshape(self):
        x = np.arange(6, dtype=np.float32)
        assert run_op("reshape", [x], {"newshape": (2, 3)}).shape == (2, 3)
        assert run_op("reshape", [x], {"newshape": (-1, 3)}).shape == (2, 3)

    def test_transpose(self):
        x = RNG.randn(2, 3, 4).astype(np.float32)
        assert run_op("transpose", [x], {"axes": (2, 0, 1)}).shape == (4, 2, 3)

    def test_concatenate(self):
        a, b = np.ones((2, 3), np.float32), np.zeros((1, 3), np.float32)
        out = run_op("concatenate", [a, b], {"axis": 0})
        assert out.shape == (3, 3)

    def test_split(self):
        x = np.arange(12, dtype=np.float32).reshape(2, 6)
        parts = run_op("split", [x], {"indices_or_sections": 3, "axis": 1})
        assert len(parts) == 3 and parts[0].shape == (2, 2)
        assert num_outputs_of("split", {"indices_or_sections": 3}) == 3
        assert num_outputs_of("split", {"indices_or_sections": (2, 5)}) == 3

    def test_take_embedding_style(self):
        table = RNG.randn(10, 4).astype(np.float32)
        ids = np.array([1, 3, 1], np.int64)
        out = run_op("take", [table, ids], {"axis": 0})
        assert out.shape == (3, 4)
        assert np.allclose(out[0], table[1])

    def test_strided_slice(self):
        x = np.arange(20, dtype=np.float32).reshape(4, 5)
        out = run_op("strided_slice", [x], {"begin": (1, 0), "end": (3, 4), "strides": None})
        assert out.shape == (2, 4)

    def test_stack_expand_squeeze(self):
        a = np.ones((2,), np.float32)
        assert run_op("stack", [a, a], {"axis": 0}).shape == (2, 2)
        assert run_op("expand_dims", [a], {"axis": 0}).shape == (1, 2)
        assert run_op("squeeze", [np.ones((1, 2), np.float32)], {"axis": 0}).shape == (2,)

    def test_zeros_ones_full(self):
        assert np.all(run_op("zeros", [], {"shape": (2,), "dtype": "float32"}) == 0)
        assert np.all(run_op("ones", [], {"shape": (2,), "dtype": "float32"}) == 1)
        out = run_op("full", [], {"shape": (2,), "dtype": "float32", "fill_value": 3.0})
        assert np.all(out == 3.0)


class TestReduce:
    @pytest.mark.parametrize("name,fn", [("sum", np.sum), ("mean", np.mean), ("max", np.max), ("min", np.min)])
    def test_reductions(self, name, fn):
        x = RNG.randn(3, 4).astype(np.float32)
        assert np.allclose(run_op(name, [x], {"axis": 1}), fn(x, axis=1), atol=1e-5)
        assert np.allclose(run_op(name, [x], {"axis": None}), fn(x), atol=1e-5)

    def test_keepdims(self):
        x = RNG.randn(3, 4).astype(np.float32)
        assert run_op("sum", [x], {"axis": 1, "keepdims": True}).shape == (3, 1)

    def test_argmax_int64(self):
        x = RNG.randn(3, 4).astype(np.float32)
        out = run_op("argmax", [x], {"axis": -1})
        assert out.dtype == np.int64
        assert np.all(out == np.argmax(x, axis=-1))


class TestDynamicOps:
    def test_arange_data_dependent(self):
        op = get_op_def("arange")
        assert op.shape_func_mode is ShapeFuncMode.DATA_DEPENDENT
        out = run_op("arange", [np.float32(0), np.float32(5), np.float32(1)], {"dtype": "float32"})
        assert out.tolist() == [0, 1, 2, 3, 4]
        shapes = op.shape_func([(), (), ()], [np.float32(0), np.float32(5), np.float32(1)], {})
        assert shapes == [(5,)]

    def test_arange_shape_func_requires_values(self):
        with pytest.raises(ShapeError):
            get_op_def("arange").shape_func([(), (), ()], None, {})

    def test_unique(self):
        out = run_op("unique", [np.array([3, 1, 3, 2], np.int64)])
        assert out.tolist() == [1, 2, 3]
        shapes = get_op_def("unique").shape_func(
            [(4,)], [np.array([3, 1, 3, 2], np.int64)], {}
        )
        assert shapes == [(3,)]

    def test_nonzero(self):
        out = run_op("nonzero", [np.array([0, 1, 0, 2], np.int64)])
        assert out.shape == (1, 2)

    def test_nms_upper_bound_contract(self):
        op = get_op_def("vision.non_max_suppression")
        assert op.shape_func_mode is ShapeFuncMode.UPPER_BOUND
        assert op.returns_shape
        boxes = np.array(
            [[0, 0, 10, 10], [1, 1, 11, 11], [50, 50, 60, 60]], np.float32
        )
        scores = np.array([0.9, 0.8, 0.7], np.float32)
        padded, actual = op.compute([boxes, scores], {"iou_threshold": 0.5})
        assert padded.shape == (3,)  # upper bound
        assert actual.tolist() == [2]  # two boxes survive
        assert padded[:2].tolist() == [0, 2]
        # Upper-bound shape function needs only shapes.
        assert op.shape_func([(3, 4), (3,)], None, {}) == [(3,)]

    def test_topk(self):
        values, idx = run_op("topk", [np.float32([1, 9, 3, 7])], {"k": 2})
        assert values.tolist() == [9.0, 7.0]
        assert idx.tolist() == [1, 3]


class TestShapeFunctionExactness:
    """Property: for data-independent ops, the shape function's prediction
    must equal the compute's actual output shape — this is the §4.2
    invariant the allocator relies on."""

    @given(
        rows=st.integers(1, 7),
        cols=st.integers(1, 7),
        units=st.integers(1, 7),
    )
    @settings(max_examples=30, deadline=None)
    def test_dense_shape_func_exact(self, rows, cols, units):
        op = get_op_def("nn.dense")
        x = np.zeros((rows, cols), np.float32)
        w = np.zeros((units, cols), np.float32)
        predicted = op.shape_func([x.shape, w.shape], None, {})
        actual = op.compute([x, w], {})
        assert tuple(predicted[0]) == actual.shape

    @given(
        a=st.integers(1, 5), b=st.integers(1, 5), axis=st.integers(0, 1)
    )
    @settings(max_examples=30, deadline=None)
    def test_concat_shape_func_exact(self, a, b, axis):
        op = get_op_def("concatenate")
        base = (3, 4)
        s1 = list(base)
        s2 = list(base)
        s1[axis], s2[axis] = a, b
        x, y = np.zeros(s1, np.float32), np.zeros(s2, np.float32)
        predicted = op.shape_func([x.shape, y.shape], None, {"axis": axis})
        actual = op.compute([x, y], {"axis": axis})
        assert tuple(predicted[0]) == actual.shape

    @pytest.mark.parametrize(
        "name,make_inputs,attrs",
        [
            ("nn.softmax", lambda: [np.zeros((3, 5), np.float32)], {"axis": -1}),
            ("transpose", lambda: [np.zeros((2, 3, 4), np.float32)], {"axes": (1, 2, 0)}),
            ("reshape", lambda: [np.zeros((6,), np.float32)], {"newshape": (2, -1)}),
            ("sum", lambda: [np.zeros((3, 4), np.float32)], {"axis": 0, "keepdims": False}),
            ("take", lambda: [np.zeros((5, 2), np.float32), np.zeros((3,), np.int64)], {"axis": 0}),
            ("nn.max_pool2d", lambda: [np.zeros((1, 2, 8, 8), np.float32)], {"pool_size": 2, "strides": 2, "padding": 0}),
        ],
    )
    def test_shape_func_matches_compute(self, name, make_inputs, attrs):
        op = get_op_def(name)
        inputs = make_inputs()
        predicted = op.shape_func([i.shape for i in inputs], None, attrs)
        actual = op.compute(inputs, attrs)
        if isinstance(actual, tuple):
            assert [tuple(p) for p in predicted] == [a.shape for a in actual]
        else:
            assert tuple(predicted[0]) == actual.shape


class TestRegistry:
    def test_registry_has_expected_size(self):
        assert len(all_op_names()) >= 70

    def test_dynamic_policy_classification(self):
        assert get_op_def("arange").is_dynamic_shape_func
        assert get_op_def("unique").is_dynamic_shape_func
        assert get_op_def("vision.non_max_suppression").is_dynamic_shape_func
        assert not get_op_def("nn.dense").is_dynamic_shape_func
        assert not get_op_def("concatenate").is_dynamic_shape_func

    def test_patterns(self):
        assert get_op_def("add").pattern == OpPattern.BROADCAST
        assert get_op_def("tanh").pattern == OpPattern.ELEMWISE
        assert get_op_def("nn.dense").pattern == OpPattern.OUT_ELEMWISE_FUSABLE
        assert get_op_def("concatenate").pattern == OpPattern.INJECTIVE
        assert get_op_def("sum").pattern == OpPattern.COMM_REDUCE

    def test_unknown_op_rejected(self):
        from repro.errors import CompilerError

        assert not has_op("nn.flux_capacitor")
        with pytest.raises(CompilerError):
            get_op_def("nn.flux_capacitor")

    def test_duplicate_registration_rejected(self):
        from repro.errors import CompilerError
        from repro.ops.registry import OpDef, register_op

        with pytest.raises(CompilerError):
            register_op(OpDef(name="add", type_rel=None, compute=None))

    def test_dense_flops(self):
        flops = get_op_def("nn.dense").flops([(4, 8), (16, 8)], [(4, 16)], {})
        assert flops == 2.0 * 4 * 16 * 8
