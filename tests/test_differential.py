"""Cross-tier differential fuzzing.

Three coexisting execution tiers must be *bit-identical* on the same
input: the dynamic VM (shape functions + symbolic kernels), the
per-member specialized executable (static recompilation of one exact
shape), and the batch-specialized executable (a full bucket stacked into
one call, one batched GEMM per member-wise GEMM site). Hypothesis drives
random sequence lengths, batch sizes, and payloads through the LSTM and
BERT entries; every discrepancy — numeric, shape, or a leaked buffer —
is a routing bug the serving layer would silently ship.

Executables are memoised per (model, shape, batch) across examples and
share one KernelCache per model, so the fuzz budget is spent running
tensors, not recompiling the same module.

The staged property extends the matrix: for every sampled binding, the
prefix+suffix compile (``nimble.specialize(prefix=...)``, member and
batched variants sharing one ``build_prefix`` result) must produce the
same ``Executable`` artifact key AND bitwise-identical outputs as the
monolithic compile — staging is an implementation detail, never an
observable one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache
from repro.hardware import intel_cpu
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.models.lstm import LSTMWeights, build_lstm_module
from repro.runtime.context import ExecutionContext
from repro.vm.interpreter import VirtualMachine

MAX_LEN = 8
BATCHES = (2, 3, 4)


class _TierCache:
    """Per-model executables + VMs, compiled once and reused across
    examples. All tiers share one KernelCache — exactly the serving
    layer's configuration."""

    def __init__(self, mod, input_dim):
        self.mod = mod
        self.input_dim = input_dim
        self.platform = intel_cpu()
        self.kernel_cache = KernelCache()
        self._vms = {}
        self._prefix = None

    def _vm(self, key, build):
        found = self._vms.get(key)
        if found is None:
            exe = build()
            ctx = ExecutionContext(self.platform, numerics="full")
            found = VirtualMachine(exe, ctx)
            self._vms[key] = found
        return found

    def exe(self, key):
        return self._vms[key].exe

    def prefix(self):
        """One shape-independent prefix per model — member and batched
        staged variants of every length share it."""
        if self._prefix is None:
            self._prefix, _ = nimble.compile_prefix(
                self.mod, self.platform, use_cache=False
            )
        return self._prefix

    def dynamic(self) -> VirtualMachine:
        return self._vm(
            "dyn",
            lambda: nimble.build(
                self.mod, self.platform, kernel_cache=self.kernel_cache
            )[0],
        )

    def member(self, length) -> VirtualMachine:
        return self._vm(
            ("member", length),
            lambda: nimble.specialize(
                self.mod,
                self.platform,
                shapes=[(length, self.input_dim)],
                kernel_cache=self.kernel_cache,
            )[0],
        )

    def batched(self, length, batch) -> VirtualMachine:
        return self._vm(
            ("batched", length, batch),
            lambda: nimble.specialize(
                self.mod,
                self.platform,
                shapes=[(length, self.input_dim)],
                kernel_cache=self.kernel_cache,
                batch=batch,
            )[0],
        )

    def member_staged(self, length) -> VirtualMachine:
        return self._vm(
            ("member_staged", length),
            lambda: nimble.specialize(
                self.mod,
                self.platform,
                shapes=[(length, self.input_dim)],
                kernel_cache=self.kernel_cache,
                prefix=self.prefix(),
            )[0],
        )

    def batched_staged(self, length, batch) -> VirtualMachine:
        return self._vm(
            ("batched_staged", length, batch),
            lambda: nimble.specialize(
                self.mod,
                self.platform,
                shapes=[(length, self.input_dim)],
                kernel_cache=self.kernel_cache,
                batch=batch,
                prefix=self.prefix(),
            )[0],
        )


def _lstm_cache():
    weights = LSTMWeights.create(input_size=4, hidden_size=8, seed=0)
    return _TierCache(build_lstm_module(weights), 4)


def _bert_cache():
    config = BertConfig(hidden=16, num_layers=1, num_heads=2, ffn=32)
    weights = BertWeights.create(config, seed=0)
    return _TierCache(build_bert_module(weights), 16)


_CACHES = {}


def _cache(model) -> _TierCache:
    if model not in _CACHES:
        _CACHES[model] = {"lstm": _lstm_cache, "bert": _bert_cache}[model]()
    return _CACHES[model]


def _run_drained(vm: VirtualMachine, *inputs):
    """One inference, then the allocator must be back to zero live bytes
    — a tier that leaks buffers corrupts every later tier sharing the
    worker's pool."""
    out = vm.run(*inputs)
    assert vm.ctx.allocator.live_bytes == 0, (
        f"allocator holds {vm.ctx.allocator.live_bytes} live bytes after a run"
    )
    return out.numpy()


def _differential_case(model: str, length: int, batch: int, seed: int):
    cache = _cache(model)
    rng = np.random.RandomState(seed)
    members = [
        (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
        for _ in range(batch)
    ]

    outs_dynamic = [_run_drained(cache.dynamic(), x) for x in members]
    outs_member = [_run_drained(cache.member(length), x) for x in members]
    stacked = _run_drained(
        cache.batched(length, batch), np.concatenate(members, axis=0)
    )
    outs_batched = np.split(stacked, batch, axis=0)

    for i, (d, m, b) in enumerate(zip(outs_dynamic, outs_member, outs_batched)):
        assert d.shape == m.shape == b.shape, f"member {i}: shape drift"
        assert np.array_equal(d, m), f"member {i}: member tier diverged"
        assert np.array_equal(d, b), (
            f"member {i}: batched tier diverged "
            f"(max abs err {np.abs(d - b).max()})"
        )


def _staged_case(model: str, length: int, batch: int, seed: int):
    """Staged (prefix+suffix) vs monolithic: identical artifact keys and
    bitwise-identical outputs, member and batched variants."""
    cache = _cache(model)
    rng = np.random.RandomState(seed)
    members = [
        (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
        for _ in range(batch)
    ]

    vm_mono = cache.member(length)
    vm_staged = cache.member_staged(length)
    assert (
        cache.exe(("member", length)).content_hash()
        == cache.exe(("member_staged", length)).content_hash()
    ), f"member artifact key drift at length {length}"
    for i, x in enumerate(members):
        assert np.array_equal(
            _run_drained(vm_mono, x), _run_drained(vm_staged, x)
        ), f"member {i}: staged member tier diverged"

    stacked_in = np.concatenate(members, axis=0)
    vm_bmono = cache.batched(length, batch)
    vm_bstaged = cache.batched_staged(length, batch)
    assert (
        cache.exe(("batched", length, batch)).content_hash()
        == cache.exe(("batched_staged", length, batch)).content_hash()
    ), f"batched artifact key drift at (length={length}, batch={batch})"
    assert np.array_equal(
        _run_drained(vm_bmono, stacked_in), _run_drained(vm_bstaged, stacked_in)
    ), "staged batched tier diverged"


class TestDifferential:
    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_lstm_three_tiers_bit_identical(self, length, batch, seed):
        _differential_case("lstm", length, batch, seed)

    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_bert_three_tiers_bit_identical(self, length, batch, seed):
        _differential_case("bert", length, batch, seed)

    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_lstm_staged_equals_monolithic(self, length, batch, seed):
        _staged_case("lstm", length, batch, seed)

    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_bert_staged_equals_monolithic(self, length, batch, seed):
        _staged_case("bert", length, batch, seed)

    def test_batched_tier_counts_one_gemm_per_site(self):
        """The whole point of the batched tier: a batch-of-B bucket pays
        the GEMM launch count of ONE member run, not B of them."""
        cache = _cache("bert")
        length, batch = 5, 4
        rng = np.random.RandomState(7)
        members = [
            (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
            for _ in range(batch)
        ]
        vm_m = cache.member(length)
        vm_b = cache.batched(length, batch)
        vm_m.profile.reset()
        vm_b.profile.reset()
        for x in members:
            _run_drained(vm_m, x)
        _run_drained(vm_b, np.concatenate(members, axis=0))
        member_total = vm_m.profile.gemm_invocations()
        batched_total = vm_b.profile.gemm_invocations()
        assert batched_total > 0
        assert member_total == batch * batched_total
        assert vm_b.profile.runs == 1

    def test_batched_output_splits_to_member_shapes(self):
        """Axis-0 splitting must reproduce exactly the member output
        shape for both models (LSTM returns (1, H) per member, BERT
        (L, H))."""
        for model, length, batch in (("lstm", 3, 2), ("bert", 6, 3)):
            cache = _cache(model)
            rng = np.random.RandomState(1)
            members = [
                (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
                for _ in range(batch)
            ]
            member_out = _run_drained(cache.member(length), members[0])
            stacked = _run_drained(
                cache.batched(length, batch), np.concatenate(members, axis=0)
            )
            parts = np.split(stacked, batch, axis=0)
            assert all(p.shape == member_out.shape for p in parts)


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
