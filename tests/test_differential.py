"""Cross-tier differential fuzzing.

Three coexisting execution tiers must be *bit-identical* on the same
input: the dynamic VM (shape functions + symbolic kernels), the
per-member specialized executable (static recompilation of one exact
shape), and the batch-specialized executable (a full bucket stacked into
one call, one batched GEMM per member-wise GEMM site). Hypothesis drives
random sequence lengths, batch sizes, and payloads through the LSTM and
BERT entries; every discrepancy — numeric, shape, or a leaked buffer —
is a routing bug the serving layer would silently ship.

Executables are memoised per (model, shape, batch) across examples and
share one KernelCache per model, so the fuzz budget is spent running
tensors, not recompiling the same module.

The staged property extends the matrix: for every sampled binding, the
prefix+suffix compile (``nimble.specialize(prefix=...)``, member and
batched variants sharing one ``build_prefix`` result) must produce the
same ``Executable`` artifact key AND bitwise-identical outputs as the
monolithic compile — staging is an implementation detail, never an
observable one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache
from repro.errors import ShapeGuardError
from repro.hardware import intel_cpu, nvidia_gpu
from repro.models import build_gram_module
from repro.models.bert import BertConfig, BertWeights, build_bert_module
from repro.models.lstm import LSTMWeights, build_lstm_module
from repro.runtime.context import ExecutionContext
from repro.vm.compiler import CompilerOptions
from repro.vm.interpreter import VirtualMachine

MAX_LEN = 8
BATCHES = (2, 3, 4)
STREAM_COUNTS = (1, 2, 4)


class _TierCache:
    """Per-model executables + VMs, compiled once and reused across
    examples. All tiers share one KernelCache — exactly the serving
    layer's configuration."""

    def __init__(self, mod, input_dim):
        self.mod = mod
        self.input_dim = input_dim
        self.platform = intel_cpu()
        self.kernel_cache = KernelCache()
        self._vms = {}
        self._prefix = None

    def _vm(self, key, build):
        found = self._vms.get(key)
        if found is None:
            exe = build()
            ctx = ExecutionContext(self.platform, numerics="full")
            found = VirtualMachine(exe, ctx)
            self._vms[key] = found
        return found

    def exe(self, key):
        return self._vms[key].exe

    def prefix(self):
        """One shape-independent prefix per model — member and batched
        staged variants of every length share it."""
        if self._prefix is None:
            self._prefix, _ = nimble.compile_prefix(
                self.mod, self.platform, use_cache=False
            )
        return self._prefix

    def dynamic(self) -> VirtualMachine:
        return self._vm(
            "dyn",
            lambda: nimble.build(
                self.mod, self.platform, kernel_cache=self.kernel_cache
            )[0],
        )

    def member(self, length) -> VirtualMachine:
        return self._vm(
            ("member", length),
            lambda: nimble.specialize(
                self.mod,
                self.platform,
                shapes=[(length, self.input_dim)],
                kernel_cache=self.kernel_cache,
            )[0],
        )

    def batched(self, length, batch) -> VirtualMachine:
        return self._vm(
            ("batched", length, batch),
            lambda: nimble.specialize(
                self.mod,
                self.platform,
                shapes=[(length, self.input_dim)],
                kernel_cache=self.kernel_cache,
                batch=batch,
            )[0],
        )

    def member_staged(self, length) -> VirtualMachine:
        return self._vm(
            ("member_staged", length),
            lambda: nimble.specialize(
                self.mod,
                self.platform,
                shapes=[(length, self.input_dim)],
                kernel_cache=self.kernel_cache,
                prefix=self.prefix(),
            )[0],
        )

    def batched_staged(self, length, batch) -> VirtualMachine:
        return self._vm(
            ("batched_staged", length, batch),
            lambda: nimble.specialize(
                self.mod,
                self.platform,
                shapes=[(length, self.input_dim)],
                kernel_cache=self.kernel_cache,
                batch=batch,
                prefix=self.prefix(),
            )[0],
        )


def _lstm_cache():
    weights = LSTMWeights.create(input_size=4, hidden_size=8, seed=0)
    return _TierCache(build_lstm_module(weights), 4)


def _bert_cache():
    config = BertConfig(hidden=16, num_layers=1, num_heads=2, ffn=32)
    weights = BertWeights.create(config, seed=0)
    return _TierCache(build_bert_module(weights), 16)


_CACHES = {}


def _cache(model) -> _TierCache:
    if model not in _CACHES:
        _CACHES[model] = {"lstm": _lstm_cache, "bert": _bert_cache}[model]()
    return _CACHES[model]


def _run_drained(vm: VirtualMachine, *inputs):
    """One inference, then the allocator must be back to zero live bytes
    — a tier that leaks buffers corrupts every later tier sharing the
    worker's pool."""
    out = vm.run(*inputs)
    assert vm.ctx.allocator.live_bytes == 0, (
        f"allocator holds {vm.ctx.allocator.live_bytes} live bytes after a run"
    )
    return out.numpy()


def _differential_case(model: str, length: int, batch: int, seed: int):
    cache = _cache(model)
    rng = np.random.RandomState(seed)
    members = [
        (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
        for _ in range(batch)
    ]

    outs_dynamic = [_run_drained(cache.dynamic(), x) for x in members]
    outs_member = [_run_drained(cache.member(length), x) for x in members]
    stacked = _run_drained(
        cache.batched(length, batch), np.concatenate(members, axis=0)
    )
    outs_batched = np.split(stacked, batch, axis=0)

    for i, (d, m, b) in enumerate(zip(outs_dynamic, outs_member, outs_batched)):
        assert d.shape == m.shape == b.shape, f"member {i}: shape drift"
        assert np.array_equal(d, m), f"member {i}: member tier diverged"
        assert np.array_equal(d, b), (
            f"member {i}: batched tier diverged "
            f"(max abs err {np.abs(d - b).max()})"
        )


def _staged_case(model: str, length: int, batch: int, seed: int):
    """Staged (prefix+suffix) vs monolithic: identical artifact keys and
    bitwise-identical outputs, member and batched variants."""
    cache = _cache(model)
    rng = np.random.RandomState(seed)
    members = [
        (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
        for _ in range(batch)
    ]

    vm_mono = cache.member(length)
    vm_staged = cache.member_staged(length)
    assert (
        cache.exe(("member", length)).content_hash()
        == cache.exe(("member_staged", length)).content_hash()
    ), f"member artifact key drift at length {length}"
    for i, x in enumerate(members):
        assert np.array_equal(
            _run_drained(vm_mono, x), _run_drained(vm_staged, x)
        ), f"member {i}: staged member tier diverged"

    stacked_in = np.concatenate(members, axis=0)
    vm_bmono = cache.batched(length, batch)
    vm_bstaged = cache.batched_staged(length, batch)
    assert (
        cache.exe(("batched", length, batch)).content_hash()
        == cache.exe(("batched_staged", length, batch)).content_hash()
    ), f"batched artifact key drift at (length={length}, batch={batch})"
    assert np.array_equal(
        _run_drained(vm_bmono, stacked_in), _run_drained(vm_bstaged, stacked_in)
    ), "staged batched tier diverged"


class _StreamCache:
    """The small BERT compiled on the GPU platform once per stream count,
    all sharing one KernelCache. Multi-stream scheduling is a latency
    optimization of the virtual clock only — host-sequential dispatch
    means every stream count must produce bit-identical payloads."""

    def __init__(self):
        config = BertConfig(hidden=16, num_layers=1, num_heads=2, ffn=32)
        weights = BertWeights.create(config, seed=0)
        self.mod = build_bert_module(weights)
        self.input_dim = 16
        self.platform = nvidia_gpu()
        self.kernel_cache = KernelCache()
        self._vms = {}

    def vm(self, streams) -> VirtualMachine:
        found = self._vms.get(streams)
        if found is None:
            exe = nimble.build(
                self.mod,
                self.platform,
                options=CompilerOptions(device_streams=streams),
                kernel_cache=self.kernel_cache,
            )[0]
            ctx = ExecutionContext(self.platform, numerics="full")
            found = VirtualMachine(exe, ctx)
            self._vms[streams] = found
        return found

    def fresh_vm(self, streams) -> VirtualMachine:
        exe = self.vm(streams).exe
        return VirtualMachine(exe, ExecutionContext(self.platform, numerics="full"))


_STREAM_CACHE = None


def _stream_cache() -> _StreamCache:
    global _STREAM_CACHE
    if _STREAM_CACHE is None:
        _STREAM_CACHE = _StreamCache()
    return _STREAM_CACHE


def _stream_case(length: int, batch: int, seed: int):
    cache = _stream_cache()
    rng = np.random.RandomState(seed)
    members = [
        (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
        for _ in range(batch)
    ]

    baseline = [_run_drained(cache.vm(1), x) for x in members]
    for streams in STREAM_COUNTS[1:]:
        vm = cache.vm(streams)
        assert vm.exe.device_streams == streams
        assert vm.exe.num_events > 0, "multi-stream build scheduled no events"
        for i, x in enumerate(members):
            # Rotate members across stream lanes exactly as the serving
            # worker does — relabeling lanes must not touch payloads.
            out = vm.run(x, stream_offset=i % streams)
            assert vm.ctx.allocator.live_bytes == 0
            assert np.array_equal(out.numpy(), baseline[i]), (
                f"member {i}: streams={streams} diverged from single-stream"
            )


class TestStreamDifferential:
    """Stream counts ∈ {1, 2, 4} on the GPU platform: static scheduling
    must be bitwise invisible in outputs and exactly replayable in
    modeled latency."""

    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_stream_counts_bit_identical(self, length, batch, seed):
        _stream_case(length, batch, seed)

    def test_scheduled_replay_is_deterministic(self):
        """Same executable, fresh context: the virtual clock must land on
        the exact same latency and payload both times, at every stream
        count — the property that lets CI assert on modeled numbers."""
        cache = _stream_cache()
        rng = np.random.RandomState(3)
        xs = [
            (rng.randn(n, cache.input_dim) * 0.2).astype(np.float32)
            for n in (2, 6, 4)
        ]
        for streams in STREAM_COUNTS:
            replays = []
            for _ in range(2):
                vm = cache.fresh_vm(streams)
                outs = [vm.run(x).numpy() for x in xs]
                replays.append((vm.ctx.clock.elapsed_us, outs))
            (us_a, outs_a), (us_b, outs_b) = replays
            assert us_a == us_b, f"streams={streams}: replay latency drifted"
            assert all(np.array_equal(a, b) for a, b in zip(outs_a, outs_b))

    def test_stream_offset_is_pure_relabeling(self):
        """Offsetting the whole schedule by a constant lane permutes
        which physical stream does what but cannot change latency or
        payload of a single run."""
        cache = _stream_cache()
        x = (np.random.RandomState(9).randn(5, cache.input_dim) * 0.2).astype(
            np.float32
        )
        base_vm = cache.fresh_vm(4)
        base_out = base_vm.run(x).numpy()
        base_us = base_vm.ctx.clock.elapsed_us
        for offset in (1, 2, 3):
            vm = cache.fresh_vm(4)
            out = vm.run(x, stream_offset=offset).numpy()
            assert np.array_equal(out, base_out)
            assert vm.ctx.clock.elapsed_us == base_us


class TestDifferential:
    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_lstm_three_tiers_bit_identical(self, length, batch, seed):
        _differential_case("lstm", length, batch, seed)

    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_bert_three_tiers_bit_identical(self, length, batch, seed):
        _differential_case("bert", length, batch, seed)

    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_lstm_staged_equals_monolithic(self, length, batch, seed):
        _staged_case("lstm", length, batch, seed)

    @given(
        length=st.integers(1, MAX_LEN),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_bert_staged_equals_monolithic(self, length, batch, seed):
        _staged_case("bert", length, batch, seed)

    def test_batched_tier_counts_one_gemm_per_site(self):
        """The whole point of the batched tier: a batch-of-B bucket pays
        the GEMM launch count of ONE member run, not B of them."""
        cache = _cache("bert")
        length, batch = 5, 4
        rng = np.random.RandomState(7)
        members = [
            (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
            for _ in range(batch)
        ]
        vm_m = cache.member(length)
        vm_b = cache.batched(length, batch)
        vm_m.profile.reset()
        vm_b.profile.reset()
        for x in members:
            _run_drained(vm_m, x)
        _run_drained(vm_b, np.concatenate(members, axis=0))
        member_total = vm_m.profile.gemm_invocations()
        batched_total = vm_b.profile.gemm_invocations()
        assert batched_total > 0
        assert member_total == batch * batched_total
        assert vm_b.profile.runs == 1

    def test_batched_output_splits_to_member_shapes(self):
        """Axis-0 splitting must reproduce exactly the member output
        shape for both models (LSTM returns (1, H) per member, BERT
        (L, H))."""
        for model, length, batch in (("lstm", 3, 2), ("bert", 6, 3)):
            cache = _cache(model)
            rng = np.random.RandomState(1)
            members = [
                (rng.randn(length, cache.input_dim) * 0.2).astype(np.float32)
                for _ in range(batch)
            ]
            member_out = _run_drained(cache.member(length), members[0])
            stacked = _run_drained(
                cache.batched(length, batch), np.concatenate(members, axis=0)
            )
            parts = np.split(stacked, batch, axis=0)
            assert all(p.shape == member_out.shape for p in parts)


class _GramTiers:
    """The weight-free two-``Any``-dim gram model compiled to every
    binding flavor — dynamic, exact, and *partial* (one dim bound, the
    other left ``Any``) — sharing one KernelCache. Partial variants are
    what the serving layer synthesizes for long-tailed shape families;
    they must be bitwise invisible next to the exact and dynamic tiers."""

    def __init__(self):
        self.mod = build_gram_module()
        self.platform = intel_cpu()
        self.kernel_cache = KernelCache()
        self._vms = {}

    def vm(self, spec) -> VirtualMachine:
        """``spec`` is None for the dynamic build, or one entry shape
        possibly holding None dims (a partial binding)."""
        found = self._vms.get(spec)
        if found is None:
            if spec is None:
                exe, _ = nimble.build(
                    self.mod, self.platform, kernel_cache=self.kernel_cache
                )
            else:
                exe, _ = nimble.specialize(
                    self.mod,
                    self.platform,
                    shapes=[spec],
                    kernel_cache=self.kernel_cache,
                )
            found = VirtualMachine(
                exe, ExecutionContext(self.platform, numerics="full")
            )
            self._vms[spec] = found
        return found


_GRAM_TIERS = []


def _gram_tiers() -> _GramTiers:
    if not _GRAM_TIERS:
        _GRAM_TIERS.append(_GramTiers())
    return _GRAM_TIERS[0]


GRAM_COLS = (8, 16)


class TestPartialDifferential:
    """Partial ≡ exact ≡ dynamic, bitwise, across fuzzed bindings — and
    the entry guard turns every wrong routing into a loud error, never a
    wrong answer."""

    @given(
        rows=st.integers(1, 12),
        cols=st.sampled_from(GRAM_COLS),
        bound=st.sampled_from(["rows", "cols", "both"]),
        seed=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_partial_exact_dynamic_bit_identical(self, rows, cols, bound, seed):
        tiers = _gram_tiers()
        rng = np.random.RandomState(seed)
        x = (rng.randn(rows, cols) * 0.2).astype(np.float32)
        spec = {
            "rows": (rows, None),
            "cols": (None, cols),
            "both": (rows, cols),
        }[bound]
        out_dynamic = _run_drained(tiers.vm(None), x)
        out_bound = _run_drained(tiers.vm(spec), x)
        assert out_dynamic.shape == out_bound.shape == (rows, rows)
        assert np.array_equal(out_dynamic, out_bound), (
            f"binding {spec} diverged from dynamic "
            f"(max abs err {np.abs(out_dynamic - out_bound).max()})"
        )

    def test_partial_marker_and_guard(self):
        tiers = _gram_tiers()
        exe = tiers.vm((None, 16)).exe
        assert exe.is_partial
        ok = np.zeros((5, 16), dtype=np.float32)
        bad = np.zeros((5, 8), dtype=np.float32)
        assert exe.guard_mismatch((ok,)) is None
        assert exe.guard_mismatch((bad,)) is not None
        # The dynamic build guards nothing — every shape is its shape.
        assert tiers.vm(None).exe.guard_mismatch((bad,)) is None
        # Opaque inputs (no .shape) fail open: the guard is a routing
        # aid, the VM's own checks remain the authority on validity.
        assert exe.guard_mismatch((object(),)) is None

    def test_vm_raises_shape_guard_error_on_mismatched_entry(self):
        """The safety net behind the serving layer's deopt: running a
        member-wise specialized executable on inputs that violate its
        bound dims must raise — static code compiled for someone else's
        dims must never return a plausible-looking wrong tensor."""
        tiers = _gram_tiers()
        bad = np.zeros((5, 8), dtype=np.float32)
        for spec in ((None, 16), (4, 16)):
            vm = VirtualMachine(
                tiers.vm(spec).exe,
                ExecutionContext(intel_cpu(), numerics="full"),
            )
            with pytest.raises(ShapeGuardError):
                vm.run(bad)


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
