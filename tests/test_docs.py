"""Docs-integrity checks: the architecture/serialization/serving pages
under docs/ point into the real tree.

Documentation that names `src/repro/...` paths rots silently when a
refactor moves a module; this test (run in tier-1 and as its own CI
step) fails the build instead. Any path-shaped reference into src/,
tests/, benchmarks/, examples/, or docs/ appearing in docs/*.md,
README.md, or ROADMAP.md must exist on disk."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent

# Path-shaped tokens rooted at a tracked tree: `src/repro/serve/x.py`,
# `benchmarks/bench_restart.py`, `docs/serialization.md`, a directory
# reference like `src/repro/store/`, or a brace expansion like
# `docs/{architecture,serialization}.md`.
_PATH_RE = re.compile(
    r"\b(?:src|tests|benchmarks|examples|docs)/[\w\-./{},]*[\w/}]"
)

REQUIRED_PAGES = (
    "docs/analysis.md",
    "docs/architecture.md",
    "docs/fleet.md",
    "docs/serialization.md",
    "docs/serving.md",
)


def _expand_braces(token: str):
    """`a/{b,c}.md` -> [`a/b.md`, `a/c.md`] (one level is plenty)."""
    match = re.search(r"\{([^{}]*)\}", token)
    if not match:
        return [token]
    head, tail = token[: match.start()], token[match.end() :]
    return [head + part + tail for part in match.group(1).split(",")]


def _doc_files():
    # ROADMAP.md names modules/benchmarks just like the docs pages do,
    # and rotted roadmap pointers misdirect every future session.
    return sorted(REPO.glob("docs/*.md")) + [
        REPO / "README.md",
        REPO / "ROADMAP.md",
    ]


def test_required_docs_pages_exist():
    for page in REQUIRED_PAGES:
        assert (REPO / page).is_file(), f"missing documentation page {page}"


def test_docs_reference_only_existing_paths():
    missing = []
    for doc in _doc_files():
        for token in _PATH_RE.findall(doc.read_text()):
            for path in _expand_braces(token):
                # A reference may point at a file, a directory, or a
                # module prefix written without its .py suffix.
                candidate = REPO / path.rstrip("/")
                if candidate.exists():
                    continue
                if candidate.with_suffix(".py").exists():
                    continue
                missing.append(f"{doc.relative_to(REPO)}: {path}")
    assert not missing, "docs reference nonexistent paths:\n" + "\n".join(missing)


def test_docs_cover_the_pipeline_stages():
    """architecture.md is the top-to-bottom map: it must at least point
    at every stage package it claims to describe."""
    text = (REPO / "docs/architecture.md").read_text()
    for stage in (
        "src/repro/frontends",
        "src/repro/passes",
        "src/repro/vm",
        "src/repro/serve",
        "src/repro/store",
    ):
        assert stage in text, f"architecture.md does not mention {stage}"
