"""The persistent artifact store (`repro.store`): content-addressed
executable persistence, kernel-cache export/import, corruption handling
(skip-and-count, never crash, never silently load), the serving layer's
restore path, and the public nimble.save_artifacts/load_artifacts API."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nimble as nimble
from repro.codegen.kernels import KERNEL_CACHE_FORMAT, KernelCache
from repro.errors import SerializationError
from repro.hardware import intel_cpu
from repro.ir import Any, Function, IRModule, TensorType, Var, const
from repro.ir.printer import module_fingerprint
from repro.ops import api
from repro.passes import bound_entry_shapes
from repro.serve import (
    InferenceServer,
    ServeConfig,
    ShapeProfile,
    long_tailed_traffic,
    profile_store_key,
)
from repro.serve.profile import PROFILE_VERSION
from repro.store import STORE_FORMAT, ArtifactStore
from repro.vm.executable import Executable, artifact_key


def _dyn_mlp_module(dim=8, seed=0):
    w = const(
        (np.random.RandomState(seed).randn(dim, dim) * 0.1).astype(np.float32)
    )
    x = Var("x", TensorType((Any(), dim), "float32"))
    return IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))


def _specialized(mod, rows=4, dim=8, cache=None, batch=1):
    exe, _ = nimble.specialize(
        mod, intel_cpu(), shapes=[(rows, dim)],
        kernel_cache=cache if cache is not None else KernelCache(),
        batch=batch,
    )
    return exe


# ---------------------------------------------------------------------------
# Content hashing / store keys
# ---------------------------------------------------------------------------


class TestArtifactKey:
    def test_content_hash_is_stable_and_identity_sensitive(self):
        mod = _dyn_mlp_module()
        exe = _specialized(mod)
        again = _specialized(mod)
        assert exe.content_hash() == again.content_hash()
        other_shape = _specialized(mod, rows=6)
        assert exe.content_hash() != other_shape.content_hash()
        other_model = _specialized(_dyn_mlp_module(dim=16), dim=16)
        assert exe.content_hash() != other_model.content_hash()

    def test_batch_marker_distinguishes_variants_but_one_is_memberwise(self):
        sig = "s"
        member = artifact_key(sig, "intel", ((4, 8),), None)
        assert artifact_key(sig, "intel", ((4, 8),), 1) == member
        assert artifact_key(sig, "intel", ((4, 8),), 2) != member

    def test_manager_side_key_matches_compiled_artifact(self):
        """The serving layer computes the store key *before* compiling
        (bound_entry_shapes); it must match the content hash the
        compiled executable files itself under, or warm restarts would
        never hit."""
        from repro.core.typing import infer_types
        from repro.serve import ShapeBucketer

        mod = _dyn_mlp_module()
        typed = infer_types(mod)
        bucketer = ShapeBucketer(typed["main"])
        exe = _specialized(mod, rows=12)
        binding = dict(zip(bucketer.tokens, (12,)))
        predicted = artifact_key(
            module_fingerprint(mod),
            "intel",
            bound_entry_shapes(mod["main"], binding),
            None,
        )
        assert predicted == exe.content_hash()

    def test_fingerprint_is_weight_sensitive(self):
        """Executables embed their constants, so a retrained model (same
        architecture, new weights) must get a new fingerprint — a
        weight-blind key would warm-restore artifacts that serve the
        OLD model's numerics from the specialized tiers."""
        base = module_fingerprint(_dyn_mlp_module(seed=0))
        assert base == module_fingerprint(_dyn_mlp_module(seed=0))
        assert base != module_fingerprint(_dyn_mlp_module(seed=1))
        assert base != module_fingerprint(_dyn_mlp_module(dim=16))

    def test_retrained_weights_miss_the_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_specialized(_dyn_mlp_module(seed=0)))
        retrained = _specialized(_dyn_mlp_module(seed=1))
        assert not store.contains(retrained.content_hash())
        assert store.get(retrained.content_hash()) is None
        assert store.rejects == 0  # a clean miss, not a reject


# ---------------------------------------------------------------------------
# Store round-trip + validation
# ---------------------------------------------------------------------------


class TestArtifactStore:
    def test_put_get_roundtrip_runs(self, tmp_path):
        mod = _dyn_mlp_module()
        exe = _specialized(mod)
        store = ArtifactStore(tmp_path / "store")
        key = store.put(exe)
        assert store.contains(key) and store.keys() == [key]
        loaded = store.get(key, expected_signature=module_fingerprint(mod))
        assert loaded is not None
        assert loaded.specialized_shapes == exe.specialized_shapes
        x = np.random.rand(4, 8).astype(np.float32)
        out = nimble.VirtualMachine(loaded).run(x)
        ref = nimble.VirtualMachine(exe).run(x)
        assert np.array_equal(out.numpy(), ref.numpy())

    def test_miss_returns_none_without_reject(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.rejects == 0

    def test_truncated_artifact_skipped_and_counted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put(_specialized(_dyn_mlp_module()))
        path = store._artifact_path(key)
        path.write_bytes(path.read_bytes()[: 40])
        assert store.get(key) is None
        assert store.rejects == 1 and store.reject_log[0][0] == key

    def test_version_bumped_artifact_skipped_and_counted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put(_specialized(_dyn_mlp_module()))
        path = store._artifact_path(key)
        blob = bytearray(path.read_bytes())
        blob[4:6] = struct.pack("<H", 99)
        path.write_bytes(bytes(blob))
        assert store.get(key) is None
        assert store.rejects == 1
        assert "version" in store.reject_log[0][1]

    def test_artifact_filed_under_wrong_key_skipped(self, tmp_path):
        """A valid blob copied to another artifact's path must not be
        served as that artifact."""
        store = ArtifactStore(tmp_path)
        key = store.put(_specialized(_dyn_mlp_module()))
        wrong = "f" * 64
        store._artifact_path(wrong).write_bytes(
            store._artifact_path(key).read_bytes()
        )
        assert store.get(wrong) is None
        assert store.rejects == 1

    def test_signature_mismatch_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put(_specialized(_dyn_mlp_module()))
        assert store.get(key, expected_signature="not-this-module") is None
        assert store.rejects == 1
        assert "signature" in store.reject_log[0][1]

    def test_store_format_mismatch_refused_at_open(self, tmp_path):
        ArtifactStore(tmp_path)
        (tmp_path / "STORE_FORMAT").write_text(f"{STORE_FORMAT + 1}\n")
        with pytest.raises(SerializationError, match="format"):
            ArtifactStore(tmp_path)

    def test_tampered_blob_rejected_by_loader_directly(self):
        exe = _specialized(_dyn_mlp_module())
        blob = bytearray(exe.save())
        # Flip a byte inside the platform-name section: the embedded
        # content hash no longer matches the recomputed one.
        blob[7] ^= 0xFF
        with pytest.raises(SerializationError):
            Executable.load(bytes(blob))


# ---------------------------------------------------------------------------
# Kernel-cache persistence
# ---------------------------------------------------------------------------


class TestKernelCachePersistence:
    def test_export_import_roundtrip(self, tmp_path):
        cache = KernelCache()
        _specialized(_dyn_mlp_module(), cache=cache)
        assert len(cache) > 0
        store = ArtifactStore(tmp_path)
        store.save_kernel_cache(cache)
        fresh = KernelCache()
        added = store.load_kernel_cache(fresh)
        assert added >= len(cache)
        assert len(fresh) == len(cache)

    def test_import_keeps_existing_entries(self):
        cache = KernelCache()
        _specialized(_dyn_mlp_module(), cache=cache)
        blob = cache.export_entries()
        live = dict(cache._kernels)
        assert cache.import_entries(blob) == 0
        assert all(cache._kernels[k] is v for k, v in live.items())

    def test_bad_blob_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            KernelCache().import_entries(b"not a cache")
        import pickle

        with pytest.raises(SerializationError, match="format"):
            KernelCache().import_entries(
                pickle.dumps((KERNEL_CACHE_FORMAT + 1, {}, {}))
            )
        store = ArtifactStore(tmp_path)
        store.kernel_cache_path.write_bytes(b"garbage")
        assert store.load_kernel_cache(KernelCache()) == 0
        assert store.rejects == 1


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


class TestNimbleArtifactAPI:
    def test_save_load_artifacts(self, tmp_path):
        mod = _dyn_mlp_module()
        cache = KernelCache()
        exes = [_specialized(mod, rows=r, cache=cache) for r in (4, 9)]
        keys = nimble.save_artifacts(tmp_path, exes, kernel_cache=cache)
        assert sorted(keys) == ArtifactStore(tmp_path).keys()
        fresh_cache = KernelCache()
        loaded = nimble.load_artifacts(tmp_path, kernel_cache=fresh_cache)
        assert set(loaded) == set(keys)
        assert len(fresh_cache) == len(cache)
        shapes = {exe.specialized_shapes for exe in loaded.values()}
        assert shapes == {((4, 8),), ((9, 8),)}

    def test_load_artifacts_skips_corrupt(self, tmp_path):
        mod = _dyn_mlp_module()
        keys = nimble.save_artifacts(
            tmp_path, [_specialized(mod, rows=r) for r in (4, 9)]
        )
        store = ArtifactStore(tmp_path)
        path = store._artifact_path(sorted(keys)[0])
        path.write_bytes(path.read_bytes()[:25])
        loaded = nimble.load_artifacts(tmp_path)
        assert set(loaded) == {sorted(keys)[1]}


# ---------------------------------------------------------------------------
# Serving integration: warm restarts, eviction restores, corruption
# ---------------------------------------------------------------------------


def _serve_setup(tmp_path, **overrides):
    from repro.models.lstm import LSTMWeights, build_lstm_module

    weights = LSTMWeights.create(16, 16, num_layers=1, seed=0)
    mod = build_lstm_module(weights)
    requests = long_tailed_traffic(
        160, input_size=16, mean_interarrival_us=400.0,
        hot_lengths=(7, 12, 19), hot_fraction=0.85, seed=0,
    )
    params = dict(
        max_batch_size=4,
        max_delay_us=1500.0,
        num_workers=2,
        specialize=True,
        specialize_threshold=4,
        specialize_max_executables=8,
        specialize_compile_us=6000.0,
        artifact_dir=str(tmp_path / "store"),
    )
    params.update(overrides)
    return mod, requests, ServeConfig(**params)


class TestServeRestore:
    def test_warm_restart_restores_everything(self, tmp_path):
        mod, requests, config = _serve_setup(tmp_path)
        cold = InferenceServer(mod, intel_cpu(), config).simulate(requests)
        assert cold.specialize_fresh_compiles > 0
        assert cold.specialize_restored == 0
        warm_server = InferenceServer(mod, intel_cpu(), config)
        warm = warm_server.simulate(requests)
        assert warm.specialize_fresh_compiles == 0
        assert warm.specialize_restored == cold.specialize_fresh_compiles
        assert warm.specialize_compile_us < 0.1 * cold.specialize_compile_us
        assert warm.specialized_hit_rate >= cold.specialized_hit_rate
        for a, b in zip(cold.responses, warm.responses):
            assert np.array_equal(a.output.numpy(), b.output.numpy())
        # Replays of the warm server are bit-identical: the restorable
        # key set was frozen at construction.
        replay = warm_server.simulate(requests)
        assert replay.latencies_us == warm.latencies_us
        assert replay.specialize_restored == warm.specialize_restored
        assert replay.specialize_compile_us == warm.specialize_compile_us

    def test_cold_server_replay_is_identical_despite_own_writes(self, tmp_path):
        """The first simulation populates the store; the second must
        still compile (not restore) so replays stay bit-identical."""
        mod, requests, config = _serve_setup(tmp_path)
        server = InferenceServer(mod, intel_cpu(), config)
        first = server.simulate(requests)
        second = server.simulate(requests)
        assert second.specialize_restored == first.specialize_restored == 0
        assert second.specialize_compile_us == first.specialize_compile_us
        assert second.latencies_us == first.latencies_us

    def test_evicted_shape_restores_instead_of_recompiling(self, tmp_path):
        """PR-3 follow-on: with a store, an evicted-then-re-armed shape
        pays the deserialize charge, not a second full compile. The
        traffic's last phase revisits the first phase's hot shape, so
        its (evicted) artifact re-triggers after being persisted."""
        mod, requests, config = _serve_setup(
            tmp_path,
            specialize_max_executables=1,
            specialize_decay_half_life_us=4_000.0,
        )
        requests = long_tailed_traffic(
            160, input_size=16, mean_interarrival_us=400.0,
            hot_lengths=(7, 12, 7), hot_fraction=0.85, seed=0,
        )
        report = InferenceServer(mod, intel_cpu(), config).simulate(requests)
        assert report.specialize_evictions > 0
        # Some re-arms restored the persisted binary at restore cost.
        assert report.specialize_restored > 0
        assert (
            report.specialize_restore_us
            < report.specialize_restored * config.specialize_compile_us
        )

    def test_corrupt_store_falls_back_to_compile(self, tmp_path):
        """The corruption contract: a truncated artifact is skipped with
        a recorded store_rejects count and the server compiles fresh —
        no crash, no silent load, outputs unchanged."""
        mod, requests, config = _serve_setup(tmp_path)
        cold = InferenceServer(mod, intel_cpu(), config).simulate(requests)
        store = ArtifactStore(config.artifact_dir)
        victim = store._artifact_path(store.keys()[0])
        victim.write_bytes(victim.read_bytes()[: 50])
        warm_server = InferenceServer(mod, intel_cpu(), config)
        warm = warm_server.simulate(requests)
        assert warm.store_rejects == 1
        assert warm.specialize_fresh_compiles == 1
        assert warm.specialize_restored == cold.specialize_fresh_compiles - 1
        for a, b in zip(cold.responses, warm.responses):
            assert np.array_equal(a.output.numpy(), b.output.numpy())
        # The reject replays deterministically even though the fallback
        # compile overwrote the corrupt blob with a good one.
        replay = warm_server.simulate(requests)
        assert replay.store_rejects == warm.store_rejects
        assert replay.specialize_compile_us == warm.specialize_compile_us
        assert replay.latencies_us == warm.latencies_us

    def test_version_bumped_artifact_in_store_falls_back(self, tmp_path):
        mod, requests, config = _serve_setup(tmp_path)
        InferenceServer(mod, intel_cpu(), config).simulate(requests)
        store = ArtifactStore(config.artifact_dir)
        for key in store.keys():
            path = store._artifact_path(key)
            blob = bytearray(path.read_bytes())
            blob[4:6] = struct.pack("<H", 99)
            path.write_bytes(bytes(blob))
        warm = InferenceServer(mod, intel_cpu(), config).simulate(requests)
        assert warm.store_rejects > 0
        assert warm.specialize_restored == 0
        assert warm.specialize_fresh_compiles > 0

    def test_kernel_cache_warm_loads(self, tmp_path):
        mod, requests, config = _serve_setup(tmp_path)
        InferenceServer(mod, intel_cpu(), config).simulate(requests)
        store = ArtifactStore(config.artifact_dir)
        probe = KernelCache()
        assert store.load_kernel_cache(probe) > 0
        warm_server = InferenceServer(mod, intel_cpu(), config)
        assert len(warm_server.kernel_cache) >= len(probe)

    def test_corrupt_kernel_cache_visible_in_report(self, tmp_path):
        """A rejected kernels.kc must surface in ServeReport.store_rejects
        — the kernel-cache half of warm restart failing silently would
        read as 'store healthy' while every kernel recompiles cold."""
        mod, requests, config = _serve_setup(tmp_path)
        InferenceServer(mod, intel_cpu(), config).simulate(requests)
        ArtifactStore(config.artifact_dir).kernel_cache_path.write_bytes(
            b"garbage"
        )
        warm = InferenceServer(mod, intel_cpu(), config).simulate(requests)
        # 1 kernel-cache reject on top of zero executable rejects; the
        # executables themselves still restore fine.
        assert warm.store_rejects == 1
        assert warm.specialize_restored > 0


# ---------------------------------------------------------------------------
# Specialization-prefix persistence
# ---------------------------------------------------------------------------


class TestPrefixStore:
    def _prefix(self, mod):
        nimble.clear_prefix_cache()
        prefix, _ = nimble.compile_prefix(mod, intel_cpu())
        nimble.clear_prefix_cache()
        return prefix

    def test_put_get_roundtrip(self, tmp_path):
        mod = _dyn_mlp_module()
        prefix = self._prefix(mod)
        store = ArtifactStore(tmp_path)
        key = store.put_prefix(prefix)
        assert key == prefix.store_key()
        assert store.contains_prefix(key)
        assert store.prefix_keys() == [key]
        loaded = store.get_prefix(
            key, expected_signature=module_fingerprint(mod)
        )
        assert loaded is not None
        assert loaded.store_key() == key
        # The loaded prefix compiles to the same artifact as monolithic.
        cache = KernelCache()
        mono = _specialized(mod, cache=cache)
        staged, _ = nimble.specialize(
            mod, intel_cpu(), shapes=[(4, 8)], kernel_cache=cache,
            prefix=loaded,
        )
        assert staged.content_hash() == mono.content_hash()

    def test_prefix_blobs_never_alias_executable_keys(self, tmp_path):
        """.nmblp files must not leak into keys() (which a manager
        freezes at init to decide warm restores), nor vice versa."""
        mod = _dyn_mlp_module()
        store = ArtifactStore(tmp_path)
        store.put_prefix(self._prefix(mod))
        store.put(_specialized(mod))
        assert len(store.keys()) == 1
        assert len(store.prefix_keys()) == 1
        assert set(store.keys()).isdisjoint(store.prefix_keys())

    def test_prefix_miss_is_silent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get_prefix("0" * 64) is None
        assert store.rejects == 0

    def test_truncated_prefix_skipped_and_counted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put_prefix(self._prefix(_dyn_mlp_module()))
        path = store._prefix_path(key)
        path.write_bytes(path.read_bytes()[:30])
        assert store.get_prefix(key) is None
        assert store.rejects == 1 and store.reject_log[0][0] == key

    def test_signature_mismatch_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put_prefix(self._prefix(_dyn_mlp_module()))
        assert store.get_prefix(key, expected_signature="f" * 64) is None
        assert store.rejects == 1

    def test_prefix_filed_under_wrong_key_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put_prefix(self._prefix(_dyn_mlp_module()))
        wrong = "0" * len(key)
        store._prefix_path(key).rename(store._prefix_path(wrong))
        assert store.get_prefix(wrong) is None
        assert store.rejects == 1


# ---------------------------------------------------------------------------
# Shape-profile (.nmblprof) persistence
# ---------------------------------------------------------------------------


class TestProfileStore:
    def _profile(self, signature="a" * 64):
        return ShapeProfile(
            source_signature=signature,
            platform_name="intel",
            hits={(9, 16): 40, (25, 16): 12, (None, 16): 60},
            scores={(9, 16): 4.5, (25, 16): 1.25, (None, 16): 7.0},
        )

    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        profile = self._profile()
        key = store.put_profile(profile)
        assert key == profile_store_key("a" * 64, "intel")
        assert store.contains_profile(key)
        assert store.profile_keys() == [key]
        back = store.get_profile(key, expected_signature="a" * 64)
        assert back is not None
        assert back.hits == profile.hits
        assert back.scores == profile.scores
        assert store.rejects == 0

    def test_top_keys_order_is_total_with_partial_keys(self):
        profile = self._profile()
        # By decayed score: the partial key (None, 16) is hottest; mixed
        # None/int tuples are not Python-comparable, so the ordering must
        # go through the None-safe proxy without raising.
        assert profile.top_keys() == ((None, 16), (9, 16), (25, 16))
        assert profile.top_keys(1) == ((None, 16),)

    def test_profile_blobs_never_alias_other_suffixes(self, tmp_path):
        """.nmblprof files must stay invisible to keys() and
        prefix_keys() — a *.nmblp glob that also matched .nmblprof would
        feed profile bytes into the executable restore path."""
        mod = _dyn_mlp_module()
        store = ArtifactStore(tmp_path)
        store.put(_specialized(mod))
        store.put_profile(self._profile())
        assert len(store.keys()) == 1
        assert store.prefix_keys() == []
        assert len(store.profile_keys()) == 1

    def test_miss_is_silent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get_profile("0" * 64) is None
        assert store.rejects == 0

    def test_truncated_profile_skipped_and_counted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put_profile(self._profile())
        path = store._profile_path(key)
        path.write_bytes(path.read_bytes()[:10])
        assert store.get_profile(key) is None
        assert store.rejects == 1 and store.reject_log[0][0] == key

    def test_tampered_payload_skipped_and_counted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put_profile(self._profile())
        path = store._profile_path(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get_profile(key) is None
        assert store.rejects == 1

    def test_version_bumped_profile_skipped_and_counted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put_profile(self._profile())
        path = store._profile_path(key)
        blob = bytearray(path.read_bytes())
        blob[4:8] = struct.pack("<I", PROFILE_VERSION + 1)
        path.write_bytes(bytes(blob))
        assert store.get_profile(key) is None
        assert store.rejects == 1

    def test_signature_mismatch_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.put_profile(self._profile())
        assert store.get_profile(key, expected_signature="f" * 64) is None
        assert store.rejects == 1

    def test_profile_filed_under_wrong_key_skipped(self, tmp_path):
        """A valid blob under the wrong filename is rejected by the
        recomputed-key check (same key⇄content discipline as .nmbl)."""
        store = ArtifactStore(tmp_path)
        key = store.put_profile(self._profile())
        wrong = "0" * len(key)
        store._profile_path(key).rename(store._profile_path(wrong))
        assert store.get_profile(wrong) is None
        assert store.rejects == 1

    def test_malformed_shape_key_rejected_by_loader(self):
        blob = ShapeProfile(
            source_signature="a" * 64,
            platform_name="intel",
            hits={("not", "ints"): 1},
            scores={},
        ).save()
        with pytest.raises(SerializationError, match="malformed shape key"):
            ShapeProfile.load(blob)

    def test_overwrite_is_last_writer_wins(self, tmp_path):
        """One profile per (module, platform, format): a second
        simulation's snapshot replaces the first at the same key."""
        store = ArtifactStore(tmp_path)
        first = self._profile()
        key = store.put_profile(first)
        second = self._profile()
        second.hits = {(7, 16): 3}
        second.scores = {(7, 16): 0.5}
        assert store.put_profile(second) == key
        back = store.get_profile(key)
        assert back.hits == {(7, 16): 3}
        assert store.profile_keys() == [key]


# ---------------------------------------------------------------------------
# Store GC: age/LRU pruning with refcount and in-flight guards
# ---------------------------------------------------------------------------


class TestStoreGC:
    """Property coverage of `repro.store.StoreGC`: the collector never
    touches a referenced or in-flight blob, respects both pruning
    policies, inventories (never deletes) malformed names, and a
    pruned-then-re-hot shape recompiles and re-persists cleanly."""

    _UNIVERSE = [
        (kind, f"{kind}-{i}")
        for i, kind in enumerate(
            ["exe", "prefix", "profile", "exe", "prefix", "profile", "exe", "exe"]
        )
    ]

    def _model(self, store_dir):
        from repro.fleet import FleetStoreView
        from repro.store import StoreGC

        store = ArtifactStore(store_dir)
        view = FleetStoreView(store)
        for t, (kind, key) in enumerate(self._UNIVERSE):
            view.record_put(kind, key, 100.0 * t, replica_id=0)
        return store, view, StoreGC

    def test_collector_validation(self, tmp_path):
        store, view, StoreGC = self._model(tmp_path)
        with pytest.raises(ValueError, match="max_age_us"):
            StoreGC(store, view, max_age_us=-1.0)
        with pytest.raises(ValueError, match="max_blobs"):
            StoreGC(store, view, max_blobs=-1)

    @given(
        referenced=st.sets(st.sampled_from(range(8)), max_size=8),
        in_flight=st.sets(st.sampled_from(range(8)), max_size=8),
        max_age_us=st.sampled_from([None, 0.0, 250.0]),
        max_blobs=st.sampled_from([None, 0, 3]),
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_guards_and_policies_hold_for_any_protection_set(
        self, tmp_path_factory, referenced, in_flight, max_age_us, max_blobs
    ):
        store_dir = tmp_path_factory.mktemp("gc")
        store, view, StoreGC = self._model(store_dir)
        gc = StoreGC(store, view, max_age_us=max_age_us, max_blobs=max_blobs)
        referenced = {self._UNIVERSE[i] for i in referenced}
        in_flight = {self._UNIVERSE[i] for i in in_flight}
        protected = referenced | in_flight
        report = gc.collect(1000.0, referenced=referenced, in_flight=in_flight)
        assert report.examined == len(self._UNIVERSE)
        pruned = set(report.pruned)
        # The two absolute guards: protection always wins.
        assert pruned.isdisjoint(protected)
        for kind, key in protected:
            assert view.present(kind, key)
        live = set(view.inventory())
        assert live == set(self._UNIVERSE) - pruned
        if max_age_us is None and max_blobs is None:
            assert not pruned  # no policy, no pruning
        if max_age_us is not None:
            # Every unprotected survivor is inside the age window.
            for entry in live - protected:
                assert 1000.0 - view.last_use_us(*entry) <= max_age_us
        if max_blobs is not None and len(live) > max_blobs:
            # Over budget only when the guards forced it.
            assert live <= protected

    def test_age_policy_spares_recent_blobs(self, tmp_path):
        store, view, StoreGC = self._model(tmp_path)
        gc = StoreGC(store, view, max_age_us=450.0)
        report = gc.collect(1000.0)
        # Entries were put at 0,100,...,700: ages 1000..300; > 450 goes.
        assert set(report.pruned) == set(self._UNIVERSE[:6])
        assert report.kept_fresh == 2
        assert view.inventory() == sorted(self._UNIVERSE[6:])

    def test_lru_budget_prunes_coldest_first(self, tmp_path):
        store, view, StoreGC = self._model(tmp_path)
        gc = StoreGC(store, view, max_blobs=2)
        report = gc.collect(1000.0)
        # The two most recently used entries (t=600, t=700) survive.
        assert set(view.inventory()) == set(self._UNIVERSE[6:])
        assert len(report.pruned) == 6

    def test_in_flight_guard_is_independent_of_references(self, tmp_path):
        store, view, StoreGC = self._model(tmp_path)
        gc = StoreGC(store, view, max_blobs=0)
        hot = self._UNIVERSE[3]
        report = gc.collect(1000.0, in_flight={hot})
        assert report.kept_in_flight == 1
        assert hot not in report.pruned
        assert view.present(*hot)
        assert view.inventory() == [hot]

    def test_never_used_initial_blobs_are_infinitely_old(self, tmp_path):
        """A blob inherited from a previous process that nobody has
        touched has no age anchor: any age policy reclaims it, and the
        disk unlink really happens."""
        from repro.fleet import FleetStoreView
        from repro.store import StoreGC

        store = ArtifactStore(tmp_path)
        key = store.put_profile(
            ShapeProfile(
                source_signature="a" * 64,
                platform_name="intel",
                hits={(9, 1): 2},
                scores={(9, 1): 1.0},
            )
        )
        view = FleetStoreView(store)
        report = StoreGC(store, view, max_age_us=10_000_000.0).collect(0.0)
        assert report.pruned == [("profile", key)]
        assert report.missing_on_disk == 0
        assert not store.blob_path("profile", key).exists()
        assert not view.present("profile", key)

    def test_malformed_names_inventoried_never_deleted(self, tmp_path):
        from repro.fleet import FleetStoreView
        from repro.store import StoreGC

        store = ArtifactStore(tmp_path)
        junk = [
            store.artifacts_dir / "README.rogue",
            store.artifacts_dir / "deadbeef.nmblx",
        ]
        for path in junk:
            path.write_bytes(b"not an artifact")
        (store.artifacts_dir / ".tmp-123").write_bytes(
            b"in-flight writer, not junk"
        )
        view = FleetStoreView(store)
        assert store.malformed_names() == ["README.rogue", "deadbeef.nmblx"]
        report = StoreGC(store, view, max_blobs=0).collect(1000.0)
        assert report.malformed == 2
        for path in junk:
            assert path.exists()  # evidence, not garbage

    def test_counters_exclude_disk_dependent_state(self, tmp_path):
        """`missing_on_disk` depends on what earlier replays left on
        disk, so it must stay out of the replay-equality surface."""
        store, view, StoreGC = self._model(tmp_path)
        report = StoreGC(store, view, max_blobs=0).collect(1000.0)
        assert report.missing_on_disk == len(self._UNIVERSE)  # fake keys
        assert "missing_on_disk" not in report.counters()
        assert report.counters()["pruned"] == tuple(report.pruned)

    def test_pruned_then_rehot_recompiles_and_repersists(self, tmp_path):
        """GC reclaims a cold specialized executable; when its shape
        comes back, the replica must notice the blob is gone (fresh
        compile, no phantom restore) and re-persist it — reviving the
        store entry for the next consumer."""
        from repro.fleet import FleetConfig, FleetRouter
        from repro.serve import Request

        def payload(rows, seed=0):
            rng = np.random.RandomState(seed)
            return (rng.randn(rows, 8) * 0.1).astype(np.float32)

        def mlp():
            w = const(
                (np.random.RandomState(0).randn(8, 8) * 0.1).astype(np.float32)
            )
            x = Var("x", TensorType((Any(), 8), "float32"))
            return IRModule.from_expr(Function([x], api.relu(api.dense(x, w))))

        store_dir = str(tmp_path / "store")
        fast = dict(
            max_batch_size=2,
            max_delay_us=300.0,
            num_workers=1,
            specialize=True,
            specialize_threshold=2,
            specialize_compile_us=2000.0,
        )
        warm = InferenceServer(
            mlp(), intel_cpu(), ServeConfig(artifact_dir=store_dir, **fast)
        )
        warm.simulate(
            [
                Request(rid=i, arrival_us=i * 100.0, payload=payload(9, seed=i))
                for i in range(12)
            ]
        )
        exe_key = ArtifactStore(store_dir).keys()[0]

        # The shape goes quiet until 2000 µs; an aggressive collector
        # (every 500 µs, zero age tolerance) reclaims its blob first.
        router = FleetRouter(
            mlp(),
            intel_cpu(),
            ServeConfig(artifact_dir=store_dir, **fast),
            FleetConfig(num_replicas=1, gc_interval_us=500.0, gc_max_age_us=0.0),
        )
        trace = [
            Request(
                rid=i, arrival_us=2000.0 + i * 100.0, payload=payload(9, seed=i)
            )
            for i in range(12)
        ]
        report = router.simulate(trace)
        assert ("exe", exe_key) in report.gc_reports[0].pruned
        # Re-hot: recompiled from scratch, never "restored" from the
        # reclaimed memory...
        counters = report.counters()
        assert counters["replica_restored"] == (0,)
        assert counters["replica_fresh_compiles"] == (1,)
        assert counters["replica_store_rejects"] == (0,)
        # ...and re-persisted: model and disk both hold the blob again.
        assert router.view.present("exe", exe_key)
        assert router.view.origin("exe", exe_key) == 0
        assert ArtifactStore(store_dir).keys() == [exe_key]
        # The whole dance replays bit-identically.
        replay = router.simulate(trace)
        assert replay.counters() == counters
