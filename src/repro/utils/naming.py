"""Fresh-name generation for IR variables and kernels."""

from __future__ import annotations

from typing import Dict


class NameSupply:
    """Generates unique names with a shared counter per prefix.

    ``NameSupply()("x")`` returns ``x0``, ``x1``, ... — used by the ANF
    converter, manifest-allocation pass and the VM compiler so that
    generated IR stays readable in the pretty printer.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def fresh(self, prefix: str = "v") -> str:
        n = self._counters.get(prefix, 0)
        self._counters[prefix] = n + 1
        return f"{prefix}{n}"

    __call__ = fresh
