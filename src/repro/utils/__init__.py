"""Small shared utilities: union-find, counters, formatting helpers."""

from repro.utils.union_find import UnionFind
from repro.utils.naming import NameSupply

__all__ = ["UnionFind", "NameSupply"]
