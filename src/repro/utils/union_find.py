"""Union-find (disjoint set) used by device placement and type unification.

The paper (section 4.4) formulates heterogeneous device placement as
unification over ``DeviceDomain``s using ``union(s, t)`` and ``find(s)``;
this module provides that data structure generically, with union-by-rank
and path compression. Keys may be any hashable object.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Hashable, Iterable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)


class UnionFind(Generic[K]):
    """Disjoint-set forest over hashable keys.

    An optional ``on_merge(repr_kept, repr_absorbed)`` callback lets callers
    merge per-class metadata (e.g. device constraints) when two equivalence
    classes join.
    """

    def __init__(self, on_merge: Optional[Callable[[K, K], None]] = None) -> None:
        self._parent: Dict[K, K] = {}
        self._rank: Dict[K, int] = {}
        self._on_merge = on_merge

    def add(self, key: K) -> None:
        """Register *key* as its own singleton class (no-op if present)."""
        if key not in self._parent:
            self._parent[key] = key
            self._rank[key] = 0

    def __contains__(self, key: K) -> bool:
        return key in self._parent

    def find(self, key: K) -> K:
        """Return the representative of *key*'s class, adding it if new."""
        self.add(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: K, b: K) -> K:
        """Merge the classes of *a* and *b*; return the surviving representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        if self._on_merge is not None:
            self._on_merge(ra, rb)
        return ra

    def same(self, a: K, b: K) -> bool:
        """True when *a* and *b* are currently in the same class."""
        return self.find(a) == self.find(b)

    def classes(self) -> Dict[K, list]:
        """Group all registered keys by representative."""
        groups: Dict[K, list] = {}
        for key in list(self._parent):
            groups.setdefault(self.find(key), []).append(key)
        return groups

    def keys(self) -> Iterable[K]:
        return self._parent.keys()

    def __len__(self) -> int:
        return len(self._parent)
