"""The evaluation experiments (§6): one function per table/figure.

Every function returns a plain dict of measured numbers (virtual
microseconds) keyed the way the paper's tables are laid out, so
benchmarks and EXPERIMENTS.md generation share one source of truth.
All experiments run in ``lite`` numerics (identical latency model,
no heavyweight NumPy) with paper-sized models by default.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

import repro.nimble as nimble
from repro.baselines import (
    EagerFramework,
    FoldFramework,
    GraphFramework,
    HybridFramework,
)
from repro.codegen.kernels import KernelCache, KernelSet
from repro.codegen.tuner import SymbolicTuner
from repro.codegen.workload import compute_workload
from repro.core.memory import MemoryPlanReport
from repro.data import embedding_table, mrpc_like_lengths, sst_like_trees
from repro.hardware import Platform, platform_by_name
from repro.models.bert import BertConfig, BertWeights, build_bert_module, build_bert_static_module
from repro.models.lstm import LSTMWeights, build_lstm_module
from repro.models.tree_lstm import TreeLSTMWeights, build_tree_lstm_module, tree_to_adt
from repro.models.vision import (
    build_mobilenet_like,
    build_resnet_like,
    build_squeezenet_like,
    build_vgg_like,
)
from repro.runtime.context import ExecutionContext
from repro.runtime.graph_runtime import GraphRuntime
from repro.vm.compiler import CompilerOptions
from repro.vm.interpreter import VirtualMachine

DEFAULT_PLATFORMS = ("intel", "nvidia", "arm")


def _embedded_sentences(n: int, dim: int, seed: int = 0) -> List[np.ndarray]:
    """MRPC-like variable-length sentences as embedding matrices."""
    rng = np.random.RandomState(seed + 7)
    return [
        (rng.randn(length, dim) * 0.1).astype(np.float32)
        for length in mrpc_like_lengths(n, seed)
    ]


def _nimble_run_all(
    mod, platform: Platform, inputs: Sequence, numerics: str = "lite",
    options: Optional[CompilerOptions] = None,
):
    """Compile once, run every input; returns (total_us, vm)."""
    exe, _ = nimble.build(mod, platform, options=options)
    ctx = ExecutionContext(platform, numerics=numerics)
    vm = VirtualMachine(exe, ctx)
    start = ctx.elapsed_us
    for x in inputs:
        vm.run(x)
    return ctx.elapsed_us - start, vm


# ---------------------------------------------------------------------------
# Table 1: LSTM
# ---------------------------------------------------------------------------


def table1_lstm(
    num_sentences: int = 10,
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    layer_counts: Sequence[int] = (1, 2),
    input_size: int = 300,
    hidden_size: int = 512,
    numerics: str = "lite",
    seed: int = 0,
) -> Dict[int, Dict[str, Dict[str, float]]]:
    """µs/token for Nimble / PyTorch / MXNet / TensorFlow, per platform.

    Returns ``{num_layers: {platform: {system: us_per_token}}}``.
    """
    sentences = _embedded_sentences(num_sentences, input_size, seed)
    tokens = sum(s.shape[0] for s in sentences)
    results: Dict[int, Dict[str, Dict[str, float]]] = {}
    for layers in layer_counts:
        weights = LSTMWeights.create(input_size, hidden_size, layers, seed=seed)
        mod = build_lstm_module(weights)
        results[layers] = {}
        for pname in platforms:
            platform = platform_by_name(pname)
            row: Dict[str, float] = {}
            total_us, _ = _nimble_run_all(mod, platform, sentences, numerics)
            row["nimble"] = total_us / tokens
            row["pytorch"] = (
                EagerFramework(platform, numerics).run_lstm(sentences, weights).us_per_token
            )
            row["mxnet"] = (
                HybridFramework(platform, numerics).run_lstm(sentences, weights).us_per_token
            )
            row["tensorflow"] = (
                GraphFramework(platform, numerics).run_lstm(sentences, weights).us_per_token
            )
            results[layers][pname] = row
    return results


# ---------------------------------------------------------------------------
# Table 2: Tree-LSTM
# ---------------------------------------------------------------------------


def table2_tree_lstm(
    num_trees: int = 10,
    platforms: Sequence[str] = ("intel", "arm"),
    input_size: int = 300,
    hidden_size: int = 150,
    numerics: str = "lite",
    seed: int = 0,
) -> Dict[str, Dict[str, Optional[float]]]:
    """µs/token (token = leaf) for Nimble / PyTorch / TF Fold."""
    trees = sst_like_trees(num_trees, seed=seed)
    tokens = sum(t.num_leaves() for t in trees)
    embeddings = embedding_table(dim=input_size, seed=seed)
    weights = TreeLSTMWeights.create(input_size, hidden_size, seed=seed)
    mod = build_tree_lstm_module(weights)

    results: Dict[str, Dict[str, Optional[float]]] = {}
    for pname in platforms:
        platform = platform_by_name(pname)
        row: Dict[str, Optional[float]] = {}
        adts = [tree_to_adt(t, embeddings) for t in trees]
        total_us, _ = _nimble_run_all(mod, platform, adts, numerics)
        row["nimble"] = total_us / tokens
        row["pytorch"] = (
            EagerFramework(platform, numerics)
            .run_tree_lstm(trees, embeddings, weights)
            .us_per_token
        )
        fold = FoldFramework(platform, numerics)
        row["tf_fold"] = (
            fold.run_tree_lstm(trees, embeddings, weights).us_per_token
            if fold.supports("tree_lstm")
            else None
        )
        results[pname] = row
    return results


# ---------------------------------------------------------------------------
# Table 3: BERT
# ---------------------------------------------------------------------------


def table3_bert(
    num_sentences: int = 8,
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    config: BertConfig = BertConfig(),
    numerics: str = "lite",
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """µs/token for Nimble / PyTorch / MXNet / TensorFlow."""
    weights = BertWeights.create(config, seed=seed)
    mod = build_bert_module(weights)
    sentences = _embedded_sentences(num_sentences, config.hidden, seed)
    tokens = sum(s.shape[0] for s in sentences)
    results: Dict[str, Dict[str, float]] = {}
    for pname in platforms:
        platform = platform_by_name(pname)
        row: Dict[str, float] = {}
        total_us, _ = _nimble_run_all(mod, platform, sentences, numerics)
        row["nimble"] = total_us / tokens
        row["pytorch"] = (
            EagerFramework(platform, numerics).run_bert(sentences, weights).us_per_token
        )
        row["mxnet"] = (
            HybridFramework(platform, numerics).run_bert(sentences, weights).us_per_token
        )
        row["tensorflow"] = (
            GraphFramework(platform, numerics).run_bert(sentences, weights).us_per_token
        )
        results[pname] = row
    return results


# ---------------------------------------------------------------------------
# Table 4: VM overhead vs static TVM (BERT, seq 128)
# ---------------------------------------------------------------------------


def table4_overhead(
    platforms: Sequence[str] = DEFAULT_PLATFORMS,
    config: BertConfig = BertConfig(),
    seq_len: int = 128,
    numerics: str = "lite",
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """{platform: {tvm_ms, nimble_ms, kernel_ms, others_ms}}."""
    weights = BertWeights.create(config, seed=seed)
    dyn_mod = build_bert_module(weights)
    static_mod = build_bert_static_module(weights, seq_len)
    x = (np.random.RandomState(seed).randn(seq_len, config.hidden) * 0.1).astype(np.float32)
    results: Dict[str, Dict[str, float]] = {}
    for pname in platforms:
        platform = platform_by_name(pname)
        # Static TVM baseline.
        graph = GraphRuntime(static_mod, platform)
        ctx = ExecutionContext(platform, numerics=numerics)
        _, tvm_us = graph.run(x, ctx=ctx)
        # Nimble.
        total_us, vm = _nimble_run_all(dyn_mod, platform, [x], numerics)
        kernel_us = vm.profile.kernel_time_us
        results[pname] = {
            "tvm_ms": tvm_us / 1e3,
            "nimble_ms": total_us / 1e3,
            "kernel_ms": kernel_us / 1e3,
            "others_ms": max(0.0, total_us - kernel_us) / 1e3,
        }
    return results


# ---------------------------------------------------------------------------
# Figure 3: symbolic codegen dispatch ablation (3 BERT denses, ARM)
# ---------------------------------------------------------------------------

# The three dense shapes in BERT-base: QKV/projection, FFN-in, FFN-out.
FIG3_DENSES = (
    ("dense1", 768, 768),
    ("dense2", 3072, 768),
    ("dense3", 768, 3072),
)


def figure3_dispatch(
    platform_name: str = "arm",
    dispatch_levels: Sequence[Optional[int]] = (None, 8, 4, 2, 1),
    rows: Sequence[int] = tuple(range(1, 129)),
    tile: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Relative latency (static = 100%) of symbolic kernels by number of
    dispatch kernels. ``None`` means static codegen (the baseline)."""
    from repro.ir import Any, Constant, Function, TensorType, Var
    from repro.ops import api
    from repro.tensor.ndarray import array as make_array

    platform = platform_by_name(platform_name)
    spec = platform.compute_spec
    results: Dict[str, Dict[str, float]] = {}
    for name, n_out, k_in in FIG3_DENSES:
        rng = np.random.RandomState(0)
        w = (rng.randn(n_out, k_in) * 0.02).astype(np.float32)

        def make_prim(symbolic: bool) -> Function:
            m_dim = Any() if symbolic else rows[-1]
            x = Var("x", TensorType((m_dim, k_in), "float32"))
            body = api.dense(x, Constant(make_array(w)))
            return Function(
                [x], body, TensorType((Any() if symbolic else rows[-1], n_out), "float32"),
                {"primitive": True},
            )

        # The schedule the symbolic tuner picks for this dense.
        sym_prim = make_prim(symbolic=True)
        tuner = SymbolicTuner(sym_prim, platform, spec, seed=hash(name) & 0xFFFF)
        schedule = tuner.tune(n_trials=96)
        if schedule.tile != tile:
            schedule = type(schedule)(tile, schedule.vectorize, schedule.unroll, schedule.parallel)

        entry: Dict[str, float] = {}
        static_total = 0.0
        for m in rows:
            static_kernel = KernelSet(
                make_prim(symbolic=False), platform, spec, schedule=schedule,
                symbolic=False, allow_library=False,
            )
            static_total += static_kernel.invoke_cost([(m, k_in)]).duration_us
        for level in dispatch_levels:
            if level is None:
                entry["static"] = 100.0
                continue
            kernel = KernelSet(
                sym_prim, platform, spec, schedule=schedule,
                num_dispatch_kernels=level, symbolic=True, allow_library=False,
            )
            total = sum(kernel.invoke_cost([(m, k_in)]).duration_us for m in rows)
            label = "no dispatch" if level == 1 else f"dispatch/{level}"
            entry[label] = 100.0 * total / static_total
        results[name] = entry
    return results


# ---------------------------------------------------------------------------
# §6.3 memory planning study
# ---------------------------------------------------------------------------


def memory_planning_study(
    platform_name: str = "intel",
    config: BertConfig = BertConfig(),
    seq_len: int = 128,
    numerics: str = "lite",
    seed: int = 0,
) -> Dict[str, float]:
    """Memory planning effect on BERT: allocation counts and latency with
    and without the §4.3 pass."""
    platform = platform_by_name(platform_name)
    weights = BertWeights.create(config, seed=seed)
    mod = build_bert_module(weights)
    x = (np.random.RandomState(seed).randn(seq_len, config.hidden) * 0.1).astype(np.float32)

    def run(plan: bool):
        exe, report = nimble.build(mod, platform, plan_memory=plan)
        ctx = ExecutionContext(platform, numerics=numerics)
        vm = VirtualMachine(exe, ctx)
        vm.run(x)
        return report, ctx, vm

    report_off, ctx_off, _ = run(False)
    report_on, ctx_on, _ = run(True)
    stats_off, stats_on = ctx_off.allocator.stats, ctx_on.allocator.stats
    return {
        "allocs_unplanned": float(stats_off.total_allocs),
        "allocs_planned": float(stats_on.total_allocs),
        "alloc_reduction": 1.0 - stats_on.total_allocs / max(1, stats_off.total_allocs),
        "alloc_latency_unplanned_ms": stats_off.alloc_time_us / 1e3,
        "alloc_latency_planned_ms": stats_on.alloc_time_us / 1e3,
        "peak_bytes_unplanned": float(stats_off.peak_bytes),
        "peak_bytes_planned": float(stats_on.peak_bytes),
    }


def memory_footprint_vs_static(
    platform_name: str = "intel",
) -> Dict[str, Dict[str, float]]:
    """Nimble peak memory vs the static planner on the four CV models
    (the paper reports ≤8% extra footprint)."""
    platform = platform_by_name(platform_name)
    builders = {
        "resnet": build_resnet_like,
        "mobilenet": build_mobilenet_like,
        "vgg": build_vgg_like,
        "squeezenet": build_squeezenet_like,
    }
    out: Dict[str, Dict[str, float]] = {}
    for name, builder in builders.items():
        mod = builder()
        graph = GraphRuntime(builder(), platform)
        x = np.zeros((1, 3, 64, 64), np.float32)
        exe, report = nimble.build(mod, platform)
        ctx = ExecutionContext(platform, numerics="lite")
        vm = VirtualMachine(exe, ctx)
        vm.run(x)
        nimble_bytes = ctx.allocator.stats.peak_bytes
        static_bytes = graph.planned_bytes
        out[name] = {
            "static_bytes": float(static_bytes),
            "nimble_bytes": float(nimble_bytes),
            "overhead_pct": 100.0 * (nimble_bytes / max(1, static_bytes) - 1.0),
        }
    return out


# ---------------------------------------------------------------------------
# Serving study: batched shape-bucketed serving vs serial dispatch
# ---------------------------------------------------------------------------


def serving_study(
    model: str = "lstm",
    num_requests: int = 32,
    platform_name: str = "nvidia",
    num_workers: int = 4,
    max_batch_size: int = 8,
    max_delay_us: float = 4000.0,
    mean_interarrival_us: float = 50.0,
    bucket_granularity: int = 8,
    input_size: int = 300,
    hidden_size: int = 512,
    bert_config: Optional[BertConfig] = None,
    numerics: str = "lite",
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Throughput/latency of the batched server vs one-at-a-time dispatch
    on the same MRPC-like traffic trace.

    Returns ``{"serial": {...}, "batched": {...}, "summary": {...}}`` where
    the summary carries the throughput speedup and a determinism flag (the
    batched simulation re-run from scratch must reproduce identical
    numbers).
    """
    from repro.serve import InferenceServer, ServeConfig, bert_traffic, lstm_traffic

    platform = platform_by_name(platform_name)
    if model == "lstm":
        weights = LSTMWeights.create(input_size, hidden_size, num_layers=1, seed=seed)
        mod = build_lstm_module(weights)
        requests = lstm_traffic(
            num_requests, input_size=input_size,
            mean_interarrival_us=mean_interarrival_us, seed=seed,
        )
    elif model == "bert":
        config = bert_config or BertConfig()
        weights = BertWeights.create(config, seed=seed)
        mod = build_bert_module(weights)
        requests = bert_traffic(
            num_requests, hidden=config.hidden,
            mean_interarrival_us=mean_interarrival_us, seed=seed,
        )
    else:
        raise ValueError(f"unknown serving model {model!r}")

    batched_config = ServeConfig(
        max_batch_size=max_batch_size,
        max_delay_us=max_delay_us,
        num_workers=num_workers,
        bucket_granularity=bucket_granularity,
        numerics=numerics,
    )

    def run(config: ServeConfig, kernel_cache: Optional[KernelCache] = None):
        server = InferenceServer(mod, platform, config, kernel_cache=kernel_cache)
        return server.simulate(requests)

    # Serial and batched share one kernel cache (identical module, compile
    # once); the repeat run builds from scratch so the determinism check
    # covers the whole compile-and-serve path.
    shared_cache = KernelCache()
    serial = run(
        ServeConfig.serial(bucket_granularity=bucket_granularity, numerics=numerics),
        shared_cache,
    )
    batched = run(batched_config, shared_cache)
    repeat = run(batched_config)

    def row(report) -> Dict[str, float]:
        return {
            "throughput_rps": report.throughput_rps,
            "p50_us": report.p50_us,
            "p99_us": report.p99_us,
            "mean_latency_us": report.mean_latency_us,
            "mean_batch_size": report.mean_batch_size,
            "num_batches": float(report.num_batches),
            "span_us": report.span_us,
        }

    deterministic = row(batched) == row(repeat) and (
        batched.latencies_us == repeat.latencies_us
    )
    return {
        "serial": row(serial),
        "batched": row(batched),
        "summary": {
            "throughput_speedup": batched.throughput_rps
            / max(1e-12, serial.throughput_rps),
            "deterministic": float(deterministic),
        },
    }


# ---------------------------------------------------------------------------
# Tiered specialization study: static recompilation of hot shapes
# ---------------------------------------------------------------------------


def specialization_study(
    platform_name: str = "intel",
    hot_len: int = 24,
    bert_config: Optional[BertConfig] = None,
    num_requests: int = 256,
    mean_interarrival_us: float = 800.0,
    num_workers: int = 2,
    max_batch_size: int = 4,
    max_delay_us: float = 2000.0,
    threshold: int = 3,
    input_size: int = 64,
    hidden_size: int = 64,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Two measurements of tiered compilation (DyCL-style static recovery):

    1. **Executable tier comparison** — one BERT-class module compiled
       dynamically and specialized to the hot shape, run on the same
       input: end-to-end latency, shape-function time, allocations, and a
       bit-identity check (the tiers must differ only in overhead).
    2. **Serving with tiering** — the LSTM MRPC mix served with
       ``specialize=True``: specialized hit rate, per-tier latency, and a
       replay-determinism flag.
    """
    from repro.serve import InferenceServer, ServeConfig, lstm_traffic

    platform = platform_by_name(platform_name)

    # --- 1. dynamic vs specialized executable on the hot shape -------------
    config = bert_config or BertConfig(hidden=64, num_layers=2, num_heads=2, ffn=128)
    weights = BertWeights.create(config, seed=seed)
    mod = build_bert_module(weights)
    cache = KernelCache()
    dyn_exe, _ = nimble.build(mod, platform, kernel_cache=cache)
    spec_exe, _ = nimble.specialize(
        mod, platform, shapes=[(hot_len, config.hidden)], kernel_cache=cache
    )
    x = (np.random.RandomState(seed).randn(hot_len, config.hidden) * 0.1).astype(
        np.float32
    )

    def run_exe(exe):
        ctx = ExecutionContext(platform, numerics="full")
        vm = VirtualMachine(exe, ctx)
        out, latency = vm.run_with_latency(x)
        return out, latency, vm.profile, ctx.allocator.stats

    out_d, lat_d, prof_d, stats_d = run_exe(dyn_exe)
    out_s, lat_s, prof_s, stats_s = run_exe(spec_exe)
    tiers = {
        "dynamic_us": lat_d,
        "specialized_us": lat_s,
        "speedup": lat_d / max(1e-9, lat_s),
        "shape_func_us_dynamic": prof_d.shape_func_time_us,
        "shape_func_us_specialized": prof_s.shape_func_time_us,
        "dispatch_us_dynamic": prof_d.dispatch_time_us,
        "dispatch_us_specialized": prof_s.dispatch_time_us,
        "allocs_dynamic": float(stats_d.total_allocs),
        "allocs_specialized": float(stats_s.total_allocs),
        "bit_identical": float(np.array_equal(out_d.numpy(), out_s.numpy())),
    }

    # --- 2. serving the LSTM MRPC mix with tiering on ----------------------
    lstm_weights = LSTMWeights.create(input_size, hidden_size, num_layers=1, seed=seed)
    lstm_mod = build_lstm_module(lstm_weights)
    requests = lstm_traffic(
        num_requests, input_size=input_size,
        mean_interarrival_us=mean_interarrival_us, seed=seed,
    )
    serve_config = ServeConfig(
        max_batch_size=max_batch_size,
        max_delay_us=max_delay_us,
        num_workers=num_workers,
        specialize=True,
        specialize_threshold=threshold,
    )
    server = InferenceServer(lstm_mod, platform, serve_config)
    report = server.simulate(requests)
    replay = server.simulate(requests)
    deterministic = (
        report.latencies_us == replay.latencies_us
        and report.specialized_hits == replay.specialized_hits
        and report.specialize_compile_us == replay.specialize_compile_us
    )
    serving = {
        "specialized_hits": float(report.specialized_hits),
        "specialized_hit_rate": report.specialized_hit_rate,
        "num_specialized_executables": float(report.num_specialized_executables),
        "compile_us": report.specialize_compile_us,
        "p50_us": report.p50_us,
        "p99_us": report.p99_us,
        "p50_us_dynamic": report.tier_latency_percentile_us("dynamic", 50.0),
        "p50_us_specialized": report.tier_latency_percentile_us("specialized", 50.0),
        "deterministic": float(deterministic),
    }
    return {"tiers": tiers, "serving": serving}


# ---------------------------------------------------------------------------
# Compile-pool study: lanes × cache size on a long-tailed shape mix
# ---------------------------------------------------------------------------


def compile_pool_study(
    platform_name: str = "intel",
    num_requests: int = 192,
    mean_interarrival_us: float = 300.0,
    lane_counts: Sequence[int] = (1, 2, 4),
    cache_sizes: Sequence[int] = (2, 4),
    threshold: int = 3,
    compile_us: float = 8000.0,
    decay_half_life_us: float = 6_000.0,
    input_size: int = 16,
    hidden_size: int = 16,
    max_batch_size: int = 4,
    max_delay_us: float = 1500.0,
    num_workers: int = 2,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Sweep the specialization compile pool over lanes × cache size on a
    phased long-tailed shape mix (each phase's hot shape goes cold when
    the next begins, so the executable cache must evict to keep up).

    Per configuration: specialized hit rate, compile-queue wait
    mean/p99, eviction count, per-lane utilization, and a
    replay-determinism flag. The sweep also runs the eviction-off
    baseline (PR 2's hard cap) at each cache size, so the summary can
    report how much eviction recovers, and how much a second lane cuts
    queue wait, on identical traces.
    """
    from repro.serve import InferenceServer, ServeConfig, long_tailed_traffic

    platform = platform_by_name(platform_name)
    weights = LSTMWeights.create(input_size, hidden_size, num_layers=1, seed=seed)
    mod = build_lstm_module(weights)
    requests = long_tailed_traffic(
        num_requests,
        input_size=input_size,
        mean_interarrival_us=mean_interarrival_us,
        seed=seed,
    )
    # One kernel cache across the sweep: every server compiles the same
    # module, and the modeled compile cost is charged per trigger anyway.
    shared_cache = KernelCache()

    def run(lanes: int, cache: int, eviction: bool) -> Dict[str, float]:
        config = ServeConfig(
            max_batch_size=max_batch_size,
            max_delay_us=max_delay_us,
            num_workers=num_workers,
            specialize=True,
            specialize_threshold=threshold,
            specialize_max_executables=cache,
            specialize_compile_us=compile_us,
            specialize_compile_lanes=lanes,
            specialize_eviction=eviction,
            specialize_decay_half_life_us=decay_half_life_us,
        )
        server = InferenceServer(mod, platform, config, kernel_cache=shared_cache)
        report = server.simulate(requests)
        replay = server.simulate(requests)
        deterministic = (
            report.latencies_us == replay.latencies_us
            and report.specialized_hits == replay.specialized_hits
            and report.specialize_queue_waits_us == replay.specialize_queue_waits_us
            and report.specialize_lane_busy_us == replay.specialize_lane_busy_us
            and report.specialize_evictions == replay.specialize_evictions
        )
        row = {
            "specialized_hit_rate": report.specialized_hit_rate,
            "specialized_hits": float(report.specialized_hits),
            "compiles": float(len(report.specialize_queue_waits_us)),
            "evictions": float(report.specialize_evictions),
            "compile_us": report.specialize_compile_us,
            "mean_queue_wait_us": report.mean_compile_queue_wait_us,
            "p99_queue_wait_us": report.compile_queue_wait_percentile_us(99.0),
            "p50_us": report.p50_us,
            "p99_us": report.p99_us,
            "deterministic": float(deterministic),
        }
        for i, util in enumerate(report.compile_lane_utilization):
            row[f"lane{i}_util"] = util
        return row

    results: Dict[str, Dict[str, float]] = {}
    for cache in cache_sizes:
        # The no-eviction baseline runs at the narrowest pool in the
        # sweep, so the summary's eviction gain isolates eviction from
        # pool width.
        results[f"no_eviction,cache={cache}"] = run(
            min(lane_counts), cache, eviction=False
        )
        for lanes in lane_counts:
            results[f"lanes={lanes},cache={cache}"] = run(lanes, cache, eviction=True)

    # Summarize from the lane counts actually swept: the fewest-lane pool
    # vs the widest, both at the largest cache, and the eviction gain at
    # the smallest cache (where the hard cap starves hardest).
    min_lanes, max_lanes = min(lane_counts), max(lane_counts)
    small, big = min(cache_sizes), max(cache_sizes)
    evict_small = results[f"lanes={min_lanes},cache={small}"]
    capped_small = results[f"no_eviction,cache={small}"]
    narrow = results[f"lanes={min_lanes},cache={big}"]
    wide = results[f"lanes={max_lanes},cache={big}"]
    results["summary"] = {
        "min_lanes": float(min_lanes),
        "max_lanes": float(max_lanes),
        "eviction_hit_rate_gain": (
            evict_small["specialized_hit_rate"]
            - capped_small["specialized_hit_rate"]
        ),
        "queue_wait_min_lanes_us": narrow["mean_queue_wait_us"],
        "queue_wait_max_lanes_us": wide["mean_queue_wait_us"],
        "deterministic": float(
            all(
                row["deterministic"] == 1.0
                for key, row in results.items()
                if key != "summary"
            )
        ),
    }
    return results


# ---------------------------------------------------------------------------
# Staged-compilation study: monolithic vs prefix+suffix charging
# ---------------------------------------------------------------------------


def staged_compile_study(
    platform_name: str = "intel",
    num_requests: int = 192,
    mean_interarrival_us: float = 300.0,
    threshold: int = 3,
    cache_size: int = 4,
    compile_lanes: int = 1,
    decay_half_life_us: float = 6_000.0,
    input_size: int = 16,
    hidden_size: int = 16,
    max_batch_size: int = 4,
    max_delay_us: float = 1500.0,
    num_workers: int = 2,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Monolithic vs staged specialization on the long-tailed shape mix,
    identical traces and knobs, lanes held at *compile_lanes* (default 1
    — the narrowest pool, where per-variant charge directly becomes
    queue wait).

    Per mode: total/amortized compile charge, the prefix/suffix split,
    queue-wait mean/p99, hit rate, and a replay-determinism flag. The
    summary reports the amortized per-variant charge ratio
    (staged / monolithic — below 1 once the prefix amortizes over a
    second variant) and the marginal charge of the 2nd+ variants as a
    fraction of the monolithic per-variant charge (the ≤ 0.5 headline:
    a warm-prefix variant pays only the suffix share of the model).
    """
    from repro.serve import InferenceServer, ServeConfig, long_tailed_traffic

    platform = platform_by_name(platform_name)
    weights = LSTMWeights.create(input_size, hidden_size, num_layers=1, seed=seed)
    mod = build_lstm_module(weights)
    requests = long_tailed_traffic(
        num_requests,
        input_size=input_size,
        mean_interarrival_us=mean_interarrival_us,
        seed=seed,
    )
    shared_cache = KernelCache()

    def run(staged: bool) -> Dict[str, float]:
        config = ServeConfig(
            max_batch_size=max_batch_size,
            max_delay_us=max_delay_us,
            num_workers=num_workers,
            specialize=True,
            specialize_threshold=threshold,
            specialize_max_executables=cache_size,
            specialize_compile_lanes=compile_lanes,
            specialize_decay_half_life_us=decay_half_life_us,
            specialize_staged=staged,
        )
        server = InferenceServer(mod, platform, config, kernel_cache=shared_cache)
        report = server.simulate(requests)
        replay = server.simulate(requests)
        deterministic = (
            report.latencies_us == replay.latencies_us
            and report.specialized_hits == replay.specialized_hits
            and report.specialize_queue_waits_us == replay.specialize_queue_waits_us
            and report.specialize_compile_us == replay.specialize_compile_us
        )
        fresh = max(1.0, float(report.specialize_fresh_compiles))
        return {
            "specialized_hit_rate": report.specialized_hit_rate,
            "fresh_compiles": float(report.specialize_fresh_compiles),
            "compile_us": report.specialize_compile_us,
            "prefix_us": report.specialize_prefix_us,
            "suffix_us": report.specialize_suffix_us,
            "amortized_per_variant_us": report.specialize_compile_us / fresh,
            "mean_queue_wait_us": report.mean_compile_queue_wait_us,
            "p99_queue_wait_us": report.compile_queue_wait_percentile_us(99.0),
            "p50_us": report.p50_us,
            "p99_us": report.p99_us,
            "deterministic": float(deterministic),
        }

    mono = run(False)
    staged = run(True)
    mono_per_variant = mono["amortized_per_variant_us"]
    # Marginal charge of a variant under a warm prefix: every staged
    # variant pays the same suffix, so it is the non-prefix lane time
    # per fresh compile.
    marginal = (staged["compile_us"] - staged["prefix_us"]) / max(
        1.0, staged["fresh_compiles"]
    )
    results = {
        "monolithic": mono,
        "staged": staged,
        "summary": {
            "amortized_ratio": (
                staged["amortized_per_variant_us"] / mono_per_variant
                if mono_per_variant
                else 0.0
            ),
            "warm_prefix_marginal_ratio": (
                marginal / mono_per_variant if mono_per_variant else 0.0
            ),
            "queue_wait_p99_mono_us": mono["p99_queue_wait_us"],
            "queue_wait_p99_staged_us": staged["p99_queue_wait_us"],
            "deterministic": float(
                mono["deterministic"] == 1.0 and staged["deterministic"] == 1.0
            ),
        },
    }
    return results


# ---------------------------------------------------------------------------
# Batch-granularity specialization study
# ---------------------------------------------------------------------------


def batch_specialization_study(
    platform_name: str = "nvidia",
    hot_len: int = 24,
    batch: int = 8,
    bert_config: Optional[BertConfig] = None,
    num_requests: int = 72,
    mean_interarrival_us: float = 150.0,
    input_size: int = 8,
    hidden_size: int = 16,
    threshold: int = 2,
    compile_us: float = 400.0,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Three measurements of batch-granularity specialization:

    1. **Batched vs member-pipelined executables** — the hot BERT bucket
       run on the modeled GPU platform: ``batch`` member-wise calls
       pipelined with one final sync (the member tier's worker loop) vs
       ONE call on the batch-specialized executable. The batched tier
       fuses each GEMM site into a single batched launch, so its
       throughput gain comes from launch-overhead amortization and GEMM
       saturation at ``batch ×`` the rows.
    2. **Bit identity** — dynamic, member-specialized, and
       batch-specialized outputs compared bitwise per member (full
       numerics, host platform).
    3. **Serving with the batched tier** — a hot-heavy LSTM mix served
       with ``specialize_batch=True``: full hot buckets must route to the
       batched tier (one VM call per bucket, zero shape functions) and
       replays must stay bit-identical.
    """
    from repro.serve import InferenceServer, ServeConfig, long_tailed_traffic

    platform = platform_by_name(platform_name)

    # --- 1. one batched call vs a member-pipelined bucket ------------------
    config = bert_config or BertConfig(hidden=64, num_layers=2, num_heads=2, ffn=128)
    weights = BertWeights.create(config, seed=seed)
    mod = build_bert_module(weights)
    cache = KernelCache()
    member_exe, _ = nimble.specialize(
        mod, platform, shapes=[(hot_len, config.hidden)], kernel_cache=cache
    )
    batched_exe, _ = nimble.specialize(
        mod, platform, shapes=[(hot_len, config.hidden)], kernel_cache=cache,
        batch=batch,
    )
    rng = np.random.RandomState(seed)
    xs = [
        (rng.randn(hot_len, config.hidden) * 0.1).astype(np.float32)
        for _ in range(batch)
    ]

    ctx_m = ExecutionContext(platform, numerics="lite")
    vm_m = VirtualMachine(member_exe, ctx_m)
    start = ctx_m.clock.elapsed_us
    for x in xs:
        vm_m.run(x, sync=False)
    ctx_m.clock.sync_all()
    member_us = ctx_m.clock.elapsed_us - start

    ctx_b = ExecutionContext(platform, numerics="lite")
    vm_b = VirtualMachine(batched_exe, ctx_b)
    start = ctx_b.clock.elapsed_us
    vm_b.run(np.concatenate(xs, axis=0), sync=False)
    ctx_b.clock.sync_all()
    batched_us = ctx_b.clock.elapsed_us - start

    tiers = {
        "member_pipelined_us": member_us,
        "batched_us": batched_us,
        "throughput_gain": member_us / max(1e-9, batched_us),
        # One batched GEMM per member-wise GEMM site: the batched run
        # launches exactly as many GEMM kernels as ONE member run, while
        # the pipelined bucket pays `batch` times that.
        "gemm_launches_member_total": float(vm_m.profile.gemm_invocations()),
        "gemm_launches_batched": float(vm_b.profile.gemm_invocations()),
        "batched_runs": float(vm_b.profile.runs),
        "member_runs": float(vm_m.profile.runs),
    }

    # --- 2. bit identity across the three tiers ----------------------------
    host = platform_by_name("intel")
    small = BertConfig(hidden=32, num_layers=1, num_heads=2, ffn=64)
    small_w = BertWeights.create(small, seed=seed)
    small_mod = build_bert_module(small_w)
    small_cache = KernelCache()
    dyn_exe, _ = nimble.build(small_mod, host, kernel_cache=small_cache)
    mem_exe, _ = nimble.specialize(
        small_mod, host, shapes=[(11, small.hidden)], kernel_cache=small_cache
    )
    bat_exe, _ = nimble.specialize(
        small_mod, host, shapes=[(11, small.hidden)], kernel_cache=small_cache,
        batch=3,
    )
    members = [
        (rng.randn(11, small.hidden) * 0.1).astype(np.float32) for _ in range(3)
    ]

    def run_full(exe, *inputs):
        vm = VirtualMachine(exe, ExecutionContext(host, numerics="full"))
        return vm.run(*inputs)

    outs_dyn = [run_full(dyn_exe, x).numpy() for x in members]
    outs_mem = [run_full(mem_exe, x).numpy() for x in members]
    stacked_out = run_full(bat_exe, np.concatenate(members, axis=0)).numpy()
    outs_bat = np.split(stacked_out, 3, axis=0)
    tiers["bit_identical"] = float(
        all(
            np.array_equal(d, m) and np.array_equal(d, b)
            for d, m, b in zip(outs_dyn, outs_mem, outs_bat)
        )
    )

    # --- 3. serving the hot-heavy LSTM mix with the batched tier -----------
    lstm_weights = LSTMWeights.create(input_size, hidden_size, num_layers=1, seed=seed)
    lstm_mod = build_lstm_module(lstm_weights)
    requests = long_tailed_traffic(
        num_requests,
        input_size=input_size,
        mean_interarrival_us=mean_interarrival_us,
        hot_lengths=(7,),
        hot_fraction=0.8,
        tail_min=3,
        tail_max=16,
        seed=seed,
    )
    serve_config = ServeConfig(
        max_batch_size=4,
        max_delay_us=2000.0,
        num_workers=2,
        specialize=True,
        specialize_threshold=threshold,
        specialize_compile_us=compile_us,
        specialize_batch=True,
    )
    server = InferenceServer(lstm_mod, platform_by_name("intel"), serve_config)
    report = server.simulate(requests)
    replay = server.simulate(requests)
    deterministic = (
        report.latencies_us == replay.latencies_us
        and [r.tier for r in report.responses]
        == [r.tier for r in replay.responses]
        and report.batched_hits == replay.batched_hits
        and report.specialize_compile_us == replay.specialize_compile_us
    )
    serving = {
        "batched_hits": float(report.batched_hits),
        "batched_hit_rate": report.batched_hit_rate,
        "specialized_hit_rate": report.specialized_hit_rate,
        "batched_batches": float(report.profile_batched.runs),
        "batched_shape_func_us": report.profile_batched.shape_func_time_us,
        "p50_us_dynamic": report.tier_latency_percentile_us("dynamic", 50.0),
        "p50_us_batched": report.tier_latency_percentile_us("batched", 50.0),
        "deterministic": float(deterministic),
    }
    return {"tiers": tiers, "serving": serving}


# ---------------------------------------------------------------------------
# Restart study: persistent artifact store, cold vs warm server start
# ---------------------------------------------------------------------------


def restart_study(
    platform_name: str = "intel",
    num_requests: int = 220,
    mean_interarrival_us: float = 400.0,
    hot_lengths: Sequence[int] = (7, 12, 19),
    hot_fraction: float = 0.85,
    threshold: int = 5,
    max_executables: int = 8,
    compile_lanes: int = 2,
    compile_us: float = 8000.0,
    input_size: int = 16,
    hidden_size: int = 16,
    max_batch_size: int = 4,
    max_delay_us: float = 1500.0,
    num_workers: int = 2,
    artifact_dir: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Cold vs warm server start against one persistent artifact store.

    Simulates the deployment story the store exists for: a server runs a
    hot-shape-concentrated traffic mix (paying the full compile charge
    for every hot shape), the process "dies" (the server object is
    dropped), and a **fresh** server is constructed against the same
    ``artifact_dir`` and serves the identical trace. The warm server
    must restore every specialized executable at the modeled deserialize
    cost — compiling nothing — so it reaches (at least) the cold run's
    specialized hit rate for a small fraction of the compile charge, and
    its first specialized hit lands much earlier. Outputs are compared
    bitwise across the two runs: the store must never change *what* is
    computed, only when the static tiers come online.

    Returns ``{"cold": {...}, "warm": {...}, "summary": {...}}``; the
    summary includes the warm/cold compile-charge ratio (the headline:
    < 0.10), the time-to-first-specialized-hit speedup, a bit-identity
    flag, and per-run replay-determinism flags.
    """
    import tempfile

    from repro.serve import InferenceServer, ServeConfig, long_tailed_traffic

    platform = platform_by_name(platform_name)
    weights = LSTMWeights.create(input_size, hidden_size, num_layers=1, seed=seed)
    mod = build_lstm_module(weights)
    requests = long_tailed_traffic(
        num_requests,
        input_size=input_size,
        mean_interarrival_us=mean_interarrival_us,
        hot_lengths=tuple(hot_lengths),
        hot_fraction=hot_fraction,
        seed=seed,
    )
    owns_dir = artifact_dir is None
    if owns_dir:
        artifact_dir = tempfile.mkdtemp(prefix="nimble-restart-study-")
    config = ServeConfig(
        max_batch_size=max_batch_size,
        max_delay_us=max_delay_us,
        num_workers=num_workers,
        specialize=True,
        specialize_threshold=threshold,
        specialize_max_executables=max_executables,
        specialize_compile_lanes=compile_lanes,
        # An explicit modeled compile cost, sized so the *cold* run
        # reaches its specialized steady state within each traffic
        # phase — the study then measures warm restart against a
        # non-degenerate baseline (the calibrated default outlasts a
        # whole phase at this trace length, leaving cold at 0 hits).
        # The restore charge keeps its calibrated default, so the
        # warm/cold ratio stays an honest model output.
        specialize_compile_us=compile_us,
        artifact_dir=artifact_dir,
    )

    def first_specialized_hit_us(report) -> float:
        hits = [r.finish_us for r in report.responses if r.tier != "dynamic"]
        return min(hits) if hits else math.inf

    def run_fresh_server():
        """A brand-new server: new kernel cache, new VMs, new manager —
        everything a process restart loses. Only the artifact_dir
        persists between calls."""
        server = InferenceServer(mod, platform, config)
        report = server.simulate(requests)
        replay = server.simulate(requests)
        deterministic = (
            report.latencies_us == replay.latencies_us
            and [r.tier for r in report.responses]
            == [r.tier for r in replay.responses]
            and report.specialize_compile_us == replay.specialize_compile_us
            and report.specialize_restored == replay.specialize_restored
            and report.store_rejects == replay.store_rejects
        )
        return report, deterministic

    try:
        cold, cold_deterministic = run_fresh_server()
        warm, warm_deterministic = run_fresh_server()
    finally:
        if owns_dir:
            # The study made its own scratch store; repeated harness
            # runs must not accumulate blob directories in /tmp.
            import shutil

            shutil.rmtree(artifact_dir, ignore_errors=True)

    def row(report, deterministic) -> Dict[str, float]:
        return {
            "specialized_hits": float(report.specialized_hits),
            "specialized_hit_rate": report.specialized_hit_rate,
            "compile_charge_us": report.specialize_compile_us,
            "fresh_compiles": float(report.specialize_fresh_compiles),
            "restored": float(report.specialize_restored),
            "restore_us": report.specialize_restore_us,
            "store_rejects": float(report.store_rejects),
            "first_specialized_hit_us": first_specialized_hit_us(report),
            "p50_us": report.p50_us,
            "p99_us": report.p99_us,
            "deterministic": float(deterministic),
        }

    bit_identical = len(cold.responses) == len(warm.responses) and all(
        a.rid == b.rid
        and np.array_equal(
            np.asarray(a.output.numpy()), np.asarray(b.output.numpy())
        )
        for a, b in zip(cold.responses, warm.responses)
    )
    charge_ratio = warm.specialize_compile_us / max(
        1e-9, cold.specialize_compile_us
    )
    cold_first = first_specialized_hit_us(cold)
    warm_first = first_specialized_hit_us(warm)
    # inf/inf (neither run ever hit a static tier — degenerate config)
    # would be NaN; report "no change" instead of poisoning downstream
    # arithmetic.
    first_hit_speedup = (
        1.0 if cold_first == warm_first else cold_first / warm_first
    )
    return {
        "cold": row(cold, cold_deterministic),
        "warm": row(warm, warm_deterministic),
        "summary": {
            "warm_cold_charge_ratio": charge_ratio,
            "first_hit_speedup": first_hit_speedup,
            "hit_rate_recovered": float(
                warm.specialized_hit_rate >= cold.specialized_hit_rate
            ),
            "bit_identical": float(bit_identical),
            "deterministic": float(cold_deterministic and warm_deterministic),
        },
    }


# ---------------------------------------------------------------------------
# Predictive + partial specialization study
# ---------------------------------------------------------------------------


def predictive_study(
    platform_name: str = "intel",
    num_requests: int = 200,
    mean_interarrival_us: float = 400.0,
    hot_lengths: Sequence[int] = (9, 25, 41),
    hot_fraction: float = 0.7,
    threshold: int = 6,
    max_executables: int = 4,
    compile_lanes: int = 2,
    compile_us: float = 8000.0,
    input_size: int = 16,
    max_batch_size: int = 4,
    max_delay_us: float = 1000.0,
    num_workers: int = 2,
    partial_min_shapes: int = 3,
    artifact_dir: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Profile-guided predictive specialization + guarded partial shapes
    on a long-tailed traffic mix.

    Two fresh servers run the identical trace against one artifact
    store. The **cold** server starts with an empty store: specialization
    is reactive (threshold hits, then a compile) and the long tail of
    exact lengths is covered by a synthesized *partial* variant (stable
    feature dim bound, row dim left ``Any``, entry-guarded). At
    simulation end it persists its shape profile (``.nmblprof``). The
    **warm** server is constructed against the now-populated store with
    ``specialize_predictive=True``: it pre-arms its historical top-K at
    virtual time 0 — before the first request lands — so its first
    specialized hit must land at least ~2× earlier than the cold run's.

    The model is the weight-free two-``Any``-dim Gram map
    (:func:`repro.models.build_gram_module`): its feature dim is *not*
    pinned by weights, so traffic with a stable feature width and
    long-tailed row counts genuinely exercises partial binding.

    Returns ``{"cold": {...}, "warm": {...}, "summary": {...}}``; the
    summary carries the first-hit speedup, how many distinct exact
    shapes the partial variant served, guard-deopt and predictive
    counters, a cold/warm bitwise-identity flag, and per-run
    replay-determinism flags.
    """
    import tempfile

    from repro.models import build_gram_module
    from repro.serve import InferenceServer, ServeConfig, long_tailed_traffic

    platform = platform_by_name(platform_name)
    mod = build_gram_module()
    requests = long_tailed_traffic(
        num_requests,
        input_size=input_size,
        mean_interarrival_us=mean_interarrival_us,
        hot_lengths=tuple(hot_lengths),
        hot_fraction=hot_fraction,
        seed=seed,
    )
    owns_dir = artifact_dir is None
    if owns_dir:
        artifact_dir = tempfile.mkdtemp(prefix="nimble-predictive-study-")
    config = ServeConfig(
        max_batch_size=max_batch_size,
        max_delay_us=max_delay_us,
        num_workers=num_workers,
        specialize=True,
        specialize_threshold=threshold,
        specialize_max_executables=max_executables,
        specialize_compile_lanes=compile_lanes,
        # Explicit modeled compile cost, like restart_study: sized so
        # the cold run's reactive warm-up is visible but finishes well
        # inside the trace, giving the warm run a non-degenerate
        # first-hit baseline to beat.
        specialize_compile_us=compile_us,
        artifact_dir=artifact_dir,
        specialize_predictive=True,
        specialize_partial=True,
        specialize_partial_min_shapes=partial_min_shapes,
        # The study's headline claim is *bitwise* cross-tier identity
        # (partial ≡ exact ≡ dynamic) across two servers whose tier
        # sequences intentionally differ — "lite" numerics skips large
        # kernels' compute, so only "full" makes that comparison
        # meaningful. The gram model is small enough that full compute
        # costs nothing here.
        numerics="full",
    )
    length_of = {r.rid: int(np.asarray(r.payload).shape[0]) for r in requests}

    def first_specialized_hit_us(report) -> float:
        hits = [r.finish_us for r in report.responses if r.tier != "dynamic"]
        return min(hits) if hits else math.inf

    def partial_shapes_covered(report) -> int:
        """Distinct exact row counts served by the guarded-partial tier."""
        return len(
            {length_of[r.rid] for r in report.responses if r.tier == "partial"}
        )

    def run_fresh_server():
        server = InferenceServer(mod, platform, config)
        report = server.simulate(requests)
        replay = server.simulate(requests)
        deterministic = (
            report.latencies_us == replay.latencies_us
            and [r.tier for r in report.responses]
            == [r.tier for r in replay.responses]
            and report.specialize_compile_us == replay.specialize_compile_us
            and report.predictive_compiles == replay.predictive_compiles
            and report.predictive_hits == replay.predictive_hits
            and report.guard_deopts == replay.guard_deopts
            and report.store_rejects == replay.store_rejects
        )
        return report, deterministic

    try:
        cold, cold_deterministic = run_fresh_server()
        warm, warm_deterministic = run_fresh_server()
    finally:
        if owns_dir:
            import shutil

            shutil.rmtree(artifact_dir, ignore_errors=True)

    def row(report, deterministic) -> Dict[str, float]:
        return {
            "specialized_hits": float(report.specialized_hits),
            "specialized_hit_rate": report.specialized_hit_rate,
            "partial_hits": float(report.partial_hits),
            "partial_shapes_covered": float(partial_shapes_covered(report)),
            "guard_deopts": float(report.guard_deopts),
            "predictive_compiles": float(report.predictive_compiles),
            "predictive_hits": float(report.predictive_hits),
            "compile_charge_us": report.specialize_compile_us,
            "restored": float(report.specialize_restored),
            "first_specialized_hit_us": first_specialized_hit_us(report),
            "p50_us": report.p50_us,
            "p99_us": report.p99_us,
            "deterministic": float(deterministic),
        }

    bit_identical = len(cold.responses) == len(warm.responses) and all(
        a.rid == b.rid
        and np.array_equal(
            np.asarray(a.output.numpy()), np.asarray(b.output.numpy())
        )
        for a, b in zip(cold.responses, warm.responses)
    )
    cold_first = first_specialized_hit_us(cold)
    warm_first = first_specialized_hit_us(warm)
    first_hit_speedup = (
        1.0 if cold_first == warm_first else cold_first / warm_first
    )
    return {
        "cold": row(cold, cold_deterministic),
        "warm": row(warm, warm_deterministic),
        "summary": {
            "first_hit_speedup": first_hit_speedup,
            "predictive_compiles": float(warm.predictive_compiles),
            "predictive_hits": float(warm.predictive_hits),
            "partial_shapes_covered": float(
                max(partial_shapes_covered(cold), partial_shapes_covered(warm))
            ),
            "guard_deopts": float(cold.guard_deopts + warm.guard_deopts),
            "bit_identical": float(bit_identical),
            "deterministic": float(cold_deterministic and warm_deterministic),
        },
    }


# ---------------------------------------------------------------------------
# Fleet study: routed replicas over one shared artifact store
# ---------------------------------------------------------------------------


def fleet_study(
    platform_name: str = "intel",
    num_requests: int = 200,
    num_replicas: int = 4,
    replica_counts: Sequence[int] = (1, 2, 4),
    mean_interarrival_us: float = 300.0,
    threshold: int = 4,
    max_executables: int = 2,
    compile_lanes: int = 1,
    compile_us: float = 8000.0,
    input_size: int = 16,
    hidden_size: int = 16,
    max_batch_size: int = 4,
    max_delay_us: float = 1500.0,
    num_workers: int = 2,
    hot_lengths: Sequence[int] = (9, 25, 41, 57),
    hot_fraction: float = 0.85,
    bursty_rate_per_s: float = 4000.0,
    bursty_burst: int = 4,
    steady_deadline_us: float = 60_000.0,
    gc_interval_us: float = 20_000.0,
    gc_max_age_us: float = 30_000.0,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """The fleet layer's three claims, measured on one multi-tenant trace.

    1. **Shape-affinity routing concentrates specialization**: against
       random placement at the same fleet-wide fresh-compile charge (the
       shared store means any policy compiles each hot shape about
       once), affinity routing serves a much larger share of requests
       from the static tiers — the ``affinity_random_hit_ratio``
       headline, asserted ≥ 1.5 in ``benchmarks/bench_fleet.py``.
    2. **One replica's compile warms the whole fleet**: a *fresh* fleet
       started against the store a previous fleet filled reaches its
       first specialized hit strictly earlier than the cold fleet did
       (``warm_first_hit_speedup``), restoring instead of compiling.
    3. **Determinism at fleet scale**: for every replica count in
       *replica_counts* — with store GC enabled — replaying the trace is
       bit-identical (outputs and every FleetReport counter), and every
       served request's output is bitwise equal to a single
       ``InferenceServer`` serving the same trace alone.

    The workload is sized so concentration is *structural*, not luck:
    four tenants with four distinct hot shapes, against replicas whose
    specialized-executable cache holds only ``max_executables`` (< 4)
    entries. Affinity routing pins each hot shape to one replica, so
    every replica's cache fits its share; random placement makes every
    replica juggle all four shapes in a two-slot cache — eviction
    thrash the shared store cannot restore fast enough. Three tenants
    are unlimited (one with a deadline class scored in the report);
    ``bursty`` is token-bucket limited so its bursts trip admission
    control — ``rejected`` must be > 0 or the admission path went
    untested.

    Returns ``{"affinity": {...}, "random": {...}, "least_loaded":
    {...}, "warm": {...}, "gc": {...}, "summary": {...}}`` — ``warm``
    re-runs the same trace over the affinity fleet's store, ``gc``
    runs a *drifted* trace over it (hot set rotated) so the collector
    reclaims the retired shape's blob under the refcount guard.
    """
    import shutil
    import tempfile

    from repro.fleet import FleetConfig, FleetRouter, TenantSpec
    from repro.harness.reporting import percentile
    from repro.serve import InferenceServer, ServeConfig, multi_tenant_traffic

    platform = platform_by_name(platform_name)
    weights = LSTMWeights.create(input_size, hidden_size, num_layers=1, seed=seed)
    mod = build_lstm_module(weights)
    requests = multi_tenant_traffic(
        num_requests,
        input_size=input_size,
        mean_interarrival_us=mean_interarrival_us,
        tenant_mix=(("steady", 2), ("web", 2), ("batch", 2), ("bursty", 1)),
        hot_lengths=tuple(hot_lengths),
        hot_fraction=hot_fraction,
        seed=seed,
    )
    tenants = (
        TenantSpec("steady", deadline_us=steady_deadline_us),
        TenantSpec("web"),
        TenantSpec("batch"),
        TenantSpec(
            "bursty",
            deadline_us=steady_deadline_us,
            rate_per_s=bursty_rate_per_s,
            burst=bursty_burst,
        ),
    )

    def config(artifact_dir: str) -> "ServeConfig":
        return ServeConfig(
            max_batch_size=max_batch_size,
            max_delay_us=max_delay_us,
            num_workers=num_workers,
            specialize=True,
            specialize_threshold=threshold,
            # The cache is deliberately smaller than the number of hot
            # shapes in the trace — the pressure that makes placement
            # policy matter (see the docstring).
            specialize_max_executables=max_executables,
            specialize_compile_lanes=compile_lanes,
            # Explicit modeled compile cost, like restart_study: sized so
            # cold fleets reach a specialized steady state within this
            # trace, making hit-rate comparisons non-degenerate.
            specialize_compile_us=compile_us,
            artifact_dir=artifact_dir,
        )

    def first_specialized_hit_us(report) -> float:
        hits = [r.finish_us for r in report.responses if r.tier != "dynamic"]
        return min(hits) if hits else math.inf

    def outputs_of(report) -> Dict[int, np.ndarray]:
        return {
            r.rid: np.asarray(r.output.numpy()) for r in report.responses
        }

    def run_fleet(
        artifact_dir: str, routing: str, replicas: int, trace=None
    ):
        """One fresh fleet + a replay; returns (report, deterministic)."""
        trace = requests if trace is None else trace
        router = FleetRouter(
            mod,
            platform,
            config(artifact_dir),
            fleet=FleetConfig(
                num_replicas=replicas,
                routing=routing,
                gc_interval_us=gc_interval_us,
                gc_max_age_us=gc_max_age_us,
            ),
            tenants=tenants,
        )
        report = router.simulate(trace)
        replay = router.simulate(trace)
        first, second = outputs_of(report), outputs_of(replay)
        deterministic = (
            report.counters() == replay.counters()
            and set(first) == set(second)
            and all(np.array_equal(first[k], second[k]) for k in first)
        )
        return report, deterministic

    scratch: List[str] = []

    def fresh_dir() -> str:
        d = tempfile.mkdtemp(prefix="nimble-fleet-study-")
        scratch.append(d)
        return d

    try:
        affinity_dir = fresh_dir()
        affinity, affinity_det = run_fleet(affinity_dir, "affinity", num_replicas)
        random_run, random_det = run_fleet(fresh_dir(), "random", num_replicas)
        least, least_det = run_fleet(fresh_dir(), "least_loaded", num_replicas)
        # The warm fleet: a NEW router (fresh replicas, fresh kernel
        # cache objects) over the store the affinity fleet filled.
        warm, warm_det = run_fleet(affinity_dir, "affinity", num_replicas)
        # The GC fleet: same populated store, but the traffic's hot set
        # has drifted (the first hot shape retired, a new one arrived).
        # Yesterday's blob for the retired shape is never re-hot —
        # age-pruned at the first collection — while every re-hot blob
        # is restored and then refcount-guarded. This is the
        # steady-state compaction story a long-lived store needs.
        drifted = multi_tenant_traffic(
            num_requests,
            input_size=input_size,
            mean_interarrival_us=mean_interarrival_us,
            tenant_mix=(("steady", 2), ("web", 2), ("batch", 2), ("bursty", 1)),
            hot_lengths=tuple(hot_lengths[1:]) + (hot_lengths[0] + 64,),
            hot_fraction=hot_fraction,
            seed=seed + 1,
        )
        gc_run, gc_det = run_fleet(
            affinity_dir, "affinity", num_replicas, trace=drifted
        )
        # Replica-count sweep (claim 3), each against its own store.
        sweep_det = True
        single = InferenceServer(mod, platform, config(fresh_dir()))
        single_outputs = outputs_of(single.simulate(requests))
        single_match = True
        for count in replica_counts:
            report, det = run_fleet(fresh_dir(), "affinity", count)
            sweep_det = sweep_det and det
            fleet_outputs = outputs_of(report)
            # Every request the fleet served must compute bitwise the
            # same result the lone server computed for that rid —
            # placement, batching, and tier must never change outputs.
            single_match = single_match and all(
                np.array_equal(out, single_outputs[rid])
                for rid, out in fleet_outputs.items()
            )
    finally:
        for d in scratch:
            shutil.rmtree(d, ignore_errors=True)

    def row(report, deterministic: bool) -> Dict[str, float]:
        return {
            "admitted": float(report.admitted),
            "rejected": float(report.rejected),
            "affinity_rate": report.affinity_rate,
            "specialized_hit_rate": report.specialized_hit_rate,
            "compile_charge_us": report.specialize_compile_us,
            "fleet_restores": float(report.total_fleet_restores),
            "store_rejects": float(report.store_rejects),
            "gc_pruned": float(report.gc_pruned),
            "gc_kept_referenced": float(report.gc_kept_referenced),
            "first_specialized_hit_us": first_specialized_hit_us(report),
            "p50_us": report.responses
            and percentile([r.latency_us for r in report.responses], 50.0)
            or 0.0,
            "p99_us": report.responses
            and percentile([r.latency_us for r in report.responses], 99.0)
            or 0.0,
            "slo_attainment_steady": report.tenants["steady"].slo_attainment,
            "slo_attainment_bursty": report.tenants["bursty"].slo_attainment,
            "deterministic": float(deterministic),
        }

    cold_first = first_specialized_hit_us(affinity)
    warm_first = first_specialized_hit_us(warm)
    return {
        "affinity": row(affinity, affinity_det),
        "random": row(random_run, random_det),
        "least_loaded": row(least, least_det),
        "warm": row(warm, warm_det),
        "gc": row(gc_run, gc_det),
        "summary": {
            "affinity_random_hit_ratio": (
                affinity.specialized_hit_rate
                / max(1e-9, random_run.specialized_hit_rate)
            ),
            "affinity_random_charge_ratio": (
                affinity.specialize_compile_us
                / max(1e-9, random_run.specialize_compile_us)
            ),
            "warm_first_hit_speedup": (
                1.0 if cold_first == warm_first else cold_first / warm_first
            ),
            "warm_earlier": float(warm_first < cold_first),
            "admission_tripped": float(random_run.rejected > 0
                                       and affinity.rejected > 0),
            "replica_sweep_deterministic": float(sweep_det),
            "single_server_match": float(single_match),
            # The drifted-traffic run reclaimed the retired shape's
            # blob while the refcount guard held every live one.
            "gc_exercised": float(
                gc_run.gc_pruned > 0
                and gc_run.gc_kept_referenced > 0
                and gc_run.store_rejects == 0
            ),
            "deterministic": float(
                affinity_det and random_det and least_det and warm_det
                and gc_det
            ),
        },
    }


# ---------------------------------------------------------------------------
# Multi-stream scheduling study
# ---------------------------------------------------------------------------


def stream_study(
    stream_counts: Sequence[int] = (1, 2, 4),
    platform_name: str = "nvidia",
    bert_config: Optional[BertConfig] = None,
    single_seq_len: int = 64,
    pipeline_lengths: Sequence[int] = (
        48, 32, 24, 16, 56, 40, 8, 64, 48, 32, 24, 16, 56, 40, 8, 64,
    ),
    numerics: str = "lite",
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Modeled multi-stream speedup from the AOT kernel schedule.

    Two workloads on BERT, both compiled once per stream count with the
    static scheduler (``CompilerOptions.device_streams``):

    * **single** — one inference at ``single_seq_len``: the q/k/v
      projections and other independent kernels inside each layer spread
      across streams, bounded by the attention critical path.
    * **pipeline** — a ragged-tail batch run member-wise with
      ``sync=False`` and the stream offset rotated per member (exactly
      what the serving worker does), so successive members' device work
      overlaps on top of the intra-member parallelism.

    Every configuration is run twice; the replay must reproduce the
    latency bit-for-bit, and every output must be bitwise identical to
    the single-stream run (the scheduler only moves modeled device time,
    never numerics). Returns ``{"streams=N": {...}, "summary": {...}}``
    with the summary carrying the best speedups and the identity/
    determinism flags.
    """
    config = bert_config or BertConfig()
    weights = BertWeights.create(config, seed=seed)
    mod = build_bert_module(weights)
    platform = platform_by_name(platform_name)
    rng = np.random.RandomState(seed + 11)
    x_single = (rng.randn(single_seq_len, config.hidden) * 0.1).astype(np.float32)
    members = [
        (rng.randn(length, config.hidden) * 0.1).astype(np.float32)
        for length in pipeline_lengths
    ]
    kernel_cache = KernelCache()

    def run_once(exe):
        """(single_us, pipeline_us, single_out, pipeline_outs, profile)."""
        streams = max(1, exe.device_streams)
        ctx = ExecutionContext(platform, numerics=numerics)
        vm = VirtualMachine(exe, ctx)
        single_out = vm.run(x_single)
        single_us = ctx.elapsed_us
        ctx2 = ExecutionContext(platform, numerics=numerics)
        vm2 = VirtualMachine(exe, ctx2)
        start = ctx2.elapsed_us
        outs = [
            vm2.run(m, sync=False, stream_offset=i % streams)
            for i, m in enumerate(members)
        ]
        ctx2.clock.sync_all()
        return single_us, ctx2.elapsed_us - start, single_out, outs, vm2.profile

    results: Dict[str, Dict[str, float]] = {}
    baseline = None
    bit_identical = True
    deterministic = True
    for count in stream_counts:
        exe, _ = nimble.build(
            mod, platform,
            options=CompilerOptions(device_streams=count),
            kernel_cache=kernel_cache,
        )
        single_us, pipeline_us, single_out, outs, profile = run_once(exe)
        replay = run_once(exe)
        deterministic = deterministic and (
            replay[0] == single_us and replay[1] == pipeline_us
        )
        if baseline is None:
            baseline = (single_us, pipeline_us, single_out, outs)
        else:
            bit_identical = bit_identical and np.array_equal(
                single_out.numpy(), baseline[2].numpy()
            )
            bit_identical = bit_identical and all(
                np.array_equal(a.numpy(), b.numpy())
                for a, b in zip(outs, baseline[3])
            )
        busy = profile.stream_kernel_us
        total_busy = sum(busy.values())
        results[f"streams={count}"] = {
            "streams": float(exe.device_streams),
            "single_us": single_us,
            "pipeline_us": pipeline_us,
            "single_speedup": baseline[0] / single_us,
            "pipeline_speedup": baseline[1] / pipeline_us,
            "sync_events": float(profile.sync_events),
            "sync_waits": float(profile.sync_waits),
            "sync_stall_us": profile.sync_stall_us,
            "streams_busy": float(len(busy)),
            "busiest_stream_share": (
                max(busy.values()) / total_busy if total_busy else 0.0
            ),
        }
    best_single = max(r["single_speedup"] for r in results.values())
    best_pipeline = max(r["pipeline_speedup"] for r in results.values())
    results["summary"] = {
        "best_single_speedup": best_single,
        "best_pipeline_speedup": best_pipeline,
        "bit_identical": float(bit_identical),
        "deterministic": float(deterministic),
    }
    return results


# ---------------------------------------------------------------------------
# §4.5 symbolic tuning ablation
# ---------------------------------------------------------------------------


def tuning_ablation(
    platform_name: str = "arm",
    n_out: int = 768,
    k_in: int = 768,
    eval_shapes: Sequence[int] = tuple(2**i for i in range(0, 9)),
) -> Dict[str, float]:
    """How well the cross-shape-tuned config does vs per-shape oracle tuning
    and vs naively using the shape-64 winner."""
    from repro.codegen.tuner import AutoTuner
    from repro.ir import Any, Constant, Function, TensorType, Var
    from repro.ops import api
    from repro.tensor.ndarray import array as make_array

    platform = platform_by_name(platform_name)
    spec = platform.compute_spec
    rng = np.random.RandomState(0)
    w = (rng.randn(n_out, k_in) * 0.02).astype(np.float32)
    x = Var("x", TensorType((Any(), k_in), "float32"))
    prim = Function(
        [x], api.dense(x, Constant(make_array(w))),
        TensorType((Any(), n_out), "float32"), {"primitive": True},
    )

    tuner = AutoTuner(prim, platform, spec, seed=3)
    records = tuner.tune(64, n_trials=96)
    naive = records[0].schedule  # shape-64 winner, applied everywhere

    sym = SymbolicTuner(prim, platform, spec, seed=3)
    chosen = sym.tune(n_trials=96)

    def total(schedule) -> float:
        return sum(tuner.measure(schedule, m) for m in eval_shapes)

    oracle = 0.0
    for m in eval_shapes:
        per_shape = AutoTuner(prim, platform, spec, seed=3)
        oracle += per_shape.tune(m, n_trials=96)[0].cost_us

    return {
        "naive_us": total(naive),
        "symbolic_workflow_us": total(chosen),
        "oracle_us": oracle,
        "workflow_vs_oracle": total(chosen) / max(1e-9, oracle),
        "naive_vs_oracle": total(naive) / max(1e-9, oracle),
    }
