"""Experiment harness: runs every table/figure of the paper's evaluation."""

from repro.harness.experiments import (
    batch_specialization_study,
    compile_pool_study,
    staged_compile_study,
    figure3_dispatch,
    fleet_study,
    memory_planning_study,
    predictive_study,
    restart_study,
    serving_study,
    specialization_study,
    stream_study,
    table1_lstm,
    table2_tree_lstm,
    table3_bert,
    table4_overhead,
    tuning_ablation,
)
from repro.harness.reporting import format_table, percentile

__all__ = [
    "table1_lstm",
    "table2_tree_lstm",
    "table3_bert",
    "table4_overhead",
    "figure3_dispatch",
    "memory_planning_study",
    "serving_study",
    "specialization_study",
    "compile_pool_study",
    "staged_compile_study",
    "restart_study",
    "predictive_study",
    "fleet_study",
    "batch_specialization_study",
    "stream_study",
    "tuning_ablation",
    "format_table",
    "percentile",
]
