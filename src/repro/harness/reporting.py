"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    title: str,
    rows: Sequence[Sequence],
    headers: Sequence[str],
    floatfmt: str = "{:.1f}",
) -> str:
    """Render rows as an aligned text table with a title line."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(floatfmt.format(cell))
            elif cell is None:
                cells.append("-")
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def speedup(baseline_us: Optional[float], nimble_us: float) -> Optional[float]:
    if baseline_us is None or nimble_us <= 0:
        return None
    return baseline_us / nimble_us


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method), pure
    Python so serving reports stay bit-deterministic across platforms."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
