"""Static graph runtime — the "TVM" baseline of Table 4.

Executes *static* models the way a classic deep-learning-compiler runtime
does (§2.2): the dataflow graph is compiled ahead of time with fully
static shapes (kernels carry no symbolic-index overhead), all buffers are
planned and pre-allocated once (zero allocations on the inference path),
and execution is a straight walk over the nodes with minimal per-node
overhead. It cannot run dynamic models — that is the point of the paper —
and raises on control flow or ``Any`` shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codegen.kernels import KernelCache, KernelSet
from repro.core.memory.liveness import AliasLiveness
from repro.core.typing import InferType
from repro.errors import CompilerError
from repro.hardware.platforms import Platform, intel_cpu
from repro.ir.expr import (
    Call,
    Constant,
    Expr,
    Function,
    If,
    Let,
    Match,
    Tuple as IRTuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.types import TensorType, has_any_dim
from repro.passes import (
    CommonSubexprElimination,
    DeadCodeElimination,
    FoldConstant,
    FuseOps,
    Sequential,
    SimplifyExpressions,
    ToANF,
)
from repro.runtime.context import ExecutionContext
from repro.tensor.dtype import dtype_bytes

# Per-node overhead of the static executor (cheaper than a VM dispatch —
# it is an array walk, not an instruction decode).
_GRAPH_NODE_US = {"intel": 0.05, "nvidia": 0.05, "arm": 0.25}


@dataclass
class _Node:
    kernel: KernelSet
    input_ids: List[int]  # indices into the value table
    output_id: int
    device: object


class GraphRuntime:
    """Ahead-of-time compiled executor for one static function."""

    def __init__(
        self,
        mod: IRModule,
        platform: Optional[Platform] = None,
        kernel_cache: Optional[KernelCache] = None,
    ) -> None:
        self.platform = platform or intel_cpu()
        # Explicit None check: an empty KernelCache is falsy (__len__), and
        # `or` would silently swap a shared cache for a private one.
        self.cache = KernelCache() if kernel_cache is None else kernel_cache
        pipeline = Sequential(
            [
                InferType(),
                FoldConstant(),
                SimplifyExpressions(),
                ToANF(),
                CommonSubexprElimination(),
                DeadCodeElimination(),
                FuseOps(),
            ]
        )
        lowered = pipeline.run(mod)
        self.func = lowered.main
        self._validate_static(self.func)
        self._build(self.func)

    # ------------------------------------------------------------------ build
    @staticmethod
    def _validate_static(func: Function) -> None:
        for p in func.params:
            ty = p.checked_type or p.type_annotation
            if ty is None or has_any_dim(ty):
                raise CompilerError(
                    "GraphRuntime requires fully static input shapes "
                    "(dynamic models need the Nimble VM)"
                )

    def _build(self, func: Function) -> None:
        self.params = list(func.params)
        self.nodes: List[_Node] = []
        self.value_types: List[TensorType] = []
        self._value_of: Dict[Var, int] = {}
        self._constants: List[Tuple[int, np.ndarray]] = []
        self._moves: List[Tuple[int, int]] = []  # (src_id, dst_id)
        self._tgis: List[Tuple[int, int, int]] = []  # (tuple_src kernel node, field, dst)

        for i, p in enumerate(self.params):
            self._value_of[p] = self._new_value(p.checked_type)

        node: Expr = func.body
        bindings = []
        while isinstance(node, Let):
            bindings.append((node.var, node.value))
            node = node.body
        if not isinstance(node, Var):
            raise CompilerError("GraphRuntime expects strict-ANF output")
        for var, value in bindings:
            if isinstance(value, (If, Match)):
                raise CompilerError("GraphRuntime cannot execute control flow")
            if isinstance(value, Call) and isinstance(value.op, Function) and value.op.is_primitive:
                vid = self._new_value(var.checked_type)
                self._value_of[var] = vid
                input_ids = [self._input_id(a) for a in value.args]
                spec = self.platform.compute_spec
                kernel = self.cache.kernel(
                    value.op,
                    self.platform,
                    spec,
                    symbolic=False,  # static codegen: no symbolic overhead
                )
                self.nodes.append(
                    _Node(kernel, input_ids, vid, self.platform.compute)
                )
            elif isinstance(value, Var):
                self._value_of[var] = self._value_of[value]
            elif isinstance(value, Constant):
                vid = self._new_value(var.checked_type)
                self._value_of[var] = vid
                self._constants.append((vid, value.data))
            elif isinstance(value, TupleGetItem):
                raise CompilerError("GraphRuntime: tuple outputs unsupported")
            else:
                raise CompilerError(
                    f"GraphRuntime: unsupported node {type(value).__name__}"
                )
        self.output_id = self._value_of[node]
        self._plan_memory()

    def _new_value(self, ty) -> int:
        if not isinstance(ty, TensorType):
            raise CompilerError(f"GraphRuntime values must be tensors, got {ty!r}")
        self.value_types.append(ty)
        return len(self.value_types) - 1

    def _input_id(self, arg: Expr) -> int:
        if isinstance(arg, Var):
            return self._value_of[arg]
        if isinstance(arg, Constant):
            vid = self._new_value(
                TensorType(arg.value.shape, arg.value.dtype)
            )
            self._constants.append((vid, arg.data))
            return vid
        raise CompilerError("GraphRuntime: non-atom kernel argument")

    # --------------------------------------------------------- static planning
    def _plan_memory(self) -> None:
        """Classic static memory planning: interval-based buffer reuse.
        Records the planned footprint for the §6.3 memory comparison."""
        last_use = [0] * len(self.value_types)
        for t, node in enumerate(self.nodes):
            for vid in node.input_ids:
                last_use[vid] = t
        param_ids = {self._value_of[p] for p in self.params}
        const_ids = {vid for vid, _ in self._constants}
        pinned = param_ids | const_ids | {self.output_id}

        sizes = []
        for ty in self.value_types:
            n = ty.num_elements()
            sizes.append((n or 1) * dtype_bytes(ty.dtype))

        pool: List[Tuple[int, int]] = []  # (size, slot_id)
        slot_of: Dict[int, int] = {}
        slot_sizes: List[int] = []
        releases: Dict[int, List[int]] = {}
        for t, node in enumerate(self.nodes):
            for slot in releases.pop(t, ()):  # buffers whose life ended
                pool.append((slot_sizes[slot], slot))
            vid = node.output_id
            need = sizes[vid]
            best = None
            if vid not in pinned:
                for k, (size, slot) in enumerate(pool):
                    if size >= need and (best is None or size < pool[best][0]):
                        best = k
            if best is not None:
                _, slot = pool.pop(best)
            else:
                slot = len(slot_sizes)
                slot_sizes.append(need)
            slot_of[vid] = slot
            if vid not in pinned:
                releases.setdefault(last_use[vid] + 1, []).append(slot)

        self.planned_bytes = sum(slot_sizes)
        self.num_buffers = len(slot_sizes)
        self.total_tensor_bytes = sum(
            sizes[n.output_id] for n in self.nodes
        )

    # ------------------------------------------------------------------ execute
    def run(self, *inputs: np.ndarray, ctx: Optional[ExecutionContext] = None):
        """Execute; returns (output ndarray, latency_us)."""
        ctx = ctx or ExecutionContext(self.platform)
        if len(inputs) != len(self.params):
            raise CompilerError(
                f"expected {len(self.params)} inputs, got {len(inputs)}"
            )
        values: List[Optional[np.ndarray]] = [None] * len(self.value_types)
        for p, arr in zip(self.params, inputs):
            values[self._value_of[p]] = np.asarray(arr)
        for vid, data in self._constants:
            values[vid] = data

        clock = ctx.clock
        start = clock.elapsed_us
        node_us = _GRAPH_NODE_US[self.platform.name]
        compute = self.platform.compute
        spec = self.platform.compute_spec
        lite = ctx.numerics == "lite"
        for node in self.nodes:
            clock.host_advance(node_us)
            ins = [values[i] for i in node.input_ids]
            invocation = node.kernel.invoke_cost([i.shape for i in ins])
            if compute.is_gpu:
                clock.launch_async(compute, invocation.duration_us, spec.host_launch_us)
            else:
                clock.run_sync(invocation.duration_us)
            if lite and invocation.flops > 1e4:
                out_ty = self.value_types[node.output_id]
                from repro.tensor.dtype import to_numpy_dtype

                values[node.output_id] = np.zeros(
                    out_ty.shape, dtype=to_numpy_dtype(out_ty.dtype)
                )
            else:
                values[node.output_id] = node.kernel.run(ins)[0]
        clock.sync_all()
        return values[self.output_id], clock.elapsed_us - start
