"""Runtime substrate: virtual clock, tracking allocator, static graph runtime."""

from repro.runtime.clock import VirtualClock
from repro.runtime.allocator import AllocStats, PoolingAllocator
from repro.runtime.context import ExecutionContext

__all__ = ["VirtualClock", "AllocStats", "PoolingAllocator", "ExecutionContext"]
