"""Pooling allocator with allocation accounting.

Dynamic models allocate at runtime (shapes are inputs-dependent), so
allocation cost shows up on the latency path — §6.3 measures 2.0 ms of it
for BERT on Intel, reduced to 0.5 ms by planning. The VM frees buffers at
``memory.kill`` and this allocator recycles them: a size-class pool hit is
an order of magnitude cheaper than a fresh allocation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware import calibration
from repro.hardware.platforms import Platform
from repro.runtime.clock import VirtualClock
from repro.tensor.device import Device
from repro.tensor.storage import Storage


@dataclass
class AllocStats:
    fresh_allocs: int = 0
    pooled_allocs: int = 0
    frees: int = 0
    bytes_allocated: int = 0
    peak_bytes: int = 0
    alloc_time_us: float = 0.0

    @property
    def total_allocs(self) -> int:
        return self.fresh_allocs + self.pooled_allocs

    def reset(self) -> None:
        self.fresh_allocs = 0
        self.pooled_allocs = 0
        self.frees = 0
        self.bytes_allocated = 0
        self.peak_bytes = 0
        self.alloc_time_us = 0.0


def _size_class(nbytes: int) -> int:
    """Round up to the next power of two (min 64 B) for pool bucketing."""
    size = 64
    while size < nbytes:
        size <<= 1
    return size


class PoolingAllocator:
    def __init__(self, platform: Platform, clock: Optional[VirtualClock] = None,
                 pooling: bool = True) -> None:
        self.platform = platform
        self.clock = clock
        self.pooling = pooling
        self.stats = AllocStats()
        self._live_bytes = 0
        self._pools: Dict[Device, Dict[int, List[Storage]]] = defaultdict(
            lambda: defaultdict(list)
        )

    @property
    def live_bytes(self) -> int:
        """Bytes currently allocated and not yet freed. Zero between
        inferences means every buffer drained back to the pool — the VM
        leak-regression tests assert exactly this."""
        return self._live_bytes

    # -- allocation -----------------------------------------------------------
    def alloc(self, nbytes: int, alignment: int, device: Device) -> Storage:
        size = _size_class(max(1, int(nbytes)))
        pool = self._pools[device][size]
        if self.pooling and pool:
            storage = pool.pop()
            storage.freed = False
            self.stats.pooled_allocs += 1
            self._charge(calibration.ALLOC_POOLED_US[self.platform.name])
        else:
            storage = Storage(size, alignment, device)
            self.stats.fresh_allocs += 1
            self.stats.bytes_allocated += size
            self._charge(calibration.ALLOC_FRESH_US[self.platform.name])
        self._live_bytes += size
        self.stats.peak_bytes = max(self.stats.peak_bytes, self._live_bytes)
        return storage

    def free(self, storage: Storage) -> None:
        if storage.freed:
            return
        storage.free()
        self.stats.frees += 1
        self._live_bytes -= storage.size
        if self.pooling:
            self._pools[storage.device][storage.size].append(storage)

    def release_all(self) -> None:
        """End-of-inference: drop *pooled* (already freed) storage.

        Live bytes are deliberately left untouched — zeroing them here
        would forgive leaked buffers and defeat the leak-regression
        invariant that ``live_bytes == 0`` between inferences (which
        ``Worker.reset`` and the VM leak tests rely on). A leak must stay
        visible; callers that expect a drained allocator should check
        :attr:`live_bytes` (or call :meth:`assert_drained`).
        """
        self._pools.clear()

    def assert_drained(self) -> None:
        """Raise if any buffer is still live (a leak escaped the VM's
        refcounting); used at worker reset so leaks surface at the
        serving layer instead of silently skewing the next replay."""
        if self._live_bytes != 0:
            raise MemoryError(
                f"allocator still holds {self._live_bytes} live bytes at "
                f"release; a buffer leaked past the VM's refcounting"
            )

    def _charge(self, us: float) -> None:
        self.stats.alloc_time_us += us
        if self.clock is not None:
            self.clock.host_advance(us)
