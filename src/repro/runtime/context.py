"""Execution context: platform + clock + allocator bundle.

Every executor in this reproduction — the Nimble VM, the static graph
runtime, and all baseline frameworks — runs against an ExecutionContext so
that latency accounting and allocation behavior are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.platforms import Platform, intel_cpu
from repro.runtime.allocator import PoolingAllocator
from repro.runtime.clock import VirtualClock


class ExecutionContext:
    """``numerics`` selects execution fidelity:

    * ``"full"`` — every kernel computes real values (tests assert numerical
      equality across executors);
    * ``"lite"`` — large data-independent kernels skip their NumPy compute
      (buffers keep their contents); shapes, control flow, scalar kernels,
      shape functions, allocation and all latency modeling stay exact.
      Benchmarks use this to run paper-sized models (BERT-base) quickly —
      virtual latency is identical in both modes.
    """

    def __init__(
        self,
        platform: Optional[Platform] = None,
        pooling: bool = True,
        numerics: str = "full",
    ) -> None:
        if numerics not in ("full", "lite"):
            raise ValueError(f"numerics must be 'full' or 'lite', got {numerics!r}")
        self.platform = platform or intel_cpu()
        self.numerics = numerics
        self.clock = VirtualClock()
        self.allocator = PoolingAllocator(self.platform, self.clock, pooling=pooling)

    def reset_clock(self) -> None:
        self.clock.reset()

    @property
    def elapsed_us(self) -> float:
        return self.clock.elapsed_us
