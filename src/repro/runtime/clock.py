"""The virtual clock.

All latency numbers in this reproduction are *virtual microseconds*
advanced by an analytical cost model — real NumPy compute still runs for
numerical correctness, but wall-clock time never enters a measurement, so
results are deterministic and GPU-free.

The clock models the host-interaction execution of GPU-class devices: the
host enqueues kernels asynchronously (cheap) while each device retires
them in order; reading a device value from the host synchronizes. This is
what makes Table 4's "others" overhead almost disappear on the GPU — the
bytecode latency overlaps with device execution (§6.3).
"""

from __future__ import annotations

from typing import Dict

from repro.tensor.device import Device


class VirtualClock:
    def __init__(self) -> None:
        self.host_us: float = 0.0
        self.device_ready_us: Dict[Device, float] = {}

    # -- host-side time -------------------------------------------------------
    def host_advance(self, us: float) -> None:
        self.host_us += us

    def advance_to(self, us: float) -> None:
        """Fast-forward host time to a global timestamp (no-op if already
        past it). Serving workers use this to align their local clock with
        the server's event timeline before dispatching a batch: the idle gap
        between a worker's last finish and the next batch's start is wall
        time, not work."""
        if us > self.host_us:
            self.host_us = us

    # -- kernels -----------------------------------------------------------------
    def run_sync(self, us: float) -> None:
        """A kernel on the host device: fully synchronous."""
        self.host_us += us

    def launch_async(self, device: Device, duration_us: float, enqueue_us: float) -> None:
        """Enqueue a kernel on an accelerator: the host pays only the
        enqueue cost; the device retires it after its queue drains."""
        self.host_us += enqueue_us
        ready = self.device_ready_us.get(device, 0.0)
        start = max(ready, self.host_us)
        self.device_ready_us[device] = start + duration_us

    def sync(self, device: Device) -> None:
        """Host waits for the device queue to drain (e.g. before reading a
        device-resident value)."""
        ready = self.device_ready_us.get(device, 0.0)
        self.host_us = max(self.host_us, ready)

    def sync_all(self) -> None:
        for device in list(self.device_ready_us):
            self.sync(device)

    # -- reading ------------------------------------------------------------------
    @property
    def elapsed_us(self) -> float:
        """Total elapsed latency (host joined with all device queues)."""
        pending = max(self.device_ready_us.values(), default=0.0)
        return max(self.host_us, pending)

    def reset(self) -> None:
        self.host_us = 0.0
        self.device_ready_us.clear()
