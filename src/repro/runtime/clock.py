"""The virtual clock.

All latency numbers in this reproduction are *virtual microseconds*
advanced by an analytical cost model — real NumPy compute still runs for
numerical correctness, but wall-clock time never enters a measurement, so
results are deterministic and GPU-free.

The clock models the host-interaction execution of GPU-class devices: the
host enqueues kernels asynchronously (cheap) while each device retires
them in order; reading a device value from the host synchronizes. This is
what makes Table 4's "others" overhead almost disappear on the GPU — the
bytecode latency overlaps with device execution (§6.3).

A device is modeled as N independent in-order *streams* (CUDA-stream
style, following Kwon et al.'s *Nimble: Lightweight and Parallel GPU Task
Scheduling*): each ``(device, stream)`` pair keeps its own ready frontier,
kernels launched onto different streams overlap, and cross-stream ordering
is expressed with recorded events (``record_event`` — the modeled
``cudaEventRecord``) that another stream waits on (``wait_event`` —
``cudaStreamWaitEvent``). Everything launched on stream 0 with no events
reproduces the single-lane model exactly, number for number.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.tensor.device import Device


class VirtualClock:
    def __init__(self) -> None:
        self.host_us: float = 0.0
        # Per-(device, stream) retire frontier: when the work enqueued so
        # far on that stream will have drained.
        self.stream_ready_us: Dict[Tuple[Device, int], float] = {}

    # -- host-side time -------------------------------------------------------
    def host_advance(self, us: float) -> None:
        self.host_us += us

    def advance_to(self, us: float) -> None:
        """Fast-forward host time to a global timestamp (no-op if already
        past it). Serving workers use this to align their local clock with
        the server's event timeline before dispatching a batch: the idle gap
        between a worker's last finish and the next batch's start is wall
        time, not work."""
        if us > self.host_us:
            self.host_us = us

    # -- kernels -----------------------------------------------------------------
    def run_sync(self, us: float) -> None:
        """A kernel on the host device: fully synchronous."""
        self.host_us += us

    def launch_async(
        self,
        device: Device,
        duration_us: float,
        enqueue_us: float,
        stream: int = 0,
    ) -> None:
        """Enqueue a kernel on one stream of an accelerator: the host pays
        only the enqueue cost; the stream retires it after its own queue
        drains (a kernel can never start before the host enqueued it)."""
        self.host_us += enqueue_us
        key = (device, stream)
        ready = self.stream_ready_us.get(key, 0.0)
        start = max(ready, self.host_us)
        self.stream_ready_us[key] = start + duration_us

    # -- cross-stream events ------------------------------------------------------
    def record_event(
        self, device: Device, stream: int, host_cost_us: float = 0.0
    ) -> float:
        """Record an event on a stream (modeled ``cudaEventRecord``): the
        host pays the record cost; the returned timestamp is when every
        kernel enqueued on the stream so far will have retired (an event
        on an idle stream completes at record time)."""
        self.host_us += host_cost_us
        return max(self.stream_ready_us.get((device, stream), 0.0), self.host_us)

    def wait_event(
        self,
        device: Device,
        stream: int,
        event_us: float,
        host_cost_us: float = 0.0,
        sync_us: float = 0.0,
    ) -> float:
        """Make a stream wait for a recorded event (modeled
        ``cudaStreamWaitEvent``): the host pays the enqueue cost; the
        stream's frontier is pushed past the event. ``sync_us`` is the
        device-side propagation charge, paid only when the event actually
        stalls the stream — waiting on an already-complete event is free
        on the device, like the real API. Returns the modeled stall
        (frontier delta) so profilers can account per-stream idle time."""
        self.host_us += host_cost_us
        key = (device, stream)
        ready = self.stream_ready_us.get(key, 0.0)
        if event_us <= ready:
            return 0.0
        self.stream_ready_us[key] = event_us + sync_us
        return event_us + sync_us - ready

    # -- synchronisation ----------------------------------------------------------
    def device_ready(self, device: Device) -> float:
        """The device-wide frontier: when ALL its streams will be idle."""
        return max(
            (
                ready
                for (dev, _stream), ready in self.stream_ready_us.items()
                if dev == device
            ),
            default=0.0,
        )

    def sync(self, device: Device) -> None:
        """Host waits for every stream of the device to drain (e.g. before
        reading a device-resident value)."""
        self.host_us = max(self.host_us, self.device_ready(device))

    def sync_all(self) -> None:
        pending = max(self.stream_ready_us.values(), default=0.0)
        self.host_us = max(self.host_us, pending)

    # -- reading ------------------------------------------------------------------
    @property
    def elapsed_us(self) -> float:
        """Total elapsed latency (host joined with all device streams)."""
        pending = max(self.stream_ready_us.values(), default=0.0)
        return max(self.host_us, pending)

    def reset(self) -> None:
        self.host_us = 0.0
        self.stream_ready_us.clear()
