"""Static CV models for the §6.3 memory-footprint comparison.

The paper compares Nimble's planned memory against TVM's static
pre-allocation on ResNet, MobileNet, VGG and SqueezeNet. These builders
produce faithful-in-structure (depth-reduced) NCHW graphs: what matters
for the memory experiment is the *pattern* of intermediate tensor sizes
and lifetimes, not classification accuracy.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.ir import Constant, Function, IRModule, ScopeBuilder, TensorType, Var
from repro.ops import api
from repro.tensor.ndarray import array as make_array


def _conv_weights(rng, out_c: int, in_c: int, k: int) -> Constant:
    return Constant(
        make_array((rng.randn(out_c, in_c, k, k) * 0.05).astype(np.float32))
    )


def _conv_bn_relu(sb, rng, x, in_c: int, out_c: int, k: int, stride: int, pad: int, tag: str,
                  groups: int = 1, relu: bool = True):
    w = _conv_weights(rng, out_c, in_c // groups, k)
    y = sb.let(f"conv{tag}", api.conv2d(x, w, strides=stride, padding=pad, groups=groups))
    gamma = Constant(make_array(np.ones(out_c, np.float32)))
    beta = Constant(make_array(np.zeros(out_c, np.float32)))
    mean = Constant(make_array(np.zeros(out_c, np.float32)))
    var = Constant(make_array(np.ones(out_c, np.float32)))
    y = sb.let(f"bn{tag}", api.batch_norm_inference(y, gamma, beta, mean, var))
    if relu:
        y = sb.let(f"relu{tag}", api.relu(y))
    return y


def build_resnet_like(image: int = 64, seed: int = 0) -> IRModule:
    """Residual stages with identity shortcuts (ResNet-style)."""
    rng = np.random.RandomState(seed)
    x_in = Var("x", TensorType((1, 3, image, image), "float32"))
    sb = ScopeBuilder()
    x = _conv_bn_relu(sb, rng, x_in, 3, 32, 3, 1, 1, "_stem")
    channels = 32
    for stage, out_c in enumerate((32, 64, 128)):
        stride = 1 if stage == 0 else 2
        # Downsample / channel-change block.
        branch = _conv_bn_relu(sb, rng, x, channels, out_c, 3, stride, 1, f"_s{stage}a")
        branch = _conv_bn_relu(sb, rng, branch, out_c, out_c, 3, 1, 1, f"_s{stage}b", relu=False)
        if stride != 1 or channels != out_c:
            shortcut = _conv_bn_relu(sb, rng, x, channels, out_c, 1, stride, 0, f"_s{stage}sc", relu=False)
        else:
            shortcut = x
        x = sb.let(f"res_s{stage}", api.relu(api.add(branch, shortcut)))
        # Identity block.
        branch = _conv_bn_relu(sb, rng, x, out_c, out_c, 3, 1, 1, f"_s{stage}c")
        branch = _conv_bn_relu(sb, rng, branch, out_c, out_c, 3, 1, 1, f"_s{stage}d", relu=False)
        x = sb.let(f"res2_s{stage}", api.relu(api.add(branch, x)))
        channels = out_c
    x = sb.let("gap", api.global_avg_pool2d(x))
    x = sb.let("flat", api.reshape(x, (1, channels)))
    w_fc = Constant(make_array((rng.randn(10, channels) * 0.05).astype(np.float32)))
    x = sb.let("logits", api.dense(x, w_fc))
    mod = IRModule()
    mod["main"] = Function([x_in], sb.get(x), TensorType((1, 10), "float32"))
    return mod


def build_mobilenet_like(image: int = 64, seed: int = 0) -> IRModule:
    """Depthwise-separable stacks (MobileNet-style)."""
    rng = np.random.RandomState(seed)
    x_in = Var("x", TensorType((1, 3, image, image), "float32"))
    sb = ScopeBuilder()
    x = _conv_bn_relu(sb, rng, x_in, 3, 32, 3, 2, 1, "_stem")
    channels = 32
    for i, (out_c, stride) in enumerate(((64, 1), (128, 2), (128, 1), (256, 2))):
        # Depthwise.
        x = _conv_bn_relu(sb, rng, x, channels, channels, 3, stride, 1, f"_dw{i}", groups=channels)
        # Pointwise.
        x = _conv_bn_relu(sb, rng, x, channels, out_c, 1, 1, 0, f"_pw{i}")
        channels = out_c
    x = sb.let("gap", api.global_avg_pool2d(x))
    x = sb.let("flat", api.reshape(x, (1, channels)))
    w_fc = Constant(make_array((rng.randn(10, channels) * 0.05).astype(np.float32)))
    x = sb.let("logits", api.dense(x, w_fc))
    mod = IRModule()
    mod["main"] = Function([x_in], sb.get(x), TensorType((1, 10), "float32"))
    return mod


def build_vgg_like(image: int = 64, seed: int = 0) -> IRModule:
    """Plain conv/conv/pool stacks with large dense head (VGG-style)."""
    rng = np.random.RandomState(seed)
    x_in = Var("x", TensorType((1, 3, image, image), "float32"))
    sb = ScopeBuilder()
    x = x_in
    channels = 3
    size = image
    for stage, out_c in enumerate((32, 64, 128)):
        x = _conv_bn_relu(sb, rng, x, channels, out_c, 3, 1, 1, f"_s{stage}a")
        x = _conv_bn_relu(sb, rng, x, out_c, out_c, 3, 1, 1, f"_s{stage}b")
        x = sb.let(f"pool_s{stage}", api.max_pool2d(x, 2))
        channels = out_c
        size //= 2
    flat_dim = channels * size * size
    x = sb.let("flat", api.reshape(x, (1, flat_dim)))
    w1 = Constant(make_array((rng.randn(256, flat_dim) * 0.02).astype(np.float32)))
    x = sb.let("fc1", api.relu(api.dense(x, w1)))
    w2 = Constant(make_array((rng.randn(10, 256) * 0.05).astype(np.float32)))
    x = sb.let("logits", api.dense(x, w2))
    mod = IRModule()
    mod["main"] = Function([x_in], sb.get(x), TensorType((1, 10), "float32"))
    return mod


def build_squeezenet_like(image: int = 64, seed: int = 0) -> IRModule:
    """Fire modules: squeeze 1×1 then expand 1×1 ∥ 3×3 (SqueezeNet-style)."""
    rng = np.random.RandomState(seed)
    x_in = Var("x", TensorType((1, 3, image, image), "float32"))
    sb = ScopeBuilder()
    x = _conv_bn_relu(sb, rng, x_in, 3, 32, 3, 2, 1, "_stem")
    channels = 32
    for i, (squeeze_c, expand_c) in enumerate(((16, 32), (16, 32), (32, 64))):
        s = _conv_bn_relu(sb, rng, x, channels, squeeze_c, 1, 1, 0, f"_f{i}s")
        e1 = _conv_bn_relu(sb, rng, s, squeeze_c, expand_c, 1, 1, 0, f"_f{i}e1")
        e3 = _conv_bn_relu(sb, rng, s, squeeze_c, expand_c, 3, 1, 1, f"_f{i}e3")
        x = sb.let(f"fire{i}", api.concatenate([e1, e3], axis=1))
        channels = expand_c * 2
        if i == 1:
            x = sb.let(f"pool{i}", api.max_pool2d(x, 2))
    x = sb.let("gap", api.global_avg_pool2d(x))
    x = sb.let("flat", api.reshape(x, (1, channels)))
    w_fc = Constant(make_array((rng.randn(10, channels) * 0.05).astype(np.float32)))
    x = sb.let("logits", api.dense(x, w_fc))
    mod = IRModule()
    mod["main"] = Function([x_in], sb.get(x), TensorType((1, 10), "float32"))
    return mod
