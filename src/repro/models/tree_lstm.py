"""Tree-LSTM — the dynamic-data-structure model of Table 2.

A binary child-sum Tree-LSTM (Tai et al. 2015) over constituency-style
trees: the tree is an ADT (``Leaf(embedding) | Node(Tree, Tree)``) and
evaluation is a recursive ``match`` — per-input topology, inexpressible as
a static dataflow graph. Paper configuration: input 300, hidden 150.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.trees import Tree
from repro.ir import (
    Call,
    Clause,
    Constant,
    Function,
    IRModule,
    Match,
    PatternConstructor,
    PatternVar,
    ScopeBuilder,
    TensorType,
    Tuple as IRTuple,
    TupleGetItem,
    TypeCall,
    TypeData,
    Var,
)
from repro.ir.types import TupleType
from repro.ops import api
from repro.tensor.ndarray import array as make_array
from repro.vm.objects import ADTObj, TensorObj


@dataclass
class TreeLSTMWeights:
    input_size: int
    hidden_size: int
    # Leaf transform: gates [i, o, u] from the input embedding.
    w_leaf: np.ndarray  # (3H, I)
    b_leaf: np.ndarray  # (3H,)
    # Node transform: gates [i, o, u] from h_l + h_r.
    u_iou: np.ndarray  # (3H, H)
    b_iou: np.ndarray  # (3H,)
    # Per-child forget gates from that child's hidden state.
    u_f: np.ndarray  # (H, H)
    b_f: np.ndarray  # (H,)

    @staticmethod
    def create(input_size: int = 300, hidden_size: int = 150, seed: int = 0) -> "TreeLSTMWeights":
        rng = np.random.RandomState(seed)
        s = 0.08
        u = lambda shape: rng.uniform(-s, s, shape).astype(np.float32)
        return TreeLSTMWeights(
            input_size,
            hidden_size,
            w_leaf=u((3 * hidden_size, input_size)),
            b_leaf=u((3 * hidden_size,)),
            u_iou=u((3 * hidden_size, hidden_size)),
            b_iou=u((3 * hidden_size,)),
            u_f=u((hidden_size, hidden_size)),
            b_f=u((hidden_size,)),
        )


def build_tree_lstm_module(weights: TreeLSTMWeights) -> IRModule:
    """Module with ``main(t: Tree) -> Tensor[(1, H)]`` (the root hidden
    state) plus the ``Tree`` ADT definition."""
    input_size, hidden = weights.input_size, weights.hidden_size
    mod = IRModule()

    tree_gtv = mod.get_global_type_var("Tree")
    emb_ty = TensorType((1, input_size), "float32")
    tree_ty = TypeCall(tree_gtv, [])
    data = TypeData(
        tree_gtv,
        [],
        [
            ("Leaf", [emb_ty]),
            ("Node", [tree_ty, tree_ty]),
        ],
    )
    mod.add_type_data(data)
    leaf_ctor = data.constructor("Leaf")
    node_ctor = data.constructor("Node")

    state_ty = TensorType((1, hidden), "float32")
    hc_ty = TupleType([state_ty, state_ty])

    eval_gv = mod.get_global_var("tree_eval")
    t_var = Var("t", tree_ty)

    # -- Leaf clause: gates from the embedding ----------------------------------
    x = Var("x", emb_ty)
    lb = ScopeBuilder()
    pre = lb.let("pre", api.bias_add(api.dense(x, Constant(make_array(weights.w_leaf))),
                                     Constant(make_array(weights.b_leaf))))
    parts = lb.let("parts", api.split(pre, 3, axis=1))
    i = lb.let("i", api.sigmoid(TupleGetItem(parts, 0)))
    o = lb.let("o", api.sigmoid(TupleGetItem(parts, 1)))
    u = lb.let("u", api.tanh(TupleGetItem(parts, 2)))
    c = lb.let("c", api.multiply(i, u))
    h = lb.let("h", api.multiply(o, api.tanh(c)))
    leaf_rhs = lb.get(IRTuple([h, c]))

    # -- Node clause: recurse into both children, combine --------------------------
    left = Var("l", tree_ty)
    right = Var("r", tree_ty)
    nb = ScopeBuilder()
    lhc = nb.let("lhc", Call(eval_gv, [left]))
    rhc = nb.let("rhc", Call(eval_gv, [right]))
    hl = nb.let("hl", TupleGetItem(lhc, 0))
    cl = nb.let("cl", TupleGetItem(lhc, 1))
    hr = nb.let("hr", TupleGetItem(rhc, 0))
    cr = nb.let("cr", TupleGetItem(rhc, 1))
    hsum = nb.let("hsum", api.add(hl, hr))
    pre_n = nb.let(
        "pre_n",
        api.bias_add(api.dense(hsum, Constant(make_array(weights.u_iou))),
                     Constant(make_array(weights.b_iou))),
    )
    parts_n = nb.let("parts_n", api.split(pre_n, 3, axis=1))
    i_n = nb.let("i_n", api.sigmoid(TupleGetItem(parts_n, 0)))
    o_n = nb.let("o_n", api.sigmoid(TupleGetItem(parts_n, 1)))
    u_n = nb.let("u_n", api.tanh(TupleGetItem(parts_n, 2)))
    uf = Constant(make_array(weights.u_f))
    bf = Constant(make_array(weights.b_f))
    fl = nb.let("fl", api.sigmoid(api.bias_add(api.dense(hl, uf), bf)))
    fr = nb.let("fr", api.sigmoid(api.bias_add(api.dense(hr, uf), bf)))
    c_n = nb.let(
        "c_n",
        api.add(
            api.multiply(i_n, u_n),
            api.add(api.multiply(fl, cl), api.multiply(fr, cr)),
        ),
    )
    h_n = nb.let("h_n", api.multiply(o_n, api.tanh(c_n)))
    node_rhs = nb.get(IRTuple([h_n, c_n]))

    clauses = [
        Clause(PatternConstructor(leaf_ctor, [PatternVar(x)]), leaf_rhs),
        Clause(PatternConstructor(node_ctor, [PatternVar(left), PatternVar(right)]), node_rhs),
    ]
    mod[eval_gv] = Function([t_var], Match(t_var, clauses), hc_ty)

    root = Var("t", tree_ty)
    mb = ScopeBuilder()
    hc = mb.let("hc", Call(eval_gv, [root]))
    h_root = mb.let("h_root", TupleGetItem(hc, 0))
    mod["main"] = Function([root], mb.get(h_root), state_ty)
    return mod


def tree_to_adt(tree: Tree, embeddings: np.ndarray) -> ADTObj:
    """Convert a dataset tree (leaves hold token ids) into VM ADT objects;
    tags must match the declaration order in :func:`build_tree_lstm_module`."""
    if tree.is_leaf:
        vec = embeddings[tree.token_id : tree.token_id + 1].astype(np.float32)
        return ADTObj(0, [TensorObj(make_array(vec))])
    return ADTObj(
        1,
        [tree_to_adt(tree.left, embeddings), tree_to_adt(tree.right, embeddings)],
    )


# ---------------------------------------------------------------------------
# NumPy reference
# ---------------------------------------------------------------------------


def _sig(v: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-v))


def tree_lstm_reference(
    tree: Tree, embeddings: np.ndarray, weights: TreeLSTMWeights
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate the Tree-LSTM eagerly; returns (h, c) at the root."""
    if tree.is_leaf:
        x = embeddings[tree.token_id : tree.token_id + 1].astype(np.float32)
        pre = x @ weights.w_leaf.T + weights.b_leaf
        i, o, u = np.split(pre, 3, axis=1)
        c = _sig(i) * np.tanh(u)
        h = _sig(o) * np.tanh(c)
        return h.astype(np.float32), c.astype(np.float32)
    hl, cl = tree_lstm_reference(tree.left, embeddings, weights)
    hr, cr = tree_lstm_reference(tree.right, embeddings, weights)
    hsum = hl + hr
    pre = hsum @ weights.u_iou.T + weights.b_iou
    i, o, u = np.split(pre, 3, axis=1)
    fl = _sig(hl @ weights.u_f.T + weights.b_f)
    fr = _sig(hr @ weights.u_f.T + weights.b_f)
    c = _sig(i) * np.tanh(u) + fl * cl + fr * cr
    h = _sig(o) * np.tanh(c)
    return h.astype(np.float32), c.astype(np.float32)
