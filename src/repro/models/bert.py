"""BERT — the dynamic-shape model of Tables 3 and 4.

BERT-base encoder (12 layers, hidden 768, 12 heads, FFN 3072) over a
dynamic sequence length: ``main(x: Tensor[(Any, 768)])``. Every dense
kernel therefore compiles symbolically (§4.5) — these are exactly the
three dense shapes Figure 3 dissects: 768→768 (QKV/projection), 768→3072
and 3072→768 (FFN).

Attention uses ``nn.batch_matmul`` over per-head reshapes. The builder is
configurable so tests can use a 2-layer / 64-hidden instance while the
benchmarks build the paper's full BERT-base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.ir import (
    Any,
    Constant,
    Function,
    IRModule,
    ScopeBuilder,
    TensorType,
    Var,
)
from repro.ops import api
from repro.tensor.ndarray import array as make_array


@dataclass(frozen=True)
class BertConfig:
    hidden: int = 768
    num_layers: int = 12
    num_heads: int = 12
    ffn: int = 3072
    layer_norm_eps: float = 1e-12

    @property
    def head_dim(self) -> int:
        return self.hidden // self.num_heads


@dataclass
class BertLayerWeights:
    wq: np.ndarray
    bq: np.ndarray
    wk: np.ndarray
    bk: np.ndarray
    wv: np.ndarray
    bv: np.ndarray
    wo: np.ndarray
    bo: np.ndarray
    ln1_g: np.ndarray
    ln1_b: np.ndarray
    w1: np.ndarray  # (ffn, hidden)
    b1: np.ndarray
    w2: np.ndarray  # (hidden, ffn)
    b2: np.ndarray
    ln2_g: np.ndarray
    ln2_b: np.ndarray


@dataclass
class BertWeights:
    config: BertConfig
    layers: List[BertLayerWeights]

    @staticmethod
    def create(config: BertConfig = BertConfig(), seed: int = 0) -> "BertWeights":
        rng = np.random.RandomState(seed)
        h, f = config.hidden, config.ffn
        s = 0.02
        u = lambda *shape: (rng.randn(*shape) * s).astype(np.float32)
        layers = [
            BertLayerWeights(
                wq=u(h, h), bq=u(h), wk=u(h, h), bk=u(h), wv=u(h, h), bv=u(h),
                wo=u(h, h), bo=u(h),
                ln1_g=np.ones(h, np.float32), ln1_b=np.zeros(h, np.float32),
                w1=u(f, h), b1=u(f), w2=u(h, f), b2=u(h),
                ln2_g=np.ones(h, np.float32), ln2_b=np.zeros(h, np.float32),
            )
            for _ in range(config.num_layers)
        ]
        return BertWeights(config, layers)


def _attention(sb: ScopeBuilder, x, lw: BertLayerWeights, cfg: BertConfig, tag: str):
    C = lambda a: Constant(make_array(a))
    heads, hd, h = cfg.num_heads, cfg.head_dim, cfg.hidden
    q = sb.let(f"q{tag}", api.bias_add(api.dense(x, C(lw.wq)), C(lw.bq)))
    k = sb.let(f"k{tag}", api.bias_add(api.dense(x, C(lw.wk)), C(lw.bk)))
    v = sb.let(f"v{tag}", api.bias_add(api.dense(x, C(lw.wv)), C(lw.bv)))
    # (L, H) -> (heads, L, hd)
    qh = sb.let(f"qh{tag}", api.transpose(api.reshape(q, (-1, heads, hd)), (1, 0, 2)))
    kh = sb.let(f"kh{tag}", api.transpose(api.reshape(k, (-1, heads, hd)), (1, 0, 2)))
    vh = sb.let(f"vh{tag}", api.transpose(api.reshape(v, (-1, heads, hd)), (1, 0, 2)))
    # scores: (heads, L, L) = qh @ kh^T  (batch_matmul's rhs is (b, N, K))
    scores = sb.let(f"scores{tag}", api.batch_matmul(qh, kh))
    scaled = sb.let(
        f"scaled{tag}", api.multiply(scores, Constant(make_array(np.float32(1.0 / np.sqrt(hd)))))
    )
    probs = sb.let(f"probs{tag}", api.softmax(scaled, axis=-1))
    # context: (heads, L, hd) = probs @ vh  -> rhs must be (b, hd, L)
    vt = sb.let(f"vt{tag}", api.transpose(vh, (0, 2, 1)))
    ctx = sb.let(f"ctx{tag}", api.batch_matmul(probs, vt))
    # (heads, L, hd) -> (L, H)
    merged = sb.let(
        f"merged{tag}", api.reshape(api.transpose(ctx, (1, 0, 2)), (-1, h))
    )
    out = sb.let(f"attn_out{tag}", api.bias_add(api.dense(merged, C(lw.wo)), C(lw.bo)))
    return out


def build_bert_module(weights: BertWeights) -> IRModule:
    """``main(x: Tensor[(Any, hidden)]) -> Tensor[(Any, hidden)]``."""
    cfg = weights.config
    C = lambda a: Constant(make_array(a))
    seq_any = Any()
    x_in = Var("x", TensorType((seq_any, cfg.hidden), "float32"))
    sb = ScopeBuilder()
    x = x_in
    for li, lw in enumerate(weights.layers):
        attn = _attention(sb, x, lw, cfg, f"_l{li}")
        res1 = sb.let(f"res1_l{li}", api.add(x, attn))
        ln1 = sb.let(
            f"ln1_l{li}",
            api.layer_norm(res1, C(lw.ln1_g), C(lw.ln1_b), epsilon=cfg.layer_norm_eps),
        )
        ff1 = sb.let(
            f"ff1_l{li}",
            api.gelu(api.bias_add(api.dense(ln1, C(lw.w1)), C(lw.b1))),
        )
        ff2 = sb.let(
            f"ff2_l{li}", api.bias_add(api.dense(ff1, C(lw.w2)), C(lw.b2))
        )
        res2 = sb.let(f"res2_l{li}", api.add(ln1, ff2))
        x = sb.let(
            f"ln2_l{li}",
            api.layer_norm(res2, C(lw.ln2_g), C(lw.ln2_b), epsilon=cfg.layer_norm_eps),
        )
    mod = IRModule()
    mod["main"] = Function(
        [x_in], sb.get(x), TensorType((Any(), cfg.hidden), "float32")
    )
    return mod


def build_bert_static_module(weights: BertWeights, seq_len: int) -> IRModule:
    """The same encoder with a *static* sequence length — what TVM's static
    pipeline compiles for the Table 4 comparison."""
    cfg = weights.config
    C = lambda a: Constant(make_array(a))
    x_in = Var("x", TensorType((seq_len, cfg.hidden), "float32"))
    sb = ScopeBuilder()
    x = x_in
    for li, lw in enumerate(weights.layers):
        attn = _attention(sb, x, lw, cfg, f"_l{li}")
        res1 = sb.let(f"res1_l{li}", api.add(x, attn))
        ln1 = sb.let(
            f"ln1_l{li}",
            api.layer_norm(res1, C(lw.ln1_g), C(lw.ln1_b), epsilon=cfg.layer_norm_eps),
        )
        ff1 = sb.let(
            f"ff1_l{li}",
            api.gelu(api.bias_add(api.dense(ln1, C(lw.w1)), C(lw.b1))),
        )
        ff2 = sb.let(f"ff2_l{li}", api.bias_add(api.dense(ff1, C(lw.w2)), C(lw.b2)))
        res2 = sb.let(f"res2_l{li}", api.add(ln1, ff2))
        x = sb.let(
            f"ln2_l{li}",
            api.layer_norm(res2, C(lw.ln2_g), C(lw.ln2_b), epsilon=cfg.layer_norm_eps),
        )
    mod = IRModule()
    mod["main"] = Function([x_in], sb.get(x), TensorType((seq_len, cfg.hidden), "float32"))
    return mod


# ---------------------------------------------------------------------------
# NumPy reference
# ---------------------------------------------------------------------------


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    e = np.exp(x - np.max(x, axis=axis, keepdims=True))
    return e / np.sum(e, axis=axis, keepdims=True)


def _layer_norm(x: np.ndarray, g: np.ndarray, b: np.ndarray, eps: float) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * g + b


def _gelu(x: np.ndarray) -> np.ndarray:
    from scipy.special import erf

    return 0.5 * x * (1.0 + erf(x / np.sqrt(2.0)))


def bert_reference(x: np.ndarray, weights: BertWeights) -> np.ndarray:
    cfg = weights.config
    heads, hd, h = cfg.num_heads, cfg.head_dim, cfg.hidden
    for lw in weights.layers:
        q = x @ lw.wq.T + lw.bq
        k = x @ lw.wk.T + lw.bk
        v = x @ lw.wv.T + lw.bv
        L = x.shape[0]
        qh = q.reshape(L, heads, hd).transpose(1, 0, 2)
        kh = k.reshape(L, heads, hd).transpose(1, 0, 2)
        vh = v.reshape(L, heads, hd).transpose(1, 0, 2)
        scores = (qh @ kh.transpose(0, 2, 1)) / np.sqrt(hd)
        probs = _softmax(scores, axis=-1)
        ctx = probs @ vh
        merged = ctx.transpose(1, 0, 2).reshape(L, h)
        attn = merged @ lw.wo.T + lw.bo
        x = _layer_norm(x + attn, lw.ln1_g, lw.ln1_b, cfg.layer_norm_eps)
        ff = _gelu(x @ lw.w1.T + lw.b1) @ lw.w2.T + lw.b2
        x = _layer_norm(x + ff, lw.ln2_g, lw.ln2_b, cfg.layer_norm_eps)
    return x.astype(np.float32)
