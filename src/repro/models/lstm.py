"""LSTM — the dynamic-control-flow model of Table 1.

The sequence length is dynamic (``Tensor[(Any, input_size)]``) and the
recurrence compiles to a recursive IR function guarded by ``If`` — exactly
the construct static graph compilers cannot express. The paper's
configuration: input 300, hidden 512, 1 or 2 layers, batch 1.

Gate layout follows the cuDNN/PyTorch convention ``[i, f, g, o]`` with a
single fused ``W @ [x; h]`` GEMM per layer per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.ir import (
    Any,
    Call,
    Constant,
    Function,
    If,
    IRModule,
    Op,
    ScopeBuilder,
    TensorType,
    Tuple as IRTuple,
    TupleGetItem,
    Var,
    const,
)
from repro.ops import api
from repro.tensor.ndarray import array as make_array


@dataclass
class LSTMLayerWeights:
    w: np.ndarray  # (4H, I+H) fused gate weights
    b: np.ndarray  # (4H,)


@dataclass
class LSTMWeights:
    input_size: int
    hidden_size: int
    layers: List[LSTMLayerWeights]

    @staticmethod
    def create(input_size: int = 300, hidden_size: int = 512, num_layers: int = 1,
               seed: int = 0) -> "LSTMWeights":
        rng = np.random.RandomState(seed)
        layers = []
        in_dim = input_size
        scale = 0.08
        for _ in range(num_layers):
            layers.append(
                LSTMLayerWeights(
                    w=rng.uniform(-scale, scale, (4 * hidden_size, in_dim + hidden_size)).astype(np.float32),
                    b=rng.uniform(-scale, scale, (4 * hidden_size,)).astype(np.float32),
                )
            )
            in_dim = hidden_size
        return LSTMWeights(input_size, hidden_size, layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)


def _cell(sb: ScopeBuilder, x, h, c, weights: LSTMLayerWeights, hidden: int, tag: str):
    """One LSTM cell step in IR; returns (h', c') vars."""
    xh = sb.let(f"xh{tag}", api.concatenate([x, h], axis=1))
    gates = sb.let(f"gates{tag}", api.dense(xh, Constant(make_array(weights.w))))
    gates_b = sb.let(f"gatesb{tag}", api.bias_add(gates, Constant(make_array(weights.b))))
    parts = sb.let(f"parts{tag}", api.split(gates_b, 4, axis=1))
    i = sb.let(f"i{tag}", api.sigmoid(TupleGetItem(parts, 0)))
    f = sb.let(f"f{tag}", api.sigmoid(TupleGetItem(parts, 1)))
    g = sb.let(f"g{tag}", api.tanh(TupleGetItem(parts, 2)))
    o = sb.let(f"o{tag}", api.sigmoid(TupleGetItem(parts, 3)))
    c_new = sb.let(
        f"c{tag}", api.add(api.multiply(f, c), api.multiply(i, g))
    )
    h_new = sb.let(f"h{tag}", api.multiply(o, api.tanh(c_new)))
    return h_new, c_new


def build_lstm_module(weights: LSTMWeights) -> IRModule:
    """Module with ``main(x: Tensor[(Any, I)]) -> Tensor[(1, H)]``: runs the
    stacked LSTM over a dynamic-length sequence, returning the last hidden
    state of the top layer."""
    input_size, hidden = weights.input_size, weights.hidden_size
    num_layers = weights.num_layers
    mod = IRModule()
    loop_gv = mod.get_global_var("lstm_loop")

    seq_ty = TensorType((Any(), input_size), "float32")
    state_ty = TensorType((1, hidden), "float32")
    idx_ty = TensorType((), "int64")

    # State tuple: (h_0, c_0, ..., h_{L-1}, c_{L-1})
    state_tuple_ty_fields = [state_ty] * (2 * num_layers)
    from repro.ir.types import TupleType

    states_ty = TupleType(state_tuple_ty_fields)

    # -- loop(t, n, x, h0, c0, ...) -> states tuple ------------------------
    t = Var("t", idx_ty)
    n = Var("n", idx_ty)
    x_seq = Var("x", seq_ty)
    state_vars: List[Var] = []
    for layer in range(num_layers):
        state_vars.append(Var(f"h{layer}", state_ty))
        state_vars.append(Var(f"c{layer}", state_ty))

    sb = ScopeBuilder()
    cond = sb.let("cond", api.less(t, n))

    # True branch: one timestep over all layers, then recurse.
    tb = ScopeBuilder()
    # x_t = x[t] as (1, I): take row then reshape.
    row = tb.let("row", api.take(x_seq, t, axis=0))
    x_t = tb.let("x_t", api.reshape(row, (1, input_size)))
    layer_in = x_t
    new_states: List[Var] = []
    for layer in range(num_layers):
        h_var, c_var = state_vars[2 * layer], state_vars[2 * layer + 1]
        h_new, c_new = _cell(tb, layer_in, h_var, c_var, weights.layers[layer], hidden, f"_l{layer}")
        new_states.extend([h_new, c_new])
        layer_in = h_new
    t_next = tb.let("t_next", api.add(t, const(np.int64(1), "int64")))
    recurse = tb.get(Call(loop_gv, [t_next, n, x_seq] + new_states))

    # False branch: return the current states.
    false_branch = IRTuple(state_vars)

    loop_body = sb.get(If(cond, recurse, false_branch))
    mod[loop_gv] = Function([t, n, x_seq] + state_vars, loop_body, states_ty)

    # -- main(x) ----------------------------------------------------------------
    x_main = Var("x", seq_ty)
    mb = ScopeBuilder()
    shape = mb.let("xshape", Call(Op.get("vm.shape_of"), [x_main]))
    n_val = mb.let("n", api.take(shape, const(np.int64(0), "int64")))
    zero_states: List[Var] = []
    for layer in range(num_layers):
        zero_states.append(mb.let(f"h0_{layer}", api.zeros((1, hidden), "float32")))
        zero_states.append(mb.let(f"c0_{layer}", api.zeros((1, hidden), "float32")))
    final = mb.let(
        "final", Call(loop_gv, [const(np.int64(0), "int64"), n_val, x_main] + zero_states)
    )
    # Return the last hidden state of the top layer.
    top_h = mb.let("top_h", TupleGetItem(final, 2 * (num_layers - 1)))
    mod["main"] = Function([x_main], mb.get(top_h), state_ty)
    return mod


# ---------------------------------------------------------------------------
# NumPy reference (shared weights; also the op stream baselines execute)
# ---------------------------------------------------------------------------


def lstm_cell_reference(
    x: np.ndarray, h: np.ndarray, c: np.ndarray, layer: LSTMLayerWeights, hidden: int
) -> Tuple[np.ndarray, np.ndarray]:
    xh = np.concatenate([x, h], axis=1)
    gates = xh @ layer.w.T + layer.b
    i, f, g, o = np.split(gates, 4, axis=1)
    sig = lambda v: 1.0 / (1.0 + np.exp(-v))
    c_new = sig(f) * c + sig(i) * np.tanh(g)
    h_new = sig(o) * np.tanh(c_new)
    return h_new.astype(np.float32), c_new.astype(np.float32)


def lstm_reference(x_seq: np.ndarray, weights: LSTMWeights) -> np.ndarray:
    """Run the stacked LSTM eagerly; returns the final top-layer hidden."""
    hidden = weights.hidden_size
    states = [
        (np.zeros((1, hidden), np.float32), np.zeros((1, hidden), np.float32))
        for _ in weights.layers
    ]
    for t in range(x_seq.shape[0]):
        layer_in = x_seq[t : t + 1]
        for li, layer in enumerate(weights.layers):
            h, c = states[li]
            h, c = lstm_cell_reference(layer_in, h, c, layer, hidden)
            states[li] = (h, c)
            layer_in = h
    return states[-1][0]
