"""The evaluation models of §6.1.

* :mod:`repro.models.lstm` — LSTM (dynamic control flow), in=300 hid=512;
* :mod:`repro.models.tree_lstm` — Tree-LSTM (dynamic data structure),
  in=300 hid=150;
* :mod:`repro.models.bert` — BERT-base (dynamic shape), hidden 768;
* :mod:`repro.models.vision` — static CV models for the §6.3 memory study;
* :mod:`repro.models.gram` — weight-free two-``Any``-dim Gram map, the
  partial-specialization workhorse (both row and column dims dynamic).

Every model provides (a) an IR builder producing a dynamic module for the
Nimble pipeline and (b) a NumPy eager reference over the *same* weights,
which doubles as the computation baselines execute op-by-op.
"""

from repro.models.lstm import LSTMWeights, build_lstm_module, lstm_reference
from repro.models.tree_lstm import (
    TreeLSTMWeights,
    build_tree_lstm_module,
    tree_lstm_reference,
    tree_to_adt,
)
from repro.models.bert import BertConfig, BertWeights, build_bert_module, bert_reference
from repro.models.gram import build_gram_module, gram_reference
from repro.models.vision import (
    build_mobilenet_like,
    build_resnet_like,
    build_squeezenet_like,
    build_vgg_like,
)

__all__ = [
    "LSTMWeights",
    "build_lstm_module",
    "lstm_reference",
    "TreeLSTMWeights",
    "build_tree_lstm_module",
    "tree_lstm_reference",
    "tree_to_adt",
    "BertConfig",
    "BertWeights",
    "build_bert_module",
    "bert_reference",
    "build_resnet_like",
    "build_mobilenet_like",
    "build_vgg_like",
    "build_squeezenet_like",
    "build_gram_module",
    "gram_reference",
]
