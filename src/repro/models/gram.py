"""A weight-free two-dynamic-dim model: the partial-shape workhorse.

``main(x: Tensor[(Any, Any)]) = softmax(dense(relu(x), relu(x)))`` — a
Gram-matrix similarity map (every row of the activated input scored
against every other, normalized per row). Structurally it is the
smallest model whose entry carries **two independent** ``Any`` tokens:
the paper's evaluation models (LSTM, BERT) bake their feature width into
the weights, so type inference pins it and only sequence length stays
dynamic — which makes them unable to exercise *partial* specialization,
where some dims bind and others stay ``Any``. Here both the row count
(e.g. sequence length, long-tailed in traffic) and the column count
(e.g. feature width, stable in traffic) are free, so a partial binding
of the stable column dim leaves a genuinely dynamic row dim behind —
exactly the guarded-partial-tier shape
(:mod:`repro.serve.specialization`).

Weight-free also means fingerprint-stable: no RNG seed plumbing, and two
processes building it agree on every store key.
"""

from __future__ import annotations

import numpy as np

from repro.ir import Function, IRModule, ScopeBuilder, TensorType, Var
from repro.ir.types import Any
from repro.ops import api


def build_gram_module() -> IRModule:
    """``softmax(dense(relu(x), relu(x)), axis=-1)`` over a fully
    dynamic rank-2 input — rows *and* columns are ``Any``."""
    x = Var("x", TensorType((Any(), Any()), "float32"))
    sb = ScopeBuilder()
    h = sb.let("h", api.relu(x))
    g = sb.let("g", api.dense(h, h))
    y = sb.let("y", api.softmax(g, axis=-1))
    mod = IRModule()
    mod["main"] = Function([x], sb.get(y))
    return mod


def gram_reference(x: np.ndarray) -> np.ndarray:
    """NumPy eager reference (float64 accumulation — numerically, not
    bitwise, comparable to the compiled module; cross-*tier* bitwise
    equality is asserted compiled-vs-compiled)."""
    h = np.maximum(x.astype(np.float64), 0.0)
    g = h @ h.T
    e = np.exp(g - g.max(axis=-1, keepdims=True))
    return e / e.sum(axis=-1, keepdims=True)
