"""Operator references in the IR.

An :class:`Op` is an interned name (``Op.get("nn.dense") is Op.get("nn.dense")``)
whose semantics — type relation, shape function, compute, fusion pattern —
live in the operator registry (:mod:`repro.ops.registry`). Keeping the IR
node thin mirrors Relay's design and lets the registry evolve without
touching IR structure.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.expr import Expr


class Op(Expr):
    """An operator reference, interned by name."""

    __slots__ = ("name",)
    _registry: Dict[str, "Op"] = {}

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    @classmethod
    def get(cls, name: str) -> "Op":
        op = cls._registry.get(name)
        if op is None:
            op = cls(name)
            cls._registry[name] = op
        return op

    def __hash__(self) -> int:
        return hash(("op", self.name))

    def __eq__(self, other) -> bool:
        return isinstance(other, Op) and other.name == self.name

    def __repr__(self) -> str:
        return self.name
