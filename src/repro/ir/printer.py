"""Text-format pretty printer (Relay-like surface syntax).

The printer exists for debuggability: every pass result can be dumped and
diffed. Deep ``let`` chains are printed iteratively. Variables get
disambiguating suffixes when name hints collide.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

import numpy as np

from repro.ir.expr import (
    Call,
    Constant,
    Constructor,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    PatternConstructor,
    PatternVar,
    PatternWildcard,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.op import Op
from repro.ir.types import Any, TensorType, Type


class _Printer:
    def __init__(self) -> None:
        self._names: Dict[Var, str] = {}
        self._used: set = set()

    def name_of(self, var: Var) -> str:
        name = self._names.get(var)
        if name is None:
            base = var.name_hint or "v"
            name = base
            suffix = 1
            while name in self._used:
                name = f"{base}_{suffix}"
                suffix += 1
            self._used.add(name)
            self._names[var] = name
        return f"%{name}"

    def type_str(self, ty: Type) -> str:
        return repr(ty)

    def attrs_str(self, attrs: dict) -> str:
        if not attrs:
            return ""
        parts = []
        for key, value in attrs.items():
            if isinstance(value, np.ndarray):
                value = value.tolist()
            parts.append(f"{key}={value!r}")
        return ", " + ", ".join(parts) if parts else ""

    def print(self, expr: Expr, indent: int = 0) -> str:
        pad = "  " * indent
        if isinstance(expr, Var):
            return self.name_of(expr)
        if isinstance(expr, GlobalVar):
            return f"@{expr.name_hint}"
        if isinstance(expr, Op):
            return expr.name
        if isinstance(expr, Constructor):
            return expr.name_hint
        if isinstance(expr, Constant):
            data = expr.data
            if data.size == 1:
                return f"{data.reshape(()).item()!r}"
            return f"const(shape={tuple(data.shape)}, dtype={expr.value.dtype})"
        if isinstance(expr, Call):
            op = self.print(expr.op, indent)
            args = ", ".join(self.print(a, indent) for a in expr.args)
            return f"{op}({args}{self.attrs_str(expr.attrs)})"
        if isinstance(expr, Tuple):
            return "(" + ", ".join(self.print(f, indent) for f in expr.fields) + ",)"
        if isinstance(expr, TupleGetItem):
            return f"{self.print(expr.tuple_value, indent)}.{expr.index}"
        if isinstance(expr, Function):
            params = ", ".join(
                self.name_of(p)
                + (f": {self.type_str(p.type_annotation)}" if p.type_annotation else "")
                for p in expr.params
            )
            ret = f" -> {self.type_str(expr.ret_type)}" if expr.ret_type else ""
            attrs = ""
            if expr.attrs:
                attrs = ", ".join(f"{k}={v!r}" for k, v in expr.attrs.items())
                attrs = f"[{attrs}] "
            body = self.print(expr.body, indent + 1)
            inner_pad = "  " * (indent + 1)
            return f"fn {attrs}({params}){ret} {{\n{inner_pad}{body}\n{pad}}}"
        if isinstance(expr, Let):
            lines: List[str] = []
            node: Expr = expr
            while isinstance(node, Let):
                lines.append(
                    f"let {self.name_of(node.var)} = {self.print(node.value, indent)};"
                )
                node = node.body
            lines.append(self.print(node, indent))
            sep = "\n" + "  " * indent
            return sep.join(lines)
        if isinstance(expr, If):
            cond = self.print(expr.cond, indent)
            true_b = self.print(expr.true_branch, indent + 1)
            false_b = self.print(expr.false_branch, indent + 1)
            inner = "  " * (indent + 1)
            return (
                f"if ({cond}) {{\n{inner}{true_b}\n{pad}}} else {{\n{inner}{false_b}\n{pad}}}"
            )
        if isinstance(expr, Match):
            data = self.print(expr.data, indent)
            inner = "  " * (indent + 1)
            clauses = []
            for clause in expr.clauses:
                pat = self.pattern_str(clause.pattern)
                rhs = self.print(clause.rhs, indent + 2)
                clauses.append(f"{inner}{pat} => {rhs}")
            body = ",\n".join(clauses)
            return f"match ({data}) {{\n{body}\n{pad}}}"
        return f"<{type(expr).__name__}>"

    def pattern_str(self, pattern) -> str:
        if isinstance(pattern, PatternWildcard):
            return "_"
        if isinstance(pattern, PatternVar):
            return self.name_of(pattern.var)
        if isinstance(pattern, PatternConstructor):
            inner = ", ".join(self.pattern_str(p) for p in pattern.patterns)
            return f"{pattern.constructor.name_hint}({inner})"
        return "?"


def pretty(expr: Expr) -> str:
    """Render one expression as text."""
    return _Printer().print(expr)


def pretty_module(mod) -> str:
    """Render a whole module: ADT definitions then functions."""
    chunks: List[str] = []
    for data in mod.type_data.values():
        chunks.append(repr(data))
    for gv, func in mod.functions.items():
        chunks.append(f"def @{gv.name_hint} = {pretty(func)}")
    return "\n\n".join(chunks)


# ---------------------------------------------------------------------------
# Signature round-trip: the printed text carries enough structure to rebuild
# each function's signature, and golden tests hold the two in lockstep.
# ---------------------------------------------------------------------------


def module_signature(mod) -> Dict[str, str]:
    """``{function_name: "(ty, ...) -> ret"}`` straight from the IR."""
    out: Dict[str, str] = {}
    for gv, func in mod.functions.items():
        params = ", ".join(
            repr(p.type_annotation) if p.type_annotation is not None else "?ty"
            for p in func.params
        )
        ret = repr(func.ret_type) if func.ret_type is not None else "?ty"
        out[gv.name_hint] = f"({params}) -> {ret}"
    return out


def module_fingerprint(mod) -> str:
    """A stable cross-process digest of a module's identity, used as the
    module component of the artifact-store key (``vm.executable
    .artifact_key``).

    Hashes the full pretty-printed module — ADT definitions, function
    signatures, bodies — **and every constant's raw bytes**. Weight
    sensitivity is load-bearing, not incidental: a compiled executable
    embeds the constants in its pool, so a retrained model (identical
    architecture, new weights) must MISS the artifact store — a
    fingerprint that ignored weights would warm-restore executables
    that silently serve the old model's numerics from the specialized
    tiers. Reprs and byte orders are process-stable (``Any`` dims print
    as ``?``, never a token id), so two processes compiling the same
    model agree on the fingerprint.
    """
    from repro.ir.visitor import ExprVisitor

    digest = hashlib.sha256(pretty_module(mod).encode())

    class _ConstantHasher(ExprVisitor):
        def visit_constant(self, const: Constant) -> None:
            arr = np.ascontiguousarray(const.data)
            digest.update(str(arr.dtype).encode())
            digest.update(arr.tobytes())

    hasher = _ConstantHasher()
    for func in mod.functions.values():
        hasher.visit(func)
    return digest.hexdigest()


def _split_top_level(text: str) -> List[str]:
    """Split on commas not nested inside (), [] or {}."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_module_signature(text: str) -> Dict[str, str]:
    """Recover :func:`module_signature` from :func:`pretty_module` output.

    Parses each ``def @name = fn [attrs] (params) -> ret {`` header:
    parameter annotations are read back by balancing brackets, so types
    containing commas (``Tensor[(?, 8), float32]``) survive the trip.
    """
    out: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("def @"):
            continue
        name, _, rest = line[len("def @"):].partition(" = fn ")
        if not rest:
            continue
        if rest.startswith("["):
            rest = rest[rest.index("] ") + 2 :]  # drop the attrs block
        if not rest.startswith("("):
            continue
        depth = 0
        for i, ch in enumerate(rest):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    break
        params_text, tail = rest[1:i], rest[i + 1 :]
        param_types = []
        for param in _split_top_level(params_text):
            _, _, annotation = param.partition(": ")
            param_types.append(annotation if annotation else "?ty")
        ret = "?ty"
        if tail.startswith(" -> "):
            ret = tail[len(" -> ") : tail.rindex(" {")]
        out[name] = f"({', '.join(param_types)}) -> {ret}"
    return out
