"""IR expression nodes (a Relay-like functional IR).

The IR is a small functional language over tensors: variables, constants,
operator calls, functions (with recursion through module-level global
variables), ``let`` binding, ``if``, tuples, and pattern matching over
algebraic data types. Dynamic models map onto it directly: control flow
becomes ``If`` + recursive calls, dynamic data structures become ADTs, and
dynamic shapes live in the types (:mod:`repro.ir.types`).

Every expression carries a ``checked_type`` slot filled in by type
inference; compiler passes may rely on it after ``InferType`` has run.
"""

from __future__ import annotations

from typing import Any as PyAny
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CompilerError
from repro.ir.types import FuncType, TensorType, Type
from repro.tensor.ndarray import NDArray, array as make_array


class Expr:
    """Base class for all IR expressions."""

    __slots__ = ("checked_type",)

    def __init__(self) -> None:
        self.checked_type: Optional[Type] = None

    @property
    def ttype(self) -> TensorType:
        """The checked type, asserted to be a TensorType."""
        if not isinstance(self.checked_type, TensorType):
            raise CompilerError(
                f"expected TensorType on {type(self).__name__}, got {self.checked_type!r}"
            )
        return self.checked_type

    def __repr__(self) -> str:
        from repro.ir.printer import pretty  # local import to avoid a cycle

        return pretty(self)


class Var(Expr):
    """A local variable. Equality is identity: two Vars with the same name
    hint are distinct binders."""

    __slots__ = ("name_hint", "type_annotation")

    def __init__(self, name_hint: str, type_annotation: Optional[Type] = None) -> None:
        super().__init__()
        self.name_hint = name_hint
        self.type_annotation = type_annotation
        if type_annotation is not None:
            self.checked_type = type_annotation

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other) -> bool:
        return self is other


class GlobalVar(Expr):
    """A reference to a module-level function; interned per name by IRModule."""

    __slots__ = ("name_hint",)

    def __init__(self, name_hint: str) -> None:
        super().__init__()
        self.name_hint = name_hint

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other) -> bool:
        return self is other


class Constant(Expr):
    """A tensor constant (weights, scalars). Holds an NDArray."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        super().__init__()
        if isinstance(value, NDArray):
            self.value = value
        else:
            self.value = make_array(value)

    @property
    def data(self) -> np.ndarray:
        return self.value.numpy()


class Tuple(Expr):
    __slots__ = ("fields",)

    def __init__(self, fields: Sequence[Expr]) -> None:
        super().__init__()
        self.fields = tuple(fields)


class TupleGetItem(Expr):
    __slots__ = ("tuple_value", "index")

    def __init__(self, tuple_value: Expr, index: int) -> None:
        super().__init__()
        self.tuple_value = tuple_value
        self.index = int(index)


class Call(Expr):
    """Application of an operator, global function, local function value, or
    fused primitive :class:`Function`."""

    __slots__ = ("op", "args", "attrs")

    def __init__(self, op: Expr, args: Sequence[Expr], attrs: Optional[Dict[str, PyAny]] = None) -> None:
        super().__init__()
        self.op = op
        self.args = tuple(args)
        self.attrs = dict(attrs) if attrs else {}


class Function(Expr):
    """A (possibly anonymous) function.

    ``attrs`` carries compiler metadata: fused groups are marked
    ``{"primitive": True}`` so downstream passes treat them as opaque
    kernels (exactly how Relay marks post-fusion functions).
    """

    __slots__ = ("params", "body", "ret_type", "attrs")

    def __init__(
        self,
        params: Sequence[Var],
        body: Expr,
        ret_type: Optional[Type] = None,
        attrs: Optional[Dict[str, PyAny]] = None,
    ) -> None:
        super().__init__()
        self.params = tuple(params)
        self.body = body
        self.ret_type = ret_type
        self.attrs = dict(attrs) if attrs else {}

    @property
    def is_primitive(self) -> bool:
        return bool(self.attrs.get("primitive"))

    def func_type(self) -> FuncType:
        arg_types = [p.checked_type or p.type_annotation for p in self.params]
        ret = self.ret_type
        if ret is None and self.body.checked_type is not None:
            ret = self.body.checked_type
        if any(t is None for t in arg_types) or ret is None:
            raise CompilerError("function not fully typed; run InferType first")
        return FuncType(arg_types, ret)


class Let(Expr):
    __slots__ = ("var", "value", "body")

    def __init__(self, var: Var, value: Expr, body: Expr) -> None:
        super().__init__()
        self.var = var
        self.value = value
        self.body = body


class If(Expr):
    __slots__ = ("cond", "true_branch", "false_branch")

    def __init__(self, cond: Expr, true_branch: Expr, false_branch: Expr) -> None:
        super().__init__()
        self.cond = cond
        self.true_branch = true_branch
        self.false_branch = false_branch


# --- Algebraic data types (dynamic data structures, e.g. trees) -----------


class Constructor(Expr):
    """An ADT constructor (e.g. ``Node`` / ``Leaf`` of ``Tree``).

    ``tag`` is the runtime discriminant the VM's ``GetTag`` instruction
    reads. Constructors are created by :class:`repro.ir.adt.TypeData` and
    are identity-interned through the module.
    """

    __slots__ = ("name_hint", "inputs", "belongs_to", "tag")

    def __init__(self, name_hint: str, inputs: Sequence[Type], belongs_to, tag: int) -> None:
        super().__init__()
        self.name_hint = name_hint
        self.inputs = tuple(inputs)
        self.belongs_to = belongs_to
        self.tag = tag

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other) -> bool:
        return self is other


class Pattern:
    """Base class for match patterns."""

    __slots__ = ()


class PatternWildcard(Pattern):
    __slots__ = ()

    def __repr__(self) -> str:
        return "_"


class PatternVar(Pattern):
    __slots__ = ("var",)

    def __init__(self, var: Var) -> None:
        self.var = var

    def __repr__(self) -> str:
        return f"%{self.var.name_hint}"


class PatternConstructor(Pattern):
    __slots__ = ("constructor", "patterns")

    def __init__(self, constructor: Constructor, patterns: Sequence[Pattern] = ()) -> None:
        self.constructor = constructor
        self.patterns = tuple(patterns)

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.patterns))
        return f"{self.constructor.name_hint}({inner})"


class Clause:
    __slots__ = ("pattern", "rhs")

    def __init__(self, pattern: Pattern, rhs: Expr) -> None:
        self.pattern = pattern
        self.rhs = rhs


class Match(Expr):
    """Pattern match over an ADT value; lowered by the VM compiler to
    ``GetTag`` + conditional jumps + ``GetField``."""

    __slots__ = ("data", "clauses", "complete")

    def __init__(self, data: Expr, clauses: Sequence[Clause], complete: bool = True) -> None:
        super().__init__()
        self.data = data
        self.clauses = tuple(clauses)
        self.complete = complete


def const(value, dtype: Optional[str] = None) -> Constant:
    """Shorthand for building constants: ``const(1.0)``, ``const([1,2], "int64")``."""
    return Constant(make_array(value, dtype=dtype))
