"""Expression traversal infrastructure.

Two base classes mirror Relay's: :class:`ExprVisitor` (read-only) and
:class:`ExprMutator` (rebuilding). Both treat ``let``-chains *iteratively*:
after the compiler converts to A-normal form, function bodies are chains of
thousands of bindings (a BERT encoder produces several thousand), which
would overflow Python's recursion stack if visited recursively.

Mutators memoize on object identity so shared sub-DAGs are rewritten once,
and rebuild nodes only when a child actually changed (pointer-equality
preserving), which keeps passes cheap on large modules.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CompilerError
from repro.ir.expr import (
    Call,
    Clause,
    Constant,
    Constructor,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    Pattern,
    PatternConstructor,
    PatternVar,
    PatternWildcard,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.op import Op


class ExprVisitor:
    """Read-only traversal with per-object memoization."""

    def __init__(self) -> None:
        self._visited: set = set()

    def visit(self, expr: Expr) -> None:
        key = id(expr)
        if key in self._visited:
            return
        self._visited.add(key)
        method = getattr(self, "visit_" + type(expr).__name__.lower(), None)
        if method is None:
            raise CompilerError(f"ExprVisitor: unhandled node {type(expr).__name__}")
        method(expr)

    # -- leaves ---------------------------------------------------------
    def visit_var(self, var: Var) -> None:
        pass

    def visit_globalvar(self, gv: GlobalVar) -> None:
        pass

    def visit_constant(self, const: Constant) -> None:
        pass

    def visit_op(self, op: Op) -> None:
        pass

    def visit_constructor(self, ctor: Constructor) -> None:
        pass

    # -- interior nodes ----------------------------------------------------
    def visit_call(self, call: Call) -> None:
        self.visit(call.op)
        for arg in call.args:
            self.visit(arg)

    def visit_tuple(self, tup: Tuple) -> None:
        for field in tup.fields:
            self.visit(field)

    def visit_tuplegetitem(self, tgi: TupleGetItem) -> None:
        self.visit(tgi.tuple_value)

    def visit_function(self, func: Function) -> None:
        for param in func.params:
            self.visit(param)
        self.visit(func.body)

    def visit_let(self, let: Let) -> None:
        # Iterative walk down the binding chain.
        expr: Expr = let
        while isinstance(expr, Let):
            self._visited.add(id(expr))
            self.visit(expr.var)
            self.visit(expr.value)
            expr = expr.body
        self.visit(expr)

    def visit_if(self, iff: If) -> None:
        self.visit(iff.cond)
        self.visit(iff.true_branch)
        self.visit(iff.false_branch)

    def visit_match(self, match: Match) -> None:
        self.visit(match.data)
        for clause in match.clauses:
            self.visit_pattern(clause.pattern)
            self.visit(clause.rhs)

    def visit_pattern(self, pattern: Pattern) -> None:
        if isinstance(pattern, PatternVar):
            self.visit(pattern.var)
        elif isinstance(pattern, PatternConstructor):
            for sub in pattern.patterns:
                self.visit_pattern(sub)


class ExprMutator:
    """Rebuilding traversal. Subclasses override ``visit_*`` methods; the
    base implementation reconstructs nodes only when children changed."""

    def __init__(self) -> None:
        self.memo: Dict[int, Expr] = {}

    def visit(self, expr: Expr) -> Expr:
        key = id(expr)
        if key in self.memo:
            return self.memo[key]
        method = getattr(self, "visit_" + type(expr).__name__.lower(), None)
        if method is None:
            raise CompilerError(f"ExprMutator: unhandled node {type(expr).__name__}")
        result = method(expr)
        self.memo[key] = result
        return result

    # -- leaves --------------------------------------------------------
    def visit_var(self, var: Var) -> Expr:
        return var

    def visit_globalvar(self, gv: GlobalVar) -> Expr:
        return gv

    def visit_constant(self, const: Constant) -> Expr:
        return const

    def visit_op(self, op: Op) -> Expr:
        return op

    def visit_constructor(self, ctor: Constructor) -> Expr:
        return ctor

    # -- interior nodes --------------------------------------------------
    def visit_call(self, call: Call) -> Expr:
        new_op = self.visit(call.op)
        new_args = [self.visit(a) for a in call.args]
        if new_op is call.op and all(n is o for n, o in zip(new_args, call.args)):
            return call
        return Call(new_op, new_args, call.attrs)

    def visit_tuple(self, tup: Tuple) -> Expr:
        new_fields = [self.visit(f) for f in tup.fields]
        if all(n is o for n, o in zip(new_fields, tup.fields)):
            return tup
        return Tuple(new_fields)

    def visit_tuplegetitem(self, tgi: TupleGetItem) -> Expr:
        new_tuple = self.visit(tgi.tuple_value)
        if new_tuple is tgi.tuple_value:
            return tgi
        return TupleGetItem(new_tuple, tgi.index)

    def visit_function(self, func: Function) -> Expr:
        new_params = [self.visit(p) for p in func.params]
        new_body = self.visit(func.body)
        if new_body is func.body and all(n is o for n, o in zip(new_params, func.params)):
            return func
        return Function(new_params, new_body, func.ret_type, func.attrs)

    def visit_let(self, let: Let) -> Expr:
        # Forward pass over the chain (visit values in scope order), then
        # rebuild bottom-up — all without recursing per binding.
        bindings: List[tuple] = []
        expr: Expr = let
        while isinstance(expr, Let) and id(expr) not in self.memo:
            new_var = self.visit(expr.var)
            if not isinstance(new_var, Var):
                raise CompilerError("let binder must remain a Var under mutation")
            new_value = self.visit(expr.value)
            bindings.append((expr, new_var, new_value))
            expr = expr.body
        new_body = self.visit(expr)
        for orig, var, value in reversed(bindings):
            if var is orig.var and value is orig.value and new_body is orig.body:
                new_body = orig
            else:
                new_body = Let(var, value, new_body)
            self.memo[id(orig)] = new_body
        return new_body

    def visit_if(self, iff: If) -> Expr:
        new_cond = self.visit(iff.cond)
        new_true = self.visit(iff.true_branch)
        new_false = self.visit(iff.false_branch)
        if new_cond is iff.cond and new_true is iff.true_branch and new_false is iff.false_branch:
            return iff
        return If(new_cond, new_true, new_false)

    def visit_match(self, match: Match) -> Expr:
        new_data = self.visit(match.data)
        new_clauses = []
        changed = new_data is not match.data
        for clause in match.clauses:
            new_pattern = self.visit_pattern(clause.pattern)
            new_rhs = self.visit(clause.rhs)
            if new_pattern is clause.pattern and new_rhs is clause.rhs:
                new_clauses.append(clause)
            else:
                new_clauses.append(Clause(new_pattern, new_rhs))
                changed = True
        if not changed:
            return match
        return Match(new_data, new_clauses, match.complete)

    def visit_pattern(self, pattern: Pattern) -> Pattern:
        if isinstance(pattern, PatternVar):
            new_var = self.visit(pattern.var)
            if new_var is pattern.var:
                return pattern
            if not isinstance(new_var, Var):
                raise CompilerError("pattern binder must remain a Var under mutation")
            return PatternVar(new_var)
        if isinstance(pattern, PatternConstructor):
            new_subs = [self.visit_pattern(p) for p in pattern.patterns]
            if all(n is o for n, o in zip(new_subs, pattern.patterns)):
                return pattern
            return PatternConstructor(pattern.constructor, new_subs)
        return pattern
