"""IR analyses: variable accounting, traversal orders, structural equality.

The free-variable computation relies on the *unique binder* convention:
every ``Var`` object is bound at most once (fresh objects are created for
every binder by builders and passes), so ``free = used − bound`` is exact.
All walks are iterative — ANF bodies can be thousands of bindings long.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple as PyTuple

import numpy as np

from repro.ir.expr import (
    Call,
    Constant,
    Constructor,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    PatternConstructor,
    PatternVar,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.op import Op
from repro.ir.types import Type, type_hash


def _children(expr: Expr) -> Iterable[Expr]:
    """Direct sub-expressions of *expr* (excluding binders)."""
    if isinstance(expr, Call):
        yield expr.op
        yield from expr.args
    elif isinstance(expr, Tuple):
        yield from expr.fields
    elif isinstance(expr, TupleGetItem):
        yield expr.tuple_value
    elif isinstance(expr, Function):
        yield expr.body
    elif isinstance(expr, Let):
        yield expr.value
        yield expr.body
    elif isinstance(expr, If):
        yield expr.cond
        yield expr.true_branch
        yield expr.false_branch
    elif isinstance(expr, Match):
        yield expr.data
        for clause in expr.clauses:
            yield clause.rhs


def _pattern_vars(pattern) -> Iterable[Var]:
    if isinstance(pattern, PatternVar):
        yield pattern.var
    elif isinstance(pattern, PatternConstructor):
        for sub in pattern.patterns:
            yield from _pattern_vars(sub)


def iter_nodes(expr: Expr) -> Iterable[Expr]:
    """All unique nodes reachable from *expr* (pre-order, iterative)."""
    seen: Set[int] = set()
    stack: List[Expr] = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(_children(node))


def free_vars(expr: Expr) -> List[Var]:
    """Free variables of *expr*, in deterministic first-use order."""
    bound: Set[Var] = set(bound_vars(expr))
    out: List[Var] = []
    seen: Set[Var] = set()
    # Deterministic ordering requires an in-order walk of uses.
    stack: List[Expr] = [expr]
    visited: Set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        if isinstance(node, Var):
            if node not in bound and node not in seen:
                seen.add(node)
                out.append(node)
            continue
        stack.extend(reversed(list(_children(node))))
    return out


def bound_vars(expr: Expr) -> List[Var]:
    """All variables bound anywhere inside *expr* (params, lets, patterns)."""
    out: List[Var] = []
    for node in iter_nodes(expr):
        if isinstance(node, Let):
            out.append(node.var)
        elif isinstance(node, Function):
            out.extend(node.params)
        elif isinstance(node, Match):
            for clause in node.clauses:
                out.extend(_pattern_vars(clause.pattern))
    return out


def all_vars(expr: Expr) -> List[Var]:
    return [n for n in iter_nodes(expr) if isinstance(n, Var)]


def post_dfs_order(expr: Expr) -> List[Expr]:
    """Post-order over the dataflow DAG (each unique node once); operands
    precede users. Operator fusion consumes this order."""
    order: List[Expr] = []
    seen: Set[int] = set()
    stack: List[PyTuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for child in _children(node):
            if id(child) not in seen:
                stack.append((child, False))
    return order


def count_nodes(expr: Expr) -> int:
    return sum(1 for _ in iter_nodes(expr))


# --------------------------------------------------------------------------
# Structural (alpha) equality and hashing
# --------------------------------------------------------------------------


def structural_equal(a: Expr, b: Expr) -> bool:
    """Alpha-equivalence of two expressions; free variables must be the
    identical objects, bound variables are matched positionally."""
    return _structural_equal(a, b, {})


def _attrs_equal(x: dict, y: dict) -> bool:
    if x.keys() != y.keys():
        return False
    for key in x:
        xv, yv = x[key], y[key]
        if isinstance(xv, np.ndarray) or isinstance(yv, np.ndarray):
            if not np.array_equal(np.asarray(xv), np.asarray(yv)):
                return False
        elif xv != yv:
            return False
    return True


def _structural_equal(a: Expr, b: Expr, env: Dict[Var, Var]) -> bool:
    # Iterate let-chains to bound stack depth.
    while isinstance(a, Let) and isinstance(b, Let):
        if not _structural_equal(a.value, b.value, env):
            return False
        env[a.var] = b.var
        a, b = a.body, b.body
    if type(a) is not type(b):
        return False
    if isinstance(a, Var):
        return env.get(a, a) is b
    if isinstance(a, (GlobalVar, Constructor)):
        return a is b
    if isinstance(a, Op):
        return a.name == b.name
    if isinstance(a, Constant):
        return (
            a.value.dtype == b.value.dtype
            and a.value.shape == b.value.shape
            and np.array_equal(a.data, b.data)
        )
    if isinstance(a, Call):
        return (
            len(a.args) == len(b.args)
            and _attrs_equal(a.attrs, b.attrs)
            and _structural_equal(a.op, b.op, env)
            and all(_structural_equal(x, y, env) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, Tuple):
        return len(a.fields) == len(b.fields) and all(
            _structural_equal(x, y, env) for x, y in zip(a.fields, b.fields)
        )
    if isinstance(a, TupleGetItem):
        return a.index == b.index and _structural_equal(a.tuple_value, b.tuple_value, env)
    if isinstance(a, Function):
        if len(a.params) != len(b.params):
            return False
        inner = dict(env)
        for pa, pb in zip(a.params, b.params):
            inner[pa] = pb
        return _structural_equal(a.body, b.body, inner)
    if isinstance(a, If):
        return (
            _structural_equal(a.cond, b.cond, env)
            and _structural_equal(a.true_branch, b.true_branch, env)
            and _structural_equal(a.false_branch, b.false_branch, env)
        )
    if isinstance(a, Match):
        if len(a.clauses) != len(b.clauses) or a.complete != b.complete:
            return False
        if not _structural_equal(a.data, b.data, env):
            return False
        for ca, cb in zip(a.clauses, b.clauses):
            if not _patterns_match(ca.pattern, cb.pattern):
                return False
            inner = dict(env)
            for va, vb in zip(_pattern_vars(ca.pattern), _pattern_vars(cb.pattern)):
                inner[va] = vb
            if not _structural_equal(ca.rhs, cb.rhs, inner):
                return False
        return True
    if isinstance(a, Let):  # chains of unequal length fall through to here
        return False
    return a is b


def _patterns_match(pa, pb) -> bool:
    if type(pa) is not type(pb):
        return False
    if isinstance(pa, PatternConstructor):
        return pa.constructor is pb.constructor and len(pa.patterns) == len(pb.patterns) and all(
            _patterns_match(x, y) for x, y in zip(pa.patterns, pb.patterns)
        )
    return True


def structural_hash(expr: Expr) -> int:
    """A hash consistent with :func:`structural_equal` (alpha-insensitive).

    Intended for hashing *values* in ANF (calls over vars/constants); deep
    let-chains are folded iteratively.
    """
    return _structural_hash(expr, {})


def _structural_hash(expr: Expr, env: Dict[Var, int]) -> int:
    parts: List = [type(expr).__name__]
    while isinstance(expr, Let):
        parts.append(_structural_hash(expr.value, env))
        env = dict(env)
        env[expr.var] = len(env)
        expr = expr.body
        parts.append("let")
    if isinstance(expr, Var):
        parts.append(env.get(expr, id(expr)))
    elif isinstance(expr, (GlobalVar, Constructor)):
        parts.append(id(expr))
    elif isinstance(expr, Op):
        parts.append(expr.name)
    elif isinstance(expr, Constant):
        parts.append((expr.value.dtype, expr.value.shape, expr.data.tobytes()))
    elif isinstance(expr, Call):
        parts.append(_structural_hash(expr.op, env))
        parts.extend(_structural_hash(a, env) for a in expr.args)
        parts.append(tuple(sorted((k, _hashable_attr(v)) for k, v in expr.attrs.items())))
    elif isinstance(expr, Tuple):
        parts.extend(_structural_hash(f, env) for f in expr.fields)
    elif isinstance(expr, TupleGetItem):
        parts.append(expr.index)
        parts.append(_structural_hash(expr.tuple_value, env))
    elif isinstance(expr, Function):
        inner = dict(env)
        for p in expr.params:
            inner[p] = len(inner)
        parts.append(len(expr.params))
        parts.append(_structural_hash(expr.body, inner))
    elif isinstance(expr, If):
        parts.append(_structural_hash(expr.cond, env))
        parts.append(_structural_hash(expr.true_branch, env))
        parts.append(_structural_hash(expr.false_branch, env))
    elif isinstance(expr, Match):
        parts.append(_structural_hash(expr.data, env))
        for clause in expr.clauses:
            inner = dict(env)
            for v in _pattern_vars(clause.pattern):
                inner[v] = len(inner)
            parts.append(_structural_hash(clause.rhs, inner))
    return hash(tuple(parts))


def _hashable_attr(value):
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, list):
        return tuple(_hashable_attr(v) for v in value)
    if isinstance(value, Type):
        return type_hash(value)
    return value
