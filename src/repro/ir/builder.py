"""ScopeBuilder: imperative construction of let-structured IR.

Model builders (LSTM cells, BERT layers) use this to write IR the way one
writes straight-line code; it also keeps generated programs in unique-binder
form, which the analyses rely on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple as PyTuple

from repro.errors import CompilerError
from repro.ir.expr import Expr, Let, Var
from repro.ir.types import Type
from repro.utils.naming import NameSupply


class ScopeBuilder:
    """Accumulates ``let`` bindings, then :meth:`get`-s the final expression.

    >>> sb = ScopeBuilder()
    >>> h = sb.let("h", some_call)
    >>> out = sb.let("out", other_call)
    >>> body = sb.get(out)
    """

    def __init__(self, names: Optional[NameSupply] = None) -> None:
        self._bindings: List[PyTuple[Var, Expr]] = []
        self._names = names or NameSupply()
        self._finished = False

    def let(self, name_hint: str, value: Expr, type_annotation: Optional[Type] = None) -> Var:
        """Bind *value* to a fresh variable and return that variable."""
        if self._finished:
            raise CompilerError("ScopeBuilder already finalized")
        var = Var(self._names.fresh(name_hint), type_annotation)
        self._bindings.append((var, value))
        return var

    def get(self, body: Expr) -> Expr:
        """Finalize: wrap *body* in the accumulated bindings."""
        self._finished = True
        result = body
        for var, value in reversed(self._bindings):
            result = Let(var, value, result)
        return result

    def fresh_var(self, name_hint: str, type_annotation: Optional[Type] = None) -> Var:
        return Var(self._names.fresh(name_hint), type_annotation)
