"""IRModule: the unit of compilation.

Holds global functions (including mutually-recursive ones — dynamic control
flow compiles to recursion) and ADT definitions. GlobalVars and
GlobalTypeVars are interned per module so identity comparison is sound.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import CompilerError
from repro.ir.adt import TypeData
from repro.ir.expr import Constructor, Expr, Function, GlobalVar
from repro.ir.types import GlobalTypeVar


class IRModule:
    def __init__(self) -> None:
        self.functions: Dict[GlobalVar, Function] = {}
        self.type_data: Dict[GlobalTypeVar, TypeData] = {}
        self._global_vars: Dict[str, GlobalVar] = {}
        self._global_type_vars: Dict[str, GlobalTypeVar] = {}

    # -- global functions ------------------------------------------------
    def get_global_var(self, name: str) -> GlobalVar:
        gv = self._global_vars.get(name)
        if gv is None:
            gv = GlobalVar(name)
            self._global_vars[name] = gv
        return gv

    def __setitem__(self, key, func: Function) -> None:
        gv = self.get_global_var(key) if isinstance(key, str) else key
        if not isinstance(func, Function):
            raise CompilerError(f"module entries must be Functions, got {type(func)}")
        self._global_vars[gv.name_hint] = gv
        self.functions[gv] = func

    def __getitem__(self, key) -> Function:
        gv = self._global_vars.get(key) if isinstance(key, str) else key
        if gv is None or gv not in self.functions:
            raise KeyError(f"module has no function {key!r}")
        return self.functions[gv]

    def __contains__(self, key) -> bool:
        if isinstance(key, str):
            gv = self._global_vars.get(key)
            return gv is not None and gv in self.functions
        return key in self.functions

    @property
    def main(self) -> Function:
        return self["main"]

    # -- ADTs --------------------------------------------------------------
    def get_global_type_var(self, name: str) -> GlobalTypeVar:
        gtv = self._global_type_vars.get(name)
        if gtv is None:
            gtv = GlobalTypeVar(name)
            self._global_type_vars[name] = gtv
        return gtv

    def add_type_data(self, data: TypeData) -> None:
        self._global_type_vars[data.header.name] = data.header
        self.type_data[data.header] = data

    def get_constructor(self, adt_name: str, ctor_name: str) -> Constructor:
        gtv = self._global_type_vars.get(adt_name)
        if gtv is None or gtv not in self.type_data:
            raise KeyError(f"module has no ADT {adt_name!r}")
        return self.type_data[gtv].constructor(ctor_name)

    # -- convenience --------------------------------------------------------
    @staticmethod
    def from_expr(expr: Expr) -> "IRModule":
        """Wrap a bare expression / function as the module's ``main``."""
        mod = IRModule()
        func = expr if isinstance(expr, Function) else Function([], expr)
        mod["main"] = func
        return mod

    def shallow_copy(self) -> "IRModule":
        """Copy the function map (function bodies are shared); passes use
        this to return updated modules without mutating the input."""
        out = IRModule()
        out.functions = dict(self.functions)
        out.type_data = dict(self.type_data)
        out._global_vars = dict(self._global_vars)
        out._global_type_vars = dict(self._global_type_vars)
        return out

    def __repr__(self) -> str:
        from repro.ir.printer import pretty_module

        return pretty_module(self)
