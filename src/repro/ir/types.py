"""The dynamic type system (§4.1).

The central extension over a static deep-learning IR is the :class:`Any`
dimension: a tensor type may mark some dimensions as statically unknown,
e.g. ``Tensor[(1, 10, Any), float32]``. Type relations propagate ``Any``
through operators, and checks that cannot be discharged statically are
deferred to runtime shape functions (gradual typing).

Sub-shaping (§4.1 "Type Inference") is supported by giving each ``Any`` an
optional *identity token*: two ``Any`` dims carrying the same token are
known to be equal at runtime even though their value is unknown, which the
symbolic code generator exploits to emit shape-specialized kernels.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import TypeInferenceError
from repro.tensor.dtype import is_valid_dtype

_any_tokens = itertools.count()


class Type:
    """Base class of all IR types."""

    def __eq__(self, other) -> bool:  # structural equality, Any-insensitive tokens
        return type_equal(self, other)

    def __ne__(self, other) -> bool:
        return not type_equal(self, other)

    def __hash__(self) -> int:
        return type_hash(self)


class Any:
    """A statically-unknown tensor dimension.

    ``token`` identifies which runtime value this dimension refers to; two
    ``Any`` dims with the same token are provably equal (sub-shaping). A
    fresh token is drawn when none is given. Equality of *types* ignores
    tokens (``Any == Any``); identity analysis uses :func:`same_dim`.
    """

    __slots__ = ("token",)

    def __init__(self, token: Optional[int] = None) -> None:
        self.token = next(_any_tokens) if token is None else token

    def __repr__(self) -> str:
        return "?"

    # All Any dims compare equal as dimensions-in-types; use same_dim for identity.
    def __eq__(self, other) -> bool:
        return isinstance(other, Any)

    def __hash__(self) -> int:
        return hash("repro.Any")


Dim = Union[int, Any]


def is_static_dim(dim: Dim) -> bool:
    return isinstance(dim, int)


def is_static_shape(shape: Sequence[Dim]) -> bool:
    """True when every dimension is a concrete integer."""
    return all(isinstance(d, int) for d in shape)


def same_dim(a: Dim, b: Dim) -> bool:
    """Dimension identity: equal ints, or ``Any`` dims with the same token."""
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if isinstance(a, Any) and isinstance(b, Any):
        return a.token == b.token
    return False


def normalize_shape(shape: Iterable[Dim]) -> Tuple[Dim, ...]:
    out: List[Dim] = []
    for dim in shape:
        if isinstance(dim, Any):
            out.append(dim)
        elif isinstance(dim, (int,)) and not isinstance(dim, bool):
            if dim < 0:
                raise TypeInferenceError(f"negative dimension {dim} in shape")
            out.append(int(dim))
        else:
            raise TypeInferenceError(f"invalid dimension {dim!r} in shape")
    return tuple(out)


class TensorType(Type):
    """An n-dimensional tensor with a (possibly partially unknown) shape."""

    __slots__ = ("shape", "dtype")

    def __init__(self, shape: Iterable[Dim], dtype: str = "float32") -> None:
        self.shape = normalize_shape(shape)
        if not is_valid_dtype(dtype):
            raise TypeInferenceError(f"invalid dtype {dtype!r}")
        self.dtype = dtype

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_static(self) -> bool:
        return is_static_shape(self.shape)

    def num_elements(self) -> Optional[int]:
        """Element count, or None when any dimension is dynamic."""
        if not self.is_static:
            return None
        n = 1
        for d in self.shape:
            n *= d
        return n

    def __repr__(self) -> str:
        dims = ", ".join(repr(d) if isinstance(d, Any) else str(d) for d in self.shape)
        return f"Tensor[({dims}), {self.dtype}]"


def scalar_type(dtype: str = "float32") -> TensorType:
    """A rank-0 tensor type (conditions, scalar constants)."""
    return TensorType((), dtype)


class TupleType(Type):
    __slots__ = ("fields",)

    def __init__(self, fields: Sequence[Type]) -> None:
        self.fields = tuple(fields)

    def __repr__(self) -> str:
        return "(" + ", ".join(map(repr, self.fields)) + ")"


class FuncType(Type):
    __slots__ = ("arg_types", "ret_type")

    def __init__(self, arg_types: Sequence[Type], ret_type: Type) -> None:
        self.arg_types = tuple(arg_types)
        self.ret_type = ret_type

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.arg_types))
        return f"fn({args}) -> {self.ret_type!r}"


class TypeVar(Type):
    """A type variable for parametric ADTs (identity-based)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:  # identity semantics
        return self is other

    def __hash__(self) -> int:
        return id(self)


class GlobalTypeVar(Type):
    """Reference to a globally-defined ADT (e.g. ``Tree``); identity-based,
    interned per name by the module."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)


class StorageType(Type):
    """The type of a raw storage block produced by ``memory.alloc_storage``
    (§4.3). Not user-visible; appears only after the manifest-allocation
    pass has made memory explicit."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Storage"


class TypeCall(Type):
    """Instantiation of an ADT: ``TypeCall(Tree, [Tensor[(150,), f32]])``."""

    __slots__ = ("func", "args")

    def __init__(self, func: GlobalTypeVar, args: Sequence[Type] = ()) -> None:
        self.func = func
        self.args = tuple(args)

    def __repr__(self) -> str:
        if not self.args:
            return repr(self.func)
        return f"{self.func!r}[{', '.join(map(repr, self.args))}]"


def type_equal(a: Type, b: Type) -> bool:
    """Structural type equality. ``Any`` dims compare equal to each other
    (but not to concrete ints) — identity of Any dims is a separate,
    finer-grained analysis (:func:`same_dim`)."""
    if a is b:
        return True
    if isinstance(a, TensorType) and isinstance(b, TensorType):
        if a.dtype != b.dtype or len(a.shape) != len(b.shape):
            return False
        return all(
            (isinstance(x, Any) and isinstance(y, Any)) or x == y
            for x, y in zip(a.shape, b.shape)
        )
    if isinstance(a, TupleType) and isinstance(b, TupleType):
        return len(a.fields) == len(b.fields) and all(
            type_equal(x, y) for x, y in zip(a.fields, b.fields)
        )
    if isinstance(a, FuncType) and isinstance(b, FuncType):
        return (
            len(a.arg_types) == len(b.arg_types)
            and all(type_equal(x, y) for x, y in zip(a.arg_types, b.arg_types))
            and type_equal(a.ret_type, b.ret_type)
        )
    if isinstance(a, TypeCall) and isinstance(b, TypeCall):
        return (
            a.func is b.func
            and len(a.args) == len(b.args)
            and all(type_equal(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, StorageType) and isinstance(b, StorageType):
        return True
    if isinstance(a, (TypeVar, GlobalTypeVar)) or isinstance(b, (TypeVar, GlobalTypeVar)):
        return a is b
    return False


def type_hash(t: Type) -> int:
    if isinstance(t, TensorType):
        dims = tuple("?" if isinstance(d, Any) else d for d in t.shape)
        return hash(("tensor", dims, t.dtype))
    if isinstance(t, TupleType):
        return hash(("tuple", tuple(type_hash(f) for f in t.fields)))
    if isinstance(t, FuncType):
        return hash(
            ("func", tuple(type_hash(a) for a in t.arg_types), type_hash(t.ret_type))
        )
    if isinstance(t, TypeCall):
        return hash(("tycall", id(t.func), tuple(type_hash(a) for a in t.args)))
    if isinstance(t, (TypeVar, GlobalTypeVar)):
        return id(t)
    return hash(type(t).__name__)


def has_any_dim(t: Type) -> bool:
    """True when *t* (recursively) contains an ``Any`` dimension."""
    if isinstance(t, TensorType):
        return any(isinstance(d, Any) for d in t.shape)
    if isinstance(t, TupleType):
        return any(has_any_dim(f) for f in t.fields)
    if isinstance(t, FuncType):
        return any(has_any_dim(a) for a in t.arg_types) or has_any_dim(t.ret_type)
    if isinstance(t, TypeCall):
        return any(has_any_dim(a) for a in t.args)
    return False
