"""Algebraic data type definitions.

Dynamic data structures (the ``Tree`` of Tree-LSTM, lists for sequences)
are modeled as ADTs: a :class:`TypeData` declares a global type with its
constructors; values are built by calling constructors and consumed with
``Match``. The VM represents them as tagged objects (§5.2).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.expr import Constructor
from repro.ir.types import GlobalTypeVar, Type, TypeVar


class TypeData:
    """The definition of one ADT: header, type parameters, constructors."""

    __slots__ = ("header", "type_vars", "constructors")

    def __init__(
        self,
        header: GlobalTypeVar,
        type_vars: Sequence[TypeVar],
        constructor_specs: Sequence[tuple],
    ) -> None:
        """``constructor_specs`` is a list of ``(name, [input_types])``;
        tags are assigned in declaration order."""
        self.header = header
        self.type_vars = tuple(type_vars)
        self.constructors: List[Constructor] = [
            Constructor(name, inputs, header, tag)
            for tag, (name, inputs) in enumerate(constructor_specs)
        ]

    def constructor(self, name: str) -> Constructor:
        for ctor in self.constructors:
            if ctor.name_hint == name:
                return ctor
        raise KeyError(f"ADT {self.header.name} has no constructor {name!r}")

    def __repr__(self) -> str:
        ctors = " | ".join(
            f"{c.name_hint}({', '.join(map(repr, c.inputs))})" for c in self.constructors
        )
        vars_ = f"[{', '.join(v.name for v in self.type_vars)}]" if self.type_vars else ""
        return f"type {self.header.name}{vars_} = {ctors}"


def substitute_type(ty: Type, mapping: dict) -> Type:
    """Replace TypeVars in *ty* per *mapping* (ADT instantiation)."""
    from repro.ir.types import FuncType, TensorType, TupleType, TypeCall

    if isinstance(ty, TypeVar):
        return mapping.get(ty, ty)
    if isinstance(ty, TensorType):
        return ty
    if isinstance(ty, TupleType):
        return TupleType([substitute_type(f, mapping) for f in ty.fields])
    if isinstance(ty, FuncType):
        return FuncType(
            [substitute_type(a, mapping) for a in ty.arg_types],
            substitute_type(ty.ret_type, mapping),
        )
    if isinstance(ty, TypeCall):
        return TypeCall(ty.func, [substitute_type(a, mapping) for a in ty.args])
    return ty
