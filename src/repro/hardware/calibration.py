"""Calibration constants for the hardware model.

Derivations (all from public spec sheets + the paper's own measurements):

**Intel Skylake, c5.9xlarge (18 physical cores).**
Peak fp32 ≈ 18 cores × 2 FMA × 16 lanes × ~3.1 GHz ≈ 1.78 TFLOPs.
Table 4 shows TVM-static BERT seq-128 at 19.38 ms; BERT-base at L=128 is
≈22.4 GFLOP, implying ~1.16 TFLOPs sustained → GEMM efficiency ≈ 0.65.
L3 = 24.75 MB; a 1-layer LSTM's weights (812×2048 fp32 ≈ 6.6 MB) are
cache-resident, and Table 1's 47.8 µs/token ≈ 6.6 MB / 47.8 µs ≈ 139 GB/s
— i.e. L3-bandwidth-bound, so cache_bw ≈ 140 GB/s, DRAM ≈ 90 GB/s.

**Nvidia T4, g4dn.4xlarge.** Peak fp32 8.1 TFLOPs, GDDR6 320 GB/s, PCIe
gen3 x8 ≈ 6 GB/s effective. Kernel launch ≈ 5–10 µs. The LSTM row of
Table 1 (93 µs/token > Intel's 47.8) pins the under-saturation scale:
batch-1 GEMV is launch+bandwidth bound on a GPU.

**ARM Cortex-A72, a1.4xlarge (16 cores).** Peak fp32 ≈ 16 × 2.3 GHz × 8
lanes ≈ 294 GFLOPs. Table 4's 223.5 ms for static BERT seq-128 implies
~100 GFLOPs sustained → efficiency ≈ 0.34 for well-tuned kernels.
Vendor-library coverage on ARM is weak (the paper's frameworks perform
"less favorably"): OpenBLAS-class GEMV is effectively single-threaded,
hence the very low library bandwidth fraction.

Framework overheads (µs per operator dispatch, per platform) are in
:mod:`repro.baselines.overhead` with their own derivations.
"""

# Per-instruction cost of the Nimble VM dispatch loop (coarse-grained
# CISC-style instructions; §5.2 argues this is negligible vs. kernels).
VM_INSTRUCTION_US = {
    "intel": 0.08,
    "nvidia": 0.08,
    "arm": 0.30,
}

# Host-side cost of one fresh buffer allocation vs. a pooled reuse.
ALLOC_FRESH_US = {
    "intel": 4.0,
    "nvidia": 5.0,
    "arm": 10.0,
}
ALLOC_POOLED_US = {
    "intel": 0.25,
    "nvidia": 0.25,
    "arm": 0.9,
}

# Shape-function kernels are tiny scalar computations on the host.
SHAPE_FUNC_US = {
    "intel": 5.0,
    "nvidia": 5.0,
    "arm": 20.0,
}

# Penalty multiplier for un-eliminated boundary checks in symbolic kernels
# (§4.5): a fully generic kernel pays this on its innermost loops. The
# per-residue dispatch reduces the *fraction* of iterations that check.
BOUNDARY_CHECK_PENALTY = {
    "intel": 0.35,
    "nvidia": 0.25,
    "arm": 0.55,
}

# Residual index-computation overhead of symbolic (vs. static) kernels even
# with full dispatch — Table 4 measures 5–25 % end-to-end on CPUs.
SYMBOLIC_INDEX_OVERHEAD = {
    "intel": 0.075,
    "nvidia": 0.03,
    "arm": 0.045,
}

# Modeled cost of compiling one shape-specialized executable at serving
# time (the tiered-compilation hot path): a fixed pipeline overhead plus a
# per-kernel code-generation charge. Order-of-magnitude from TVM-class
# compilers with schedules already chosen (no tuning): tens of
# milliseconds per kernel, slower on ARM hosts.
SPECIALIZE_BASE_US = {
    "intel": 20_000.0,
    "nvidia": 25_000.0,
    "arm": 60_000.0,
}
SPECIALIZE_PER_KERNEL_US = {
    "intel": 4_000.0,
    "nvidia": 5_000.0,
    "arm": 12_000.0,
}

# Staged-specialization split of the same charge (docs/serving.md). The
# shape-independent *prefix* (normalization, CSE/DCE, lambda lifting,
# dynamic type inference) runs once per (module, platform); only the
# *suffix* (shape binding, residual inference, fusion, allocation,
# codegen) repeats per variant. The split is 60/40: normalization walks
# the whole module and dominates, while the suffix starts from an
# already-normalized IR. Prefix + suffix equal the monolithic constants
# above exactly, so a single-variant staged compile costs the same as a
# monolithic one — staging only wins when the prefix amortizes over
# multiple variants.
SPECIALIZE_PREFIX_FRACTION = 0.6
SPECIALIZE_PREFIX_BASE_US = {
    "intel": 12_000.0,
    "nvidia": 15_000.0,
    "arm": 36_000.0,
}
SPECIALIZE_PREFIX_PER_KERNEL_US = {
    "intel": 2_400.0,
    "nvidia": 3_000.0,
    "arm": 7_200.0,
}
SPECIALIZE_SUFFIX_BASE_US = {
    "intel": 8_000.0,
    "nvidia": 10_000.0,
    "arm": 24_000.0,
}
SPECIALIZE_SUFFIX_PER_KERNEL_US = {
    "intel": 1_600.0,
    "nvidia": 2_000.0,
    "arm": 4_800.0,
}

# Modeled cost of *restoring* a specialized executable from the on-disk
# artifact store instead of recompiling it: mmap/read the blob, decode
# the bytecode, re-materialize kernels from their serialized schedules.
# Order-of-magnitude from deserializing megabyte-class artifacts —
# hundreds of microseconds, i.e. ~2 orders of magnitude under the
# compile charge, which is the entire point of persisting.
RESTORE_BASE_US = {
    "intel": 300.0,
    "nvidia": 350.0,
    "arm": 900.0,
}
RESTORE_PER_KERNEL_US = {
    "intel": 30.0,
    "nvidia": 35.0,
    "arm": 90.0,
}

# Multi-stream scheduling: calibrated costs of the cross-stream sync
# primitives the AOT scheduler emits (see docs/scheduling.md). Host-side
# cudaEventRecord / cudaStreamWaitEvent are driver calls in the same
# class as a kernel enqueue (~1 µs on the T4's host); the device-side
# propagation of a wait that actually stalls a stream costs about the
# same again. CPU platforms run kernels synchronously, so streams never
# engage there — the constants exist for every platform because the
# interpreter reads them unconditionally.
STREAM_EVENT_RECORD_US = {
    "intel": 0.4,
    "nvidia": 1.0,
    "arm": 1.2,
}
STREAM_WAIT_EVENT_US = {
    "intel": 0.4,
    "nvidia": 1.0,
    "arm": 1.2,
}
STREAM_EVENT_SYNC_US = {
    "intel": 0.0,
    "nvidia": 1.5,
    "arm": 0.0,
}
