"""Simulated hardware: device specs and the three evaluation platforms."""

from repro.hardware.specs import DeviceSpec, LibraryProfile
from repro.hardware.platforms import Platform, arm_cpu, intel_cpu, nvidia_gpu, platform_by_name

__all__ = [
    "DeviceSpec",
    "LibraryProfile",
    "Platform",
    "arm_cpu",
    "intel_cpu",
    "nvidia_gpu",
    "platform_by_name",
]
