"""The three evaluation platforms of §6.1.

* ``intel_cpu()``  — c5.9xlarge-class Skylake host (MKL-class library);
* ``nvidia_gpu()`` — g4dn.4xlarge-class host + T4 (cuDNN-class library);
* ``arm_cpu()``    — a1.4xlarge-class Cortex-A72 (weak library coverage).

A platform bundles the host spec, the compute device spec, and the name
used to index calibration tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import NimbleError
from repro.hardware import calibration
from repro.hardware.specs import DeviceSpec, LibraryProfile
from repro.tensor.device import Device, cpu, gpu

_MKL = LibraryProfile(
    name="mkl",
    gemm_efficiency=0.58,
    bandwidth_fraction=0.80,
    elemwise_efficiency=0.60,
)

_CUDNN = LibraryProfile(
    name="cudnn",
    gemm_efficiency=0.62,
    bandwidth_fraction=0.85,
    elemwise_efficiency=0.70,
)

# OpenBLAS-class on a small ARM server: GEMM is acceptable, but
# bandwidth-bound kernels (GEMV) are effectively single-threaded.
_ARM_BLAS = LibraryProfile(
    name="openblas",
    gemm_efficiency=0.30,
    bandwidth_fraction=0.13,
    elemwise_efficiency=0.35,
)

_INTEL = DeviceSpec(
    name="intel-skylake",
    peak_gflops=1780.0,
    dram_bw_gbps=90.0,
    cache_bw_gbps=190.0,
    llc_bytes=24_750_000,
    launch_overhead_us=0.7,
    host_launch_us=0.0,
    sat_flops=2.5e6,
    tuned_gemm_efficiency=0.65,
    tuned_bandwidth_fraction=0.95,
    tuned_elemwise_efficiency=0.80,
    library=_MKL,
)

_T4 = DeviceSpec(
    name="nvidia-t4",
    peak_gflops=8100.0,
    dram_bw_gbps=320.0,
    cache_bw_gbps=1300.0,
    llc_bytes=4_000_000,
    launch_overhead_us=5.0,
    host_launch_us=1.2,
    is_gpu=True,
    # The T4 exposes plenty of hardware queues; 8 is the point past which
    # the scheduler finds no more independent chains in our models.
    max_streams=8,
    sat_flops=1.2e7,
    copy_bw_gbps=6.0,
    copy_latency_us=6.0,
    tuned_gemm_efficiency=0.55,
    tuned_bandwidth_fraction=0.80,
    tuned_elemwise_efficiency=0.75,
    library=_CUDNN,
)

_GPU_HOST = DeviceSpec(
    name="gpu-host-xeon",
    peak_gflops=400.0,
    dram_bw_gbps=60.0,
    cache_bw_gbps=100.0,
    llc_bytes=16_000_000,
    launch_overhead_us=0.7,
    host_launch_us=0.0,
    sat_flops=1.5e6,
    tuned_gemm_efficiency=0.55,
    tuned_bandwidth_fraction=0.9,
    tuned_elemwise_efficiency=0.8,
    library=_MKL,
)

_ARM = DeviceSpec(
    name="arm-a72",
    peak_gflops=294.0,
    dram_bw_gbps=30.0,
    cache_bw_gbps=48.0,
    llc_bytes=8_000_000,
    launch_overhead_us=1.8,
    host_launch_us=0.0,
    sat_flops=4.0e5,
    tuned_gemm_efficiency=0.34,
    tuned_bandwidth_fraction=0.95,
    tuned_elemwise_efficiency=0.60,
    library=_ARM_BLAS,
)


@dataclass(frozen=True)
class Platform:
    name: str
    host: Device
    compute: Device
    specs: Dict[Device, DeviceSpec]

    @property
    def host_spec(self) -> DeviceSpec:
        return self.specs[self.host]

    @property
    def compute_spec(self) -> DeviceSpec:
        return self.specs[self.compute]

    def spec_of(self, device: Device) -> DeviceSpec:
        try:
            return self.specs[device]
        except KeyError:
            raise NimbleError(f"platform {self.name} has no device {device}") from None

    @property
    def vm_instruction_us(self) -> float:
        return calibration.VM_INSTRUCTION_US[self.name]

    @property
    def max_streams(self) -> int:
        """How many device streams the AOT scheduler may use on this
        platform: the compute device's stream count (1 on synchronous
        CPU platforms — nothing to overlap)."""
        return self.compute_spec.max_streams

    def effective_streams(self, requested: int) -> int:
        """Clamp a requested stream count to what the hardware exposes.
        The clamped value is what gets compiled into executables (and
        their artifact keys): asking a CPU platform for 4 streams IS the
        single-stream build, not a distinct artifact."""
        return max(1, min(int(requested or 1), self.max_streams))

    @property
    def heterogeneous(self) -> bool:
        return self.host != self.compute


def intel_cpu() -> Platform:
    host = cpu(0)
    return Platform("intel", host, host, {host: _INTEL})


def nvidia_gpu() -> Platform:
    host, dev = cpu(0), gpu(0)
    return Platform("nvidia", host, dev, {host: _GPU_HOST, dev: _T4})


def arm_cpu() -> Platform:
    host = cpu(0)
    return Platform("arm", host, host, {host: _ARM})


_BY_NAME = {"intel": intel_cpu, "nvidia": nvidia_gpu, "arm": arm_cpu}


def platform_by_name(name: str) -> Platform:
    try:
        return _BY_NAME[name]()
    except KeyError:
        raise NimbleError(f"unknown platform {name!r} (choose from {sorted(_BY_NAME)})") from None
