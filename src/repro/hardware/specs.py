"""Device performance specifications.

The paper's three testbeds are modeled analytically; a kernel's runtime is

    launch + max(flops / (peak · eff · util),  bytes / bw_eff)

where ``bw_eff`` depends on whether the working set fits in the last-level
cache (batch-1 RNN inference is bandwidth-bound with weights resident in
LLC — this is why LSTM latency on the T4 exceeds the Skylake's in
Table 1), ``util`` models GPU under-saturation for small kernels, and
``eff`` comes from the kernel implementation (tuned schedule vs. vendor
library). Calibration derivations live in ``calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class LibraryProfile:
    """Efficiency profile of a vendor kernel library on one device
    (MKL / cuDNN / OpenBLAS-class)."""

    name: str
    # Fraction of peak FLOPs achieved on large, regular GEMM-like kernels.
    gemm_efficiency: float
    # Fraction of streaming bandwidth achieved for bandwidth-bound kernels
    # (vendor GEMV is often single-threaded on small CPUs: low here).
    bandwidth_fraction: float
    # Efficiency on irregular / elementwise kernels.
    elemwise_efficiency: float


@dataclass(frozen=True)
class DeviceSpec:
    name: str
    peak_gflops: float
    dram_bw_gbps: float
    cache_bw_gbps: float
    llc_bytes: int
    # Fixed per-kernel cost on the executing device.
    launch_overhead_us: float
    # Host-side cost of *enqueueing* a kernel (GPU async model).
    host_launch_us: float
    is_gpu: bool = False
    # GPU saturation scale: util = flops / (flops + sat_flops).
    sat_flops: float = 0.0
    # How many concurrent in-order kernel streams the device exposes to
    # the AOT scheduler (CUDA-stream style). Synchronous CPU devices have
    # exactly one lane — kernel time is host time there, so extra streams
    # could never overlap anything.
    max_streams: int = 1
    # Host<->device copy characteristics (PCIe-class for GPUs).
    copy_bw_gbps: float = 0.0
    copy_latency_us: float = 0.0
    # Efficiency of compiler-generated, auto-tuned kernels.
    tuned_gemm_efficiency: float = 0.6
    tuned_bandwidth_fraction: float = 0.9
    tuned_elemwise_efficiency: float = 0.8
    library: Optional[LibraryProfile] = None

    def effective_bandwidth_gbps(self, working_set_bytes: int) -> float:
        """Streaming bandwidth given cache residency of the working set."""
        if working_set_bytes <= self.llc_bytes:
            return self.cache_bw_gbps
        return self.dram_bw_gbps

    def utilization(self, flops: float) -> float:
        """Under-saturation for small kernels: a GPU needs enough blocks to
        fill its SMs; a multi-core CPU needs enough rows to amortize the
        parallel fork/join. Small GEMMs (short sequences in Table 3) run
        well below library peak on both."""
        if self.sat_flops <= 0:
            return 1.0
        return flops / (flops + self.sat_flops)
