"""Framework overhead calibration (µs), with derivations.

All numbers are per-platform because the paper's ARM results hinge on the
a1.4xlarge's slow cores executing the frameworks' host-side C++/Python:
the same dispatcher that costs 2–4 µs on a 3.4 GHz Skylake costs an order
of magnitude more on a 2.3 GHz A72 with a fraction of the IPC.

Derivation anchors (Table 1, 1-layer LSTM, µs/token; ~11 ops/token):

* PyTorch Intel 79.3 vs Nimble 47.8 → ≈31 µs of eager overhead/token →
  ≈2.8 µs/op dispatch (matches public torch dispatcher microbenchmarks);
  ARM 1729.5 → ≈90 µs/op plus the slower un-fused kernel stream.
* MXNet's engine enqueues ops through a dependency scheduler: ≈2× the
  eager dispatch on Intel, and its ARM BLAS coverage is poor.
* TensorFlow's graph executor is cheap per plain node but its dynamic
  control flow (Switch/Merge/Enter/NextIteration per loop iteration)
  costs ≈10 µs/primitive on Intel (Yu et al., EuroSys'18 report tens of
  µs per iteration), ≈40 on ARM.
* PyTorch Tree-LSTM: Python recursion builds an autograd graph per node;
  Table 2 (701.6 µs/token ≈ 13.3 ms per 19-leaf tree over ≈37 nodes)
  implies ≈300 µs of Python per tree node on Intel.
* TF Fold re-compiles per input: Table 2's 209.9 µs/token ≈ 4 ms/tree of
  which compute is small → ≈3.9 ms graph construction+compilation per
  input on Intel.
"""

# Per-operator host dispatch cost (µs).
EAGER_OP_US = {"intel": 2.8, "nvidia": 9.0, "arm": 30.0}
HYBRID_OP_US = {"intel": 13.0, "nvidia": 3.0, "arm": 44.0}
GRAPH_NODE_US = {"intel": 1.6, "nvidia": 1.6, "arm": 7.0}

# TF-style control-flow primitives (Switch/Merge/Enter/Exit/NextIteration).
CONTROL_PRIMITIVE_US = {"intel": 13.0, "nvidia": 16.0, "arm": 14.0}

# Each framework bundles its own kernel library, whose quality varies by
# platform (§7: "frameworks generally perform poorly on devices ... not in
# the first tier of device support"). These override the platform default:
#
# * TF/Eigen on ARM: decent multithreaded GEMM/GEMV (Table 1's ARM column
#   has TF beating PyTorch/MXNet; Table 3 has TF ≈ Nimble's compiled
#   dense kernels on ARM, as the paper notes);
# * TF/Eigen on Intel: clearly behind MKL for transformer GEMMs (TF's
#   Table 3 Intel row is 2.5× Nimble);
# * PyTorch's bundled aarch64 GEMM (pre-XNNPACK aten) is very poor
#   compute-bound (Table 3 ARM: 4.1× Nimble) though its GEMV streaming is
#   OpenBLAS-class;
# * MXNet's ARM BLAS trails across the board (20.3× on LSTM).
from repro.hardware.specs import LibraryProfile

FRAMEWORK_LIBRARY = {
    ("tensorflow", "arm"): LibraryProfile(
        name="eigen-arm", gemm_efficiency=0.33, bandwidth_fraction=0.30,
        elemwise_efficiency=0.50,
    ),
    ("tensorflow", "intel"): LibraryProfile(
        name="eigen-intel", gemm_efficiency=0.32, bandwidth_fraction=0.55,
        elemwise_efficiency=0.40,
    ),
    ("pytorch", "arm"): LibraryProfile(
        name="aten-arm", gemm_efficiency=0.085, bandwidth_fraction=0.13,
        elemwise_efficiency=0.35,
    ),
    ("mxnet", "arm"): LibraryProfile(
        name="openblas-arm", gemm_efficiency=0.126, bandwidth_fraction=0.055,
        elemwise_efficiency=0.15,
    ),
}

# MXNet foreach/while_loop operator: per-iteration scheduling.
HYBRID_LOOP_ITER_US = {"intel": 12.0, "nvidia": 10.0, "arm": 60.0}

# PyTorch: Python-level recursion + tensor bookkeeping per tree node.
EAGER_TREE_NODE_US = {"intel": 300.0, "nvidia": 300.0, "arm": 380.0}

# TF Fold: per-input analysis + graph construction + compilation.
FOLD_COMPILE_PER_INPUT_US = {"intel": 3600.0, "arm": 12000.0}
# Fold's batched execution: per-depth-level scheduling cost.
FOLD_LEVEL_US = {"intel": 25.0, "arm": 95.0}

# Session / engine fixed cost per inference call.
SESSION_RUN_US = {"intel": 20.0, "nvidia": 25.0, "arm": 70.0}
