"""TensorFlow Fold-style dynamic batching (§2.1, §7).

Fold analyzes each input's structure, groups operations that can execute
together (here: tree nodes at the same height), and emits a batched graph
for the underlying engine. Batching amortizes per-op overhead beautifully
— but the analysis/graph construction re-runs **per input**, which is why
the paper measures Fold 5.2× slower than Nimble on Intel despite being
3.3× faster than eager PyTorch (Table 2). Fold did not build on ARM in
the paper; `supports` reflects that.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.baselines import overhead
from repro.baselines.base import BaselineResult, Framework, OpExecutor
from repro.data.trees import Tree
from repro.models.tree_lstm import TreeLSTMWeights


class FoldFramework(Framework):
    name = "tf_fold"

    def supports(self, model: str) -> bool:
        if self.platform.name == "arm":
            return False  # "TensorFlow Fold was not built successfully on ARM"
        return model == "tree_lstm"

    def run_tree_lstm(
        self, trees: List[Tree], embeddings: np.ndarray, weights: TreeLSTMWeights
    ) -> BaselineResult:
        ctx = self.make_context()
        ex = OpExecutor(
            self.platform, ctx, overhead.GRAPH_NODE_US[self.platform.name]
        )
        compile_us = overhead.FOLD_COMPILE_PER_INPUT_US[self.platform.name]
        level_us = overhead.FOLD_LEVEL_US[self.platform.name]
        tokens = 0
        for tree in trees:
            # Per-input structural analysis + graph construction + handoff.
            ctx.clock.host_advance(compile_us)
            self._run_batched(ex, tree, embeddings, weights, level_us)
            tokens += tree.num_leaves()
        return BaselineResult(self.name, self.platform.name, ctx.elapsed_us, tokens)

    def _run_batched(
        self,
        ex: OpExecutor,
        tree: Tree,
        embeddings: np.ndarray,
        weights: TreeLSTMWeights,
        level_us: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dynamic batching: one batched cell evaluation per tree level."""
        levels = tree.nodes_by_depth()
        states: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        clock = ex.ctx.clock

        # Level 0: all leaves in one batch.
        leaves = levels[0]
        clock.host_advance(level_us)
        x = np.concatenate(
            [embeddings[n.token_id : n.token_id + 1] for n in leaves], axis=0
        ).astype(np.float32)
        pre = ex.bias_add(ex.dense(x, weights.w_leaf), weights.b_leaf)
        i, o, u = ex.split(pre, 3, axis=1)
        c = ex.multiply(ex.sigmoid(i), ex.tanh(u))
        h = ex.multiply(ex.sigmoid(o), ex.tanh(c))
        for row, node in enumerate(leaves):
            states[id(node)] = (h[row : row + 1], c[row : row + 1])

        # Internal levels: batch every node whose children are ready.
        for level in levels[1:]:
            if not level:
                continue
            clock.host_advance(level_us)
            hl = np.concatenate([states[id(n.left)][0] for n in level], axis=0)
            cl = np.concatenate([states[id(n.left)][1] for n in level], axis=0)
            hr = np.concatenate([states[id(n.right)][0] for n in level], axis=0)
            cr = np.concatenate([states[id(n.right)][1] for n in level], axis=0)
            hsum = ex.add(hl, hr)
            pre = ex.bias_add(ex.dense(hsum, weights.u_iou), weights.b_iou)
            i, o, u = ex.split(pre, 3, axis=1)
            fl = ex.sigmoid(ex.bias_add(ex.dense(hl, weights.u_f), weights.b_f))
            fr = ex.sigmoid(ex.bias_add(ex.dense(hr, weights.u_f), weights.b_f))
            c = ex.add(
                ex.multiply(ex.sigmoid(i), ex.tanh(u)),
                ex.add(ex.multiply(fl, cl), ex.multiply(fr, cr)),
            )
            h = ex.multiply(ex.sigmoid(o), ex.tanh(c))
            for row, node in enumerate(level):
                states[id(node)] = (
                    np.asarray(h)[row : row + 1],
                    np.asarray(c)[row : row + 1],
                )
        return states[id(tree)]
