"""Op-by-op model programs shared by the baseline frameworks.

These mirror the NumPy references in :mod:`repro.models` but route every
operator through an :class:`OpExecutor`, so each framework's dispatch and
kernel costs accrue exactly once per op — the op *stream* is the model's;
the *cost* is the framework's.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.base import OpExecutor
from repro.data.trees import Tree
from repro.models.bert import BertWeights
from repro.models.lstm import LSTMWeights
from repro.models.tree_lstm import TreeLSTMWeights


def lstm_step_ops(
    ex: OpExecutor,
    x_t: np.ndarray,
    states: List[Tuple[np.ndarray, np.ndarray]],
    weights: LSTMWeights,
) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
    """One timestep across all layers; 11 ops per layer (no fusion)."""
    layer_in = x_t
    new_states = []
    for (h, c), layer in zip(states, weights.layers):
        xh = ex.concat([layer_in, h], axis=1)
        gates = ex.bias_add(ex.dense(xh, layer.w), layer.b)
        i, f, g, o = ex.split(gates, 4, axis=1)
        c_new = ex.add(
            ex.multiply(ex.sigmoid(f), c),
            ex.multiply(ex.sigmoid(i), ex.tanh(g)),
        )
        h_new = ex.multiply(ex.sigmoid(o), ex.tanh(c_new))
        new_states.append((h_new, c_new))
        layer_in = h_new
    return layer_in, new_states


def run_lstm_ops(ex: OpExecutor, x_seq: np.ndarray, weights: LSTMWeights) -> np.ndarray:
    hidden = weights.hidden_size
    states = [
        (np.zeros((1, hidden), np.float32), np.zeros((1, hidden), np.float32))
        for _ in weights.layers
    ]
    out = states[-1][0]
    for t in range(x_seq.shape[0]):
        out, states = lstm_step_ops(ex, x_seq[t : t + 1], states, weights)
    return out


def tree_lstm_node_ops(
    ex: OpExecutor,
    weights: TreeLSTMWeights,
    x: np.ndarray = None,
    left: Tuple[np.ndarray, np.ndarray] = None,
    right: Tuple[np.ndarray, np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One Tree-LSTM cell: leaf (x given) or internal (children given)."""
    if x is not None:
        pre = ex.bias_add(ex.dense(x, weights.w_leaf), weights.b_leaf)
        i, o, u = ex.split(pre, 3, axis=1)
        c = ex.multiply(ex.sigmoid(i), ex.tanh(u))
        h = ex.multiply(ex.sigmoid(o), ex.tanh(c))
        return h, c
    (hl, cl), (hr, cr) = left, right
    hsum = ex.add(hl, hr)
    pre = ex.bias_add(ex.dense(hsum, weights.u_iou), weights.b_iou)
    i, o, u = ex.split(pre, 3, axis=1)
    fl = ex.sigmoid(ex.bias_add(ex.dense(hl, weights.u_f), weights.b_f))
    fr = ex.sigmoid(ex.bias_add(ex.dense(hr, weights.u_f), weights.b_f))
    c = ex.add(
        ex.multiply(ex.sigmoid(i), ex.tanh(u)),
        ex.add(ex.multiply(fl, cl), ex.multiply(fr, cr)),
    )
    h = ex.multiply(ex.sigmoid(o), ex.tanh(c))
    return h, c


def run_tree_lstm_ops(
    ex: OpExecutor, tree: Tree, embeddings: np.ndarray, weights: TreeLSTMWeights
) -> np.ndarray:
    def recurse(node: Tree) -> Tuple[np.ndarray, np.ndarray]:
        if node.is_leaf:
            x = embeddings[node.token_id : node.token_id + 1].astype(np.float32)
            return tree_lstm_node_ops(ex, weights, x=x)
        return tree_lstm_node_ops(
            ex, weights, left=recurse(node.left), right=recurse(node.right)
        )

    h, _ = recurse(tree)
    return h


def run_bert_ops(ex: OpExecutor, x: np.ndarray, weights: BertWeights) -> np.ndarray:
    cfg = weights.config
    heads, hd, h = cfg.num_heads, cfg.head_dim, cfg.hidden
    for lw in weights.layers:
        q = ex.bias_add(ex.dense(x, lw.wq), lw.bq)
        k = ex.bias_add(ex.dense(x, lw.wk), lw.bk)
        v = ex.bias_add(ex.dense(x, lw.wv), lw.bv)
        qh = ex.transpose(ex.reshape(q, (-1, heads, hd)), (1, 0, 2))
        kh = ex.transpose(ex.reshape(k, (-1, heads, hd)), (1, 0, 2))
        vh = ex.transpose(ex.reshape(v, (-1, heads, hd)), (1, 0, 2))
        scores = ex.batch_matmul(qh, kh)
        scaled = ex.multiply(scores, np.float32(1.0 / np.sqrt(hd)))
        probs = ex.softmax(scaled, axis=-1)
        vt = ex.transpose(vh, (0, 2, 1))
        ctx = ex.batch_matmul(probs, vt)
        merged = ex.reshape(ex.transpose(ctx, (1, 0, 2)), (-1, h))
        attn = ex.bias_add(ex.dense(merged, lw.wo), lw.bo)
        x = ex.layer_norm(ex.add(x, attn), lw.ln1_g, lw.ln1_b, cfg.layer_norm_eps)
        ff = ex.bias_add(
            ex.dense(ex.gelu(ex.bias_add(ex.dense(x, lw.w1), lw.b1)), lw.w2), lw.b2
        )
        x = ex.layer_norm(ex.add(x, ff), lw.ln2_g, lw.ln2_b, cfg.layer_norm_eps)
    return x
