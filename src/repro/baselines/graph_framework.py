"""TensorFlow-style dataflow-graph framework with control-flow primitives.

Dynamic control flow in a define-then-run graph requires the
Switch/Merge/Enter/Exit/NextIteration machinery of Yu et al. (EuroSys'18,
§2.1/§7): every loop variable passes through a primitive chain on every
iteration, and each primitive is a scheduled graph node. This module
implements a miniature executor for such graphs — plain op nodes run
through the shared :class:`OpExecutor`; a ``WhileLoop`` node executes its
condition and body subgraphs per iteration and charges the per-primitive
scheduling cost for the loop-variable plumbing, which is exactly the
overhead the paper blames for TF's LSTM latency (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import overhead
from repro.baselines.base import BaselineResult, Framework, OpExecutor
from repro.errors import NimbleError
from repro.models.bert import BertWeights
from repro.models.lstm import LSTMWeights


# --------------------------------------------------------------------------
# Graph structure
# --------------------------------------------------------------------------


@dataclass
class OpNode:
    """A plain kernel node: op name + attrs, inputs by value index."""

    op_name: str
    input_ids: List[int]
    attrs: dict = field(default_factory=dict)
    output_id: int = -1


@dataclass
class ConstNode:
    value: np.ndarray
    output_id: int = -1


@dataclass
class WhileLoop:
    """A TF-style while loop: condition + body sub-graphs over loop vars.

    Per iteration, every loop variable flows through Merge → Switch →
    (body) → NextIteration, plus one LoopCond evaluation; on exit each
    variable passes Exit. Each of these is a scheduled control primitive.
    """

    loop_var_ids: List[int]  # value ids of the loop variables (inputs)
    cond: "Graph"
    body: "Graph"
    output_ids: List[int] = field(default_factory=list)

    def primitives_per_iteration(self) -> int:
        # Merge + Switch + NextIteration per variable, + LoopCond.
        return 3 * len(self.loop_var_ids) + 1

    def exit_primitives(self) -> int:
        # Enter at loop entry + Exit at loop exit, per variable.
        return 2 * len(self.loop_var_ids)


@dataclass
class Graph:
    """A straight-line dataflow graph (loops nest via WhileLoop nodes)."""

    num_inputs: int
    nodes: List[object] = field(default_factory=list)
    num_values: int = 0
    output_ids: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.num_values = self.num_inputs

    def new_value(self) -> int:
        vid = self.num_values
        self.num_values += 1
        return vid

    def add_op(self, op_name: str, input_ids: List[int], attrs: Optional[dict] = None) -> int:
        node = OpNode(op_name, list(input_ids), attrs or {})
        node.output_id = self.new_value()
        self.nodes.append(node)
        return node.output_id

    def add_const(self, value: np.ndarray) -> int:
        node = ConstNode(np.asarray(value))
        node.output_id = self.new_value()
        self.nodes.append(node)
        return node.output_id

    def add_while(self, loop_var_ids: List[int], cond: "Graph", body: "Graph") -> List[int]:
        loop = WhileLoop(list(loop_var_ids), cond, body)
        loop.output_ids = [self.new_value() for _ in loop_var_ids]
        self.nodes.append(loop)
        return loop.output_ids


class GraphExecutor:
    """Runs a Graph against an OpExecutor, charging per-node scheduling
    and per-primitive control-flow costs."""

    def __init__(self, ex: OpExecutor, platform_name: str) -> None:
        self.ex = ex
        self.node_us = overhead.GRAPH_NODE_US[platform_name]
        self.primitive_us = overhead.CONTROL_PRIMITIVE_US[platform_name]

    def run(self, graph: Graph, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(inputs) != graph.num_inputs:
            raise NimbleError(
                f"graph expects {graph.num_inputs} inputs, got {len(inputs)}"
            )
        values: List[Optional[np.ndarray]] = [None] * graph.num_values
        for i, arr in enumerate(inputs):
            values[i] = np.asarray(arr)
        clock = self.ex.ctx.clock
        for node in graph.nodes:
            clock.host_advance(self.node_us)
            if isinstance(node, ConstNode):
                values[node.output_id] = node.value
            elif isinstance(node, OpNode):
                result = self.ex.call(
                    node.op_name, [values[i] for i in node.input_ids], node.attrs
                )
                values[node.output_id] = np.asarray(result)
            elif isinstance(node, WhileLoop):
                outs = self._run_while(node, [values[i] for i in node.loop_var_ids])
                for vid, out in zip(node.output_ids, outs):
                    values[vid] = out
            else:  # pragma: no cover - exhaustive
                raise NimbleError(f"unknown graph node {type(node).__name__}")
        return [values[i] for i in graph.output_ids]

    def _run_while(self, loop: WhileLoop, state: List[np.ndarray]) -> List[np.ndarray]:
        clock = self.ex.ctx.clock
        clock.host_advance(self.primitive_us * loop.exit_primitives())
        per_iter = self.primitive_us * loop.primitives_per_iteration()
        while True:
            cond_out = self.run(loop.cond, state)
            if not bool(np.asarray(cond_out[0]).reshape(()).item()):
                return state
            clock.host_advance(per_iter)
            state = [np.asarray(v) for v in self.run(loop.body, state)]


# --------------------------------------------------------------------------
# The framework
# --------------------------------------------------------------------------


class GraphFramework(Framework):
    name = "tensorflow"

    def supports(self, model: str) -> bool:
        return model in ("lstm", "bert")

    def _executor(self, ctx) -> OpExecutor:
        return OpExecutor(
            self.platform,
            ctx,
            overhead.GRAPH_NODE_US[self.platform.name],
            library=overhead.FRAMEWORK_LIBRARY.get(
                (self.name, self.platform.name)
            ),
        )

    # --------------------------------------------------------------- LSTM graph
    @staticmethod
    def build_lstm_graph(weights: LSTMWeights) -> Graph:
        """while_loop over timesteps; loop vars: t, n, x, (h, c) per layer."""
        hidden = weights.hidden_size
        n_layers = weights.num_layers
        num_loop_vars = 3 + 2 * n_layers

        cond = Graph(num_inputs=num_loop_vars)
        cond.output_ids = [cond.add_op("less", [0, 1])]

        body = Graph(num_inputs=num_loop_vars)
        # x_t = reshape(take(x, t, axis=0), (1, I))
        row = body.add_op("take", [2, 0], {"axis": 0})
        x_t = body.add_op("reshape", [row], {"newshape": (1, weights.input_size)})
        layer_in = x_t
        new_states: List[int] = []
        for li, layer in enumerate(weights.layers):
            h_id, c_id = 3 + 2 * li, 4 + 2 * li
            w_id = body.add_const(layer.w)
            b_id = body.add_const(layer.b)
            xh = body.add_op("concatenate", [layer_in, h_id], {"axis": 1})
            gates = body.add_op("nn.bias_add", [body.add_op("nn.dense", [xh, w_id]), b_id])
            parts = []
            for gi in range(4):
                parts.append(
                    body.add_op(
                        "strided_slice",
                        [gates],
                        {"begin": (0, gi * hidden), "end": (1, (gi + 1) * hidden)},
                    )
                )
            i_g = body.add_op("sigmoid", [parts[0]])
            f_g = body.add_op("sigmoid", [parts[1]])
            g_g = body.add_op("tanh", [parts[2]])
            o_g = body.add_op("sigmoid", [parts[3]])
            fc = body.add_op("multiply", [f_g, c_id])
            ig = body.add_op("multiply", [i_g, g_g])
            c_new = body.add_op("add", [fc, ig])
            th = body.add_op("tanh", [c_new])
            h_new = body.add_op("multiply", [o_g, th])
            new_states.extend([h_new, c_new])
            layer_in = h_new
        one = body.add_const(np.asarray(1, dtype=np.int64))
        t_next = body.add_op("add", [0, one])
        body.output_ids = [t_next, 1, 2] + new_states

        graph = Graph(num_inputs=2)  # (n, x)
        t0 = graph.add_const(np.asarray(0, dtype=np.int64))
        zeros = []
        for _ in range(2 * n_layers):
            zeros.append(graph.add_op("zeros", [], {"shape": (1, hidden), "dtype": "float32"}))
        outs = graph.add_while([t0, 0, 1] + zeros, cond, body)
        graph.output_ids = [outs[3 + 2 * (n_layers - 1)]]  # top-layer h
        return graph

    def run_lstm(self, sentences: List[np.ndarray], weights: LSTMWeights) -> BaselineResult:
        ctx = self.make_context()
        ex = self._executor(ctx)
        executor = GraphExecutor(ex, self.platform.name)
        graph = self.build_lstm_graph(weights)
        session_us = overhead.SESSION_RUN_US[self.platform.name]
        tokens = 0
        for sent in sentences:
            ctx.clock.host_advance(session_us)
            executor.run(graph, [np.asarray(sent.shape[0], dtype=np.int64), sent])
            tokens += sent.shape[0]
        return BaselineResult(self.name, self.platform.name, ctx.elapsed_us, tokens)

    # ---------------------------------------------------------------------- BERT
    def run_bert(self, inputs: List[np.ndarray], weights: BertWeights) -> BaselineResult:
        from repro.baselines.model_programs import run_bert_ops

        ctx = self.make_context()
        ex = self._executor(ctx)
        session_us = overhead.SESSION_RUN_US[self.platform.name]
        tokens = 0
        for x in inputs:
            # Static graph, dynamic-shape placeholders: per-node scheduling
            # (cheap) but library kernels and no compiler fusion.
            ctx.clock.host_advance(session_us)
            run_bert_ops(ex, x, weights)
            tokens += x.shape[0]
        return BaselineResult(self.name, self.platform.name, ctx.elapsed_us, tokens)
