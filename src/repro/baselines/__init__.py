"""Baseline deep-learning frameworks (§6.1's comparison systems).

Each baseline reproduces the *mechanism* the paper identifies as its
overhead source, executing the same numerics on the same hardware model:

* :class:`EagerFramework` (PyTorch-style, define-by-run): per-operator
  Python dispatch, no fusion, vendor-library kernels; dynamic data
  structures traversed in host Python;
* :class:`GraphFramework` (TensorFlow-style, define-then-run): a dataflow
  graph executor with Switch/Merge/Enter/Exit/NextIteration control-flow
  primitives and per-node scheduling cost;
* :class:`HybridFramework` (MXNet-style): symbolic graph with a `foreach`
  loop operator, engine dispatch per op;
* :class:`FoldFramework` (TensorFlow Fold): dynamic batching by tree
  depth, paying per-input graph construction/compilation.
"""

from repro.baselines.base import BaselineResult, OpExecutor
from repro.baselines.eager import EagerFramework
from repro.baselines.graph_framework import GraphFramework
from repro.baselines.hybrid import HybridFramework
from repro.baselines.fold import FoldFramework

__all__ = [
    "BaselineResult",
    "OpExecutor",
    "EagerFramework",
    "GraphFramework",
    "HybridFramework",
    "FoldFramework",
]
