"""MXNet-style hybrid symbolic framework.

A define-then-run engine with explicit loop operators (``foreach`` /
``while_loop``, §2.1): per-op engine dispatch plus per-iteration loop
scheduling. Cannot express per-input data structures, so Tree-LSTM is
unsupported — matching the paper's availability matrix. ARM performance
suffers from weak BLAS coverage (the library profile), which is where
Nimble's 20.3× Table 1 speedup comes from.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines import overhead
from repro.baselines.base import BaselineResult, Framework, OpExecutor
from repro.baselines.model_programs import lstm_step_ops, run_bert_ops
from repro.models.bert import BertWeights
from repro.models.lstm import LSTMWeights


class HybridFramework(Framework):
    name = "mxnet"

    def supports(self, model: str) -> bool:
        return model in ("lstm", "bert")

    def _executor(self, ctx) -> OpExecutor:
        return OpExecutor(
            self.platform,
            ctx,
            overhead.HYBRID_OP_US[self.platform.name],
            library=overhead.FRAMEWORK_LIBRARY.get(
                (self.name, self.platform.name)
            ),
        )

    def run_lstm(self, sentences: List[np.ndarray], weights: LSTMWeights) -> BaselineResult:
        ctx = self.make_context()
        ex = self._executor(ctx)
        iter_us = overhead.HYBRID_LOOP_ITER_US[self.platform.name]
        session_us = overhead.SESSION_RUN_US[self.platform.name]
        tokens = 0
        hidden = weights.hidden_size
        for sent in sentences:
            ctx.clock.host_advance(session_us)
            states = [
                (np.zeros((1, hidden), np.float32), np.zeros((1, hidden), np.float32))
                for _ in weights.layers
            ]
            for t in range(sent.shape[0]):
                # foreach-operator iteration: dependency-engine scheduling.
                ctx.clock.host_advance(iter_us)
                _, states = lstm_step_ops(ex, sent[t : t + 1], states, weights)
            tokens += sent.shape[0]
        return BaselineResult(self.name, self.platform.name, ctx.elapsed_us, tokens)

    def run_bert(self, inputs: List[np.ndarray], weights: BertWeights) -> BaselineResult:
        ctx = self.make_context()
        ex = self._executor(ctx)
        session_us = overhead.SESSION_RUN_US[self.platform.name]
        tokens = 0
        for x in inputs:
            ctx.clock.host_advance(session_us)
            run_bert_ops(ex, x, weights)
            tokens += x.shape[0]
        return BaselineResult(self.name, self.platform.name, ctx.elapsed_us, tokens)
