"""Shared machinery for baseline frameworks.

:class:`OpExecutor` executes one operator at a time the way frameworks
do: per-op host dispatch overhead, an *un-fused* vendor-library kernel per
op (frameworks "rely on third-party kernel libraries", §1), and the same
virtual-clock timing model as the VM — so comparisons against Nimble are
apples-to-apples on the hardware side and differ exactly where the paper
says they differ (dispatch, fusion, control-flow machinery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.codegen.workload import Workload, _GEMM_OPS
from repro.codegen.cost_model import custom_library_cost_us, library_cost_us, tuned_cost_us
from repro.codegen.schedule import Schedule
from repro.errors import NimbleError
from repro.hardware.platforms import Platform
from repro.ops import get_op_def
from repro.ops.shape_funcs import prod
from repro.runtime.context import ExecutionContext
from repro.tensor.dtype import dtype_bytes


@dataclass
class BaselineResult:
    """Latency summary over a workload set."""

    framework: str
    platform: str
    total_us: float
    total_tokens: int

    @property
    def us_per_token(self) -> float:
        return self.total_us / max(1, self.total_tokens)


class OpExecutor:
    """Per-operator execution with framework-style overheads."""

    def __init__(
        self,
        platform: Platform,
        ctx: ExecutionContext,
        op_overhead_us: float,
        use_library: bool = True,
        library=None,
    ) -> None:
        self.platform = platform
        self.ctx = ctx
        self.op_overhead_us = op_overhead_us
        self.use_library = use_library
        # The framework's own bundled kernel library on this platform
        # (see overhead.FRAMEWORK_LIBRARY); None = platform default.
        self.library = library
        self.ops_executed = 0

    # -- core ------------------------------------------------------------------
    def call(self, op_name: str, inputs: Sequence[np.ndarray], attrs: Optional[dict] = None):
        """Dispatch one operator: host overhead + library kernel + compute."""
        attrs = attrs or {}
        op_def = get_op_def(op_name)
        in_shapes = [np.asarray(i).shape for i in inputs]
        out_shapes = op_def.shape_func(in_shapes, [np.asarray(i) for i in inputs], attrs)
        flops = op_def.flops(in_shapes, out_shapes, attrs)
        dtype_b = 4
        bytes_moved = sum(prod(s) * dtype_b for s in in_shapes) + sum(
            prod(s) * dtype_b for s in out_shapes
        )
        workload = Workload(
            flops=flops,
            bytes_moved=float(bytes_moved),
            working_set=float(bytes_moved),
            is_gemm=op_name in _GEMM_OPS,
            out_shapes=tuple(tuple(s) for s in out_shapes),
        )
        spec = self.platform.compute_spec
        clock = self.ctx.clock
        clock.host_advance(self.op_overhead_us)
        self.ops_executed += 1

        if not self.use_library:
            duration = None
        elif self.library is not None:
            duration = custom_library_cost_us(spec, workload, self.library)
        else:
            duration = library_cost_us(spec, workload)
        if duration is None:
            # No library available: frameworks fall back to naive kernels
            # (noticeably worse than either library or tuned code).
            duration = tuned_cost_us(
                spec, self.platform.name, workload, Schedule(tile=1, vectorize=1, unroll=1), (1, 1, 1)
            ) * 1.4
        if self.platform.compute.is_gpu:
            clock.launch_async(self.platform.compute, duration, spec.host_launch_us)
        else:
            clock.run_sync(duration)

        # Lite numerics: skip the heavy NumPy work (shape-correct zeros).
        if self.ctx.numerics == "lite" and flops > 1e4 and not op_def.is_dynamic_shape_func:
            outs = [np.zeros(s, dtype=np.asarray(inputs[0]).dtype if inputs else np.float32) for s in out_shapes]
            return outs[0] if len(outs) == 1 else tuple(outs)
        return op_def.compute([np.asarray(i) for i in inputs], attrs)

    # -- convenience wrappers used by the model programs --------------------------
    def dense(self, x, w):
        return self.call("nn.dense", [x, w])

    def bias_add(self, x, b):
        return self.call("nn.bias_add", [x, b])

    def concat(self, tensors, axis=0):
        return self.call("concatenate", list(tensors), {"axis": axis})

    def split(self, x, sections, axis=0):
        return self.call("split", [x], {"indices_or_sections": sections, "axis": axis})

    def sigmoid(self, x):
        return self.call("sigmoid", [x])

    def tanh(self, x):
        return self.call("tanh", [x])

    def add(self, a, b):
        return self.call("add", [a, b])

    def multiply(self, a, b):
        return self.call("multiply", [a, b])

    def softmax(self, x, axis=-1):
        return self.call("nn.softmax", [x], {"axis": axis})

    def layer_norm(self, x, g, b, eps=1e-12):
        return self.call("nn.layer_norm", [x, g, b], {"axis": -1, "epsilon": eps})

    def gelu(self, x):
        return self.call("nn.gelu", [x])

    def reshape(self, x, shape):
        return self.call("reshape", [x], {"newshape": tuple(shape)})

    def transpose(self, x, axes):
        return self.call("transpose", [x], {"axes": tuple(axes)})

    def batch_matmul(self, a, b):
        return self.call("nn.batch_matmul", [a, b])


class Framework:
    """Base class: every framework reports which workloads it supports,
    mirroring the availability matrix of §6.2."""

    name = "framework"

    def __init__(self, platform: Platform, numerics: str = "full") -> None:
        self.platform = platform
        self.numerics = numerics

    def supports(self, model: str) -> bool:  # pragma: no cover - overridden
        return True

    def make_context(self) -> ExecutionContext:
        return ExecutionContext(self.platform, numerics=self.numerics)
