"""PyTorch-style eager (define-by-run) framework.

Every operator is dispatched from host Python as it executes: flexible,
but "eagerly executing each computation in isolation ... substantially
limits optimization, i.e. no operator fusion" (§2.1). Dynamic data
structures are traversed in Python, which is why Tree-LSTM is so
expensive here (Table 2): each tree node pays Python recursion + tensor
bookkeeping on top of its tiny kernels.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines import overhead
from repro.baselines.base import BaselineResult, Framework, OpExecutor
from repro.baselines.model_programs import (
    run_bert_ops,
    run_lstm_ops,
    tree_lstm_node_ops,
)
from repro.data.trees import Tree
from repro.models.bert import BertWeights
from repro.models.lstm import LSTMWeights
from repro.models.tree_lstm import TreeLSTMWeights


class EagerFramework(Framework):
    name = "pytorch"

    def supports(self, model: str) -> bool:
        return model in ("lstm", "tree_lstm", "bert")

    def _executor(self, ctx) -> OpExecutor:
        return OpExecutor(
            self.platform,
            ctx,
            overhead.EAGER_OP_US[self.platform.name],
            library=overhead.FRAMEWORK_LIBRARY.get(
                (self.name, self.platform.name)
            ),
        )

    # ------------------------------------------------------------------- LSTM
    def run_lstm(self, sentences: List[np.ndarray], weights: LSTMWeights) -> BaselineResult:
        ctx = self.make_context()
        ex = self._executor(ctx)
        tokens = 0
        for sent in sentences:
            run_lstm_ops(ex, sent, weights)
            tokens += sent.shape[0]
        return BaselineResult(self.name, self.platform.name, ctx.elapsed_us, tokens)

    # --------------------------------------------------------------- Tree-LSTM
    def run_tree_lstm(
        self, trees: List[Tree], embeddings: np.ndarray, weights: TreeLSTMWeights
    ) -> BaselineResult:
        ctx = self.make_context()
        ex = self._executor(ctx)
        node_us = overhead.EAGER_TREE_NODE_US[self.platform.name]
        tokens = 0

        def recurse(node: Tree) -> Tuple[np.ndarray, np.ndarray]:
            # Python-level structure handling: recursion, attribute access,
            # per-node tensor creation — the dominant Tree-LSTM cost here.
            ctx.clock.host_advance(node_us)
            if node.is_leaf:
                x = embeddings[node.token_id : node.token_id + 1].astype(np.float32)
                return tree_lstm_node_ops(ex, weights, x=x)
            return tree_lstm_node_ops(
                ex, weights, left=recurse(node.left), right=recurse(node.right)
            )

        for tree in trees:
            recurse(tree)
            tokens += tree.num_leaves()
        return BaselineResult(self.name, self.platform.name, ctx.elapsed_us, tokens)

    # -------------------------------------------------------------------- BERT
    def run_bert(self, inputs: List[np.ndarray], weights: BertWeights) -> BaselineResult:
        ctx = self.make_context()
        ex = self._executor(ctx)
        tokens = 0
        for x in inputs:
            run_bert_ops(ex, x, weights)
            tokens += x.shape[0]
        return BaselineResult(self.name, self.platform.name, ctx.elapsed_us, tokens)
