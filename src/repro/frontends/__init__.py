"""Frontend converters into the Nimble IR.

The paper's system ingests models "in the format of mainstream deep
learning frameworks" through TVM's frontend converters (§4). This package
provides the equivalent for this reproduction's framework substrate: a
converter from the TensorFlow-style dataflow graphs of
:mod:`repro.baselines.graph_framework` (op nodes, constants, while loops
with control-flow primitives) into Nimble IR modules — loops become
recursive functions guarded by ``If``, exactly the representation the
dynamic pipeline compiles.
"""

from repro.frontends.from_graph import from_graph

__all__ = ["from_graph"]
