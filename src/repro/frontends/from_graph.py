"""Convert a framework-style dataflow graph into a Nimble IR module.

Input: :class:`repro.baselines.graph_framework.Graph` — the define-then-run
format with ``OpNode``/``ConstNode``/``WhileLoop`` (the latter standing in
for TensorFlow's Switch/Merge/Enter/Exit/NextIteration machinery).

Output: an :class:`IRModule` whose ``main`` mirrors the graph; each
``WhileLoop`` becomes a module-level *recursive function* over the loop
variables — Nimble's native encoding of dynamic control flow — with the
loop condition inlined as the recursion guard.

The converter needs input types (frameworks carry placeholder shapes);
dynamic dimensions are declared with ``Any``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.graph_framework import ConstNode, Graph, OpNode, WhileLoop
from repro.errors import CompilerError
from repro.ir import (
    Call,
    Constant,
    Expr,
    Function,
    If,
    IRModule,
    Op,
    ScopeBuilder,
    TensorType,
    Tuple as IRTuple,
    TupleGetItem,
    Type,
    Var,
)
from repro.tensor.ndarray import array as make_array
from repro.utils.naming import NameSupply


def from_graph(
    graph: Graph,
    input_types: Sequence[Type],
    mod: IRModule = None,
    name: str = "main",
    _names: NameSupply = None,
) -> IRModule:
    """Convert *graph* (with the given placeholder types) to an IRModule."""
    mod = mod if mod is not None else IRModule()
    names = _names or NameSupply()
    if len(input_types) != graph.num_inputs:
        raise CompilerError(
            f"graph has {graph.num_inputs} inputs, got {len(input_types)} types"
        )

    from repro.core.typing import infer_expr_type

    params = [Var(names.fresh("in"), ty) for ty in input_types]
    sb = ScopeBuilder(names)
    values: Dict[int, Expr] = {i: p for i, p in enumerate(params)}

    for node in graph.nodes:
        if isinstance(node, ConstNode):
            values[node.output_id] = Constant(make_array(node.value))
        elif isinstance(node, OpNode):
            call = Call(
                Op.get(node.op_name),
                [values[i] for i in node.input_ids],
                dict(node.attrs),
            )
            # Types are needed eagerly: a WhileLoop's state signature is
            # derived from the types of the expressions feeding it.
            ty = infer_expr_type(call, mod)
            var = sb.let(node.op_name.split(".")[-1], call)
            var.checked_type = ty
            values[node.output_id] = var
        elif isinstance(node, WhileLoop):
            results = _convert_while(node, values, mod, sb, names)
            for vid, expr in zip(node.output_ids, results):
                values[vid] = expr
        else:  # pragma: no cover - exhaustive
            raise CompilerError(f"cannot convert graph node {type(node).__name__}")

    if len(graph.output_ids) == 1:
        body = sb.get(values[graph.output_ids[0]])
    else:
        body = sb.get(IRTuple([values[i] for i in graph.output_ids]))
    mod[name] = Function(params, body)
    return mod


def _convert_while(
    loop: WhileLoop,
    values: Dict[int, Expr],
    mod: IRModule,
    sb: ScopeBuilder,
    names: NameSupply,
) -> List[Expr]:
    """One WhileLoop → a recursive global function over the loop state."""
    from repro.core.typing import infer_expr_type
    from repro.ir.types import TupleType

    state_exprs = [values[i] for i in loop.loop_var_ids]
    state_types: List[Type] = []
    for expr in state_exprs:
        ty = expr.checked_type
        if ty is None:
            ty = infer_expr_type(expr, mod)
        state_types.append(ty)

    gv = mod.get_global_var(names.fresh("while_loop"))
    loop_params = [Var(names.fresh("s"), ty) for ty in state_types]

    # Condition sub-module: inline its dataflow over the loop params.
    cond_expr, cond_sb = _inline_subgraph(loop.cond, loop_params, names)
    body_exprs, body_sb = _inline_subgraph_multi(loop.body, loop_params, names)

    ret_ty = TupleType(state_types)
    recurse = body_sb.get(Call(gv, body_exprs))
    loop_body = cond_sb.get(
        If(cond_expr, recurse, IRTuple(list(loop_params)))
    )
    mod[gv] = Function(loop_params, loop_body, ret_ty)

    result = sb.let("loop_out", Call(gv, state_exprs))
    return [sb.let(f"lv{i}", TupleGetItem(result, i)) for i in range(len(state_exprs))]


def _inline_subgraph(graph: Graph, params: Sequence[Var], names: NameSupply):
    """Inline a single-output subgraph over *params*; returns (atom, builder)."""
    exprs, sb = _inline_subgraph_multi(graph, params, names)
    return exprs[0], sb


def _inline_subgraph_multi(graph: Graph, params: Sequence[Var], names: NameSupply):
    if graph.num_inputs != len(params):
        raise CompilerError("subgraph arity mismatch during conversion")
    sb = ScopeBuilder(names)
    values: Dict[int, Expr] = {i: p for i, p in enumerate(params)}
    for node in graph.nodes:
        if isinstance(node, ConstNode):
            values[node.output_id] = Constant(make_array(node.value))
        elif isinstance(node, OpNode):
            call = Call(
                Op.get(node.op_name),
                [values[i] for i in node.input_ids],
                dict(node.attrs),
            )
            values[node.output_id] = sb.let(node.op_name.split(".")[-1], call)
        elif isinstance(node, WhileLoop):
            raise CompilerError("nested while loops are not supported by the converter")
        else:  # pragma: no cover
            raise CompilerError(f"cannot convert {type(node).__name__}")
    return [values[i] for i in graph.output_ids], sb
