"""The analytical kernel cost model.

``time = max(compute, memory) + launch`` with:

* compute = flops / (peak · efficiency · gpu_utilization)
* memory  = bytes / (bandwidth(working set) · bandwidth_fraction)
* symbolic kernels pay an index-computation overhead (Table 4's 5–25 %
  band) and — when the runtime residue has no specialized variant — the
  boundary-check penalty of §4.5 / Figure 3.

The same model prices compiler-generated (tuned) kernels and vendor
library kernels; the dispatcher picks whichever is cheaper, reproducing
the paper's profile-guided kernel selection (§6.2).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.codegen.schedule import Schedule
from repro.codegen.workload import Workload
from repro.hardware import calibration
from repro.hardware.specs import DeviceSpec, LibraryProfile


# Vendor libraries are tuned for large, regular shapes; on the small and
# odd shapes dynamic models produce they fall off peak much sooner than a
# kernel generated *for that shape distribution* (§4.5's motivation).
# cuDNN/cuBLAS are better at transformer shapes than CPU BLAS at GEMV-ish
# ones, hence the smaller GPU factor.
LIBRARY_SAT_SCALE_CPU = 8.0
LIBRARY_SAT_SCALE_GPU = 2.5


def _base_time_us(
    spec: DeviceSpec,
    workload: Workload,
    gemm_eff: float,
    elem_eff: float,
    bw_frac: float,
    sat_scale: float = 1.0,
) -> float:
    eff = gemm_eff if workload.is_gemm else elem_eff
    # Saturation: GPUs need occupancy for *every* kernel; multi-core CPUs
    # only pay the parallel fork/join on compute-bound (GEMM-like) loops —
    # tiny elementwise ops stay single-threaded and streaming.
    apply_sat = spec.is_gpu or workload.is_gemm
    sat = spec.sat_flops * sat_scale if apply_sat else 0.0
    util = workload.flops / (workload.flops + sat) if sat > 0 else 1.0
    compute_us = workload.flops / max(1e-9, spec.peak_gflops * 1e3 * eff * util)
    bw = spec.effective_bandwidth_gbps(int(workload.working_set)) * bw_frac
    memory_us = workload.bytes_moved / max(1e-9, bw * 1e3)
    return max(compute_us, memory_us)


def tuned_cost_us(
    spec: DeviceSpec,
    platform_name: str,
    workload: Workload,
    schedule: Schedule,
    mnk: Tuple[int, int, int],
    symbolic: bool = False,
    residues_per_kernel: int = 1,
) -> float:
    """Cost of a compiler-generated kernel under *schedule*.

    ``mnk`` is the canonical (rows, cols, reduction) the schedule applies
    to; ``symbolic`` marks kernels generated for symbolic shapes.

    ``residues_per_kernel`` implements §4.5's dispatch trade-off: with a
    tiling factor *t* and *k* generated kernels, each kernel covers
    ``t / k`` residue classes. A kernel covering exactly one residue has
    all boundary checks eliminated; covering more leaves a fraction
    ``1 - 1/rpk`` of them in place, costing the schedule's boundary
    penalty coefficient on that fraction.
    """
    m, n, k = mnk
    quality = schedule.quality(m, n, k)
    base = _base_time_us(
        spec,
        workload,
        gemm_eff=spec.tuned_gemm_efficiency * quality,
        elem_eff=spec.tuned_elemwise_efficiency * quality,
        bw_frac=spec.tuned_bandwidth_fraction,
    )
    if symbolic:
        base *= 1.0 + calibration.SYMBOLIC_INDEX_OVERHEAD[platform_name]
        rpk = max(1, int(residues_per_kernel))
        if rpk > 1:
            residual_fraction = 1.0 - 1.0 / rpk
            base *= 1.0 + schedule.boundary_penalty_coeff(platform_name) * residual_fraction
    return base + spec.launch_overhead_us


def custom_library_cost_us(
    spec: DeviceSpec, workload: Workload, lib: LibraryProfile
) -> float:
    """Cost under an explicit library profile (the baselines bundle their
    own kernel libraries, which differ per framework and platform)."""
    base = _base_time_us(
        spec,
        workload,
        gemm_eff=lib.gemm_efficiency,
        elem_eff=lib.elemwise_efficiency,
        bw_frac=lib.bandwidth_fraction,
        sat_scale=LIBRARY_SAT_SCALE_GPU if spec.is_gpu else LIBRARY_SAT_SCALE_CPU,
    )
    return base + spec.launch_overhead_us


def library_cost_us(spec: DeviceSpec, workload: Workload) -> Optional[float]:
    """Cost of the vendor-library implementation, if the platform has one.
    Libraries handle arbitrary shapes (no symbolic penalty) but carry
    their own efficiency profile."""
    lib = spec.library
    if lib is None:
        return None
    base = _base_time_us(
        spec,
        workload,
        gemm_eff=lib.gemm_efficiency,
        elem_eff=lib.elemwise_efficiency,
        bw_frac=lib.bandwidth_fraction,
        sat_scale=LIBRARY_SAT_SCALE_GPU if spec.is_gpu else LIBRARY_SAT_SCALE_CPU,
    )
    return base + spec.launch_overhead_us


def kernel_cost_us(
    spec: DeviceSpec,
    platform_name: str,
    workload: Workload,
    schedule: Schedule,
    mnk: Tuple[int, int, int],
    symbolic: bool,
    residues_per_kernel: int = 1,
    allow_library: bool = True,
) -> Tuple[float, str]:
    """Best available implementation: (cost, impl name)."""
    tuned = tuned_cost_us(
        spec, platform_name, workload, schedule, mnk, symbolic, residues_per_kernel
    )
    best, impl = tuned, "compiled"
    if allow_library:
        lib = library_cost_us(spec, workload)
        if lib is not None and lib < best:
            best, impl = lib, spec.library.name  # type: ignore[union-attr]
    return best, impl
