"""Template-based auto-tuning, extended to symbolic shapes (§4.5).

:class:`AutoTuner` searches the schedule template space for one kernel at
one static shape (random sampling + greedy mutation, seeded — standing in
for AutoTVM's XGBoost search; the measurement is the analytical cost
model, so tuning is deterministic and fast).

:class:`SymbolicTuner` is the paper's three-step workflow for kernels with
a symbolic dimension:

1. replace the symbolic dimension with a large value (64) and tune there;
2. take the top-k (k=100) configurations and evaluate each on a selection
   of other shapes (powers of two up to 256);
3. pick the configuration with the best *average* performance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.cost_model import tuned_cost_us
from repro.codegen.kernels import canonical_mnk
from repro.codegen.schedule import Schedule, search_space
from repro.codegen.workload import compute_workload
from repro.errors import TuningError
from repro.hardware.platforms import Platform
from repro.hardware.specs import DeviceSpec
from repro.ir.expr import Function
from repro.ir.types import Any, TensorType

Shape = Tuple[int, ...]

TOP_K = 100  # the paper found k=100 covers most best-configs across shapes
CROSS_SHAPES = tuple(2**i for i in range(0, 9))  # 1..256, powers of two
TUNE_AT = 64  # "large enough" static stand-in for the symbolic dim


def instantiate_shapes(prim: Function, m: int) -> List[Shape]:
    """Concrete input shapes with every ``Any`` dim replaced by *m* (current
    dynamic models need a single symbolic variable — §4.5)."""
    shapes: List[Shape] = []
    for p in prim.params:
        ty = p.checked_type or p.type_annotation
        if not isinstance(ty, TensorType):
            raise TuningError(f"cannot instantiate non-tensor param {p.name_hint}")
        shapes.append(tuple(m if isinstance(d, Any) else d for d in ty.shape))
    return shapes


@dataclass(order=True)
class TuningRecord:
    cost_us: float
    schedule: Schedule = field(compare=False)


class AutoTuner:
    """Search the template space for one kernel at one static shape."""

    def __init__(
        self,
        prim: Function,
        platform: Platform,
        spec: DeviceSpec,
        seed: int = 0,
        symbolic: bool = True,
    ) -> None:
        self.prim = prim
        self.platform = platform
        self.spec = spec
        self.rng = random.Random(seed)
        self.symbolic = symbolic
        self.trials = 0

    def measure(self, schedule: Schedule, m: int) -> float:
        """One simulated measurement: full-dispatch cost at shape *m*."""
        self.trials += 1
        in_shapes = instantiate_shapes(self.prim, m)
        workload = compute_workload(self.prim, in_shapes)
        mnk = canonical_mnk(self.prim, in_shapes, workload.out_shapes[0])
        return tuned_cost_us(
            self.spec,
            self.platform.name,
            workload,
            schedule,
            mnk,
            symbolic=self.symbolic,
            residues_per_kernel=1,
        )

    def tune(self, m: int, n_trials: int = 128) -> List[TuningRecord]:
        """Random sampling + greedy neighborhood mutation; returns records
        sorted best-first, one record per distinct schedule.

        Mutation can rediscover an already-recorded schedule; without
        deduplication those duplicates occupy slots of the top-k that
        :class:`SymbolicTuner` cross-evaluates on every shape, wasting its
        evaluation budget on repeats.
        """
        space = search_space()
        if not space:
            raise TuningError("empty schedule search space")
        n_trials = min(n_trials, len(space))
        sampled = self.rng.sample(space, n_trials)
        records = [TuningRecord(self.measure(s, m), s) for s in sampled]
        records.sort()
        # Greedy mutation around the incumbent (simulated annealing lite).
        incumbent = records[0]
        for _ in range(16):
            neighbor = self._mutate(incumbent.schedule)
            cost = self.measure(neighbor, m)
            if cost < incumbent.cost_us:
                incumbent = TuningRecord(cost, neighbor)
                records.insert(0, incumbent)
        records.sort()
        # The measurement is deterministic, so a duplicate schedule always
        # carries the same cost: keeping the first (best-sorted) suffices.
        seen = set()
        unique: List[TuningRecord] = []
        for record in records:
            if record.schedule in seen:
                continue
            seen.add(record.schedule)
            unique.append(record)
        return unique

    def _mutate(self, s: Schedule) -> Schedule:
        choice = self.rng.randrange(4)
        bump = self.rng.choice((0.5, 2))
        clamp = lambda v, lo, hi: max(lo, min(hi, int(v)))
        if choice == 0:
            return Schedule(clamp(s.tile * bump, 1, 32), s.vectorize, s.unroll, s.parallel)
        if choice == 1:
            return Schedule(s.tile, clamp(s.vectorize * bump, 1, 16), s.unroll, s.parallel)
        if choice == 2:
            return Schedule(s.tile, s.vectorize, clamp(s.unroll * bump, 1, 8), s.parallel)
        return Schedule(s.tile, s.vectorize, s.unroll, not s.parallel)


class SymbolicTuner:
    """The §4.5 workflow for symbolic-shape kernels."""

    def __init__(
        self,
        prim: Function,
        platform: Platform,
        spec: DeviceSpec,
        seed: int = 0,
        top_k: int = TOP_K,
        cross_shapes: Sequence[int] = CROSS_SHAPES,
        tune_at: int = TUNE_AT,
    ) -> None:
        self.tuner = AutoTuner(prim, platform, spec, seed=seed, symbolic=True)
        self.top_k = top_k
        self.cross_shapes = tuple(cross_shapes)
        self.tune_at = tune_at
        self.history: Dict[Schedule, float] = {}

    def tune(self, n_trials: int = 128) -> Schedule:
        # Step 1: tune at the large static stand-in shape.
        records = self.tuner.tune(self.tune_at, n_trials=n_trials)
        candidates = records[: self.top_k]
        # Step 2: cross-evaluate the top-k on representative shapes.
        best_schedule: Optional[Schedule] = None
        best_avg = float("inf")
        for record in candidates:
            total = 0.0
            for m in self.cross_shapes:
                total += self.tuner.measure(record.schedule, m)
            avg = total / len(self.cross_shapes)
            self.history[record.schedule] = avg
            # Step 3: best average across shapes wins.
            if avg < best_avg:
                best_avg = avg
                best_schedule = record.schedule
        assert best_schedule is not None
        return best_schedule
