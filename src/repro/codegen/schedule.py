"""Kernel schedules and the template search space (§4.5).

A :class:`Schedule` is the tunable loop structure of a generated kernel:
the tiling factor of the (possibly symbolic) row dimension, vector width,
unroll factor and parallelization. The *quality model* scores how well a
schedule fits a concrete shape — divisibility of the tiled/vectorized
dimensions is what makes configurations transfer (or not) across shapes,
which is exactly the structure the symbolic tuning workflow exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.hardware import calibration
from repro.hardware.specs import DeviceSpec


@dataclass(frozen=True, order=True)
class Schedule:
    tile: int = 8        # tiling of the dynamic (rows) dimension
    vectorize: int = 4   # SIMD width on the columns dimension
    unroll: int = 2      # inner-loop unroll factor
    parallel: bool = True

    def __str__(self) -> str:
        return f"S(tile={self.tile},vec={self.vectorize},unroll={self.unroll},par={int(self.parallel)})"

    # -- quality model ---------------------------------------------------------
    def quality(self, m: int, n: int, k: int) -> float:
        """Relative efficiency (0, 1] of this schedule on a (m×k)·(k×n)
        shaped workload. Deterministic, no randomness: the search space has
        real structure for the tuner to find."""
        q = 1.0
        # Vector width must divide the columns; penalty scales with waste.
        if n % self.vectorize != 0:
            q *= 0.78
        elif self.vectorize >= 8:
            q *= 1.0  # wide vectors are free when they fit
        else:
            q *= 0.9 + 0.025 * self.vectorize

        # Row-tile remainder executes scalar epilogue code.
        if m >= 1:
            remainder = m % self.tile
            frac = remainder / max(m, self.tile)
            q *= 1.0 - 0.35 * frac
            if self.tile > m:
                q *= 0.8  # tile larger than the extent wastes lanes

        # Vector-width × unroll footprint has a sweet spot that scales with
        # the row length: long rows (n ≥ 2048, e.g. BERT's 768→3072 FFN)
        # amortize wide unrolled bodies; moderate rows leave them starved.
        # This is why differently-shaped dense layers tune to different
        # schedules — and hence degrade differently without residue
        # dispatch (Figure 3).
        import math

        footprint = max(1, self.vectorize * self.unroll)
        ideal = 16.0 if n >= 2048 else 8.0
        q *= 1.0 - 0.05 * abs(math.log2(footprint) - math.log2(ideal))

        # Register blocking vs. reduction depth: very deep K with huge
        # tiles thrashes registers.
        if k > 0 and self.tile * self.vectorize > 0:
            pressure = self.tile * self.vectorize / 64.0
            if pressure > 4.0:
                q *= 0.85

        if not self.parallel:
            q *= 0.55 if m * n >= 1 << 14 else 0.95
        return max(0.05, min(q, 1.0))

    def boundary_penalty_coeff(self, spec_platform_name: str) -> float:
        """The §4.5 boundary-check slowdown coefficient of this schedule.

        Wider vector/unroll footprints lose more when the loop bounds are
        not provably divisible — the generated epilogue is scalar. This is
        what makes the three BERT dense layers in Figure 3 degrade by
        different amounts (their tuned schedules differ).
        """
        base = calibration.BOUNDARY_CHECK_PENALTY[spec_platform_name]
        return base * (self.vectorize * self.unroll) / 8.0


def default_schedule() -> Schedule:
    return Schedule()


def search_space() -> List[Schedule]:
    """The template's full configuration space (~200 configs, matching the
    scale of a small AutoTVM template)."""
    out: List[Schedule] = []
    for tile in (1, 2, 4, 8, 16, 32):
        for vec in (1, 2, 4, 8, 16):
            for unroll in (1, 2, 4, 8):
                for par in (True, False):
                    out.append(Schedule(tile, vec, unroll, par))
    return out
