"""Kernel workload analysis and the NumPy executor for primitive functions.

A fused kernel's cost is determined by its *workload*: FLOPs, bytes moved
across the memory hierarchy, and the resident working set. Fusion is
modeled faithfully — intermediates inside a fused group stay in registers
or cache, so only external inputs and final outputs count toward bytes
moved (that is precisely why fusion wins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CompilerError
from repro.ir.expr import Call, Constant, Expr, Function, Let, Tuple as IRTuple, TupleGetItem, Var
from repro.ir.op import Op
from repro.ops import get_op_def
from repro.ops.registry import OpPattern
from repro.ops.shape_funcs import prod
from repro.tensor.dtype import dtype_bytes

Shape = Tuple[int, ...]

# Ops whose cost profile is GEMM-like (compute-bound at scale). The one
# authoritative set — the kernel cost model and the profiler's GEMM
# launch counting both import it.
GEMM_OPS = frozenset(
    {"nn.dense", "nn.batch_dense", "nn.batch_matmul", "nn.conv2d"}
)
_GEMM_OPS = GEMM_OPS


@dataclass(frozen=True)
class Workload:
    flops: float
    bytes_moved: float
    working_set: float
    is_gemm: bool
    out_shapes: Tuple[Shape, ...]

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / max(1.0, self.bytes_moved)


def _walk_calls(func: Function) -> List[Tuple[Var, Call]]:
    """(binder, call) pairs of the primitive body, in evaluation order.
    Nested calls (hand-built, non-ANF primitive bodies) are linearized
    with synthetic binders; the final expression gets one too."""
    out: List[Tuple[Var, Call]] = []

    def linearize(expr: Expr) -> Expr:
        """Bind nested call arguments to synthetic vars, post-order."""
        if not isinstance(expr, Call):
            return expr
        new_args = []
        for arg in expr.args:
            if isinstance(arg, Call):
                inner = linearize(arg)
                var = Var(f"_t{len(out)}")
                out.append((var, inner))
                new_args.append(var)
            else:
                new_args.append(arg)
        if all(n is o for n, o in zip(new_args, expr.args)):
            return expr
        return Call(expr.op, new_args, expr.attrs)

    node: Expr = func.body
    while isinstance(node, Let):
        if isinstance(node.value, Call):
            out.append((node.var, linearize(node.value)))
        node = node.body
    if isinstance(node, Call):
        out.append((Var("_ret"), linearize(node)))
    return out


class _ShapeEnv:
    """Abstract interpretation of a primitive body over shapes."""

    def __init__(self, func: Function, in_shapes: Sequence[Shape]) -> None:
        if len(func.params) != len(in_shapes):
            raise CompilerError(
                f"workload: arity mismatch ({len(func.params)} params, "
                f"{len(in_shapes)} shapes)"
            )
        self.env: Dict[Var, object] = {
            p: tuple(int(d) for d in s) for p, s in zip(func.params, in_shapes)
        }
        self.dtypes: Dict[Var, str] = {}
        for p in func.params:
            ty = p.checked_type or p.type_annotation
            self.dtypes[p] = getattr(ty, "dtype", "float32")

    def eval(self, expr: Expr):
        if isinstance(expr, Var):
            return self.env[expr]
        if isinstance(expr, Constant):
            return tuple(expr.value.shape)
        if isinstance(expr, IRTuple):
            return tuple(self.eval(f) for f in expr.fields)
        if isinstance(expr, TupleGetItem):
            return self.eval(expr.tuple_value)[expr.index]
        raise CompilerError(f"workload: non-atom argument {type(expr).__name__}")


def compute_workload(func: Function, in_shapes: Sequence[Shape]) -> Workload:
    """Analyze one fused kernel at concrete input shapes."""
    env = _ShapeEnv(func, in_shapes)
    calls = _walk_calls(func)
    if not calls:
        raise CompilerError("workload of a primitive without calls")

    flops = 0.0
    is_gemm = False
    for var, call in calls:
        if not isinstance(call.op, Op):
            raise CompilerError("primitive bodies contain only operator calls")
        op_def = get_op_def(call.op.name)
        arg_shapes = [env.eval(a) for a in call.args]
        outs = op_def.shape_func(arg_shapes, None, call.attrs)
        env.env[var] = outs[0] if len(outs) == 1 else tuple(outs)
        flops += op_def.flops(arg_shapes, outs, call.attrs)
        if call.op.name in _GEMM_OPS:
            is_gemm = True

    # Bytes: external params in + final outputs out; constants embedded in
    # the body count toward both traffic and the working set.
    bytes_in = 0.0
    for p, shape in zip(func.params, in_shapes):
        bytes_in += prod(shape) * dtype_bytes(env.dtypes.get(p, "float32"))
    for _, call in calls:
        for arg in call.args:
            if isinstance(arg, Constant):
                bytes_in += arg.value.nbytes

    final = env.env[calls[-1][0]]
    if isinstance(final, tuple) and final and isinstance(final[0], tuple):
        out_shapes = tuple(tuple(s) for s in final)
    else:
        out_shapes = (tuple(final),)
    ret_ty = func.ret_type
    out_dtype = getattr(ret_ty, "dtype", "float32")
    bytes_out = sum(prod(s) * dtype_bytes(out_dtype) for s in out_shapes)

    return Workload(
        flops=flops,
        bytes_moved=bytes_in + bytes_out,
        working_set=bytes_in + bytes_out,
        is_gemm=is_gemm,
        out_shapes=out_shapes,
    )


def run_prim_func(func: Function, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Execute a primitive function body on NumPy arrays.

    This is the numerical ground truth for every kernel variant — symbolic,
    residue-specialized and library implementations all compute the same
    values; only their *cost* differs.
    """
    if len(func.params) != len(inputs):
        raise CompilerError(
            f"kernel arity mismatch: {len(func.params)} params, {len(inputs)} inputs"
        )
    env: Dict[Var, object] = dict(zip(func.params, inputs))

    def eval_expr(expr: Expr):
        if isinstance(expr, Var):
            return env[expr]
        if isinstance(expr, Constant):
            return expr.data
        if isinstance(expr, IRTuple):
            return tuple(eval_expr(f) for f in expr.fields)
        if isinstance(expr, TupleGetItem):
            return eval_expr(expr.tuple_value)[expr.index]
        if isinstance(expr, Call) and isinstance(expr.op, Op):
            op_def = get_op_def(expr.op.name)
            args = [eval_expr(a) for a in expr.args]
            return op_def.compute(args, expr.attrs)
        raise CompilerError(f"kernel executor: cannot evaluate {type(expr).__name__}")

    node: Expr = func.body
    while isinstance(node, Let):
        env[node.var] = eval_expr(node.value)
        node = node.body
    result = eval_expr(node)
    if isinstance(result, tuple):
        return [np.asarray(r) for r in result]
    return [np.asarray(result)]
