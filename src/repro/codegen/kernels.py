"""Compiled kernel artifacts and runtime shape dispatch (§4.5).

A :class:`KernelSet` is what the VM's ``InvokePacked`` invokes: the NumPy
executor for the fused group plus a dispatch table of residue-specialized
symbolic variants and (optionally) a vendor-library alternative. At call
time the set inspects the runtime shapes, dispatches to the variant for
``rows % tile``, and reports the modeled duration — choosing the library
implementation when profiling says it is faster, exactly the paper's
selection mechanism.

:class:`ShapeFuncKernel` is the compiled form of a shape function; it runs
on the host and its cost is charged as "other instructions" in the
Table 4 breakdown.
"""

from __future__ import annotations

import functools
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codegen.cost_model import library_cost_us, tuned_cost_us
from repro.codegen.schedule import Schedule, default_schedule
from repro.codegen.workload import GEMM_OPS, Workload, compute_workload, run_prim_func
from repro.core.memory.prim_info import PrimFuncInfo, analyze_prim_func, run_fused_shape_func
from repro.errors import CompilerError
from repro.hardware import calibration
from repro.hardware.platforms import Platform
from repro.hardware.specs import DeviceSpec
from repro.ir.analysis import structural_hash
from repro.ir.expr import Call, Expr, Function, Let, Var
from repro.ir.op import Op
from repro.ir.types import TensorType, has_any_dim, type_hash
from repro.ops.shape_funcs import prod

Shape = Tuple[int, ...]

_GEMM_OPS = GEMM_OPS


def _prim_calls(func: Function) -> List[Call]:
    calls: List[Call] = []
    node: Expr = func.body
    while isinstance(node, Let):
        if isinstance(node.value, Call):
            calls.append(node.value)
        node = node.body
    if isinstance(node, Call):
        calls.append(node)
    return calls


def canonical_mnk(func: Function, in_shapes: Sequence[Shape], out_shape: Shape) -> Tuple[int, int, int]:
    """(rows, cols, reduction) the schedule's loop nest maps to."""
    from repro.ir.expr import Constant

    param_index = {p: i for i, p in enumerate(func.params)}

    def arg_shape(arg: Expr, fallback: Shape) -> Shape:
        if isinstance(arg, Var) and arg in param_index:
            return tuple(in_shapes[param_index[arg]])
        if isinstance(arg, Constant):
            return tuple(arg.value.shape)
        return fallback

    for call in _prim_calls(func):
        if isinstance(call.op, Op) and call.op.name in _GEMM_OPS:
            if call.op.name in ("nn.dense", "nn.batch_dense"):
                d_shape = arg_shape(call.args[0], out_shape)
                w_shape = arg_shape(call.args[1], (1, 1))
                m = prod(d_shape[:-1]) if len(d_shape) > 1 else 1
                return (max(1, m), w_shape[0], w_shape[1])
            if call.op.name == "nn.batch_matmul":
                a_shape = arg_shape(call.args[0], out_shape)
                return (max(1, a_shape[0] * a_shape[1]), out_shape[-1], a_shape[-1])
            if call.op.name == "nn.conv2d":
                w_shape = arg_shape(call.args[1], (1, 1, 1, 1))
                m = prod(out_shape) // max(1, out_shape[1]) if len(out_shape) == 4 else prod(out_shape)
                return (max(1, m), w_shape[0], prod(w_shape[1:]))
    # Elementwise / injective kernels: rows × cols of the output.
    if len(out_shape) >= 2:
        return (prod(out_shape[:-1]), out_shape[-1], 1)
    return (out_shape[0] if out_shape else 1, 1, 1)


def prim_signature(func: Function) -> Tuple[int, ...]:
    """Shape-signature component of a kernel cache key.

    ``structural_hash`` is alpha-insensitive and ignores variable *types*,
    so a shape-specialized prim (``dense`` over ``(12, 16)``) hashes equal
    to its symbolic original (``dense`` over ``(Any, 16)``). Keying caches
    on structure alone would hand the symbolic kernel back to a static
    compile (and vice versa); the type hashes of params and return
    disambiguate — ``type_hash`` maps ``Any`` to a distinct marker.
    """
    parts = []
    for p in func.params:
        ty = p.checked_type or p.type_annotation
        parts.append(type_hash(ty) if ty is not None else 0)
    ret = func.ret_type
    parts.append(type_hash(ret) if ret is not None else 0)
    return tuple(parts)


def is_symbolic_prim(func: Function) -> bool:
    """Does this kernel face a symbolic (Any) shape at compile time?"""
    for p in func.params:
        ty = p.checked_type or p.type_annotation
        if ty is not None and has_any_dim(ty):
            return True
    ret = func.ret_type
    return ret is not None and has_any_dim(ret)


@dataclass
class KernelInvocation:
    """Outcome of one dispatch: modeled duration + which impl ran."""

    duration_us: float
    impl: str
    residues_per_kernel: int
    flops: float = 0.0


class KernelSet:
    """All generated variants of one fused kernel on one platform."""

    def __init__(
        self,
        prim: Function,
        platform: Platform,
        spec: DeviceSpec,
        schedule: Optional[Schedule] = None,
        num_dispatch_kernels: Optional[int] = None,
        allow_library: bool = True,
        symbolic: Optional[bool] = None,
    ) -> None:
        self.prim = prim
        self.platform = platform
        self.spec = spec
        self.schedule = schedule or default_schedule()
        self.symbolic = is_symbolic_prim(prim) if symbolic is None else symbolic
        # Full dispatch by default: one kernel per residue class (§4.5).
        self.num_dispatch_kernels = (
            num_dispatch_kernels
            if num_dispatch_kernels is not None
            else (self.schedule.tile if self.symbolic else 1)
        )
        self.allow_library = allow_library
        self.calls = 0
        self.last_invocation: Optional[KernelInvocation] = None
        self._info: Optional[PrimFuncInfo] = None

    @property
    def info(self) -> PrimFuncInfo:
        if self._info is None:
            self._info = analyze_prim_func(self.prim)
        return self._info

    # -- identity ---------------------------------------------------------------
    @functools.cached_property
    def name(self) -> str:
        # Cached: the profiler reads this on every kernel invocation —
        # the interpreter's hottest path — and the Let-chain walk plus
        # string join must not be repaid per dispatch.
        ops = "+".join(
            c.op.name for c in _prim_calls(self.prim) if isinstance(c.op, Op)
        )
        return f"fused_{ops}"

    @property
    def code_size_bytes(self) -> int:
        """Modeled machine-code footprint; §4.5 notes the duplication from
        residue dispatch is small relative to model weights."""
        per_variant = 2048 + 256 * self.schedule.unroll * self.schedule.vectorize
        variants = self.num_dispatch_kernels if self.symbolic else 1
        return per_variant * variants

    # -- execution ------------------------------------------------------------------
    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        self.calls += 1
        return run_prim_func(self.prim, inputs)

    def invoke_cost(self, in_shapes: Sequence[Shape]) -> KernelInvocation:
        """Model the latency of one invocation at concrete shapes."""
        try:
            workload = compute_workload(self.prim, in_shapes)
        except Exception:
            # Data-dependent kernels (arange/unique/...) cannot predict
            # their output from shapes alone; bound the workload by the
            # inputs (these ops are input-dominated anyway).
            in_bytes = float(sum(4 * prod(s) for s in in_shapes))
            out_shape = tuple(in_shapes[0]) if in_shapes else (1,)
            workload = Workload(
                flops=max(1.0, in_bytes),
                bytes_moved=2.0 * max(4.0, in_bytes),
                working_set=2.0 * max(4.0, in_bytes),
                is_gemm=False,
                out_shapes=(out_shape,),
            )
        mnk = canonical_mnk(self.prim, in_shapes, workload.out_shapes[0])
        if self.symbolic:
            tile = max(1, self.schedule.tile)
            rpk = max(1, tile // max(1, min(self.num_dispatch_kernels, tile)))
        else:
            rpk = 1
        tuned = tuned_cost_us(
            self.spec,
            self.platform.name,
            workload,
            self.schedule,
            mnk,
            symbolic=self.symbolic,
            residues_per_kernel=rpk,
        )
        best, impl = tuned, "compiled"
        if self.allow_library:
            lib = library_cost_us(self.spec, workload)
            if lib is not None and lib < best:
                best, impl = lib, self.spec.library.name  # type: ignore[union-attr]
        inv = KernelInvocation(
            duration_us=best, impl=impl, residues_per_kernel=rpk, flops=workload.flops
        )
        self.last_invocation = inv
        return inv


class ShapeFuncKernel:
    """Compiled shape function of one primitive group (host-resident)."""

    def __init__(self, prim: Function, platform: Platform) -> None:
        self.prim = prim
        self.platform = platform
        self.info: PrimFuncInfo = analyze_prim_func(prim)

    def run(
        self,
        in_shapes: Sequence[Shape],
        in_values: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[np.ndarray]:
        shapes = run_fused_shape_func(self.info, in_shapes, in_values)
        return [np.asarray(s, dtype=np.int64) for s in shapes]

    def cost_us(self, in_values: Optional[Sequence[Optional[np.ndarray]]] = None) -> float:
        base = calibration.SHAPE_FUNC_US[self.platform.name]
        if self.info.mode.value == "data_dependent" and in_values:
            # Data-dependent shape functions scan their inputs.
            nbytes = sum(v.nbytes for v in in_values if v is not None)
            host = self.platform.host_spec
            base += nbytes / (host.dram_bw_gbps * 1e3)
        return base


# Version tag of the kernel-cache export format. Entries are pickled
# (like the executable's kernel section); bumping this invalidates every
# persisted cache file instead of risking a misread.
KERNEL_CACHE_FORMAT = 1


class KernelCache:
    """Structural-hash cache: identical fused groups compile once.

    The cache also persists: :meth:`export_entries` serializes every
    compiled kernel and shape function (tuned schedules included) to one
    blob, and :meth:`import_entries` merges such a blob into a live
    cache — the artifact store uses the pair so a restarted server's
    *dynamic* build starts with the previous process's tuning work, not
    just its specialized executables."""

    def __init__(self) -> None:
        self._kernels: Dict[tuple, KernelSet] = {}
        self._shape_funcs: Dict[tuple, ShapeFuncKernel] = {}

    # ------------------------------------------------------------ persistence
    def export_entries(self) -> bytes:
        """Serialize the cache for the artifact store. Runtime counters
        (``calls``, ``last_invocation``) travel along but are
        meaningless across processes; identity lives in the keys
        (structural hash + shape signature + platform)."""
        return pickle.dumps(
            (KERNEL_CACHE_FORMAT, self._kernels, self._shape_funcs)
        )

    def import_entries(self, blob: bytes) -> int:
        """Merge an :meth:`export_entries` blob into this cache; returns
        how many entries were added. Existing entries always win — a
        live KernelSet may already be referenced by compiled executables,
        and replacing it under them would fork the profile accounting."""
        from repro.errors import SerializationError

        try:
            fmt, kernels, shape_funcs = pickle.loads(blob)
        except Exception as err:
            raise SerializationError(
                f"kernel-cache blob does not deserialize: {err}"
            ) from err
        if fmt != KERNEL_CACHE_FORMAT:
            raise SerializationError(
                f"kernel-cache format {fmt} is not the supported "
                f"{KERNEL_CACHE_FORMAT}"
            )
        added = 0
        for key, kernel in kernels.items():
            if key not in self._kernels:
                self._kernels[key] = kernel
                added += 1
        for key, shape_func in shape_funcs.items():
            if key not in self._shape_funcs:
                self._shape_funcs[key] = shape_func
                added += 1
        return added

    def kernel(self, prim: Function, platform: Platform, spec: DeviceSpec, **kwargs) -> KernelSet:
        key = (structural_hash(prim), prim_signature(prim), platform.name)
        found = self._kernels.get(key)
        if found is None:
            found = KernelSet(prim, platform, spec, **kwargs)
            self._kernels[key] = found
        return found

    def shape_func(self, prim: Function, platform: Platform) -> ShapeFuncKernel:
        key = (structural_hash(prim), prim_signature(prim), platform.name)
        found = self._shape_funcs.get(key)
        if found is None:
            found = ShapeFuncKernel(prim, platform)
            self._shape_funcs[key] = found
        return found

    def __len__(self) -> int:
        return len(self._kernels)
