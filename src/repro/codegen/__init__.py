"""Symbolic code generation (§4.5).

Compiles primitive (fused) functions into :class:`KernelSet`s: NumPy
executors paired with an analytical cost model, residue-specialized
symbolic variants with runtime shape dispatch, optional vendor-library
alternatives, and a template-based auto-tuner extended to symbolic shapes.
"""

from repro.codegen.workload import Workload, compute_workload, run_prim_func
from repro.codegen.schedule import Schedule, default_schedule, search_space
from repro.codegen.cost_model import kernel_cost_us, library_cost_us, tuned_cost_us
from repro.codegen.kernels import KernelCache, KernelSet, ShapeFuncKernel
from repro.codegen.tuner import AutoTuner, SymbolicTuner, TuningRecord

__all__ = [
    "Workload",
    "compute_workload",
    "run_prim_func",
    "Schedule",
    "default_schedule",
    "search_space",
    "kernel_cost_us",
    "library_cost_us",
    "tuned_cost_us",
    "KernelCache",
    "KernelSet",
    "ShapeFuncKernel",
    "AutoTuner",
    "SymbolicTuner",
    "TuningRecord",
]
