"""The public compile-and-run API.

    import repro.nimble as nimble
    from repro.hardware import intel_cpu

    exe, report = nimble.build(mod, platform=intel_cpu())
    vm = nimble.VirtualMachine(exe)
    out = vm.run(x)

``build`` runs the full dynamic-compilation pipeline of Figure 2: type
inference with ``Any`` → constant folding → simplification → ANF → CSE →
DCE → dynamic-aware fusion → manifest allocation → memory planning →
device placement → VM bytecode + kernel generation.

``specialize`` is the static tier of the same pipeline: it binds the
entry function's ``Any`` dims to concrete values (``SpecializeShapes``)
and re-runs the identical pass sequence, so shape functions disappear,
allocations get compile-time sizes, and kernels compile without residue
dispatch — while sharing the dynamic build's :class:`KernelCache` so
common (already-static) kernels compile once.

Specialization is *staged*: the shape-independent front of the pipeline
— type inference over the dynamic module, constant folding,
simplification, ANF conversion, CSE, DCE, and lambda lifting — depends
only on (module, platform), never on which shape gets bound, so
:func:`build_prefix` runs it once and packages the result as a
:class:`SpecializationPrefix`. ``specialize(prefix=...)`` then runs only
the *suffix* per variant: substitute the binding, finish residual type
inference, and re-run fusion, manifest allocation, placement, planning,
and codegen. Member and batched variants of the same shape share one
prefix. :func:`compile_prefix` adds the caching: in-process per
(fingerprint, platform), and persistently in the ``repro.store``
artifact store, so even a restarted server skips the prefix work.
"""

from __future__ import annotations

import contextlib
import hashlib
import pickle
import struct
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.kernels import KernelCache
from repro.core.device import DevicePlace, PlacementReport
from repro.core.memory import ManifestAlloc, MemoryPlan, MemoryPlanReport
from repro.core.typing import InferType, translate_binding
from repro.errors import CompilerError, SerializationError
from repro.hardware.platforms import Platform, intel_cpu
from repro.ir.module import IRModule
from repro.ir.printer import module_fingerprint
from repro.passes import (
    CommonSubexprElimination,
    DeadCodeElimination,
    FoldConstant,
    FuseOps,
    LambdaLift,
    Sequential,
    SimplifyExpressions,
    SpecializeBatch,
    SpecializeShapes,
    ToANF,
)
from repro.vm.compiler import CompilerOptions, VMCompiler
from repro.vm.executable import Executable
from repro.vm.interpreter import VirtualMachine  # re-export for convenience

__all__ = [
    "build",
    "build_prefix",
    "compile_prefix",
    "clear_prefix_cache",
    "prefix_store_key",
    "specialize",
    "save_artifacts",
    "load_artifacts",
    "BuildReport",
    "CompilerOptions",
    "SpecializationPrefix",
    "VirtualMachine",
]


@dataclass
class BuildReport:
    """Everything the compiler learned along the way (used by benchmarks)."""

    pass_timings: Dict[str, float] = field(default_factory=dict)
    memory: Optional[MemoryPlanReport] = None
    placement: Optional[PlacementReport] = None
    num_kernels: int = 0
    num_instructions: int = 0
    bytecode_bytes: int = 0
    kernel_code_bytes: int = 0
    # The module right after type inference: callers that need checked
    # types (e.g. the serving layer's shape bucketer) reuse this instead
    # of re-running inference.
    typed_module: Optional[IRModule] = None


def _lower_and_compile(
    typed: IRModule,
    platform: Platform,
    options: CompilerOptions,
    plan_memory: bool,
    kernel_cache: Optional[KernelCache],
    source_signature: str,
    passes: List,
    pre_timings: Dict[str, float],
) -> Tuple[Executable, BuildReport]:
    """The shared back half of every compile: run *passes* (then
    placement and planning) over the already type-checked *typed*, emit
    VM bytecode + kernels, and stamp the artifact-store identity."""
    passes = list(passes)
    # Placement must precede planning: the coalescer may only multiplex
    # tensors that live on the same device, and output buffers must be
    # allocated directly on their kernel's device (never copy-patched).
    device_pass = DevicePlace(platform.host, platform.compute)
    passes.append(device_pass)
    memory_pass = MemoryPlan() if plan_memory else None
    if memory_pass is not None:
        passes.append(memory_pass)

    pipeline = Sequential(passes)
    lowered = pipeline.run(typed)

    compiler = VMCompiler(platform, options, kernel_cache)
    exe = compiler.compile(lowered)
    # Stamp the artifact-store identity: which module these bytes were
    # compiled from. `specialize` passes the *dynamic* source module's
    # fingerprint so all of one model's shape variants share a module
    # identity in the store key.
    exe.source_signature = source_signature

    report = BuildReport(
        pass_timings={**pre_timings, **pipeline.timings},
        memory=memory_pass.report if memory_pass is not None else None,
        placement=device_pass.report,
        num_kernels=len(exe.kernels),
        num_instructions=exe.num_instructions,
        bytecode_bytes=exe.bytecode_size_bytes(),
        kernel_code_bytes=exe.kernel_code_size_bytes(),
        typed_module=typed,
    )
    return exe, report


def build(
    mod: IRModule,
    platform: Optional[Platform] = None,
    options: Optional[CompilerOptions] = None,
    plan_memory: bool = True,
    kernel_cache: Optional[KernelCache] = None,
    source_signature: Optional[str] = None,
) -> Tuple[Executable, BuildReport]:
    """Compile a module for *platform*. ``plan_memory=False`` disables the
    §4.3 coalescing/kill pass (the memory-planning ablation).
    ``source_signature`` overrides the artifact-store identity stamped on
    the executable (fingerprinting hashes every constant's bytes, so
    callers that already hold the right fingerprint — ``specialize``, the
    serving manager — pass it instead of paying the hash again)."""
    platform = platform or intel_cpu()
    options = options or CompilerOptions()

    infer_start = time.perf_counter()
    typed = InferType()(mod)
    infer_time = time.perf_counter() - infer_start

    passes = [
        FoldConstant(),
        SimplifyExpressions(),
        ToANF(),
        CommonSubexprElimination(),
        DeadCodeElimination(),
        LambdaLift(),
        FuseOps(),
        ManifestAlloc(),
    ]
    signature = (
        source_signature if source_signature is not None
        else module_fingerprint(mod)
    )
    return _lower_and_compile(
        typed, platform, options, plan_memory, kernel_cache, signature,
        passes, {"InferType": infer_time},
    )


# ---------------------------------------------------------------------------
# Staged specialization: the shape-independent prefix
# ---------------------------------------------------------------------------

# Serialization version of prefix blobs. Bumping it changes every prefix
# store key (the version is a key component), so stale blobs are never
# even looked up — the same structural-staleness scheme executables use.
PREFIX_VERSION = 1
_PREFIX_MAGIC = b"NMBP"


def prefix_store_key(source_signature: str, platform_name: str) -> str:
    """The artifact-store key of one module's specialization prefix:
    content-addressed over (module fingerprint, platform, blob format),
    mirroring :func:`repro.vm.executable.artifact_key` for executables."""
    identity = repr(("nimble-prefix", source_signature, platform_name, PREFIX_VERSION))
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


@contextlib.contextmanager
def _deep_recursion(limit: int = 20_000):
    """Pickling an ANF module recurses once per Let link; a long chain
    overruns the default interpreter limit long before it troubles
    memory. Raised temporarily, never lowered."""
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, limit))
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


@dataclass
class SpecializationPrefix:
    """The shape-independent front of the specialization pipeline, run
    once per (module fingerprint, platform) and shared by every shape
    variant — member-wise and batched alike.

    ``module`` is the dynamic module after type inference, constant
    folding, simplification, ANF conversion, CSE, DCE, and lambda
    lifting: everything that does not depend on which ``Any`` tokens get
    bound. Fusion is deliberately *not* in the prefix — fused primitive
    parameters carry checked-type annotations with fresh ``Any`` tokens
    a later binding could never reach, and the batch rewrite needs a
    pre-fusion module — so fusion runs in the per-variant suffix, after
    binding, where it sees static extents.

    ``save``/``load`` round-trip the prefix through the artifact store
    (magic + version + content digest + pickled module); loads are
    paranoid like executable loads — truncation, version skew, digest
    mismatch, and fingerprint mismatch all raise
    :class:`SerializationError`, which store callers turn into a counted
    skip, never a wrong compile."""

    module: IRModule
    source_signature: str
    platform_name: str
    entry: str = "main"
    pass_timings: Dict[str, float] = field(default_factory=dict)

    def store_key(self) -> str:
        return prefix_store_key(self.source_signature, self.platform_name)

    def save(self) -> bytes:
        with _deep_recursion():
            payload = pickle.dumps(
                (self.source_signature, self.platform_name, self.entry, self.module),
                protocol=4,
            )
        digest = hashlib.sha256(payload).digest()
        return (
            _PREFIX_MAGIC
            + struct.pack("<I", PREFIX_VERSION)
            + digest
            + payload
        )

    @staticmethod
    def load(
        blob: bytes, expected_signature: Optional[str] = None
    ) -> "SpecializationPrefix":
        header = len(_PREFIX_MAGIC) + 4 + 32
        if len(blob) < header:
            raise SerializationError(
                f"prefix blob truncated: {len(blob)} bytes"
            )
        if blob[: len(_PREFIX_MAGIC)] != _PREFIX_MAGIC:
            raise SerializationError("prefix blob has a bad magic number")
        (version,) = struct.unpack(
            "<I", blob[len(_PREFIX_MAGIC): len(_PREFIX_MAGIC) + 4]
        )
        if version != PREFIX_VERSION:
            raise SerializationError(
                f"prefix blob is version {version}, this build reads "
                f"version {PREFIX_VERSION}"
            )
        digest = blob[len(_PREFIX_MAGIC) + 4: header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            raise SerializationError("prefix blob content digest mismatch")
        try:
            with _deep_recursion():
                signature, platform_name, entry, module = pickle.loads(payload)
        except SerializationError:
            raise
        except Exception as err:  # corrupt pickles raise all sorts
            raise SerializationError(
                f"prefix blob failed to deserialize: {err}"
            )
        if not isinstance(module, IRModule):
            raise SerializationError(
                f"prefix blob holds a {type(module).__name__}, not a module"
            )
        if expected_signature is not None and signature != expected_signature:
            raise SerializationError(
                f"prefix was built from module {signature[:12]}…, "
                f"expected {expected_signature[:12]}…"
            )
        return SpecializationPrefix(
            module=module,
            source_signature=signature,
            platform_name=platform_name,
            entry=entry,
        )


def build_prefix(
    mod: IRModule,
    platform: Optional[Platform] = None,
    source_signature: Optional[str] = None,
    entry: str = "main",
) -> SpecializationPrefix:
    """Run the shape-independent prefix of the specialization pipeline
    over the *dynamic* module: inference with ``Any`` dims, then every
    normalization pass whose output a shape binding cannot change.
    The result feeds ``specialize(prefix=...)`` for each variant."""
    platform = platform or intel_cpu()
    signature = (
        source_signature if source_signature is not None
        else module_fingerprint(mod)
    )
    infer_start = time.perf_counter()
    typed = InferType()(mod)
    infer_time = time.perf_counter() - infer_start
    pipeline = Sequential(
        [
            FoldConstant(),
            SimplifyExpressions(),
            ToANF(),
            CommonSubexprElimination(),
            DeadCodeElimination(),
            LambdaLift(),
        ]
    )
    normalized = pipeline.run(typed)
    if entry not in normalized:
        raise CompilerError(f"module has no entry function {entry!r}")
    return SpecializationPrefix(
        module=normalized,
        source_signature=signature,
        platform_name=platform.name,
        entry=entry,
        pass_timings={"InferType": infer_time, **pipeline.timings},
    )


# The in-process prefix cache, keyed (module fingerprint, platform name).
# Entries are inserted only after a prefix builds *completely* — an
# exception mid-construction leaves no partial entry to poison later
# callers (see compile_prefix).
_PREFIX_CACHE: Dict[Tuple[str, str], SpecializationPrefix] = {}


def clear_prefix_cache() -> None:
    """Drop every in-process cached prefix (test isolation hook)."""
    _PREFIX_CACHE.clear()


def compile_prefix(
    mod: IRModule,
    platform: Optional[Platform] = None,
    source_signature: Optional[str] = None,
    entry: str = "main",
    store=None,
    use_cache: bool = True,
) -> Tuple[SpecializationPrefix, str]:
    """Obtain the specialization prefix for (mod, platform), cheapest
    source first; returns ``(prefix, origin)`` with origin one of
    ``"memory"`` (in-process cache), ``"store"`` (validated artifact-
    store blob), or ``"built"`` (computed now).

    Cache-poisoning safety: the in-process cache and the store are
    written strictly *after* a complete, successful build — a pass that
    raises mid-prefix leaves both untouched, so the next call rebuilds
    from scratch instead of reusing a partial result. Store blobs that
    fail validation are skipped (the store counts the reject in its
    ``reject_log``) and the prefix is rebuilt — never trusted."""
    platform = platform or intel_cpu()
    signature = (
        source_signature if source_signature is not None
        else module_fingerprint(mod)
    )
    key = (signature, platform.name)
    if use_cache:
        found = _PREFIX_CACHE.get(key)
        if found is not None:
            return found, "memory"
    if store is not None:
        found = store.get_prefix(
            prefix_store_key(signature, platform.name),
            expected_signature=signature,
        )
        if found is not None:
            if use_cache:
                _PREFIX_CACHE[key] = found
            return found, "store"
    prefix = build_prefix(
        mod, platform, source_signature=signature, entry=entry
    )
    if use_cache:
        _PREFIX_CACHE[key] = prefix
    if store is not None:
        store.put_prefix(prefix)
    return prefix, "built"


def specialize(
    mod: IRModule,
    platform: Optional[Platform] = None,
    shapes=None,
    binding=None,
    options: Optional[CompilerOptions] = None,
    plan_memory: bool = True,
    kernel_cache: Optional[KernelCache] = None,
    entry: str = "main",
    batch: int = 1,
    source_signature: Optional[str] = None,
    prefix: Optional[SpecializationPrefix] = None,
) -> Tuple[Executable, BuildReport]:
    """Compile a static-shape executable for one concrete input shape.

    ``shapes`` gives one shape spec per entry parameter (a tuple of ints
    for tensor params, nested tuples for tuple params, ``None`` to leave
    a param dynamic); alternatively ``binding`` maps ``Any`` identity
    tokens to values directly. Pass the dynamic build's ``kernel_cache``
    to share already-compiled static kernels between the tiers. The
    returned executable carries ``specialized_shapes`` describing what it
    was specialized to, and its outputs are bit-identical to the dynamic
    executable's on matching inputs — only the dispatch/shape-function/
    allocation overhead changes.

    ``batch > 1`` additionally specializes at *batch granularity*
    (:class:`SpecializeBatch`): the executable runs ``batch``
    identical-shape members per call — inputs stacked along axis 0,
    outputs split back — with each GEMM site compiling to one batched
    kernel instead of ``batch`` member-wise launches. Outputs remain
    bit-identical per member. ``specialized_shapes`` stays in member
    terms; the stacking factor is recorded separately as
    ``specialized_batch``. Raises
    :class:`repro.passes.BatchSpecializeError` on modules that cannot be
    batch-rewritten (e.g. ADT entries).

    With ``prefix`` (a :class:`SpecializationPrefix` for this module and
    platform), only the shape-binding *suffix* runs: the binding is
    substituted into the already normalized prefix module, residual type
    inference finishes the staticization, and just fusion, manifest
    allocation, placement, planning, and codegen execute per variant.
    Outputs are bit-identical to the monolithic path and the executable
    carries the same artifact key (``tests/test_differential.py`` fuzzes
    both claims); only the per-variant compile work shrinks.
    """
    platform = platform or intel_cpu()
    # The store key's module component must be the *dynamic* source
    # module — the thing a restarted server still has in hand when it
    # asks "do I already own a build for this shape?" — not the
    # specialized module, which only exists after the compile the store
    # is supposed to skip. Computed here (once) unless the caller
    # already holds it.
    if source_signature is None:
        source_signature = module_fingerprint(mod)
    if prefix is not None:
        return _specialize_from_prefix(
            mod, prefix, platform, shapes, binding, options, plan_memory,
            kernel_cache, entry, batch, source_signature,
        )
    spec_pass = SpecializeShapes(shapes=shapes, binding=binding, entry=entry)
    specialized = spec_pass(mod)
    if batch > 1:
        specialized = SpecializeBatch(batch, entry=entry)(specialized)
    opts = _variant_options(options, spec_pass.bound_shapes, batch)
    return build(
        specialized, platform, opts, plan_memory=plan_memory,
        kernel_cache=kernel_cache, source_signature=source_signature,
    )


def _variant_options(
    base: Optional[CompilerOptions], bound_shapes, batch: int
) -> CompilerOptions:
    base = base or CompilerOptions()
    return CompilerOptions(
        tune=base.tune,
        num_dispatch_kernels=base.num_dispatch_kernels,
        allow_library=base.allow_library,
        schedule=base.schedule,
        tuning_trials=base.tuning_trials,
        specialized_shapes=bound_shapes,
        specialized_batch=batch if batch > 1 else None,
        device_streams=base.device_streams,
        verify=base.verify,
    )


def _specialize_from_prefix(
    mod: IRModule,
    prefix: SpecializationPrefix,
    platform: Platform,
    shapes,
    binding,
    options: Optional[CompilerOptions],
    plan_memory: bool,
    kernel_cache: Optional[KernelCache],
    entry: str,
    batch: int,
    source_signature: str,
) -> Tuple[Executable, BuildReport]:
    """The shape-binding suffix: everything ``specialize`` must redo per
    variant once the shape-independent prefix exists."""
    if prefix.source_signature != source_signature:
        raise CompilerError(
            f"specialization prefix was built from module "
            f"{prefix.source_signature[:12]}…, not {source_signature[:12]}…"
        )
    if prefix.platform_name != platform.name:
        raise CompilerError(
            f"specialization prefix was built for platform "
            f"{prefix.platform_name!r}, not {platform.name!r}"
        )
    if entry not in prefix.module or entry not in mod:
        raise CompilerError(f"module has no entry function {entry!r}")
    if binding:
        # The binding is expressed in the *source* module's Any-token
        # space. In-process the prefix shares those token objects, but a
        # store-restored prefix was pickled under another process's
        # token counter — translate positionally (entry annotations are
        # structurally identical) so the substitution lands either way.
        binding = translate_binding(mod[entry], prefix.module[entry], binding)
    spec_pass = SpecializeShapes(shapes=shapes, binding=binding, entry=entry)
    specialized = spec_pass(prefix.module)
    if batch > 1:
        specialized = SpecializeBatch(batch, entry=entry)(specialized)

    infer_start = time.perf_counter()
    typed = InferType()(specialized)
    infer_time = time.perf_counter() - infer_start
    # The prefix module is already in strict ANF and the shape
    # substitution preserves that structure, so the member-wise suffix
    # goes straight to fusion. The batch rewrite, however, emits nested
    # calls (lifted reshapes, offset-index chains), so its suffix
    # re-normalizes first — exactly what the monolithic path's full
    # pipeline did after SpecializeBatch.
    passes: List = []
    if batch > 1:
        passes += [
            ToANF(),
            CommonSubexprElimination(),
            DeadCodeElimination(),
        ]
    passes += [FuseOps(), ManifestAlloc()]
    opts = _variant_options(options, spec_pass.bound_shapes, batch)
    return _lower_and_compile(
        typed, platform, opts, plan_memory, kernel_cache, source_signature,
        passes, {"InferType": infer_time},
    )


# ---------------------------------------------------------------------------
# Artifact persistence (the on-disk store, `repro.store`)
# ---------------------------------------------------------------------------


def save_artifacts(
    artifact_dir,
    executables: Sequence[Executable],
    kernel_cache: Optional[KernelCache] = None,
) -> List[str]:
    """Persist compiled *executables* (and optionally the shared
    *kernel_cache*) to the versioned store at *artifact_dir*; returns
    the content-hash key each executable was filed under.

    The inverse of :func:`load_artifacts`. The serving layer does this
    automatically (``ServeConfig(artifact_dir=...)``); the free
    functions cover ahead-of-time deployment — compile a model's known
    shapes once, ship the directory, start every replica warm.
    """
    from repro.store import ArtifactStore

    store = ArtifactStore(artifact_dir)
    keys = [store.put(exe) for exe in executables]
    if kernel_cache is not None:
        store.save_kernel_cache(kernel_cache)
    return keys


def load_artifacts(
    artifact_dir,
    kernel_cache: Optional[KernelCache] = None,
) -> Dict[str, Executable]:
    """Load every valid artifact in the store at *artifact_dir*, keyed
    by content hash; corrupt or stale blobs are skipped (see
    ``ArtifactStore.reject_log``), never raised. When *kernel_cache* is
    given, the persisted kernel cache merges into it, so subsequent
    ``build``/``specialize`` calls reuse the stored tuning work.
    """
    from repro.store import ArtifactStore

    store = ArtifactStore(artifact_dir)
    if kernel_cache is not None:
        store.load_kernel_cache(kernel_cache)
    out: Dict[str, Executable] = {}
    for key in store.keys():
        exe = store.get(key)
        if exe is not None:
            out[key] = exe
    return out
