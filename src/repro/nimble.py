"""The public compile-and-run API.

    import repro.nimble as nimble
    from repro.hardware import intel_cpu

    exe, report = nimble.build(mod, platform=intel_cpu())
    vm = nimble.VirtualMachine(exe)
    out = vm.run(x)

``build`` runs the full dynamic-compilation pipeline of Figure 2: type
inference with ``Any`` → constant folding → simplification → ANF → CSE →
DCE → dynamic-aware fusion → manifest allocation → memory planning →
device placement → VM bytecode + kernel generation.

``specialize`` is the static tier of the same pipeline: it binds the
entry function's ``Any`` dims to concrete values (``SpecializeShapes``)
and re-runs the identical pass sequence, so shape functions disappear,
allocations get compile-time sizes, and kernels compile without residue
dispatch — while sharing the dynamic build's :class:`KernelCache` so
common (already-static) kernels compile once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.kernels import KernelCache
from repro.core.device import DevicePlace, PlacementReport
from repro.core.memory import ManifestAlloc, MemoryPlan, MemoryPlanReport
from repro.core.typing import InferType
from repro.hardware.platforms import Platform, intel_cpu
from repro.ir.module import IRModule
from repro.ir.printer import module_fingerprint
from repro.passes import (
    CommonSubexprElimination,
    DeadCodeElimination,
    FoldConstant,
    FuseOps,
    LambdaLift,
    Sequential,
    SimplifyExpressions,
    SpecializeBatch,
    SpecializeShapes,
    ToANF,
)
from repro.vm.compiler import CompilerOptions, VMCompiler
from repro.vm.executable import Executable
from repro.vm.interpreter import VirtualMachine  # re-export for convenience

__all__ = [
    "build",
    "specialize",
    "save_artifacts",
    "load_artifacts",
    "BuildReport",
    "CompilerOptions",
    "VirtualMachine",
]


@dataclass
class BuildReport:
    """Everything the compiler learned along the way (used by benchmarks)."""

    pass_timings: Dict[str, float] = field(default_factory=dict)
    memory: Optional[MemoryPlanReport] = None
    placement: Optional[PlacementReport] = None
    num_kernels: int = 0
    num_instructions: int = 0
    bytecode_bytes: int = 0
    kernel_code_bytes: int = 0
    # The module right after type inference: callers that need checked
    # types (e.g. the serving layer's shape bucketer) reuse this instead
    # of re-running inference.
    typed_module: Optional[IRModule] = None


def build(
    mod: IRModule,
    platform: Optional[Platform] = None,
    options: Optional[CompilerOptions] = None,
    plan_memory: bool = True,
    kernel_cache: Optional[KernelCache] = None,
    source_signature: Optional[str] = None,
) -> Tuple[Executable, BuildReport]:
    """Compile a module for *platform*. ``plan_memory=False`` disables the
    §4.3 coalescing/kill pass (the memory-planning ablation).
    ``source_signature`` overrides the artifact-store identity stamped on
    the executable (fingerprinting hashes every constant's bytes, so
    callers that already hold the right fingerprint — ``specialize``, the
    serving manager — pass it instead of paying the hash again)."""
    platform = platform or intel_cpu()
    options = options or CompilerOptions()

    infer_start = time.perf_counter()
    typed = InferType()(mod)
    infer_time = time.perf_counter() - infer_start

    passes = [
        FoldConstant(),
        SimplifyExpressions(),
        ToANF(),
        CommonSubexprElimination(),
        DeadCodeElimination(),
        LambdaLift(),
        FuseOps(),
        ManifestAlloc(),
    ]
    # Placement must precede planning: the coalescer may only multiplex
    # tensors that live on the same device, and output buffers must be
    # allocated directly on their kernel's device (never copy-patched).
    device_pass = DevicePlace(platform.host, platform.compute)
    passes.append(device_pass)
    memory_pass = MemoryPlan() if plan_memory else None
    if memory_pass is not None:
        passes.append(memory_pass)

    pipeline = Sequential(passes)
    lowered = pipeline.run(typed)

    compiler = VMCompiler(platform, options, kernel_cache)
    exe = compiler.compile(lowered)
    # Stamp the artifact-store identity: which module these bytes were
    # compiled from. `specialize` passes the *dynamic* source module's
    # fingerprint so all of one model's shape variants share a module
    # identity in the store key.
    exe.source_signature = (
        source_signature if source_signature is not None
        else module_fingerprint(mod)
    )

    report = BuildReport(
        pass_timings={"InferType": infer_time, **pipeline.timings},
        memory=memory_pass.report if memory_pass is not None else None,
        placement=device_pass.report,
        num_kernels=len(exe.kernels),
        num_instructions=exe.num_instructions,
        bytecode_bytes=exe.bytecode_size_bytes(),
        kernel_code_bytes=exe.kernel_code_size_bytes(),
        typed_module=typed,
    )
    return exe, report


def specialize(
    mod: IRModule,
    platform: Optional[Platform] = None,
    shapes=None,
    binding=None,
    options: Optional[CompilerOptions] = None,
    plan_memory: bool = True,
    kernel_cache: Optional[KernelCache] = None,
    entry: str = "main",
    batch: int = 1,
    source_signature: Optional[str] = None,
) -> Tuple[Executable, BuildReport]:
    """Compile a static-shape executable for one concrete input shape.

    ``shapes`` gives one shape spec per entry parameter (a tuple of ints
    for tensor params, nested tuples for tuple params, ``None`` to leave
    a param dynamic); alternatively ``binding`` maps ``Any`` identity
    tokens to values directly. Pass the dynamic build's ``kernel_cache``
    to share already-compiled static kernels between the tiers. The
    returned executable carries ``specialized_shapes`` describing what it
    was specialized to, and its outputs are bit-identical to the dynamic
    executable's on matching inputs — only the dispatch/shape-function/
    allocation overhead changes.

    ``batch > 1`` additionally specializes at *batch granularity*
    (:class:`SpecializeBatch`): the executable runs ``batch``
    identical-shape members per call — inputs stacked along axis 0,
    outputs split back — with each GEMM site compiling to one batched
    kernel instead of ``batch`` member-wise launches. Outputs remain
    bit-identical per member. ``specialized_shapes`` stays in member
    terms; the stacking factor is recorded separately as
    ``specialized_batch``. Raises
    :class:`repro.passes.BatchSpecializeError` on modules that cannot be
    batch-rewritten (e.g. ADT entries).
    """
    spec_pass = SpecializeShapes(shapes=shapes, binding=binding, entry=entry)
    specialized = spec_pass(mod)
    if batch > 1:
        specialized = SpecializeBatch(batch, entry=entry)(specialized)
    base = options or CompilerOptions()
    opts = CompilerOptions(
        tune=base.tune,
        num_dispatch_kernels=base.num_dispatch_kernels,
        allow_library=base.allow_library,
        schedule=base.schedule,
        tuning_trials=base.tuning_trials,
        specialized_shapes=spec_pass.bound_shapes,
        specialized_batch=batch if batch > 1 else None,
    )
    # The store key's module component must be the *dynamic* source
    # module — the thing a restarted server still has in hand when it
    # asks "do I already own a build for this shape?" — not the
    # specialized module, which only exists after the compile the store
    # is supposed to skip. Computed here (once) unless the caller
    # already holds it.
    if source_signature is None:
        source_signature = module_fingerprint(mod)
    return build(
        specialized, platform, opts, plan_memory=plan_memory,
        kernel_cache=kernel_cache, source_signature=source_signature,
    )


# ---------------------------------------------------------------------------
# Artifact persistence (the on-disk store, `repro.store`)
# ---------------------------------------------------------------------------


def save_artifacts(
    artifact_dir,
    executables: Sequence[Executable],
    kernel_cache: Optional[KernelCache] = None,
) -> List[str]:
    """Persist compiled *executables* (and optionally the shared
    *kernel_cache*) to the versioned store at *artifact_dir*; returns
    the content-hash key each executable was filed under.

    The inverse of :func:`load_artifacts`. The serving layer does this
    automatically (``ServeConfig(artifact_dir=...)``); the free
    functions cover ahead-of-time deployment — compile a model's known
    shapes once, ship the directory, start every replica warm.
    """
    from repro.store import ArtifactStore

    store = ArtifactStore(artifact_dir)
    keys = [store.put(exe) for exe in executables]
    if kernel_cache is not None:
        store.save_kernel_cache(kernel_cache)
    return keys


def load_artifacts(
    artifact_dir,
    kernel_cache: Optional[KernelCache] = None,
) -> Dict[str, Executable]:
    """Load every valid artifact in the store at *artifact_dir*, keyed
    by content hash; corrupt or stale blobs are skipped (see
    ``ArtifactStore.reject_log``), never raised. When *kernel_cache* is
    given, the persisted kernel cache merges into it, so subsequent
    ``build``/``specialize`` calls reuse the stored tuning work.
    """
    from repro.store import ArtifactStore

    store = ArtifactStore(artifact_dir)
    if kernel_cache is not None:
        store.load_kernel_cache(kernel_cache)
    out: Dict[str, Executable] = {}
    for key in store.keys():
        exe = store.get(key)
        if exe is not None:
            out[key] = exe
    return out
