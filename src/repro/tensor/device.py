"""Devices.

A :class:`Device` identifies where a tensor lives and where a kernel runs.
Because this reproduction models hardware with a virtual clock (no real
GPU), devices are logical: the hardware model (``repro.hardware``) attaches
performance characteristics to each device kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DeviceKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Device:
    """A (kind, index) pair, e.g. ``cpu(0)`` or ``gpu(0)``."""

    kind: DeviceKind
    index: int = 0

    def __str__(self) -> str:
        return f"{self.kind.value}({self.index})"

    @property
    def is_cpu(self) -> bool:
        return self.kind is DeviceKind.CPU

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU


def cpu(index: int = 0) -> Device:
    """The host CPU device (shape functions always run here, §4.4)."""
    return Device(DeviceKind.CPU, index)


def gpu(index: int = 0) -> Device:
    """An accelerator device with a host-interaction execution model."""
    return Device(DeviceKind.GPU, index)
