"""Device-tagged n-dimensional arrays.

The VM's object model passes tensors by reference with copy-on-write
semantics (§5.2): register moves bump a reference count instead of copying,
and mutation through ``invoke_mut`` writes into explicitly allocated
output buffers, so views stay cheap.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import NimbleError, VMError
from repro.tensor.device import Device, cpu
from repro.tensor.dtype import from_numpy_dtype, to_numpy_dtype
from repro.tensor.storage import Storage


class NDArray:
    """A tensor: NumPy data + device tag + optional backing storage.

    ``data`` is the authoritative buffer. When the tensor was carved from a
    :class:`Storage` via the memory planner, ``storage``/``offset`` record
    the aliasing so tests can check planner invariants.
    """

    __slots__ = ("data", "device", "storage", "offset", "refcount")

    def __init__(
        self,
        data: np.ndarray,
        device: Device = cpu(),
        storage: Optional[Storage] = None,
        offset: int = 0,
    ) -> None:
        self.data = data
        self.device = device
        self.storage = storage
        self.offset = offset
        self.refcount = 1

    # -- construction -------------------------------------------------
    @staticmethod
    def from_storage(
        storage: Storage, offset: int, shape: Sequence[int], dtype: str
    ) -> "NDArray":
        np_dtype = to_numpy_dtype(dtype)
        shape = tuple(int(d) for d in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * np_dtype.itemsize if shape else np_dtype.itemsize
        if not shape:
            nbytes = np_dtype.itemsize
        view = storage.view(offset, nbytes, np_dtype, shape)
        return NDArray(view, storage.device, storage, offset)

    # -- properties ----------------------------------------------------
    @property
    def shape(self) -> tuple:
        return tuple(self.data.shape)

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> str:
        return from_numpy_dtype(self.data.dtype)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def item(self):
        """Extract a Python scalar (used by VM ``If`` on condition tensors)."""
        if self.data.size != 1:
            raise VMError(f"item() on tensor of shape {self.shape}")
        return self.data.reshape(()).item()

    # -- reference counting / copy-on-write ----------------------------
    def retain(self) -> "NDArray":
        self.refcount += 1
        return self

    def release(self) -> None:
        self.refcount -= 1

    def copy_on_write(self) -> "NDArray":
        """Return self if uniquely referenced, otherwise a private copy."""
        if self.refcount <= 1:
            return self
        self.release()
        return NDArray(self.data.copy(), self.device)

    # -- device movement ------------------------------------------------
    def to_device(self, device: Device) -> "NDArray":
        """Copy to another device (the cost is charged by the caller)."""
        if device == self.device:
            return self
        return NDArray(self.data.copy(), device)

    def numpy(self) -> np.ndarray:
        return self.data

    def reshape(self, shape: Sequence[int]) -> "NDArray":
        """Shape-only change sharing the underlying buffer (``ReshapeTensor``)."""
        return NDArray(self.data.reshape(tuple(int(d) for d in shape)), self.device,
                       self.storage, self.offset)

    def __repr__(self) -> str:
        return f"NDArray(shape={self.shape}, dtype={self.dtype}, device={self.device})"


def array(
    values: Union[np.ndarray, float, int, list, tuple],
    dtype: Optional[str] = None,
    device: Device = cpu(),
) -> NDArray:
    """Create an NDArray from array-like data."""
    np_dtype = to_numpy_dtype(dtype) if dtype is not None else None
    data = np.asarray(values, dtype=np_dtype)
    if dtype is None:
        # Normalize Python defaults to the IR's canonical dtypes.
        if data.dtype == np.float64:
            data = data.astype(np.float32)
        elif data.dtype in (np.int32,) and isinstance(values, (int, list, tuple)):
            data = data.astype(np.int64)
        elif data.dtype == np.int_ and data.dtype != np.int64:
            data = data.astype(np.int64)
    # ascontiguousarray promotes 0-d to 1-d; preserve scalar rank.
    if data.ndim > 0:
        data = np.ascontiguousarray(data)
    return NDArray(data, device)


def empty(shape: Sequence[int], dtype: str = "float32", device: Device = cpu()) -> NDArray:
    """Allocate an uninitialized tensor directly (bypassing storage)."""
    return NDArray(np.empty(tuple(int(d) for d in shape), dtype=to_numpy_dtype(dtype)), device)
