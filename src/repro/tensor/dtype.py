"""Data types supported by the tensor runtime.

Dtypes are plain strings in the IR (as in Relay: ``"float32"``), with this
module providing validation and the mapping to NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NimbleError

# The canonical set of dtypes the op registry generates kernels for.
_DTYPES = {
    "float32": (np.float32, 4),
    "float64": (np.float64, 8),
    "float16": (np.float16, 2),
    "int64": (np.int64, 8),
    "int32": (np.int32, 4),
    "int8": (np.int8, 1),
    "uint8": (np.uint8, 1),
    "bool": (np.bool_, 1),
}


class DataType(str):
    """A validated dtype string (subclass of ``str`` so IR code can treat it
    as a plain string)."""

    def __new__(cls, value: str) -> "DataType":
        if value not in _DTYPES:
            raise NimbleError(f"unsupported dtype: {value!r}")
        return super().__new__(cls, value)


def is_valid_dtype(value: str) -> bool:
    return value in _DTYPES


def to_numpy_dtype(dtype: str) -> np.dtype:
    """Map an IR dtype string to the NumPy dtype used by kernels."""
    try:
        return np.dtype(_DTYPES[dtype][0])
    except KeyError:
        raise NimbleError(f"unsupported dtype: {dtype!r}") from None


def from_numpy_dtype(dtype: np.dtype) -> str:
    """Map a NumPy dtype back to the IR dtype string."""
    name = np.dtype(dtype).name
    if name == "bool":
        return "bool"
    if name not in _DTYPES:
        raise NimbleError(f"numpy dtype {name!r} has no IR equivalent")
    return name


def dtype_bytes(dtype: str) -> int:
    """Size in bytes of one element of *dtype*."""
    try:
        return _DTYPES[dtype][1]
    except KeyError:
        raise NimbleError(f"unsupported dtype: {dtype!r}") from None
