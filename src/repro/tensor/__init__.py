"""Tensor runtime substrate: dtypes, devices, device-tagged NDArrays, storage.

This is the layer Nimble's VM manipulates: coarse-grained tensor objects
that are reference counted, copy-on-write, and pinned to a device.
"""

from repro.tensor.dtype import DataType, dtype_bytes, to_numpy_dtype
from repro.tensor.device import Device, DeviceKind, cpu, gpu
from repro.tensor.ndarray import NDArray, array, empty
from repro.tensor.storage import Storage

__all__ = [
    "DataType",
    "dtype_bytes",
    "to_numpy_dtype",
    "Device",
    "DeviceKind",
    "cpu",
    "gpu",
    "NDArray",
    "array",
    "empty",
    "Storage",
]
