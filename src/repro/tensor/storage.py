"""Storage blocks.

``AllocStorage`` in the VM (and ``memory.alloc_storage`` in the IR dialect)
allocates an untyped, aligned region of bytes on a device; tensors are then
carved out of storage at an offset by ``AllocTensor``. Making storage a
first-class runtime object is what lets the memory planner multiplex many
tensors onto one allocation (§4.3).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.errors import VMError
from repro.tensor.device import Device

_storage_ids = itertools.count()


class Storage:
    """A contiguous byte buffer on a device.

    Backed by a NumPy ``uint8`` array; tensor views alias into it so that
    coalesced allocations genuinely share memory (tests rely on aliasing to
    verify the planner's non-overlap invariant).
    """

    __slots__ = ("id", "size", "alignment", "device", "buffer", "freed")

    def __init__(self, size: int, alignment: int, device: Device) -> None:
        if size < 0:
            raise VMError(f"storage size must be non-negative, got {size}")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise VMError(f"alignment must be a positive power of two, got {alignment}")
        self.id = next(_storage_ids)
        self.size = int(size)
        self.alignment = int(alignment)
        self.device = device
        self.buffer = np.zeros(self.size, dtype=np.uint8)
        self.freed = False

    def view(self, offset: int, nbytes: int, np_dtype: np.dtype, shape: tuple) -> np.ndarray:
        """Return an ndarray view of ``[offset, offset + nbytes)`` with *shape*."""
        if self.freed:
            raise VMError(f"use-after-free of storage #{self.id}")
        if offset < 0 or offset + nbytes > self.size:
            raise VMError(
                f"tensor [{offset}, {offset + nbytes}) does not fit in "
                f"storage #{self.id} of {self.size} bytes"
            )
        flat = self.buffer[offset : offset + nbytes].view(np_dtype)
        return flat.reshape(shape)

    def free(self) -> None:
        self.freed = True

    def __repr__(self) -> str:
        return f"Storage(#{self.id}, {self.size}B, align={self.alignment}, {self.device})"
