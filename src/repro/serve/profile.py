"""Persisted shape profiles for profile-guided predictive specialization.

A :class:`ShapeProfile` is the end-of-simulation snapshot of one
module's shape traffic: the exact-key hit histogram and the decayed
specialization scores the :class:`~repro.serve.specialization.SpecializationManager`
accumulated, all anchored to one common timestamp. Saved into the
artifact store as a versioned ``.nmblprof`` blob (same magic + version +
content-digest + pickled-payload layout, and the same paranoid
reject-and-count load discipline, as ``.nmbl`` executables and
``.nmblp`` prefixes), it lets a *restarted* server pre-arm its
historical top-K shapes before the first request lands — the Cinder
``profile_data`` JIT flow applied to shape specialization.

Shape keys are the bucketer's exact keys (tuples of ints), plus partial
keys (tuples mixing ints and ``None``) when partial specialization is
on. The profile is keyed in the store by (module fingerprint, platform,
format version) only — one profile per served module, overwritten at
each simulation end — so a schema bump orphans old blobs instead of
misreading them.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import SerializationError

# Serialization version of profile blobs. A component of the store key,
# so bumping it makes stale blobs unreachable rather than misread.
PROFILE_VERSION = 1
_PROFILE_MAGIC = b"NMPF"

# An exact key is all ints; a partial key has None at unbound positions.
ProfileKey = Tuple[Optional[int], ...]


def profile_store_key(source_signature: str, platform_name: str) -> str:
    """The artifact-store key of one module's shape profile:
    content-addressed over (module fingerprint, platform, blob format),
    mirroring :func:`repro.nimble.prefix_store_key` for prefixes."""
    identity = repr(
        ("nimble-profile", source_signature, platform_name, PROFILE_VERSION)
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


@dataclass
class ShapeProfile:
    """One simulation's shape-traffic summary for a (module, platform).

    ``hits`` maps each observed shape key to its raw hit count;
    ``scores`` maps keys to their exponentially decayed specialization
    scores, all decayed to the single common anchor the manager chose at
    snapshot time (so relative hotness is preserved without persisting
    absolute virtual-clock times, which would differ between traces)."""

    source_signature: str
    platform_name: str
    hits: Dict[ProfileKey, int] = field(default_factory=dict)
    scores: Dict[ProfileKey, float] = field(default_factory=dict)

    def store_key(self) -> str:
        return profile_store_key(self.source_signature, self.platform_name)

    def top_keys(self, k: Optional[int] = None) -> Tuple[ProfileKey, ...]:
        """The profile's keys, hottest first: by decayed score, then raw
        hits, then a None-safe lexicographic tiebreak — a total,
        deterministic order even with partial keys in the mix."""
        ordered = sorted(
            self.scores,
            key=lambda key: (
                -self.scores[key],
                -self.hits.get(key, 0),
                _sortable(key),
            ),
        )
        return tuple(ordered if k is None else ordered[:k])

    def save(self) -> bytes:
        payload = pickle.dumps(
            (
                self.source_signature,
                self.platform_name,
                dict(self.hits),
                dict(self.scores),
            ),
            protocol=4,
        )
        digest = hashlib.sha256(payload).digest()
        return (
            _PROFILE_MAGIC
            + struct.pack("<I", PROFILE_VERSION)
            + digest
            + payload
        )

    @staticmethod
    def load(
        blob: bytes, expected_signature: Optional[str] = None
    ) -> "ShapeProfile":
        header = len(_PROFILE_MAGIC) + 4 + 32
        if len(blob) < header:
            raise SerializationError(f"profile blob truncated: {len(blob)} bytes")
        if blob[: len(_PROFILE_MAGIC)] != _PROFILE_MAGIC:
            raise SerializationError("profile blob has a bad magic number")
        (version,) = struct.unpack(
            "<I", blob[len(_PROFILE_MAGIC): len(_PROFILE_MAGIC) + 4]
        )
        if version != PROFILE_VERSION:
            raise SerializationError(
                f"profile blob is version {version}, this build reads "
                f"version {PROFILE_VERSION}"
            )
        digest = blob[len(_PROFILE_MAGIC) + 4: header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            raise SerializationError("profile blob content digest mismatch")
        try:
            signature, platform_name, hits, scores = pickle.loads(payload)
        except Exception as err:  # corrupt pickles raise all sorts
            raise SerializationError(f"profile blob failed to deserialize: {err}")
        if not isinstance(hits, dict) or not isinstance(scores, dict):
            raise SerializationError("profile blob payload has the wrong shape")
        for key in list(hits) + list(scores):
            if not isinstance(key, tuple) or not all(
                d is None or isinstance(d, int) for d in key
            ):
                raise SerializationError(
                    f"profile blob holds a malformed shape key {key!r}"
                )
        if expected_signature is not None and signature != expected_signature:
            raise SerializationError(
                f"profile was recorded for module {signature[:12]}…, "
                f"expected {expected_signature[:12]}…"
            )
        return ShapeProfile(
            source_signature=signature,
            platform_name=platform_name,
            hits={tuple(k): int(v) for k, v in hits.items()},
            scores={tuple(k): float(v) for k, v in scores.items()},
        )


def _sortable(key: ProfileKey) -> Tuple[Tuple[bool, int], ...]:
    """A total-order proxy for shape keys: mixed None/int tuples are not
    directly comparable in Python, so map each dim to (is-None, value)
    — bound dims sort before unbound ones, numerically."""
    return tuple((d is None, -1 if d is None else d) for d in key)
