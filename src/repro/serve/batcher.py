"""Shape-bucketed batching under a latency deadline.

Requests are grouped by the runtime values of their ``Any`` dimensions so
every member of a batch hits the same symbolic-kernel dispatch path and
the same allocator size classes. Which dimensions matter comes from the
§4.1 sub-shaping analysis (``core/typing/subshape.py``): dimensions whose
``Any`` tokens are provably identical contribute one bucket-key entry, and
values are rounded up to a configurable granularity so near-identical
lengths share a bucket (the classic padding-bucket trick, except the VM
needs no padding — the bucket only decides *who batches together*).

A bucket flushes when it reaches ``max_batch_size`` or when its oldest
request has waited ``max_delay_us`` — the standard deadline-batching
tradeoff between throughput and tail latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.typing.subshape import any_dim_groups
from repro.ir.expr import Function, Var


class ShapeBucketer:
    """Derives a bucket key from a request payload.

    Built from a *type-checked* entry function: each distinct ``Any`` token
    appearing in a parameter type yields one key component. Two dimensions
    the sub-shaping analysis proves equal share a token and therefore
    contribute a single component. A component is described by
    ``(param index, tuple path, dim index)`` — the tuple path is non-empty
    when the dynamic dim lives inside a tuple-typed parameter, and the key
    resolves through the payload's tuple structure to reach it.
    """

    def __init__(self, func: Function, granularity: int = 8) -> None:
        if granularity < 1:
            raise ValueError(f"bucket granularity must be >= 1, got {granularity}")
        self.granularity = granularity
        param_index = {p: i for i, p in enumerate(func.params)}
        dims: List[Tuple[int, Tuple[int, ...], int, int]] = []
        for token, entries in any_dim_groups(func).items():
            # One key component per token group: the first parameter
            # occurrence (top-level or through a tuple path) represents
            # every dim proven equal to it. Skipping non-top-level
            # occurrences here would silently merge buckets whose dynamic
            # dim only appears inside a tuple-typed parameter.
            chosen: Optional[Tuple[int, Tuple[int, ...], int]] = None
            for node, path, dim in entries:
                if isinstance(node, Var) and node in param_index:
                    cand = (param_index[node], path, dim)
                    if chosen is None or cand < chosen:
                        chosen = cand
            if chosen is not None:
                dims.append((*chosen, token))
        # Key components in (param, path, dim) order regardless of token order.
        dims.sort()
        self.dynamic_dims: List[Tuple[int, Tuple[int, ...], int]] = [
            (p, path, d) for p, path, d, _ in dims
        ]
        # The Any identity token behind each component, aligned with
        # ``dynamic_dims`` — the specialization manager binds these tokens
        # to an exact key's values when compiling a static executable.
        self.tokens: List[int] = [t for _, _, _, t in dims]

    @staticmethod
    def _resolve(inputs, p: int, path: Tuple[int, ...]):
        if p >= len(inputs):
            raise ValueError(
                f"payload provides {len(inputs)} inputs but param {p} "
                f"is shape-bucketed"
            )
        value = inputs[p]
        for idx in path:
            fields = getattr(value, "fields", None)  # VM ADT tuples
            if fields is not None:
                value = fields[idx]
            elif isinstance(value, (tuple, list)):
                value = value[idx]
            else:
                raise ValueError(
                    f"payload for param {p} is not tuple-structured; cannot "
                    f"resolve bucketed dim at path {path}"
                )
        return value

    def exact_key(self, payload) -> Tuple[int, ...]:
        """The unrounded dynamic-dim values — what a statically specialized
        executable must match exactly."""
        inputs = payload if isinstance(payload, tuple) else (payload,)
        parts: List[int] = []
        for p, path, d in self.dynamic_dims:
            value = self._resolve(inputs, p, path)
            shape = getattr(value, "shape", None)
            if shape is None or d >= len(shape):
                where = f" at path {path}" if path else ""
                raise ValueError(
                    f"payload for param {p}{where} has no dimension {d} "
                    f"to bucket on"
                )
            parts.append(int(shape[d]))
        return tuple(parts)

    def round_key(self, exact: Tuple[int, ...]) -> Tuple[int, ...]:
        """Round an exact key up to the granularity — the one place the
        rounding rule lives, so every caller (the default bucket key, the
        server's specialization-aware key) agrees on it."""
        g = self.granularity
        return tuple(-(-v // g) * g for v in exact)

    def key(self, payload) -> Tuple[int, ...]:
        """Bucket key: each dynamic dim rounded up to the granularity."""
        return self.round_key(self.exact_key(payload))


@dataclass
class Batch:
    """A group of same-bucket requests dispatched together."""

    key: Tuple[int, ...]
    requests: List
    formed_us: float

    def __len__(self) -> int:
        return len(self.requests)


class Batcher:
    """Per-bucket FIFO queues with size- and deadline-triggered flushing.

    ``key_fn(payload, now_us)`` overrides how a payload maps to a bucket
    key (default: the bucketer's rounded key, which ignores the time).
    The current virtual time is threaded explicitly so a time-dependent
    keying policy — the serving layer's specialization tier gives hot
    exact shapes their own buckets once their static executable is ready
    — never depends on hidden state smuggled through the caller.

    ``cap_fn(key)`` overrides the flush size per bucket (defaulting to
    ``max_batch_size``, and never exceeding it): the batch-specialized
    tier aligns a hot shape's bucket cap to its compiled batch size, so a
    full bucket is exactly one batched-executable call and a bucket can
    never outgrow the kernel compiled for it.
    """

    def __init__(
        self,
        bucketer: ShapeBucketer,
        max_batch_size: int = 8,
        max_delay_us: float = 2000.0,
        key_fn=None,
        cap_fn=None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay_us < 0:
            raise ValueError(f"max_delay_us must be >= 0, got {max_delay_us}")
        self.bucketer = bucketer
        self.max_batch_size = max_batch_size
        self.max_delay_us = max_delay_us
        if key_fn is None:
            key_fn = lambda payload, now_us: bucketer.key(payload)  # noqa: E731
        self.key_fn = key_fn
        self.cap_fn = cap_fn
        self._queues: Dict[Tuple[int, ...], List] = {}

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def bucket_cap(self, key: Tuple[int, ...]) -> int:
        """Flush size for *key*'s bucket, clamped to ``max_batch_size``."""
        if self.cap_fn is None:
            return self.max_batch_size
        cap = int(self.cap_fn(key))
        if cap < 1:
            raise ValueError(f"bucket cap for {key} must be >= 1, got {cap}")
        return min(cap, self.max_batch_size)

    def add(self, request, now_us: float) -> Optional[Batch]:
        """Enqueue; returns a full batch if this arrival filled its bucket."""
        key = self.key_fn(request.payload, now_us)
        queue = self._queues.setdefault(key, [])
        queue.append(request)
        cap = self.bucket_cap(key)
        assert len(queue) <= cap, (
            f"bucket {key} grew to {len(queue)} past its cap {cap}"
        )
        if len(queue) >= cap:
            del self._queues[key]
            return Batch(key, queue, now_us)
        return None

    def next_deadline(self) -> Optional[float]:
        """Earliest instant at which some bucket must flush, or None."""
        deadlines = [
            queue[0].arrival_us + self.max_delay_us
            for queue in self._queues.values()
            if queue
        ]
        return min(deadlines) if deadlines else None

    def flush_due(self, now_us: float) -> List[Batch]:
        """Flush every bucket whose oldest request has hit its deadline."""
        out: List[Batch] = []
        for key in list(self._queues):
            queue = self._queues[key]
            if queue and queue[0].arrival_us + self.max_delay_us <= now_us:
                del self._queues[key]
                out.append(Batch(key, queue, now_us))
        return out

    def flush_all(self, now_us: float) -> List[Batch]:
        """Drain every bucket regardless of deadline (server shutdown)."""
        out = [Batch(key, queue, now_us) for key, queue in self._queues.items()]
        self._queues.clear()
        return out
