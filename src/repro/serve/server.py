"""The inference server: an event-driven simulation over virtual time.

``simulate`` replays a request trace against the batcher and worker pool.
The loop advances virtual time from event to event — the next arrival or
the next bucket deadline, whichever comes first — so the trace, the
batching decisions, and every latency number are a pure function of the
inputs. Two identical simulations are bit-identical.

Workers never block batch formation: a flushed batch is assigned to the
earliest-free worker (ties broken by worker id) and starts at
``max(flush time, worker free time)``.

With ``specialize=True`` the server runs tiered compilation: request
arrivals are counted per exact dynamic-dim shape, hot shapes get a
statically recompiled executable (``nimble.specialize``, sharing the
dynamic build's kernel cache), and a batch whose members all match a
specialized shape exactly is routed to the static tier — everything else
falls back to the dynamic executable, including the hot shape itself
while its compile sits in the compile-worker pool (the compile cost is
charged on the virtual clock as lane latency; ``specialize_compile_lanes``
sizes the pool and pending compiles queue by observed traffic). Once a
shape is hot it also gets its own exact bucket, so its batches form
shape-uniform. The specialized-executable cache evicts its coldest entry
under a decayed-hit-score policy when a new shape goes hot past
``specialize_max_executables``; evicted (or momentarily blocked) shapes
stay armed and recompile once a slot frees.

With ``artifact_dir`` set the server is additionally backed by a
persistent artifact store: the kernel cache warm-loads before the
dynamic build, every specialized compile persists its executable, and
hot triggers restore stored artifacts at the modeled deserialize cost
instead of recompiling — so a restarted server reaches its specialized
steady state for a fraction of the cold compile charge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache
from repro.errors import VMError
from repro.hardware.platforms import Platform, intel_cpu
from repro.ir.module import IRModule
from repro.serve.batcher import Batch, Batcher, ShapeBucketer
from repro.serve.report import ServeReport, build_report
from repro.serve.request import Request, Response
from repro.serve.specialization import SpecializationManager
from repro.serve.worker import Worker


@dataclass(frozen=True)
class ServeConfig:
    max_batch_size: int = 8
    max_delay_us: float = 2000.0
    num_workers: int = 2
    bucket_granularity: int = 8
    numerics: str = "lite"
    entry: str = "main"
    # Tiered specialization: compile a static executable for a shape once
    # `specialize_threshold` requests with exactly that shape have been
    # observed. Compiles run on a pool of `specialize_compile_lanes`
    # virtual-clock lanes (pending compiles queue by observed traffic);
    # at most `specialize_max_executables` static builds stay resident,
    # with the coldest entry (hit score decayed on the
    # `specialize_decay_half_life_us` half-life) evicted when a
    # challenger more than `specialize_eviction_margin` times hotter
    # needs the slot (the margin prevents comparable-heat shapes from
    # thrashing the cache) — `specialize_eviction=False` restores the
    # hard cap. `specialize_compile_us` overrides the modeled compile
    # cost.
    specialize: bool = False
    specialize_threshold: int = 8
    specialize_max_executables: int = 4
    specialize_compile_us: Optional[float] = None
    specialize_compile_lanes: int = 1
    specialize_eviction: bool = True
    specialize_decay_half_life_us: float = 100_000.0
    specialize_eviction_margin: float = 2.0
    # Batch-granularity specialization: every hot shape additionally gets
    # an executable compiled at (batch cap × exact shape), and a *full*
    # exact bucket runs as one VM call on it (one batched GEMM per
    # member-wise GEMM site). Ragged tails fall back member-wise. The cap
    # defaults to max_batch_size and hot buckets are capped to it, so a
    # bucket can never outgrow the kernel compiled for it.
    specialize_batch: bool = False
    specialize_batch_cap: Optional[int] = None
    # Persistent artifact store: a directory where specialized
    # executables and the kernel cache survive the process. At startup
    # the kernel cache warm-loads from it and every hot trigger checks
    # it before compiling — a hit installs the stored artifact at the
    # modeled deserialize cost (`specialize_restore_us` overrides the
    # RESTORE_*_US calibration), so a restarted server re-reaches its
    # specialized steady state for <10% of the cold compile charge
    # (`harness.restart_study`). None (default) keeps everything
    # in-memory, exactly the pre-store behaviour.
    artifact_dir: Optional[str] = None
    specialize_restore_us: Optional[float] = None
    # Multi-stream scheduling: compile every executable (dynamic and
    # specialized) with this many device streams (repro.vm.schedule).
    # Clamped to the platform at compile time — CPU platforms always run
    # single-stream, bit-identically to device_streams=1 — and workers
    # rotate the static schedule across batch members so independent
    # members overlap on different streams. 1 (default) is the exact
    # pre-streams behaviour.
    device_streams: int = 1
    # Staged specialization: compile hot-shape variants through a shared
    # shape-independent prefix and split the modeled lane charge — the
    # prefix is charged once per simulation, each variant pays only the
    # shape-binding suffix (see docs/serving.md). With an artifact store
    # the prefix blob persists too, so a restart restores it at the
    # deserialize charge. Off by default: the monolithic charge model is
    # unchanged.
    specialize_staged: bool = False
    # Profile-guided predictive specialization: persist a shape profile
    # (.nmblprof — exact-key hit histogram + decayed scores) into the
    # artifact store at every simulation end, and pre-arm the historical
    # top-K (default: specialize_max_executables; override with
    # specialize_predictive_top_k) at virtual time 0 of every
    # simulation, so a restarted server compiles/store-restores its hot
    # set before the first request lands (ServeReport.predictive_*;
    # harness.predictive_study measures the warm-up win). Requires
    # artifact_dir; a missing/rejected profile serves cold, counted.
    specialize_predictive: bool = False
    specialize_predictive_top_k: Optional[int] = None
    # Guarded partial specialization: when traffic agrees on some dims
    # but spreads a long tail over the others, synthesize one variant
    # binding only the stable dims (the rest stay Any) once it would
    # cover at least specialize_partial_min_shapes distinct exact
    # shapes. The variant's entry guard checks the bound dims per batch
    # member; mismatches transparently deopt to the dynamic tier
    # (ServeReport.guard_deopts — counted, never wrong).
    specialize_partial: bool = False
    specialize_partial_min_shapes: int = 3
    # Sampled static verification of serving compiles: every Nth fresh
    # specialized compile (starting with the first) runs the
    # repro.analysis checkers; 0 disables sampling. Store loads and the
    # startup dynamic build always verify regardless — this knob only
    # prices the hot compile lane. Failures on the lane raise (compiler
    # bug); failing store blobs are rejected-and-counted
    # (ServeReport.verify_rejects) and never executed.
    verify_sample: int = 4

    @property
    def batch_cap(self) -> int:
        """The compiled batch size of the batched tier (1 = tier off)."""
        if not (self.specialize and self.specialize_batch):
            return 1
        cap = (
            self.specialize_batch_cap
            if self.specialize_batch_cap is not None
            else self.max_batch_size
        )
        if cap < 1:
            raise ValueError(f"specialize_batch_cap must be >= 1, got {cap}")
        return min(cap, self.max_batch_size)

    @staticmethod
    def serial(**overrides) -> "ServeConfig":
        """One-request-at-a-time dispatch: the unbatched baseline. Other
        knobs (numerics, entry, ...) pass through so a serial baseline runs
        under the same conditions as the batched server it is compared to.
        Overrides win — including for the serial defaults themselves."""
        params = dict(max_batch_size=1, max_delay_us=0.0, num_workers=1)
        params.update(overrides)
        return ServeConfig(**params)


class InferenceServer:
    """Compile once, serve a stream of dynamically-shaped requests."""

    def __init__(
        self,
        mod: IRModule,
        platform: Optional[Platform] = None,
        config: Optional[ServeConfig] = None,
        kernel_cache: Optional[KernelCache] = None,
        replica_id: int = 0,
        store_view=None,
    ) -> None:
        # Fleet mode (repro.fleet): `replica_id` names this server inside
        # a FleetRouter's replica set and `store_view` is the fleet's
        # shared FleetStoreView over one artifact directory — it lets a
        # sibling's fresh compile restore here mid-simulation and lets
        # the fleet GC see which blobs this replica still references.
        # Standalone servers (the defaults) behave exactly as before.
        self.replica_id = replica_id
        self.store_view = store_view
        self.platform = platform or intel_cpu()
        self.config = config or ServeConfig()
        if self.config.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.kernel_cache = (
            KernelCache() if kernel_cache is None else kernel_cache
        )
        self.store = None
        if self.config.artifact_dir is not None:
            from repro.store import ArtifactStore

            self.store = ArtifactStore(self.config.artifact_dir)
            # Warm the kernel cache before the dynamic build below, so
            # a restarted server reuses the previous process's compiled
            # kernels and tuned schedules, not just its specialized
            # executables. A rejected kernels.kc is recorded now and
            # folded into every report's store_rejects — it must be as
            # visible as a rejected executable blob.
            self.store.load_kernel_cache(self.kernel_cache)
        self._startup_store_rejects = (
            self.store.rejects if self.store is not None else 0
        )
        self._startup_verify_rejects = (
            self.store.verify_rejects if self.store is not None else 0
        )
        self.mod = mod
        self.exe, self.build_report = nimble.build(
            mod,
            self.platform,
            options=nimble.CompilerOptions(
                device_streams=self.config.device_streams
            ),
            kernel_cache=self.kernel_cache,
        )
        typed = self.build_report.typed_module
        if self.config.entry not in typed:
            raise VMError(f"module has no entry function {self.config.entry!r}")
        self.bucketer = ShapeBucketer(
            typed[self.config.entry], granularity=self.config.bucket_granularity
        )
        self.specializer: Optional[SpecializationManager] = None
        if self.config.specialize:
            self.specializer = SpecializationManager(
                mod,
                self.platform,
                self.bucketer,
                self.kernel_cache,
                threshold=self.config.specialize_threshold,
                max_executables=self.config.specialize_max_executables,
                compile_us=self.config.specialize_compile_us,
                entry=self.config.entry,
                compile_lanes=self.config.specialize_compile_lanes,
                eviction=self.config.specialize_eviction,
                decay_half_life_us=self.config.specialize_decay_half_life_us,
                eviction_margin=self.config.specialize_eviction_margin,
                batch_cap=self.config.batch_cap,
                store=self.store,
                restore_us=self.config.specialize_restore_us,
                staged=self.config.specialize_staged,
                device_streams=self.config.device_streams,
                verify_sample=self.config.verify_sample,
                predictive=self.config.specialize_predictive,
                predictive_top_k=self.config.specialize_predictive_top_k,
                partial=self.config.specialize_partial,
                partial_min_shapes=self.config.specialize_partial_min_shapes,
                replica_id=replica_id,
                store_view=store_view,
            )
        self.workers = [
            Worker(
                i, self.exe, self.platform,
                numerics=self.config.numerics, entry=self.config.entry,
            )
            for i in range(self.config.num_workers)
        ]

    # ------------------------------------------------------------- simulation
    #
    # The server exposes its event loop two ways. `simulate` replays a
    # whole trace (the standalone path). The incremental API — `begin`,
    # `ingest`, `flush_due`, `next_deadline`, `finish` — hands the SAME
    # steps to an external driver (repro.fleet.FleetRouter) one event at
    # a time, so N replicas can interleave on one merged timeline.
    # `simulate` is written *on top of* the incremental API: there is one
    # event loop, not two copies that can drift.

    def begin(self) -> None:
        """Start an independent replay: workers to cold start, hit
        counters restarted (compiled static executables are kept —
        compilation is deterministic, so replays stay bit-identical
        either way), and a fresh batcher."""
        for worker in self.workers:
            worker.reset()
        if self.specializer is not None:
            self.specializer.reset()
        self._batcher = Batcher(
            self.bucketer,
            max_batch_size=self.config.max_batch_size,
            max_delay_us=self.config.max_delay_us,
            key_fn=self._bucket_key if self.specializer is not None else None,
            cap_fn=self._bucket_cap if self.specializer is not None else None,
        )
        self._responses: List[Response] = []

    def ingest(self, request: Request, now_us: float) -> None:
        """One arrival at *now_us*: observe its shape (specialization
        heat) and enqueue it; a bucket filled to its cap dispatches
        immediately."""
        if self.specializer is not None:
            self.specializer.observe(
                self.bucketer.exact_key(request.payload), now_us
            )
        batch = self._batcher.add(request, now_us)
        if batch is not None:
            self._responses.extend(self._dispatch(batch))

    def next_deadline(self) -> Optional[float]:
        """The earliest bucket-delay deadline, or None with nothing queued."""
        return self._batcher.next_deadline()

    def flush_due(self, now_us: float) -> None:
        """Dispatch every bucket whose delay deadline has passed."""
        for batch in self._batcher.flush_due(now_us):
            self._responses.extend(self._dispatch(batch))

    @property
    def pending(self) -> int:
        """Requests currently queued in buckets (not yet dispatched)."""
        return self._batcher.pending

    def finish(self, now_us: float) -> ServeReport:
        """Shutdown drain at *now_us*: flush the leftover partial
        buckets, run the compile pool to completion, persist the kernel
        cache and shape profile, and build the report."""
        for batch in self._batcher.flush_all(now_us):
            self._responses.extend(self._dispatch(batch))
        if self.specializer is not None:
            # Arrivals are over but the compile pool keeps working: bind
            # every still-pending compile to a lane so queue-wait and
            # lane-utilization stats cover the whole triggered set.
            self.specializer.drain()
        if self.store is not None:
            # Persist the kernel cache (executables persist at compile
            # time, inside the manager) so the next process's dynamic
            # build starts warm too.
            self.store.save_kernel_cache(self.kernel_cache)
            if self.specializer is not None:
                # Snapshot this simulation's shape traffic (.nmblprof) so
                # the NEXT process's predictive manager can pre-arm its
                # hot set. Written unconditionally — recording is cheap
                # and predictive consumption is opt-in — but never read
                # back by this manager (frozen at construction), so
                # replays stay bit-identical.
                self.store.put_profile(self.specializer.profile_snapshot())
                if self.store_view is not None:
                    self.store_view.record_put(
                        "profile",
                        self.specializer._profile_key,
                        now_us,
                        self.replica_id,
                    )
        return build_report(
            self._responses,
            self.workers,
            self.specializer,
            extra_store_rejects=self._startup_store_rejects,
            extra_verify_rejects=self._startup_verify_rejects,
            device_streams=self.exe.device_streams,
        )

    def simulate(self, requests: Sequence[Request]) -> ServeReport:
        """Serve the trace to completion; returns the aggregate report.

        Each call is an independent replay (see :meth:`begin`). The loop
        advances virtual time to the next arrival or the next bucket
        deadline, whichever is earlier (arrivals win ties), exactly as
        a FleetRouter drives the incremental API for one replica."""
        self.begin()
        trace = sorted(requests, key=lambda r: (r.arrival_us, r.rid))
        now = 0.0
        i, n = 0, len(trace)
        while i < n or self._batcher.pending:
            next_arrival = trace[i].arrival_us if i < n else math.inf
            deadline = self.next_deadline()
            next_deadline = deadline if deadline is not None else math.inf
            if next_arrival == math.inf and next_deadline == math.inf:
                # Arrivals exhausted and no finite deadline will ever fire
                # (max_delay_us=inf means flush-on-size-only): shutdown
                # drain of the leftover partial buckets at the last event.
                break
            if next_arrival <= next_deadline:
                now = next_arrival
                self.ingest(trace[i], now)
                i += 1
            else:
                now = next_deadline
                self.flush_due(now)
        return self.finish(now)

    # ------------------------------------------------------------ fleet hooks
    def exact_key(self, payload):
        """The payload's exact dynamic-dim key (affinity-routing input)."""
        return self.bucketer.exact_key(payload)

    def backlog_us(self, now_us: float) -> float:
        """Outstanding worker busy-time beyond *now_us*: the router's
        least-loaded signal. Zero when every worker is idle."""
        return sum(max(0.0, w.free_at_us - now_us) for w in self.workers)

    def specialization_state(self, exact, now_us: float) -> Optional[str]:
        """Delegate to the manager (None when specialization is off)."""
        if self.specializer is None:
            return None
        return self.specializer.specialization_state(exact, now_us)

    def referenced_store_keys(self):
        """Store entries a live snapshot of this replica still needs —
        the fleet GC's refcount guard (empty without a store)."""
        if self.specializer is None:
            return set()
        return self.specializer.referenced_store_keys()

    def restoring_store_keys(self, now_us: float):
        """Store entries with a restore in flight at *now_us* (see the
        manager — subset of :meth:`referenced_store_keys`)."""
        if self.specializer is None:
            return set()
        return self.specializer.restoring_store_keys(now_us)

    def _bucket_key(self, payload, now_us: float):
        """Bucket key under tiered specialization: a hot shape (some
        static executable — member-wise or batched — ready at *now_us*,
        the batcher's current virtual time) gets its own exact bucket so
        its batches form shape-uniform and can route to the static tiers;
        everything else keeps the bucketer's rounded key. The -1 marker
        keeps exact buckets disjoint from rounded ones (rounded key
        components are never negative)."""
        exact = self.bucketer.exact_key(payload)
        if self.specializer.is_hot_any(exact, now_us):
            return (-1,) + exact
        return self.bucketer.round_key(exact)

    def _bucket_cap(self, key):
        """Bucket flush size under tiered specialization: exact (hot)
        buckets align to the batched tier's compiled batch size, so a
        full bucket is exactly one batched-executable call; rounded
        buckets keep the configured max. When a shape turns out not to
        admit the batch rewrite, its hot buckets keep the full batch size
        — capping them would shrink member-tier batches for nothing."""
        if (
            key
            and key[0] == -1
            and self.specializer.batch_tier_active_for(tuple(key[1:]))
        ):
            return self.config.batch_cap
        return self.config.max_batch_size

    def _dispatch(self, batch: Batch) -> List[Response]:
        worker = min(self.workers, key=lambda w: (w.free_at_us, w.worker_id))
        start = max(batch.formed_us, worker.free_at_us)
        executable = None
        tier = "dynamic"
        hit_key = None
        if self.specializer is not None:
            # The exact static tiers only take exact-shape-uniform batches
            # whose executable is ready; mixed batches within a (rounded)
            # bucket and in-flight compiles fall through — first to a
            # guarded partial variant when one covers the members, else
            # dynamic. Exact buckets carry the -1 marker and are uniform
            # by construction; a rounded bucket may still happen to be
            # uniform (requests enqueued before the shape went hot), so
            # those are checked member-by-member.
            exact = None
            member_keys = None
            if batch.key and batch.key[0] == -1:
                exact = tuple(batch.key[1:])
            else:
                member_keys = [
                    self.bucketer.exact_key(r.payload) for r in batch.requests
                ]
                if len(set(member_keys)) == 1:
                    exact = member_keys[0]
            if exact is not None:
                # Routing ladder: a *full* bucket takes the batched tier
                # (one VM call for the whole bucket); ragged tails fall
                # back to member-wise static, then partial, then dynamic.
                if len(batch) == self.config.batch_cap > 1:
                    executable = self.specializer.batched_executable_for(
                        exact, start
                    )
                    if executable is not None:
                        tier = "batched"
                if executable is None:
                    executable = self.specializer.executable_for(exact, start)
                    if executable is not None:
                        tier = "specialized"
                if executable is not None:
                    hit_key = exact
            if executable is None:
                # Guarded partial tier: one variant with only the stable
                # dims bound can serve members of *different* exact
                # shapes; the worker guard-checks each member and deopts
                # mismatches to the dynamic VM (counted, never wrong).
                if member_keys is None:
                    member_keys = [exact] * len(batch)
                found = self.specializer.partial_executable_for(
                    member_keys, start
                )
                if found is not None:
                    executable, hit_key = found
                    tier = "partial"
        responses = worker.run_batch(
            batch, start, executable=executable, tier=tier
        )
        if (
            hit_key is not None
            and hit_key in self.specializer.predictive_keys
        ):
            # Static-tier hits served off a predictively pre-armed
            # variant (deopted members route dynamic and do not count).
            self.specializer.predictive_hits += sum(
                1 for r in responses if r.tier != "dynamic"
            )
        return responses
