"""The inference server: an event-driven simulation over virtual time.

``simulate`` replays a request trace against the batcher and worker pool.
The loop advances virtual time from event to event — the next arrival or
the next bucket deadline, whichever comes first — so the trace, the
batching decisions, and every latency number are a pure function of the
inputs. Two identical simulations are bit-identical.

Workers never block batch formation: a flushed batch is assigned to the
earliest-free worker (ties broken by worker id) and starts at
``max(flush time, worker free time)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache
from repro.errors import VMError
from repro.hardware.platforms import Platform, intel_cpu
from repro.ir.module import IRModule
from repro.serve.batcher import Batch, Batcher, ShapeBucketer
from repro.serve.report import ServeReport, build_report
from repro.serve.request import Request, Response
from repro.serve.worker import Worker


@dataclass(frozen=True)
class ServeConfig:
    max_batch_size: int = 8
    max_delay_us: float = 2000.0
    num_workers: int = 2
    bucket_granularity: int = 8
    numerics: str = "lite"
    entry: str = "main"

    @staticmethod
    def serial(**overrides) -> "ServeConfig":
        """One-request-at-a-time dispatch: the unbatched baseline. Other
        knobs (numerics, entry, ...) pass through so a serial baseline runs
        under the same conditions as the batched server it is compared to."""
        return ServeConfig(
            max_batch_size=1, max_delay_us=0.0, num_workers=1, **overrides
        )


class InferenceServer:
    """Compile once, serve a stream of dynamically-shaped requests."""

    def __init__(
        self,
        mod: IRModule,
        platform: Optional[Platform] = None,
        config: Optional[ServeConfig] = None,
        kernel_cache: Optional[KernelCache] = None,
    ) -> None:
        self.platform = platform or intel_cpu()
        self.config = config or ServeConfig()
        if self.config.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.kernel_cache = kernel_cache or KernelCache()
        self.exe, self.build_report = nimble.build(
            mod, self.platform, kernel_cache=self.kernel_cache
        )
        typed = self.build_report.typed_module
        if self.config.entry not in typed:
            raise VMError(f"module has no entry function {self.config.entry!r}")
        self.bucketer = ShapeBucketer(
            typed[self.config.entry], granularity=self.config.bucket_granularity
        )
        self.workers = [
            Worker(
                i, self.exe, self.platform,
                numerics=self.config.numerics, entry=self.config.entry,
            )
            for i in range(self.config.num_workers)
        ]

    # ------------------------------------------------------------- simulation
    def simulate(self, requests: Sequence[Request]) -> ServeReport:
        """Serve the trace to completion; returns the aggregate report.

        Each call is an independent replay: workers reset to cold start,
        so the same trace always yields the same report, and repeated
        simulations never inherit clock/pool/profile state."""
        for worker in self.workers:
            worker.reset()
        trace = sorted(requests, key=lambda r: (r.arrival_us, r.rid))
        batcher = Batcher(
            self.bucketer,
            max_batch_size=self.config.max_batch_size,
            max_delay_us=self.config.max_delay_us,
        )
        responses: List[Response] = []
        now = 0.0
        i, n = 0, len(trace)
        while i < n or batcher.pending:
            next_arrival = trace[i].arrival_us if i < n else math.inf
            deadline = batcher.next_deadline()
            next_deadline = deadline if deadline is not None else math.inf
            if next_arrival == math.inf and next_deadline == math.inf:
                # Arrivals exhausted and no finite deadline will ever fire
                # (max_delay_us=inf means flush-on-size-only): shutdown
                # drain of the leftover partial buckets at the last event.
                for batch in batcher.flush_all(now):
                    responses.extend(self._dispatch(batch))
                break
            if next_arrival <= next_deadline:
                now = next_arrival
                batch = batcher.add(trace[i], now)
                i += 1
                if batch is not None:
                    responses.extend(self._dispatch(batch))
            else:
                now = next_deadline
                for batch in batcher.flush_due(now):
                    responses.extend(self._dispatch(batch))
        return build_report(responses, self.workers)

    def _dispatch(self, batch: Batch) -> List[Response]:
        worker = min(self.workers, key=lambda w: (w.free_at_us, w.worker_id))
        start = max(batch.formed_us, worker.free_at_us)
        return worker.run_batch(batch, start)
