"""Deterministic traffic models for the serving benchmarks.

Arrival processes are Poisson (exponential inter-arrival gaps) with a
fixed seed; payload shapes follow the MRPC sentence-length distribution
from ``data/mrpc.py`` — the same distribution Tables 1 and 3 use — so the
serving benchmark exercises exactly the dynamic-shape mix the compiler
was built for.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.data.mrpc import mrpc_like_lengths
from repro.serve.request import Request


def poisson_arrivals(n: int, mean_interarrival_us: float, seed: int = 0) -> List[float]:
    """n arrival timestamps from a seeded Poisson process."""
    rng = np.random.RandomState(seed)
    gaps = rng.exponential(mean_interarrival_us, size=n)
    return [float(t) for t in np.cumsum(gaps)]


def _embedded_requests(
    n: int, dim: int, mean_interarrival_us: float, seed: int
) -> List[Request]:
    arrivals = poisson_arrivals(n, mean_interarrival_us, seed)
    lengths = mrpc_like_lengths(n, seed)
    rng = np.random.RandomState(seed + 7)
    return [
        Request(
            rid=i,
            arrival_us=arrivals[i],
            payload=(rng.randn(lengths[i], dim) * 0.1).astype(np.float32),
        )
        for i in range(n)
    ]


def lstm_traffic(
    n: int = 32,
    input_size: int = 300,
    mean_interarrival_us: float = 200.0,
    seed: int = 0,
) -> List[Request]:
    """Variable-length embedded sentences for the LSTM entry
    ``main(x: Tensor[(Any, input_size)])``."""
    return _embedded_requests(n, input_size, mean_interarrival_us, seed)


def long_tailed_traffic(
    n: int = 256,
    input_size: int = 16,
    mean_interarrival_us: float = 400.0,
    hot_lengths: Sequence[int] = (9, 25, 41, 57, 73),
    hot_fraction: float = 0.75,
    tail_min: int = 4,
    tail_max: int = 96,
    seed: int = 0,
) -> List[Request]:
    """A phased, long-tailed shape mix for the eviction/compile-pool study.

    The trace is split into ``len(hot_lengths)`` phases; within a phase,
    ``hot_fraction`` of the requests carry that phase's hot length and the
    rest draw uniformly from ``[tail_min, tail_max]`` (a long tail of rare
    shapes). Each phase's hot shape goes cold when the next phase starts,
    so a capped specialized-executable cache must *evict* yesterday's hot
    shape to keep specializing today's — exactly the workload the hard
    cap starves on. Deterministic for a fixed seed.
    """
    if not hot_lengths:
        raise ValueError("long_tailed_traffic needs at least one hot length")
    arrivals = poisson_arrivals(n, mean_interarrival_us, seed)
    rng = np.random.RandomState(seed + 13)
    per_phase = -(-n // len(hot_lengths))  # ceil: last phase may run short
    requests = []
    for i in range(n):
        hot = hot_lengths[min(i // per_phase, len(hot_lengths) - 1)]
        if rng.rand() < hot_fraction:
            length = hot
        else:
            length = int(rng.randint(tail_min, tail_max + 1))
        requests.append(
            Request(
                rid=i,
                arrival_us=arrivals[i],
                payload=(rng.randn(length, input_size) * 0.1).astype(np.float32),
            )
        )
    return requests


def bert_traffic(
    n: int = 32,
    hidden: int = 768,
    mean_interarrival_us: float = 500.0,
    seed: int = 0,
) -> List[Request]:
    """Variable-length embedded sentences for the BERT entry
    ``main(x: Tensor[(Any, hidden)])``."""
    return _embedded_requests(n, hidden, mean_interarrival_us, seed)
