"""Deterministic traffic models for the serving benchmarks.

Arrival processes are Poisson (exponential inter-arrival gaps) with a
fixed seed; payload shapes follow the MRPC sentence-length distribution
from ``data/mrpc.py`` — the same distribution Tables 1 and 3 use — so the
serving benchmark exercises exactly the dynamic-shape mix the compiler
was built for.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.data.mrpc import mrpc_like_lengths
from repro.serve.request import Request


def poisson_arrivals(n: int, mean_interarrival_us: float, seed: int = 0) -> List[float]:
    """n arrival timestamps from a seeded Poisson process."""
    rng = np.random.RandomState(seed)
    gaps = rng.exponential(mean_interarrival_us, size=n)
    return [float(t) for t in np.cumsum(gaps)]


def _embedded_requests(
    n: int, dim: int, mean_interarrival_us: float, seed: int
) -> List[Request]:
    arrivals = poisson_arrivals(n, mean_interarrival_us, seed)
    lengths = mrpc_like_lengths(n, seed)
    rng = np.random.RandomState(seed + 7)
    return [
        Request(
            rid=i,
            arrival_us=arrivals[i],
            payload=(rng.randn(lengths[i], dim) * 0.1).astype(np.float32),
        )
        for i in range(n)
    ]


def lstm_traffic(
    n: int = 32,
    input_size: int = 300,
    mean_interarrival_us: float = 200.0,
    seed: int = 0,
) -> List[Request]:
    """Variable-length embedded sentences for the LSTM entry
    ``main(x: Tensor[(Any, input_size)])``."""
    return _embedded_requests(n, input_size, mean_interarrival_us, seed)


def long_tailed_traffic(
    n: int = 256,
    input_size: int = 16,
    mean_interarrival_us: float = 400.0,
    hot_lengths: Sequence[int] = (9, 25, 41, 57, 73),
    hot_fraction: float = 0.75,
    tail_min: int = 4,
    tail_max: int = 96,
    seed: int = 0,
) -> List[Request]:
    """A phased, long-tailed shape mix for the eviction/compile-pool study.

    The trace is split into ``len(hot_lengths)`` phases; within a phase,
    ``hot_fraction`` of the requests carry that phase's hot length and the
    rest draw uniformly from ``[tail_min, tail_max]`` (a long tail of rare
    shapes). Each phase's hot shape goes cold when the next phase starts,
    so a capped specialized-executable cache must *evict* yesterday's hot
    shape to keep specializing today's — exactly the workload the hard
    cap starves on. Deterministic for a fixed seed.
    """
    if not hot_lengths:
        raise ValueError("long_tailed_traffic needs at least one hot length")
    arrivals = poisson_arrivals(n, mean_interarrival_us, seed)
    rng = np.random.RandomState(seed + 13)
    per_phase = -(-n // len(hot_lengths))  # ceil: last phase may run short
    requests = []
    for i in range(n):
        hot = hot_lengths[min(i // per_phase, len(hot_lengths) - 1)]
        if rng.rand() < hot_fraction:
            length = hot
        else:
            length = int(rng.randint(tail_min, tail_max + 1))
        requests.append(
            Request(
                rid=i,
                arrival_us=arrivals[i],
                payload=(rng.randn(length, input_size) * 0.1).astype(np.float32),
            )
        )
    return requests


def bert_traffic(
    n: int = 32,
    hidden: int = 768,
    mean_interarrival_us: float = 500.0,
    seed: int = 0,
) -> List[Request]:
    """Variable-length embedded sentences for the BERT entry
    ``main(x: Tensor[(Any, hidden)])``."""
    return _embedded_requests(n, hidden, mean_interarrival_us, seed)


def multi_tenant_traffic(
    n: int = 256,
    input_size: int = 16,
    mean_interarrival_us: float = 400.0,
    tenant_mix: Sequence[tuple] = (("steady", 3), ("bursty", 1)),
    burst_every: int = 32,
    burst_size: int = 8,
    hot_lengths: Sequence[int] = (9, 25),
    hot_fraction: float = 0.8,
    tail_min: int = 4,
    tail_max: int = 64,
    seed: int = 0,
) -> List[Request]:
    """A multi-tenant trace for the fleet study (``repro.fleet``).

    Tenants are assigned by weighted round-robin over *tenant_mix*
    (``(name, weight)`` pairs), so every tenant's requests interleave
    with everyone else's at its share of the volume. One twist exercises
    admission control: every ``burst_every`` requests, the *last* tenant
    in the mix fires ``burst_size`` extra back-to-back arrivals within a
    few microseconds — exactly the burst a token bucket is there to
    shed. Shapes follow the long-tailed hot/tail split of
    :func:`long_tailed_traffic` (per-tenant hot lengths, so affinity
    routing has per-tenant shape locality to exploit). Deterministic for
    a fixed seed.
    """
    if not tenant_mix:
        raise ValueError("multi_tenant_traffic needs at least one tenant")
    names = [name for name, weight in tenant_mix for _ in range(int(weight))]
    arrivals = poisson_arrivals(n, mean_interarrival_us, seed)
    rng = np.random.RandomState(seed + 29)
    burster = tenant_mix[-1][0]
    # Stable per-tenant hot shape, assigned by position in the mix:
    # tenants keep their own locality (what shape-affinity routing
    # exploits), and the number of tenants controls the number of hot
    # shapes in play.
    tenant_hot = {
        name: hot_lengths[idx % len(hot_lengths)]
        for idx, (name, _weight) in enumerate(tenant_mix)
    }
    requests: List[Request] = []
    rid = 0

    def emit(tenant: str, at_us: float) -> None:
        nonlocal rid
        hot = tenant_hot[tenant]
        if rng.rand() < hot_fraction:
            length = hot
        else:
            length = int(rng.randint(tail_min, tail_max + 1))
        requests.append(
            Request(
                rid=rid,
                arrival_us=at_us,
                payload=(rng.randn(length, input_size) * 0.1).astype(
                    np.float32
                ),
                tenant=tenant,
            )
        )
        rid += 1

    for i in range(n):
        emit(names[i % len(names)], arrivals[i])
        if burst_every and (i + 1) % burst_every == 0:
            for b in range(burst_size):
                emit(burster, arrivals[i] + (b + 1) * 1.0)
    return requests
