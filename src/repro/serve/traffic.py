"""Deterministic traffic models for the serving benchmarks.

Arrival processes are Poisson (exponential inter-arrival gaps) with a
fixed seed; payload shapes follow the MRPC sentence-length distribution
from ``data/mrpc.py`` — the same distribution Tables 1 and 3 use — so the
serving benchmark exercises exactly the dynamic-shape mix the compiler
was built for.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.mrpc import mrpc_like_lengths
from repro.serve.request import Request


def poisson_arrivals(n: int, mean_interarrival_us: float, seed: int = 0) -> List[float]:
    """n arrival timestamps from a seeded Poisson process."""
    rng = np.random.RandomState(seed)
    gaps = rng.exponential(mean_interarrival_us, size=n)
    return [float(t) for t in np.cumsum(gaps)]


def _embedded_requests(
    n: int, dim: int, mean_interarrival_us: float, seed: int
) -> List[Request]:
    arrivals = poisson_arrivals(n, mean_interarrival_us, seed)
    lengths = mrpc_like_lengths(n, seed)
    rng = np.random.RandomState(seed + 7)
    return [
        Request(
            rid=i,
            arrival_us=arrivals[i],
            payload=(rng.randn(lengths[i], dim) * 0.1).astype(np.float32),
        )
        for i in range(n)
    ]


def lstm_traffic(
    n: int = 32,
    input_size: int = 300,
    mean_interarrival_us: float = 200.0,
    seed: int = 0,
) -> List[Request]:
    """Variable-length embedded sentences for the LSTM entry
    ``main(x: Tensor[(Any, input_size)])``."""
    return _embedded_requests(n, input_size, mean_interarrival_us, seed)


def bert_traffic(
    n: int = 32,
    hidden: int = 768,
    mean_interarrival_us: float = 500.0,
    seed: int = 0,
) -> List[Request]:
    """Variable-length embedded sentences for the BERT entry
    ``main(x: Tensor[(Any, hidden)])``."""
    return _embedded_requests(n, hidden, mean_interarrival_us, seed)
