"""A serving worker: VMs + execution context on the shared executables.

Each worker models an independent replica (its own device queue, clock,
and pooling allocator) while sharing the compiled :class:`Executable` —
bytecode, constants, and kernels compile once and fan out. A worker's
clock *is* its availability: after a batch the clock sits at the batch's
finish time, and ``VirtualClock.advance_to`` fast-forwards over idle gaps
to the next dispatch.

With tiered specialization enabled a worker additionally keeps one VM per
specialized (static-shape) executable, all sharing this worker's context,
so a batch routed to the static tier runs on the same clock/allocator and
its latency lands in the same report. Specialized VMs pool their profile
into ``specialized_profile`` — the report splits kernel/shape-func time
by tier from it. The VM cache keys by specialization marker and is
dropped on :meth:`reset`, so an executable evicted from the
specialization manager's cache is not pinned alive by a stale VM across
replays.

Batch members run back-to-back with ``sync=False`` and one device
synchronization at the end, so on GPU-class platforms the host-side
bytecode/shape-function/allocation work of request *i+1* overlaps the
device queue of request *i* — the §6.3 overlap, amortized across a batch.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware.platforms import Platform
from repro.runtime.context import ExecutionContext
from repro.serve.batcher import Batch
from repro.serve.request import Response
from repro.vm.executable import Executable
from repro.vm.interpreter import VirtualMachine
from repro.vm.profiler import VMProfile


class Worker:
    def __init__(
        self,
        worker_id: int,
        executable: Executable,
        platform: Platform,
        numerics: str = "lite",
        entry: str = "main",
    ) -> None:
        self.worker_id = worker_id
        self.entry = entry
        self.ctx = ExecutionContext(platform, numerics=numerics)
        self.vm = VirtualMachine(executable, self.ctx)
        self.specialized_profile = VMProfile()
        self._specialized_vms: Dict[tuple, VirtualMachine] = {}
        self.busy_us = 0.0
        self.batches_run = 0

    @property
    def free_at_us(self) -> float:
        """When this worker can next start a batch (its clock's frontier)."""
        return self.ctx.clock.elapsed_us

    def reset(self) -> None:
        """Return to the cold-start state so each simulation is an
        independent, reproducible replay: clock to zero, pools drained,
        counters and profiles cleared. A leak (live bytes at reset) is an
        error, not something to silently forgive."""
        self.ctx.allocator.assert_drained()
        self.ctx.reset_clock()
        self.ctx.allocator.release_all()
        self.ctx.allocator.stats.reset()
        self.vm.profile.reset()
        self.specialized_profile.reset()
        self._specialized_vms.clear()
        self.busy_us = 0.0
        self.batches_run = 0

    def _specialized_vm(self, executable: Executable) -> VirtualMachine:
        """One VM per specialized executable, sharing this worker's
        context and pooling their profile (per-tier accounting). Keyed by
        the specialization marker — stable across executable-cache
        eviction, unlike id()."""
        key = executable.specialized_shapes
        vm = self._specialized_vms.get(key)
        if vm is None or vm.exe is not executable:
            vm = VirtualMachine(executable, self.ctx)
            vm.profile = self.specialized_profile
            self._specialized_vms[key] = vm
        return vm

    def run_batch(
        self,
        batch: Batch,
        start_us: float,
        executable: Optional[Executable] = None,
        tier: str = "dynamic",
    ) -> List[Response]:
        """Execute every request of *batch*, completing them together.

        ``executable`` selects the static tier (a specialized build run
        on this worker's own context/clock)."""
        clock = self.ctx.clock
        clock.advance_to(start_us)
        vm = self.vm if executable is None else self._specialized_vm(executable)
        begin = clock.elapsed_us
        outputs = []
        for req in batch.requests:
            args = req.payload if isinstance(req.payload, tuple) else (req.payload,)
            outputs.append(vm.run(*args, entry=self.entry, sync=False))
        clock.sync_all()
        finish = clock.elapsed_us
        self.busy_us += finish - begin
        self.batches_run += 1
        return [
            Response(
                rid=req.rid,
                output=out,
                arrival_us=req.arrival_us,
                dispatch_us=begin,
                finish_us=finish,
                bucket_key=batch.key,
                batch_size=len(batch),
                worker_id=self.worker_id,
                tier=tier,
            )
            for req, out in zip(batch.requests, outputs)
        ]
