"""A serving worker: VMs + execution context on the shared executables.

Each worker models an independent replica (its own device queue, clock,
and pooling allocator) while sharing the compiled :class:`Executable` —
bytecode, constants, and kernels compile once and fan out. A worker's
clock *is* its availability: after a batch the clock sits at the batch's
finish time, and ``VirtualClock.advance_to`` fast-forwards over idle gaps
to the next dispatch.

With tiered specialization enabled a worker additionally keeps one VM per
specialized executable *variant* — keyed by (specialized shapes, batch
granularity), so a member-wise build and a batch-specialized build of the
same shape, or two batch caps of the same shape, never share a stale VM —
all sharing this worker's context, so a batch routed to a static tier
runs on the same clock/allocator and its latency lands in the same
report. Member-wise specialized VMs pool their profile into
``specialized_profile``, batch-specialized VMs into
``batched_profile``, and guarded partial variants into
``partial_profile`` — the report splits kernel/shape-func time by tier
from them. The VM cache is dropped on :meth:`reset`, so an executable
evicted from the specialization manager's cache is not pinned alive by a
stale VM across replays.

Batch members run back-to-back with ``sync=False`` and one device
synchronization at the end, so on GPU-class platforms the host-side
bytecode/shape-function/allocation work of request *i+1* overlaps the
device queue of request *i* — the §6.3 overlap, amortized across a batch.
A batch routed to the *batched* tier collapses further: the members'
inputs stack along axis 0 into **one** VM call on the batch-specialized
executable (one batched GEMM per member-wise GEMM site), and the outputs
split back per member.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import VMError
from repro.hardware.platforms import Platform
from repro.runtime.context import ExecutionContext
from repro.serve.batcher import Batch
from repro.serve.request import Response
from repro.tensor.ndarray import NDArray
from repro.vm.executable import Executable
from repro.vm.interpreter import VirtualMachine
from repro.vm.profiler import VMProfile


class Worker:
    def __init__(
        self,
        worker_id: int,
        executable: Executable,
        platform: Platform,
        numerics: str = "lite",
        entry: str = "main",
    ) -> None:
        self.worker_id = worker_id
        self.entry = entry
        self.ctx = ExecutionContext(platform, numerics=numerics)
        self.vm = VirtualMachine(executable, self.ctx)
        self.specialized_profile = VMProfile()
        self.batched_profile = VMProfile()
        self.partial_profile = VMProfile()
        self._specialized_vms: Dict[tuple, VirtualMachine] = {}
        self.busy_us = 0.0
        self.batches_run = 0
        # Guard deopts: batch members routed to a partial variant whose
        # entry guard rejected them, transparently re-run on the dynamic
        # VM instead. Counted so "never wrong" is also "never silent".
        self.deopts = 0

    @property
    def free_at_us(self) -> float:
        """When this worker can next start a batch (its clock's frontier)."""
        return self.ctx.clock.elapsed_us

    def reset(self) -> None:
        """Return to the cold-start state so each simulation is an
        independent, reproducible replay: clock to zero, pools drained,
        counters and profiles cleared. A leak (live bytes at reset) is an
        error, not something to silently forgive."""
        self.ctx.allocator.assert_drained()
        self.ctx.reset_clock()
        self.ctx.allocator.release_all()
        self.ctx.allocator.stats.reset()
        self.vm.profile.reset()
        self.specialized_profile.reset()
        self.batched_profile.reset()
        self.partial_profile.reset()
        self._specialized_vms.clear()
        self.busy_us = 0.0
        self.batches_run = 0
        self.deopts = 0

    def _specialized_vm(self, executable: Executable) -> VirtualMachine:
        """One VM per specialized executable variant, sharing this
        worker's context and pooling their profile by tier (per-tier
        accounting). Keyed by the (specialization marker, batch
        granularity) pair — stable across executable-cache eviction,
        unlike id(), and never aliasing across batch-cap changes: a
        member shape (4, I) batched 8× and a member shape (8, I) batched
        4× stack to the same entry signature, so the marker alone would
        hand one of them a stale VM."""
        key = (executable.specialized_shapes, executable.specialized_batch)
        vm = self._specialized_vms.get(key)
        if vm is None or vm.exe is not executable:
            vm = VirtualMachine(executable, self.ctx)
            if executable.is_batch_specialized:
                vm.profile = self.batched_profile
            elif executable.is_partial:
                vm.profile = self.partial_profile
            else:
                vm.profile = self.specialized_profile
            self._specialized_vms[key] = vm
        return vm

    @staticmethod
    def _payload_arrays(payload) -> tuple:
        return payload if isinstance(payload, tuple) else (payload,)

    @staticmethod
    def _as_numpy(value) -> np.ndarray:
        return value.numpy() if isinstance(value, NDArray) else np.asarray(value)

    def _run_stacked(
        self, vm: VirtualMachine, executable: Executable, batch: Batch
    ) -> List:
        """Execute a full bucket as ONE call on the batch-specialized
        executable: stack every member's inputs along axis 0, run, split
        the outputs back into per-member results (axis-0 chunks — the
        exact inverse of the stacking, so member i's output is bit-equal
        to what the member-wise tiers return)."""
        cap = executable.specialized_batch or 1
        if len(batch) != cap:
            raise VMError(
                f"batched tier: bucket of {len(batch)} routed to an "
                f"executable compiled for batch {cap}"
            )
        members = [self._payload_arrays(r.payload) for r in batch.requests]
        arity = len(members[0])
        stacked = tuple(
            np.concatenate([self._as_numpy(m[i]) for m in members], axis=0)
            for i in range(arity)
        )
        out = vm.run(*stacked, entry=self.entry, sync=False)
        return self._split_output(out, cap)

    def _split_output(self, output, cap: int) -> List:
        """Invert the axis-0 stacking, recursively through tuple results."""
        if isinstance(output, tuple):
            per_field = [self._split_output(f, cap) for f in output]
            return [tuple(field[i] for field in per_field) for i in range(cap)]
        if not isinstance(output, NDArray):
            raise VMError(
                f"batched tier: cannot split a {type(output).__name__} output"
            )
        parts = np.split(output.numpy(), cap, axis=0)
        return [NDArray(p.copy(), output.device) for p in parts]

    def run_batch(
        self,
        batch: Batch,
        start_us: float,
        executable: Optional[Executable] = None,
        tier: str = "dynamic",
    ) -> List[Response]:
        """Execute every request of *batch*, completing them together.

        ``executable`` selects a static tier (a specialized build run on
        this worker's own context/clock): member-wise pipelining for
        ``tier="specialized"``, one stacked call for ``tier="batched"``,
        and guarded member-wise pipelining for ``tier="partial"`` — each
        member's inputs are checked against the variant's entry guard
        first, and a member the guard rejects transparently *deopts*:
        it runs on the dynamic VM instead (counted in ``deopts``, its
        response tier reads ``"dynamic"``), never on static code compiled
        for someone else's dims."""
        clock = self.ctx.clock
        clock.advance_to(start_us)
        vm = self.vm if executable is None else self._specialized_vm(executable)
        begin = clock.elapsed_us
        tiers = [tier] * len(batch)
        if tier == "batched":
            outputs = self._run_stacked(vm, executable, batch)
        else:
            # Member pipeline: successive members rotate the executable's
            # static stream assignment, so member i+1's device kernels
            # land on different streams than member i's and their device
            # time overlaps (the host still dispatches sequentially). On
            # single-stream builds the offset is identically 0.
            outputs = []
            for i, req in enumerate(batch.requests):
                args = self._payload_arrays(req.payload)
                member_vm = vm
                if (
                    tier == "partial"
                    and executable.guard_mismatch(args) is not None
                ):
                    member_vm = self.vm
                    tiers[i] = "dynamic"
                    self.deopts += 1
                outputs.append(
                    member_vm.run(
                        *args,
                        entry=self.entry,
                        sync=False,
                        stream_offset=i % max(1, member_vm.exe.device_streams),
                    )
                )
        clock.sync_all()
        finish = clock.elapsed_us
        self.busy_us += finish - begin
        self.batches_run += 1
        return [
            Response(
                rid=req.rid,
                output=out,
                arrival_us=req.arrival_us,
                dispatch_us=begin,
                finish_us=finish,
                bucket_key=batch.key,
                batch_size=len(batch),
                worker_id=self.worker_id,
                tenant=req.tenant,
                tier=member_tier,
            )
            for req, out, member_tier in zip(batch.requests, outputs, tiers)
        ]
