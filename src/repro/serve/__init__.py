"""Multi-tenant serving on top of the Nimble VM.

The paper compiles one executable that handles every input shape; this
package serves *streams* of such inputs. A deterministic, virtual-clock
driven inference server accepts dynamically-shaped requests, buckets them
by their ``Any``-dimension values (reusing the §4.1 sub-shaping analysis),
forms batches under a latency deadline, and dispatches batches across a
pool of :class:`VirtualMachine` workers that share one compiled
:class:`Executable` and :class:`KernelCache`.

Everything is simulated on the virtual clock (see ``runtime/clock.py``):
arrivals, queueing delay, batching deadlines, and worker busy time all
live on one timeline, so throughput and tail-latency numbers are exactly
reproducible run to run.

Tiered specialization (``ServeConfig(specialize=True)``) adds a static
tier on top: hot shapes get a statically recompiled executable
(``nimble.specialize``) and exact-shape batches route to it, removing the
shape-function/dispatch/allocation tax the dynamic executable pays — with
bit-identical outputs and transparent fallback. Compiles run on a pool
of virtual-clock lanes with traffic-priority queueing, and the
specialized-executable cache evicts its coldest (decayed-score) entry so
long-tailed shape mixes keep specializing past the cache cap.

``specialize_batch=True`` adds the third tier: hot shapes additionally
compile at batch granularity (``nimble.specialize(batch=cap)``), hot
buckets cap at the compiled batch size, and a *full* bucket executes as
one stacked VM call — one batched GEMM per layer instead of per member —
while ragged tails fall back member-wise, then dynamic. Outputs stay
bit-identical across all three tiers.

``artifact_dir=...`` makes the tiers survive the process: specialized
executables and the kernel cache persist to an on-disk
:class:`~repro.store.ArtifactStore`, and a restarted server *restores*
its hot-shape artifacts at a modeled deserialize cost instead of
recompiling (``harness.restart_study`` / ``benchmarks/bench_restart.py``
measure and assert the warm-start win).

``specialize_predictive=True`` (with a store) makes specialization
*predictive* instead of purely reactive: every simulation snapshots its
shape traffic into a ``.nmblprof`` profile blob
(:class:`~repro.serve.profile.ShapeProfile`), and a restarted server
pre-arms its historical top-K at virtual time 0 — hot-set compiles and
restores happen before the first request lands
(``harness.predictive_study`` / ``benchmarks/bench_predictive.py``).
``specialize_partial=True`` adds the guarded-partial tier: one variant
with only the traffic's stable dims bound (the rest stay ``Any``) covers
a whole family of exact shapes, entry-guarded per batch member with
transparent, counted deopt to the dynamic tier on mismatch.
"""

from repro.serve.batcher import Batch, Batcher, ShapeBucketer
from repro.serve.profile import ShapeProfile, profile_store_key
from repro.serve.report import ServeReport
from repro.serve.request import Request, Response
from repro.serve.server import InferenceServer, ServeConfig
from repro.serve.specialization import (
    EvictionEvent,
    SpecializationEvent,
    SpecializationManager,
)
from repro.serve.traffic import (
    bert_traffic,
    long_tailed_traffic,
    lstm_traffic,
    multi_tenant_traffic,
    poisson_arrivals,
)
from repro.serve.worker import Worker

__all__ = [
    "Batch",
    "Batcher",
    "ShapeBucketer",
    "ServeReport",
    "Request",
    "Response",
    "InferenceServer",
    "ServeConfig",
    "EvictionEvent",
    "ShapeProfile",
    "profile_store_key",
    "SpecializationEvent",
    "SpecializationManager",
    "Worker",
    "poisson_arrivals",
    "lstm_traffic",
    "long_tailed_traffic",
    "bert_traffic",
    "multi_tenant_traffic",
]
