"""Tiered shape specialization for the serving layer.

The batcher already groups traffic by ``Any``-dim values, so a hot bucket
is, in effect, a static workload that keeps paying the dynamic tax —
shape functions, runtime-sized allocation, symbolic-kernel dispatch. The
:class:`SpecializationManager` closes that gap: it counts per-shape hits,
and once a shape crosses the hot threshold it compiles a static-shape
:class:`Executable` through ``nimble.specialize`` (sharing the dynamic
build's :class:`KernelCache`). Batches whose members all match the
specialized shape exactly are routed to the static tier; everything else
— including the hot shape itself while its compile is in flight — falls
back to the dynamic executable, so correctness never depends on the
tier: outputs are bit-identical either way.

Compile cost is charged on the virtual clock through a single background
compile lane: a triggered compile occupies the lane for its modeled cost
and the executable only becomes routable once the lane finishes
(``ready_at``). Requests are never stalled by compilation — they fall
back to the dynamic tier until the static one is ready. (A compile-lane
*pool* and an eviction policy for the executable cache are ROADMAP
follow-ons.)

Compiled executables are cached across simulations, but hit counts, lane
state, and ready times reset per replay, so repeated simulations of one
trace are bit-identical.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache
from repro.hardware import calibration
from repro.hardware.platforms import Platform
from repro.ir.module import IRModule
from repro.serve.batcher import ShapeBucketer
from repro.vm.executable import Executable

ExactKey = Tuple[int, ...]


@dataclass(frozen=True)
class SpecializationEvent:
    """One triggered compile on the background lane (per simulation)."""

    key: ExactKey
    trigger_us: float
    ready_us: float
    compile_us: float


class SpecializationManager:
    """Decides when a shape is hot and owns the specialized executables.

    ``threshold`` is the number of observed requests with one exact shape
    before a static executable is compiled for it; ``max_executables``
    caps the cache (an eviction policy for long-tailed shape mixes is a
    ROADMAP follow-on — beyond the cap, new shapes simply stay on the
    dynamic tier). ``compile_us`` overrides the modeled compile cost; by
    default it is derived from the calibration constants and the number
    of kernels in the specialized executable.
    """

    def __init__(
        self,
        mod: IRModule,
        platform: Platform,
        bucketer: ShapeBucketer,
        kernel_cache: KernelCache,
        threshold: int = 8,
        max_executables: int = 4,
        compile_us: Optional[float] = None,
        entry: str = "main",
    ) -> None:
        if threshold < 1:
            raise ValueError(f"specialization threshold must be >= 1, got {threshold}")
        self.mod = mod
        self.platform = platform
        self.bucketer = bucketer
        self.kernel_cache = kernel_cache
        self.threshold = threshold
        self.max_executables = max_executables
        self.compile_us = compile_us
        self.entry = entry
        # Compiled artifacts persist across simulations (compilation is a
        # pure function of module + shape + platform, so reusing them
        # keeps replays bit-identical while skipping redundant work).
        self._executables: Dict[ExactKey, Executable] = {}
        self._compile_cost: Dict[ExactKey, float] = {}
        self.reset()

    # ----------------------------------------------------------------- replay
    def reset(self) -> None:
        """Per-simulation state: hit counts, compile-lane occupancy, and
        ready times all restart so each replay is independent."""
        self._hits: Counter = Counter()
        self._ready_at: Dict[ExactKey, float] = {}
        self._lane_free_us = 0.0
        self.events: List[SpecializationEvent] = []

    # ------------------------------------------------------------------ stats
    @property
    def num_executables(self) -> int:
        return len(self._executables)

    @property
    def compile_us_spent(self) -> float:
        """Total modeled compile time triggered in this simulation."""
        return sum(e.compile_us for e in self.events)

    def hits(self, key: ExactKey) -> int:
        return self._hits[key]

    def is_hot(self, key: ExactKey, now_us: float) -> bool:
        """Is the static executable for this exact shape routable at
        *now_us* (compiled, and its compile lane has finished)?"""
        ready = self._ready_at.get(key)
        return ready is not None and ready <= now_us

    # ------------------------------------------------------------------- flow
    def observe(self, key: ExactKey, now_us: float) -> None:
        """Record one request arrival with exact dynamic-dim values *key*;
        crossing the threshold triggers a compile on the background lane."""
        if not key:
            return  # fully static model: there is nothing to specialize
        self._hits[key] += 1
        if self._hits[key] != self.threshold:
            return
        if key not in self._executables:
            if len(self._executables) >= self.max_executables:
                return
            self._compile(key)
        cost = self._compile_cost[key]
        ready = max(now_us, self._lane_free_us) + cost
        self._lane_free_us = ready
        self._ready_at[key] = ready
        self.events.append(SpecializationEvent(key, now_us, ready, cost))

    def executable_for(self, key: ExactKey, at_us: float) -> Optional[Executable]:
        """The static executable for a batch whose members all have exact
        shape *key*, or None when the shape is not specialized (or its
        compile has not finished by *at_us* — the caller falls back to
        the dynamic tier)."""
        if not self.is_hot(key, at_us):
            return None
        return self._executables.get(key)

    # ---------------------------------------------------------------- compile
    def _compile(self, key: ExactKey) -> None:
        binding = dict(zip(self.bucketer.tokens, key))
        exe, _ = nimble.specialize(
            self.mod,
            self.platform,
            binding=binding,
            kernel_cache=self.kernel_cache,
            entry=self.entry,
        )
        self._executables[key] = exe
        if self.compile_us is not None:
            cost = float(self.compile_us)
        else:
            cost = (
                calibration.SPECIALIZE_BASE_US[self.platform.name]
                + calibration.SPECIALIZE_PER_KERNEL_US[self.platform.name]
                * len(exe.kernels)
            )
        self._compile_cost[key] = cost
