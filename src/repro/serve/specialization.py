"""Tiered shape specialization for the serving layer.

The batcher already groups traffic by ``Any``-dim values, so a hot bucket
is, in effect, a static workload that keeps paying the dynamic tax —
shape functions, runtime-sized allocation, symbolic-kernel dispatch. The
:class:`SpecializationManager` closes that gap: it counts per-shape hits,
and once a shape crosses the hot threshold it compiles a static-shape
:class:`Executable` through ``nimble.specialize`` (sharing the dynamic
build's :class:`KernelCache`). Batches whose members all match the
specialized shape exactly are routed to the static tier; everything else
— including the hot shape itself while its compile is in flight — falls
back to the dynamic executable, so correctness never depends on the
tier: outputs are bit-identical either way.

With ``batch_cap > 1`` each hot trigger compiles **two variants** of the
shape: the member-wise static build and a batch-specialized build
(``nimble.specialize(batch=batch_cap)``) that executes a full bucket as
one stacked VM call — one batched GEMM per member-wise GEMM site instead
of ``batch_cap`` pipelined launches. Artifacts are keyed by
(exact shape, batch), so batch-cap changes never alias; the two variants
share one cache slot and are evicted, re-armed, and recompiled together.
Shapes the batch rewrite cannot express (ADT entries, member-dependent
control flow, shape-dependent broadcasts) are detected on their first
batched compile and served member-wise only — per shape, so one exotic
shape never disables the tier for the rest.

Compile cost is charged on the virtual clock through a **compile-worker
pool** of ``compile_lanes`` lanes. A shape that crosses the threshold
enqueues a pending compile; pending compiles wait in a priority queue
ordered by observed traffic — hit rate since trigger, recomputed at each
lane-free event on the virtual clock — and are bound to the
lowest-numbered earliest-free lane, so replays of one trace are
bit-identical under any lane count. Requests are never stalled by
compilation — they fall back to the dynamic tier until the static one is
ready (``ready_at``).

The specialized-executable cache holds at most ``max_executables``
*resident* entries and evicts under an LRU/LFU-with-decay policy:
per-shape hit scores decay on a virtual-clock half-life
(``decay_half_life_us``), and when a new shape goes hot past the cap the
coldest resident entry — colder than the challenger by the
``eviction_margin`` thrash-protection factor, and never one with an
in-flight compile — loses its slot. An evicted shape re-arms:
its hit count already sits past the threshold, so its next observation
retries the trigger and can recompile into a freed slot (the artifact is
memoised, but the modeled compile cost is charged again — the model
dropped the binary). A shape whose trigger is blocked (cache full,
nothing colder) stays armed the same way and retries on every subsequent
hit, so no hot shape is ever starved by a momentarily full cache.

With an :class:`~repro.store.ArtifactStore` attached
(``ServeConfig(artifact_dir=...)``), compiled artifacts additionally
persist to disk, and a trigger checks the store **before** queuing a
compile: a hit installs the persisted executable at a small modeled
deserialize cost (``RESTORE_*_US``, ~2 orders of magnitude under the
compile charge) instead of the full compile — so a restarted server
re-reaches its specialized steady state almost immediately
(``harness.restart_study`` measures this). Within one simulation the
store also changes what eviction costs: an evicted-then-re-armed shape
restores its persisted binary at the deserialize charge instead of
recompiling from scratch.

With ``staged=True`` the manager compiles through the **staged
pipeline** (``nimble.compile_prefix`` + ``nimble.specialize(prefix=...)``)
and splits the modeled lane charge accordingly: the shape-independent
*prefix* (normalization, CSE/DCE, lambda lifting, dynamic type
inference) is charged **once per simulation**, folded into the first
fresh compile's lane time (``SpecializationEvent.prefix_us``); every
variant then pays only the *suffix* charge (shape binding, residual
inference, fusion, allocation, codegen —
``SPECIALIZE_SUFFIX_*_US``, or ``compile_us × (1 −
SPECIALIZE_PREFIX_FRACTION)`` under an override). With a store
attached the prefix blob persists too (``.nmblp``): a manager whose
prefix already sat in the store at construction pays only the
``RESTORE_BASE_US`` deserialize charge for it. Simulations that never
compile fresh (fully warm restarts) never charge a prefix at all.
Outputs stay bit-identical to the monolithic path — only the charge
accounting and the compile-path plumbing change.

With ``predictive=True`` and a store attached, specialization is no
longer purely reactive: the previous process's **shape profile** — the
``.nmblprof`` blob the server snapshots at every simulation end
(exact-key hit histogram + decayed scores, see
:mod:`repro.serve.profile`) — is loaded once at construction, and every
``reset()`` *pre-arms* the historical top-K at virtual time 0: the hot
set compiles (or, warmer still, store-restores) before the first
request lands, so a restarted server reaches its first specialized hit
a warm-up earlier (``harness.predictive_study`` measures ≥2×). The
profile snapshot is frozen at construction — the profile this manager
writes never feeds back into its own replays — the same rule that keeps
warm-restore decisions replay-stable.

With ``partial=True`` the manager also synthesizes **guarded partial
variants**: when this simulation's traffic agrees on some dims (e.g.
hidden size) but spreads a long tail of values over the others (e.g.
sequence length), one variant compiled with only the stable dims bound
(``nimble.specialize`` with a partial binding; the rest stay ``Any``)
covers the whole family — ``partial_min_shapes`` distinct exact shapes
minimum, so families that exact specialization already covers are left
alone. The compiled executable carries an entry **shape guard** over
its bound dims: the server checks it per batch member and transparently
*deopts* mismatches to the dynamic tier (counted, never wrong), and the
VM re-checks it at ``run()`` as a hard safety net
(:class:`repro.errors.ShapeGuardError`). Partial variants are
member-wise only — the batch rewrite needs every dim static — and flow
through the same scoring, eviction, store, and replay machinery as
exact ones (their keys mark unbound positions with ``None``).

Compiled artifacts are memoised across simulations, but hit counts,
scores, lane state, pending queues, and ready times reset per replay, so
repeated simulations of one trace are bit-identical. Replay identity
holds with a store attached too: the set of warm-restorable keys is
frozen when the manager is constructed (artifacts the manager itself
persists mid-simulation never join it), so every replay sees the same
store state no matter what earlier replays wrote.

**The per-shape lifecycle** (state machine; states are per simulation,
see also :meth:`observe`):

- *cold* — hits accumulate, decayed score tracks heat.
- *armed* — hits reached ``threshold`` but no cache slot yet (cache
  full, nothing evictable). Stays armed; every later hit retries, so a
  freed slot is always picked up and no hot shape starves.
- *triggered* — slot acquired; one pending compile (or store restore)
  per variant enqueued on the pool. Requests keep routing dynamic.
- *resident+ready* — a variant's lane finished (``ready_at``): batches
  of exactly this shape route to it.
- *evicted* — lost the slot to a hotter challenger: ready times drop,
  ``_triggered`` clears, and the shape **re-arms** (its hit count still
  sits past the threshold), so its next observation retries the
  trigger; re-acquiring a slot recharges the compile (or, with a
  store, the cheaper restore — the binary survived on disk).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache
from repro.errors import NimbleError
from repro.hardware import calibration
from repro.hardware.platforms import Platform
from repro.ir.module import IRModule
from repro.ir.printer import module_fingerprint
from repro.passes import bound_entry_shapes
from repro.serve.batcher import ShapeBucketer
from repro.serve.profile import ShapeProfile, profile_store_key
from repro.store import ArtifactStore
from repro.vm.executable import Executable, artifact_key

ExactKey = Tuple[int, ...]
# A *partial* key binds only the stable dims: None marks positions left
# dynamic. One partial variant covers every exact key that agrees on the
# bound positions (the entry guard checks them at call time). Partial
# keys flow through the same hit/score/eviction machinery as exact ones.
PartialKey = Tuple[Optional[int], ...]
# A compiled artifact is one (exact shape, batch) variant: batch 1 is the
# member-wise static build, batch > 1 stacks that many members per call.
# Partial keys are member-wise only (the batch rewrite needs every dim).
VariantKey = Tuple[ExactKey, int]


@dataclass(frozen=True)
class SpecializationEvent:
    """One compile executed by the pool (per simulation).

    ``trigger_us`` is when the shape crossed the threshold and entered the
    pending queue, ``start_us`` when a lane picked it up, ``ready_us``
    when the executable became routable. ``batch`` identifies the variant
    (1 = member-wise static, >1 = batch-specialized). ``restored`` marks
    a store restore: the lane deserialized a persisted artifact instead
    of compiling, and ``compile_us`` is the modeled deserialize charge.

    ``prefix_us`` (staged mode only) is the part of ``compile_us``
    attributable to the once-per-simulation shape-independent prefix,
    folded into the first fresh compile; ``compile_us`` stays the
    *total* lane charge, so ``sum(e.compile_us)`` always equals total
    lane busy time regardless of mode."""

    key: ExactKey
    trigger_us: float
    start_us: float
    ready_us: float
    compile_us: float
    lane: int
    batch: int = 1
    restored: bool = False
    prefix_us: float = 0.0

    @property
    def queue_us(self) -> float:
        """Time the compile waited in the pending queue for a free lane."""
        return self.start_us - self.trigger_us


@dataclass(frozen=True)
class EvictionEvent:
    """One executable-cache eviction (per simulation)."""

    key: ExactKey
    evicted_us: float
    score: float
    by_key: ExactKey


@dataclass
class _PendingCompile:
    """A triggered compile waiting for a free lane. ``hit_times_us``
    records every observation of the key since the trigger, so priority
    at a lane-free event counts only hits already seen *by that event* —
    a later arrival can never rewrite an earlier binding decision."""

    key: ExactKey
    trigger_us: float
    compile_us: float
    hit_times_us: List[float]
    batch: int = 1
    restored: bool = False
    prefix_us: float = 0.0

    def hits_by(self, at_us: float) -> int:
        return sum(1 for t in self.hit_times_us if t <= at_us)


class SpecializationManager:
    """Decides when a shape is hot and owns the specialized executables.

    ``threshold`` is the number of observed requests with one exact shape
    before a static executable is compiled for it. ``max_executables``
    caps the *resident* cache; with ``eviction`` enabled (the default)
    the coldest resident entry — by hit score decayed on the
    ``decay_half_life_us`` virtual-clock half-life, ties broken LRU —
    yields its slot to a challenger more than ``eviction_margin`` times
    hotter, while ``eviction=False`` reproduces the
    stop-specializing-beyond-the-cap behaviour.
    ``compile_lanes`` sizes the compile-worker pool. ``compile_us``
    overrides the modeled compile cost; by default it is derived from the
    calibration constants and the number of kernels in the specialized
    executable.

    ``store`` attaches a persistent :class:`~repro.store.ArtifactStore`:
    compiled variants are filed under their content hash, and a trigger
    whose artifact already exists (from a previous process, or persisted
    earlier in this simulation and then evicted) is *restored* on a lane
    at ``restore_us`` (default: the ``RESTORE_*_US`` calibration) instead
    of paying the compile charge. Store blobs that fail validation are
    skipped and counted (``store_rejects``) — the shape falls back to a
    fresh compile, exactly as if the store had missed.

    ``staged=True`` switches to the staged compile pipeline: variants
    compile through a shared shape-independent prefix
    (``nimble.compile_prefix``), the prefix is charged once per
    simulation (folded into the first fresh compile's lane time), and
    each variant pays only the suffix share of the compile model — see
    the module docstring. Off by default: monolithic charges stay
    exactly as before.
    """

    def __init__(
        self,
        mod: IRModule,
        platform: Platform,
        bucketer: ShapeBucketer,
        kernel_cache: KernelCache,
        threshold: int = 8,
        max_executables: int = 4,
        compile_us: Optional[float] = None,
        entry: str = "main",
        compile_lanes: int = 1,
        eviction: bool = True,
        decay_half_life_us: float = 100_000.0,
        eviction_margin: float = 2.0,
        batch_cap: int = 1,
        store: Optional[ArtifactStore] = None,
        restore_us: Optional[float] = None,
        staged: bool = False,
        device_streams: int = 1,
        verify_sample: int = 4,
        predictive: bool = False,
        predictive_top_k: Optional[int] = None,
        partial: bool = False,
        partial_min_shapes: int = 3,
        replica_id: int = 0,
        store_view=None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"specialization threshold must be >= 1, got {threshold}")
        if compile_lanes < 1:
            raise ValueError(f"compile_lanes must be >= 1, got {compile_lanes}")
        if decay_half_life_us <= 0:
            raise ValueError(
                f"decay_half_life_us must be > 0, got {decay_half_life_us}"
            )
        if eviction_margin < 1.0:
            raise ValueError(
                f"eviction_margin must be >= 1.0, got {eviction_margin}"
            )
        if batch_cap < 1:
            raise ValueError(f"batch_cap must be >= 1, got {batch_cap}")
        if verify_sample < 0:
            raise ValueError(
                f"verify_sample must be >= 0, got {verify_sample}"
            )
        if partial_min_shapes < 2:
            raise ValueError(
                f"partial_min_shapes must be >= 2 (a family of one exact "
                f"shape is just exact specialization), got {partial_min_shapes}"
            )
        if predictive_top_k is not None and predictive_top_k < 1:
            raise ValueError(
                f"predictive_top_k must be >= 1, got {predictive_top_k}"
            )
        self.mod = mod
        self.platform = platform
        self.bucketer = bucketer
        self.kernel_cache = kernel_cache
        self.threshold = threshold
        self.max_executables = max_executables
        self.compile_us = compile_us
        self.entry = entry
        self.compile_lanes = compile_lanes
        self.eviction = eviction
        self.decay_half_life_us = decay_half_life_us
        self.eviction_margin = eviction_margin
        # Batch granularity: with batch_cap > 1 every hot trigger
        # compiles *two* variants — the member-wise static build and a
        # batch-specialized build that runs batch_cap same-shape members
        # as one call (when the shape admits the rewrite). Full buckets
        # route to the batched variant; ragged tails fall back to the
        # member variant (or dynamic).
        self.batch_cap = batch_cap
        self.store = store
        self.restore_us = restore_us
        # Fleet mode (repro.fleet): this manager is one replica of a
        # fleet sharing a single artifact store. ``store_view`` is the
        # fleet's :class:`~repro.fleet.FleetStoreView` — the shared,
        # replay-resettable model of the store's contents. With a view
        # attached, a sibling replica's fresh compile becomes restorable
        # here the moment it is persisted (the ``origin`` query), and a
        # GC prune makes the corresponding blob un-restorable again (the
        # ``present`` gate on every restore source). Without a view
        # (``None``, the default) behaviour is exactly single-server.
        self.replica_id = replica_id
        self._store_view = store_view
        # Multi-stream scheduling: every specialized variant compiles
        # with this stream count, and it is a store-key component (v5+),
        # so single- and multi-stream builds of one shape never alias in
        # the artifact store. Clamped to the hardware once, here — the
        # clamped value is what the compiler would stamp anyway, and
        # using it for keys too keeps key and artifact in agreement.
        self.device_streams = platform.effective_streams(device_streams)
        # Sampled static verification (repro.analysis): the compiler's
        # own verify gate is disabled for serving compiles (the hot
        # compile lane should not pay it on every variant) and instead
        # every ``verify_sample``-th *actual* compile — starting with
        # the first — is verified here. 0 disables sampling entirely.
        # Verification failing on a sampled compile is a compiler bug
        # and raises; store blobs failing verification are instead
        # rejected-and-counted (``verify_rejects``) like corrupt blobs.
        self.verify_sample = verify_sample
        # Actual-work counter (cumulative, like ``_executables``):
        # replays reuse memoised executables, so only real compiles
        # advance it.
        self.verified_compiles = 0
        # Staged specialization: compile through the shape-independent
        # prefix + shape-binding suffix, and split the modeled charge —
        # the prefix is paid once per simulation (folded into the first
        # fresh compile's lane time), every variant pays only the
        # suffix. Opt-in: the default keeps the monolithic charge model
        # (and its exact totals) unchanged.
        self.staged = staged
        # The module component of every store key. Computed once — it
        # fingerprints the *dynamic* source module, which all of this
        # manager's shape variants share.
        self._fingerprint = module_fingerprint(mod)
        # Replay identity with a store: the warm-restorable key set is
        # FROZEN at construction. Artifacts this manager persists
        # mid-simulation never join it, so a replay of the same trace
        # makes exactly the same compile-vs-restore decisions as the
        # first run did, no matter what the first run wrote to disk.
        self._store_keys_at_init = (
            frozenset(store.keys()) if store is not None else frozenset()
        )
        # Keys whose blob failed validation once: re-attempting would
        # re-read a file this process may since have overwritten with a
        # good artifact, so the rejection is memoised (and replayed —
        # see _plan_artifact) to keep every simulation identical.
        self._rejected_keys: Set[str] = set()
        # The subset of _rejected_keys that failed *static verification*
        # (deserialized fine, unsound contents) — memoised the same way
        # so replays re-count verify_rejects at the same trigger.
        self._verify_rejected_keys: Set[str] = set()
        self._store_key_memo: Dict[VariantKey, str] = {}
        # Staged-mode prefix state (cross-simulation, like _executables):
        # the prefix itself is a pure function of (module, platform), so
        # it is materialized once and reused by every replay. Whether it
        # was restorable from the store is frozen at construction —
        # a prefix this manager persists mid-run must not turn later
        # replays warm (same rule as _store_keys_at_init).
        self._prefix: Optional[nimble.SpecializationPrefix] = None
        self._prefix_key = (
            nimble.prefix_store_key(self._fingerprint, platform.name)
            if staged
            else None
        )
        self._prefix_in_store_at_init = (
            staged
            and store is not None
            and store.contains_prefix(self._prefix_key)
        )
        self._prefix_restored = False
        self._prefix_rejected = False
        # Profile-guided predictive specialization: with ``predictive``
        # on and a store attached, the previous process's shape profile
        # (``.nmblprof``) is loaded ONCE here and frozen — the snapshot
        # this manager writes at each simulation end never feeds back
        # into its own replays (same frozen-at-construction rule as
        # _store_keys_at_init), so every reset() pre-arms the same top-K
        # and replays stay bit-identical. A blob that fails validation
        # is memoised as rejected and re-counted per reset.
        self.predictive = predictive
        self.predictive_top_k = predictive_top_k
        self.partial = partial
        self.partial_min_shapes = partial_min_shapes
        self._profile_key = profile_store_key(self._fingerprint, platform.name)
        self._profile_at_init: Optional[ShapeProfile] = None
        self._profile_rejected = False
        if predictive and store is not None and store.contains_profile(
            self._profile_key
        ):
            found = store.get_profile(
                self._profile_key, expected_signature=self._fingerprint
            )
            if found is None:
                self._profile_rejected = True
            else:
                self._profile_at_init = found
        # The historical top-K to pre-arm, hottest first. Partial keys
        # recorded by a partial-enabled predecessor are skipped unless
        # this manager can compile them too.
        top_k = (
            predictive_top_k if predictive_top_k is not None else max_executables
        )
        self._profile_top_keys: Tuple[PartialKey, ...] = ()
        if self._profile_at_init is not None:
            self._profile_top_keys = tuple(
                key
                for key in self._profile_at_init.top_keys()
                if key and (partial or None not in key)
            )[:top_k]
        # Compiled artifacts are memoised across simulations (compilation
        # is a pure function of module + shape + batch + platform, so
        # reusing them keeps replays bit-identical while skipping
        # redundant work). The *modeled* compile cost is still charged
        # every time a shape (re-)triggers — in the model, eviction
        # dropped the binary (unless a store holds it: then re-triggers
        # pay the restore charge instead).
        self._executables: Dict[VariantKey, Executable] = {}
        self._compile_cost: Dict[VariantKey, float] = {}
        # Shapes whose batched compile failed — a pure property of
        # (module, shape), probed at the shape's first trigger and
        # memoised. Batchability is SHAPE-dependent (a broadcast that is
        # member-legal at one shape can have no stacked equivalent at
        # another), so one shape's failure must not disable the tier for
        # shapes that batch fine.
        self._unbatchable: Set[ExactKey] = set()
        self.reset()

    # ----------------------------------------------------------------- replay
    def reset(self) -> None:
        """Per-simulation state: hit counts, decayed scores, the pending
        queue, lane occupancy, residency, and ready times all restart so
        each replay is independent."""
        self._hits: Counter = Counter()
        self._score: Dict[ExactKey, float] = {}
        self._score_at: Dict[ExactKey, float] = {}
        self._last_hit_us: Dict[ExactKey, float] = {}
        self._ready_at: Dict[VariantKey, float] = {}
        self._resident: Set[ExactKey] = set()
        self._triggered: Set[ExactKey] = set()
        self._pending: List[_PendingCompile] = []
        self._lane_free_us: List[float] = [0.0] * self.compile_lanes
        self.lane_busy_us: List[float] = [0.0] * self.compile_lanes
        self.events: List[SpecializationEvent] = []
        self.evictions: List[EvictionEvent] = []
        # Variants whose binary this simulation has persisted to the
        # store: an eviction no longer destroys them, so a re-trigger
        # restores at deserialize cost. Per-simulation (and only ever
        # populated with a store attached) so replays stay independent.
        self._persisted: Set[VariantKey] = set()
        # Store blobs this simulation refused (corrupt / stale /
        # mismatched). The count replays deterministically: a key
        # rejected in an earlier simulation re-counts at the same
        # trigger without re-reading the (possibly since-overwritten)
        # file.
        self.store_rejects: int = 0
        # The subset of store_rejects that were static-verification
        # failures (replayed from _verify_rejected_keys, same rule).
        self.verify_rejects: int = 0
        # Fleet mode: variants restored from a *sibling replica's* fresh
        # compile this simulation (the cross-replica store-warm count a
        # FleetReport surfaces). Always 0 without a store view.
        self.fleet_restores: int = 0
        # Fresh compiles this simulation, for the deterministic
        # verify_sample cadence (memo hits do not advance it).
        self._compile_seq: int = 0
        # Staged mode: has this simulation paid the once-per-module
        # prefix charge yet? Reset per replay — the model assumes a
        # restart re-stages the pipeline, exactly like it assumes
        # eviction dropped a binary.
        self._prefix_charged = False
        # Partial specialization: per-position value sets and the exact
        # keys seen this simulation (family detection), plus the partial
        # keys synthesized/triggered so far. Per-simulation so replays
        # re-derive the same families from the same traffic.
        self._seen_values: List[Set[int]] = []
        self._exact_seen: Set[ExactKey] = set()
        self._partials: Set[PartialKey] = set()
        # Predictive pre-arm: before the first request of every
        # simulation, trigger the frozen historical top-K at virtual
        # time 0 — a restarted server compiles (or store-restores) its
        # hot set while the trace is still cold. Scores are seeded from
        # the profile (decaying from t=0) so pre-armed entries carry
        # their historical heat into eviction decisions instead of
        # starting infinitely cold. Hit counts are NOT seeded: observe()
        # thresholds stay honest, and pre-armed keys are already in
        # _triggered so they never double-trigger.
        self.predictive_keys: Set[PartialKey] = set()
        self.predictive_hits: int = 0
        if self._profile_rejected:
            # Re-counted every reset, like _rejected_keys: replays must
            # see the same reject total without re-reading the file.
            self.store_rejects += 1
        for key in self._profile_top_keys:
            if len(self._resident) >= self.max_executables:
                break
            self._score[key] = float(self._profile_at_init.scores.get(key, 0.0))
            self._score_at[key] = 0.0
            self._try_trigger(key, 0.0)
            if key in self._triggered:
                self.predictive_keys.add(key)
                if None in key:
                    self._partials.add(key)
            # Pump after every trigger, not once at the end: all pre-arm
            # jobs tie on observed rate (zero hits, trigger 0), so
            # binding them as they enqueue makes lane order follow the
            # profile's hottest-first rank — the historical #1 is the
            # first executable ready, not the lexicographically least.
            self._pump(0.0)
        self.predictive_compiles = len(self._pending) + len(self.events)

    # ------------------------------------------------------------------ stats
    @property
    def num_executables(self) -> int:
        """Distinct shapes ever compiled (the cross-simulation memo)."""
        return len({key for key, _ in self._executables})

    @property
    def num_variants(self) -> int:
        """Distinct (shape, batch) artifacts ever compiled."""
        return len(self._executables)

    @property
    def num_resident(self) -> int:
        """Shapes currently holding an executable-cache slot."""
        return len(self._resident)

    @property
    def compile_us_spent(self) -> float:
        """Total modeled lane time charged in this simulation — full
        compiles plus (with a store) restore charges."""
        return sum(e.compile_us for e in self.events)

    @property
    def num_restored(self) -> int:
        """Variants installed from the artifact store this simulation."""
        return sum(1 for e in self.events if e.restored)

    @property
    def num_fresh_compiles(self) -> int:
        """Variants compiled from scratch this simulation."""
        return sum(1 for e in self.events if not e.restored)

    @property
    def restore_us_spent(self) -> float:
        """Modeled deserialize time charged for store restores."""
        return sum(e.compile_us for e in self.events if e.restored)

    @property
    def prefix_us_spent(self) -> float:
        """Lane time charged for the shape-independent prefix this
        simulation (0 in monolithic mode, and in staged simulations
        that never compiled fresh)."""
        return sum(e.prefix_us for e in self.events)

    @property
    def suffix_us_spent(self) -> float:
        """Lane time charged for per-variant compilation work: in
        staged mode the shape-binding suffixes, in monolithic mode the
        full compiles. Excludes store restores."""
        return sum(
            e.compile_us - e.prefix_us for e in self.events if not e.restored
        )

    @property
    def queue_waits_us(self) -> List[float]:
        """Pending-queue wait of every executed compile, in event order."""
        return [e.queue_us for e in self.events]

    def hits(self, key: ExactKey) -> int:
        return self._hits[key]

    def score(self, key: ExactKey, now_us: float) -> float:
        """The decayed hit score driving eviction, as of *now_us*.

        Decay is anchored at ``_score_at`` — the time of the last
        *bump*, not the last hit — so an observe/score/re-observe
        sequence within one microsecond compounds exactly +1 per hit:
        each bump folds the decayed-to-now value and re-anchors, never
        re-adding the raw count. The age is clamped at 0 so a reading
        taken at a timestamp at-or-before the anchor (same-microsecond
        queries, or the t=0 eviction scan against predictively seeded
        scores) can never *inflate* the score via a negative exponent."""
        raw = self._score.get(key)
        if raw is None:
            return 0.0
        age = max(0.0, now_us - self._score_at[key])
        return raw * 0.5 ** (age / self.decay_half_life_us)

    @staticmethod
    def _sort_key(key: PartialKey) -> Tuple[Tuple[bool, int], ...]:
        """A total-order proxy over exact and partial keys: mixed
        None/int tuples are not directly comparable, so each dim maps to
        (is-None, value) — bound dims sort before unbound, numerically.
        Every deterministic tiebreak over keys goes through this."""
        return tuple((v is None, -1 if v is None else v) for v in key)

    def _variant_ready(self, key: ExactKey, batch: int, now_us: float) -> bool:
        if key not in self._resident:
            return False
        ready = self._ready_at.get((key, batch))
        return ready is not None and ready <= now_us

    def is_hot(self, key: ExactKey, now_us: float) -> bool:
        """Is the member-wise static executable for this exact shape
        routable at *now_us* (resident, compiled, lane finished)?"""
        return self._variant_ready(key, 1, now_us)

    def is_hot_any(self, key: ExactKey, now_us: float) -> bool:
        """Is *any* variant (member-wise or batched) routable at
        *now_us*? The server gives such shapes their own exact bucket so
        their batches form shape-uniform."""
        return any(
            self._variant_ready(key, b, now_us)
            for b in self._variant_batches(key)
        )

    def is_batched_hot(self, key: ExactKey, now_us: float) -> bool:
        """Is the batch-specialized executable routable at *now_us*?"""
        return self.batch_cap > 1 and self._variant_ready(
            key, self.batch_cap, now_us
        )

    # ------------------------------------------------------------------- flow
    def observe(self, key: ExactKey, now_us: float) -> None:
        """Record one request arrival with exact dynamic-dim values *key*.

        Crossing the threshold enqueues a compile on the worker pool. The
        check is ``>= threshold``, not an exact hit: a shape whose trigger
        was blocked by a full cache (or that lost its slot to eviction)
        stays armed and retries on every later observation, so a freed
        slot is always picked up. Lane-free events up to *now_us* are
        processed before and after, so a newly enqueued compile can start
        immediately on an idle lane."""
        if not key:
            return  # fully static model: there is nothing to specialize
        self._hits[key] += 1
        self._bump_score(key, now_us)
        self._last_hit_us[key] = now_us
        for job in self._pending:
            if job.key == key:
                job.hit_times_us.append(now_us)
        if self.partial and None not in key:
            self._note_partial(key, now_us)
        self._pump(now_us)
        if key not in self._triggered and self._hits[key] >= self.threshold:
            self._try_trigger(key, now_us)
            self._pump(now_us)

    def executable_for(self, key: ExactKey, at_us: float) -> Optional[Executable]:
        """The member-wise static executable for a batch whose members all
        have exact shape *key*, or None when the shape is not specialized
        (or its compile has not finished by *at_us* — the caller falls
        back to the dynamic tier)."""
        if not self.is_hot(key, at_us):
            return None
        return self._executables.get((key, 1))

    def batched_executable_for(
        self, key: ExactKey, at_us: float
    ) -> Optional[Executable]:
        """The batch-specialized executable (one call runs ``batch_cap``
        members of exact shape *key*), or None when that variant is not
        routable at *at_us*. The caller routes only full buckets here —
        ragged tails take :meth:`executable_for` or the dynamic tier."""
        if not self.is_batched_hot(key, at_us):
            return None
        return self._executables.get((key, self.batch_cap))

    @staticmethod
    def _matches(key: ExactKey, pkey: PartialKey) -> bool:
        """Does exact key *key* fall in partial key *pkey*'s family —
        same rank, agreeing on every bound (non-None) position?"""
        return len(key) == len(pkey) and all(
            p is None or p == v for p, v in zip(pkey, key)
        )

    def _note_partial(self, key: ExactKey, now_us: float) -> None:
        """Partial-shape bookkeeping for one exact observation: keep
        live partial families warm, and synthesize a new partial variant
        when the traffic's stable dims + long tail justify one.

        A position is *stable* when every exact key this simulation has
        seen agrees on its value (e.g. hidden size), and the family is
        worth a variant when it spans at least ``partial_min_shapes``
        distinct exact shapes (otherwise exact specialization already
        covers it) with ``threshold`` total hits. The synthesized key
        binds the stable positions and leaves the rest None; it then
        competes for a cache slot through the ordinary trigger/eviction
        machinery, seeded with its family's pooled decayed score."""
        self._exact_seen.add(key)
        if not self._seen_values:
            self._seen_values = [set() for _ in key]
        for i, v in enumerate(key):
            self._seen_values[i].add(v)
        # Heat bookkeeping: a hit on any family member is a hit on the
        # partial variant too — it is what would serve the request.
        for pkey in self._partials:
            if self._matches(key, pkey):
                self._hits[pkey] += 1
                self._bump_score(pkey, now_us)
                self._last_hit_us[pkey] = now_us
                for job in self._pending:
                    if job.key == pkey:
                        job.hit_times_us.append(now_us)
        stable = [i for i, vals in enumerate(self._seen_values) if len(vals) == 1]
        if not stable or len(stable) == len(key):
            # Nothing stable to bind, or no tail to cover: exact
            # specialization already serves this traffic.
            return
        pkey: PartialKey = tuple(
            v if i in stable else None for i, v in enumerate(key)
        )
        if pkey in self._triggered:
            return
        family = [k for k in self._exact_seen if self._matches(k, pkey)]
        if len(family) < self.partial_min_shapes:
            return
        if sum(self._hits[k] for k in family) < self.threshold:
            return
        # Seed the variant's eviction heat from its family: it arrives
        # exactly as hot as the traffic it will absorb, so it neither
        # insta-evicts a genuinely hot exact entry nor starts cold.
        self._score[pkey] = sum(self.score(k, now_us) for k in sorted(family))
        self._score_at[pkey] = now_us
        self._try_trigger(pkey, now_us)
        if pkey in self._triggered:
            self._partials.add(pkey)
            self._pump(now_us)

    def partial_executable_for(
        self, member_keys: List[ExactKey], at_us: float
    ):
        """The ready partial variant covering the most of *member_keys*,
        as an ``(executable, partial key)`` pair — or None when no
        partial variant matches any member. Ties break on the None-safe
        key order, so routing is deterministic. The caller runs matching
        members through the variant and deopts the rest (the entry guard
        re-checks every member, so a routing bug fails loud, not wrong)."""
        best_pkey: Optional[PartialKey] = None
        best_cover = 0
        for pkey in sorted(self._partials, key=self._sort_key):
            if not self._variant_ready(pkey, 1, at_us):
                continue
            if (pkey, 1) not in self._executables:
                continue
            cover = sum(1 for k in member_keys if self._matches(k, pkey))
            if cover > best_cover:
                best_cover, best_pkey = cover, pkey
        if best_pkey is None:
            return None
        return self._executables[(best_pkey, 1)], best_pkey

    # ------------------------------------------------------------- fleet hooks
    def specialization_state(self, key: ExactKey, now_us: float) -> Optional[str]:
        """Affinity-routing signal for :class:`repro.fleet.FleetRouter`:
        ``"ready"`` when some variant of *key* is hot right now,
        ``"compiling"`` when the shape has triggered but nothing is ready
        yet, ``None`` when this replica has no stake in the shape."""
        if self.is_hot_any(key, now_us):
            return "ready"
        if key in self._triggered:
            return "compiling"
        return None

    def referenced_store_keys(self) -> Set[Tuple[str, str]]:
        """Every store entry a live snapshot of this replica still needs:
        the fleet GC's refcount guard. Covers every variant with a ready
        time (resident *or* still compiling toward one), every pending
        job, the staged prefix, and the profile key — pruning any of
        these out from under a live replica would turn a modeled restore
        into a disk miss."""
        if self.store is None:
            return set()
        refs: Set[Tuple[str, str]] = set()
        for (key, batch) in self._ready_at:
            refs.add(("exe", self._store_key_for(key, batch)))
        for job in self._pending:
            refs.add(("exe", self._store_key_for(job.key, job.batch)))
        if self.staged and self._prefix_key is not None:
            refs.add(("prefix", self._prefix_key))
        refs.add(("profile", self._profile_key))
        return refs

    def restoring_store_keys(self, now_us: float) -> Set[Tuple[str, str]]:
        """Store entries with a restore *in flight* at *now_us*: a lane
        is deserializing the blob but the variant is not ready yet.
        Strictly a subset of :meth:`referenced_store_keys` (the refcount
        guard already protects them); surfaced separately so tests and
        docs can assert the "GC never prunes an in-flight restore"
        clause directly rather than by implication."""
        if self.store is None:
            return set()
        keys: Set[Tuple[str, str]] = set()
        for job in self._pending:
            if job.restored:
                keys.add(("exe", self._store_key_for(job.key, job.batch)))
        for e in self.events:
            if e.restored and e.ready_us > now_us:
                keys.add(("exe", self._store_key_for(e.key, e.batch)))
        return keys

    # ---------------------------------------------------------------- profiles
    def profile_snapshot(self) -> ShapeProfile:
        """This simulation's shape traffic as a persistable
        :class:`ShapeProfile`: raw hit counts plus every decayed score
        brought forward to one common anchor (the latest bump time), so
        relative hotness survives without absolute clock times. The
        server snapshots at simulation end; a predictive manager in the
        *next* process pre-arms from it (never this one — the
        construction-time freeze, see ``_profile_at_init``)."""
        anchor = max(self._score_at.values(), default=0.0)
        return ShapeProfile(
            source_signature=self._fingerprint,
            platform_name=self.platform.name,
            hits={k: int(n) for k, n in self._hits.items() if n > 0},
            scores={k: self.score(k, anchor) for k in self._score},
        )

    def drain(self) -> None:
        """Run the pool to completion: bind every still-pending compile to
        a lane as lanes free up. The server calls this when a trace ends
        so queue-wait and lane-utilization stats cover every triggered
        compile (the lanes keep working after the last arrival)."""
        self._pump(math.inf)

    # ------------------------------------------------------------ scheduling
    def _bump_score(self, key: ExactKey, now_us: float) -> None:
        self._score[key] = self.score(key, now_us) + 1.0
        self._score_at[key] = now_us

    def _priority(self, job: _PendingCompile, at_us: float):
        """Queue order at virtual time *at_us*: highest hit rate since
        trigger first (the triggering hit counts, plus every hit observed
        by *at_us* — never later ones), then earliest trigger, then
        smallest key — a total order, so lane binding is deterministic
        and a binding at a lane-free event only depends on what the pool
        had seen by that event. The rate window is floored at the decay
        half-life: without the floor a compile triggered an instant ago
        would measure an enormous rate over its microsecond of existence
        and preempt genuinely hotter long-pending jobs (newest-first in
        disguise); with it, young jobs compete on hits over a common
        window until they age past the half-life."""
        elapsed = max(self.decay_half_life_us, at_us - job.trigger_us)
        rate = (job.hits_by(at_us) + 1) / elapsed
        # Variants of one shape tie on rate and trigger; the member-wise
        # build (batch 1) compiles first — it serves ragged tails too, so
        # it is the more broadly useful artifact.
        return (-rate, job.trigger_us, self._sort_key(job.key), job.batch)

    def _pump(self, now_us: float) -> None:
        """Process every lane-free event up to *now_us*: bind the
        highest-priority pending compile to the earliest-free lane
        (lowest id on ties), priorities recomputed at each binding."""
        while self._pending:
            free_us, lane = min(
                (t, i) for i, t in enumerate(self._lane_free_us)
            )
            if free_us > now_us:
                break
            at = max(free_us, min(j.trigger_us for j in self._pending))
            job = min(self._pending, key=lambda j: self._priority(j, at))
            self._pending.remove(job)
            start = max(free_us, job.trigger_us)
            ready = start + job.compile_us
            self._lane_free_us[lane] = ready
            self.lane_busy_us[lane] += job.compile_us
            self._ready_at[(job.key, job.batch)] = ready
            self.events.append(
                SpecializationEvent(
                    job.key, job.trigger_us, start, ready, job.compile_us,
                    lane, job.batch, job.restored, job.prefix_us,
                )
            )

    def batch_tier_active_for(self, key: ExactKey) -> bool:
        """Is the batched tier configured and not known-unbatchable for
        this exact shape? The server aligns a hot bucket's cap to the
        compiled batch size only while this holds — once the probe rules
        the shape out, shrinking its member-tier buckets would cost
        throughput for nothing. Partial keys are member-wise by
        construction: the batch rewrite needs every dim static."""
        return (
            self.batch_cap > 1
            and None not in key
            and key not in self._unbatchable
        )

    def _variant_batches(self, key: ExactKey) -> Tuple[int, ...]:
        """Batch sizes compiled for this hot shape: the member-wise
        build, plus the batch-cap build when the shape admits the batch
        rewrite. Stable from the shape's first trigger onward (the
        unbatchable probe settles atomically with the trigger)."""
        if not self.batch_tier_active_for(key):
            return (1,)
        return (1, self.batch_cap)

    def _try_trigger(self, key: ExactKey, now_us: float) -> None:
        """Acquire a cache slot and enqueue the compile(s)/restore(s);
        on a full cache, evict the coldest resident (if strictly colder
        than the challenger and not in flight) or leave the shape armed
        to retry. One slot covers every variant of the shape — the
        member-wise and batched builds live and die together."""
        if len(self._resident) >= self.max_executables:
            if not self.eviction:
                return
            victim = self._coldest_evictable(key, now_us)
            if victim is None:
                return
            self._evict(victim, now_us, by=key)
        self._resident.add(key)
        self._triggered.add(key)
        # Seed the recency tiebreak at trigger time: a predictively
        # pre-armed entry (or a synthesized partial) may acquire its
        # slot without ever having been observed, and the eviction
        # comparator's -inf fallback would sort it infinitely cold —
        # always the first victim regardless of its actual heat.
        self._last_hit_us.setdefault(key, now_us)
        for batch in self._variant_batches(key):
            plan = self._plan_artifact(key, batch, now_us)
            if plan is None:
                continue  # shape not batchable: member-wise only
            cost, restored, prefix_us = plan
            self._pending.append(
                _PendingCompile(key, now_us, cost, [], batch, restored, prefix_us)
            )

    def _coldest_evictable(
        self, challenger: ExactKey, now_us: float
    ) -> Optional[ExactKey]:
        """The resident shape losing its slot: minimal decayed score, ties
        broken by least-recently-hit then key. A shape whose compile is
        still in flight (pending, or bound but not ready) is never
        evicted, and the challenger must be strictly hotter than
        ``eviction_margin`` times the victim's decayed score — comparable
        heat keeps the incumbent, so a mix of continuously-hot shapes
        does not thrash the cache and throw away compile investment (the
        margin at 1.0 degrades to plain strictly-colder)."""
        candidates = [
            k
            for k in self._resident
            if all(
                self._ready_at.get((k, b)) is not None
                and self._ready_at[(k, b)] <= now_us
                for b in self._variant_batches(k)
            )
        ]
        if not candidates:
            return None
        # Every resident key has _last_hit_us seeded at trigger time, so
        # the fallback is unreachable for candidates; it stays 0.0 (not
        # -inf) so an unexpectedly missing entry would sort as "old",
        # never as an infinitely-cold automatic victim.
        victim = min(
            candidates,
            key=lambda k: (
                self.score(k, now_us),
                self._last_hit_us.get(k, 0.0),
                self._sort_key(k),
            ),
        )
        if self.score(challenger, now_us) <= self.eviction_margin * self.score(
            victim, now_us
        ):
            return None
        return victim

    def _evict(self, key: ExactKey, now_us: float, by: ExactKey) -> None:
        self._resident.discard(key)
        # Every variant the shape may ever have had loses routability
        # with the slot — a re-trigger recompiles (and recharges) both.
        # Popped unconditionally (not via _variant_batches) so no stale
        # ready-time can survive under any probe ordering.
        for batch in (1, self.batch_cap):
            self._ready_at.pop((key, batch), None)
        # Re-arm: the evicted shape's hit count still sits past the
        # threshold, so its next observation retries the trigger.
        self._triggered.discard(key)
        self.evictions.append(
            EvictionEvent(key, now_us, self.score(key, now_us), by)
        )

    # ---------------------------------------------------------------- compile
    def _store_key_for(self, key: ExactKey, batch: int) -> str:
        """The artifact-store key of one (shape, batch) variant, derived
        *without* compiling: ``bound_entry_shapes`` computes the exact
        ``specialized_shapes`` marker the compiled executable would
        carry, so the key matches ``Executable.content_hash`` of the
        artifact a previous process filed."""
        variant: VariantKey = (key, batch)
        skey = self._store_key_memo.get(variant)
        if skey is None:
            # None positions (partial keys) bind nothing: the marker
            # keeps an Any there, and bound_entry_shapes emits the same
            # None dim the compiled executable will carry — so partial
            # variants content-address exactly like exact ones.
            binding = {
                tok: v
                for tok, v in zip(self.bucketer.tokens, key)
                if v is not None
            }
            shapes = bound_entry_shapes(self.mod[self.entry], binding)
            skey = artifact_key(
                self._fingerprint,
                self.platform.name,
                shapes,
                batch if batch > 1 else None,
                device_streams=self.device_streams,
            )
            self._store_key_memo[variant] = skey
        return skey

    def _restore_cost_of(self, exe: Executable) -> float:
        if self.restore_us is not None:
            return float(self.restore_us)
        return (
            calibration.RESTORE_BASE_US[self.platform.name]
            + calibration.RESTORE_PER_KERNEL_US[self.platform.name]
            * len(exe.kernels)
        )

    def _obtain_prefix(self) -> None:
        """Materialize the shape-independent prefix (staged mode). Like
        ``_executables`` this memo is cross-simulation — the prefix is a
        pure function of (module, platform). The store is consulted only
        when the prefix blob existed at construction (replay identity);
        a blob that fails validation is memoised as rejected (never
        re-read) and the prefix is rebuilt from source — and re-persisted,
        healing the bad blob for the next process."""
        if self._prefix is not None:
            return
        if self._prefix_in_store_at_init and not self._prefix_rejected:
            found = self.store.get_prefix(
                self._prefix_key, expected_signature=self._fingerprint
            )
            if found is not None:
                self._prefix = found
                self._prefix_restored = True
                return
            self._prefix_rejected = True
        prefix, _ = nimble.compile_prefix(
            self.mod,
            self.platform,
            source_signature=self._fingerprint,
            entry=self.entry,
        )
        self._prefix = prefix
        if self.store is not None:
            self.store.put_prefix(prefix)

    def _prefix_lane_charge(self, kernels: int) -> float:
        """The once-per-simulation lane charge for staging the prefix.

        A store-restored prefix pays only the base deserialize charge
        (``restore_us`` override, else ``RESTORE_BASE_US`` — an IR blob
        has no kernels to re-materialize). A fresh build pays the
        prefix-side split of the compile model: ``compile_us ×
        SPECIALIZE_PREFIX_FRACTION`` under an override, else the
        ``SPECIALIZE_PREFIX_*_US`` calibration sized by *kernels* (the
        first-compiled variant's kernel count — the prefix walks the
        whole module, and any variant's count is the same module-size
        proxy the monolithic model uses)."""
        if self._prefix_restored:
            if self.restore_us is not None:
                return float(self.restore_us)
            return calibration.RESTORE_BASE_US[self.platform.name]
        if self.compile_us is not None:
            return float(self.compile_us) * calibration.SPECIALIZE_PREFIX_FRACTION
        return (
            calibration.SPECIALIZE_PREFIX_BASE_US[self.platform.name]
            + calibration.SPECIALIZE_PREFIX_PER_KERNEL_US[self.platform.name]
            * kernels
        )

    def _attempt_store_restore(
        self, skey: str, variant: VariantKey
    ) -> Optional[Executable]:
        """Load a store blob under the replay-stable reject discipline:
        a key rejected once is memoised and re-counted on every later
        consultation (and every replay) without re-reading the — possibly
        since-overwritten — file; verification failures are additionally
        split into ``verify_rejects``. A previously memoised executable
        restores without touching the disk at all."""
        if skey in self._rejected_keys:
            self.store_rejects += 1
            if skey in self._verify_rejected_keys:
                self.verify_rejects += 1
            return None
        exe = self._executables.get(variant)
        if exe is None:
            verify_rejects_before = self.store.verify_rejects
            exe = self.store.get(skey, expected_signature=self._fingerprint)
            if exe is None and self.store.verify_rejects > verify_rejects_before:
                # Deserialized cleanly but failed static verification:
                # memoised like any reject so replays re-count it, but
                # also split out — it means a writer bug, not volume rot.
                self._verify_rejected_keys.add(skey)
                self.verify_rejects += 1
        if exe is None:
            self._rejected_keys.add(skey)
            self.store_rejects += 1
            return None
        self._executables[variant] = exe
        return exe

    def _plan_artifact(
        self, key: ExactKey, batch: int, now_us: float
    ) -> Optional[Tuple[float, bool, float]]:
        """Decide how a triggered variant gets its executable: returns
        ``(lane charge, restored, prefix component)``, or ``None`` when
        the variant does not exist (the batched rewrite refused this
        shape). In staged mode the first fresh compile of a simulation
        additionally carries the once-per-module prefix charge (the
        prefix component; included in the lane charge).

        Restore sources, in order:

        1. *Persisted this simulation* — the variant compiled earlier in
           this sim, was written to the store, and then lost its cache
           slot: the binary survived eviction, so the re-trigger pays
           the deserialize charge, not a recompile. In fleet mode the
           shared view must still agree the blob exists — a GC prune in
           between sends the shape back to a fresh compile.
        2. *Sibling compile (fleet mode)* — another replica of this
           fleet compiled and persisted the variant earlier in this
           simulation (the view's ``origin`` query): restore at the
           deserialize charge and count a ``fleet_restores`` store-warm
           hit. One replica's compile warms the whole fleet.
        3. *Warm start* — the key existed in the store when this manager
           was constructed (a previous process compiled it): load,
           validate, install. Validation failures are counted in
           ``store_rejects`` and fall through to a fresh compile; the
           rejection is memoised so replays re-count it at the same
           trigger instead of re-reading a file this process may since
           have overwritten.
        4. *Fresh compile* — full compile charge; with a store attached
           the artifact is persisted immediately, arming sources 1/2.
        """
        variant: VariantKey = (key, batch)
        view = self._store_view
        if variant in self._persisted:
            skey = self._store_key_for(key, batch)
            if view is None or view.present("exe", skey):
                if view is not None:
                    view.record_use("exe", skey, now_us)
                return (
                    self._restore_cost_of(self._executables[variant]),
                    True,
                    0.0,
                )
            # The fleet GC pruned the blob we persisted: the binary is
            # gone, so this re-trigger compiles fresh and re-persists.
            self._persisted.discard(variant)
        if self.store is not None:
            skey = self._store_key_for(key, batch)
            from_sibling = False
            if view is not None:
                origin = view.origin("exe", skey)
                if origin is not None:
                    restorable = True
                    from_sibling = origin != self.replica_id
                else:
                    restorable = skey in self._store_keys_at_init and view.present(
                        "exe", skey
                    )
            else:
                restorable = skey in self._store_keys_at_init
            if restorable:
                exe = self._attempt_store_restore(skey, variant)
                if exe is not None:
                    if view is not None:
                        view.record_use("exe", skey, now_us)
                    if from_sibling:
                        self.fleet_restores += 1
                    return self._restore_cost_of(exe), True, 0.0
        if not self._ensure_compiled(key, batch):
            return None
        if self.store is not None:
            skey = self.store.put(self._executables[variant])
            self._persisted.add(variant)
            if view is not None:
                view.record_put("exe", skey, now_us, self.replica_id)
                if self.staged and self._prefix_key is not None:
                    # _ensure_compiled materialized (and persisted) the
                    # shared prefix as a side effect of the first fresh
                    # staged compile — mirror it into the view so the GC
                    # inventory knows the .nmblp blob exists.
                    view.record_put(
                        "prefix", self._prefix_key, now_us, self.replica_id
                    )
        prefix_us = 0.0
        if self.staged and not self._prefix_charged:
            # First fresh compile of this simulation: fold the
            # once-per-module prefix charge into its lane time. (A
            # rejected prefix blob re-counts here each replay, at the
            # same trigger, without re-reading the file — same
            # determinism rule as _rejected_keys above.)
            self._prefix_charged = True
            if self._prefix_rejected:
                self.store_rejects += 1
            prefix_us = self._prefix_lane_charge(
                len(self._executables[variant].kernels)
            )
        return self._compile_cost[variant] + prefix_us, False, prefix_us

    def _ensure_compiled(self, key: ExactKey, batch: int = 1) -> bool:
        """Materialize the (shape, batch) artifact; returns False when
        the batched rewrite is unsupported for this shape (member-wise
        builds always succeed). The probe result is memoised per shape —
        batchability depends on the bound dims, not just the module."""
        variant: VariantKey = (key, batch)
        if variant in self._executables:
            return True
        if batch > 1 and key in self._unbatchable:
            return False
        # Partial keys bind only their non-None positions; the unbound
        # dims stay Any and the compiled variant carries an entry guard.
        binding = {
            tok: v for tok, v in zip(self.bucketer.tokens, key) if v is not None
        }
        if self.staged:
            self._obtain_prefix()
        try:
            exe, _ = nimble.specialize(
                self.mod,
                self.platform,
                binding=binding,
                options=nimble.CompilerOptions(
                    device_streams=self.device_streams,
                    # The compiler's per-compile verify gate is replaced
                    # by the sampled verification below.
                    verify=False,
                ),
                kernel_cache=self.kernel_cache,
                entry=self.entry,
                batch=batch,
                source_signature=self._fingerprint,
                prefix=self._prefix if self.staged else None,
            )
        except NimbleError:
            # Member-wise compiles must succeed — those errors propagate.
            # A *batched* compile failing for any reason (unsupported
            # structure, a rewrite gap surfacing as a type error) means
            # this shape is served member-wise only; one exotic shape
            # must never take down the whole simulation.
            if batch <= 1:
                raise
            self._unbatchable.add(key)
            return False
        self._compile_seq += 1
        if self.verify_sample > 0 and (
            (self._compile_seq - 1) % self.verify_sample == 0
        ):
            # Deterministic cadence: the first fresh compile of every
            # simulation and every verify_sample-th after it. A failure
            # here is a compiler bug — raise, never serve the variant.
            from repro.analysis import assert_verified

            assert_verified(
                exe, context=f"(serving compile, shape {key}, batch {batch})"
            )
            self.verified_compiles += 1
        self._executables[variant] = exe
        if self.compile_us is not None:
            cost = float(self.compile_us)
            if self.staged:
                # The override names the *monolithic* per-variant cost;
                # staged variants pay only the suffix share of it.
                cost *= 1.0 - calibration.SPECIALIZE_PREFIX_FRACTION
        elif self.staged:
            cost = (
                calibration.SPECIALIZE_SUFFIX_BASE_US[self.platform.name]
                + calibration.SPECIALIZE_SUFFIX_PER_KERNEL_US[self.platform.name]
                * len(exe.kernels)
            )
        else:
            cost = (
                calibration.SPECIALIZE_BASE_US[self.platform.name]
                + calibration.SPECIALIZE_PER_KERNEL_US[self.platform.name]
                * len(exe.kernels)
            )
        self._compile_cost[variant] = cost
        return True
